"""Interrupt/resume behaviour of the Table 1 harness.

The acceptance property: a run that dies mid-table and is resumed with
``--resume`` must produce the same report, row for row, as a run that was
never interrupted — resumed rows replay from the checkpoint, the rest are
recomputed, and nothing is double-counted or lost.
"""

from __future__ import annotations

import json

import pytest

from repro.flows import table1 as table1_mod
from repro.flows.checkpoint import CHECKPOINT_VERSION, Checkpoint
from repro.flows.flow import FlowResult
from repro.flows.table1 import format_table1, run_table1

NAMES = ["s400", "s444", "s953"]

_TIMING_MARKERS = ("time", "seconds", "utilisation", "wall")


def comparable(result: FlowResult) -> dict:
    """A row's dict form with non-deterministic timing fields stripped."""
    data = result.to_dict()
    data.pop("verify_seconds")
    data["verify_stats"] = {
        k: v
        for k, v in data["verify_stats"].items()
        if not any(marker in k for marker in _TIMING_MARKERS)
    }
    return data


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted reference run."""
    return run_table1(NAMES)


class TestCheckpointResume:
    def test_interrupted_run_resumes_row_for_row(
        self, baseline, tmp_path, monkeypatch
    ):
        path = tmp_path / "table1.ckpt.json"
        real_row = table1_mod.table1_row

        def dies_on_second(name, *args, **kwargs):
            if name == NAMES[1]:
                raise RuntimeError("injected mid-run crash")
            return real_row(name, *args, **kwargs)

        monkeypatch.setattr(table1_mod, "table1_row", dies_on_second)
        with pytest.raises(RuntimeError, match="injected mid-run crash"):
            run_table1(NAMES, checkpoint=path, on_error="abort")
        monkeypatch.setattr(table1_mod, "table1_row", real_row)

        # The checkpoint holds exactly the rows finished before the crash.
        recorded = Checkpoint(
            path, {"harness": "table1", "unate": False, "effort": "medium"}
        ).load()
        assert sorted(recorded) == [NAMES[0]]

        resumed = run_table1(NAMES, checkpoint=path, resume=True)
        assert [r.name for r in resumed] == NAMES
        assert [comparable(r) for r in resumed] == [
            comparable(r) for r in baseline
        ]
        # The rendered reports agree too, modulo the wall-clock column.
        def rendered(rows):
            stripped = [FlowResult.from_dict(r.to_dict()) for r in rows]
            for row in stripped:
                row.verify_seconds = 0.0
            return format_table1(stripped)

        assert rendered(resumed) == rendered(baseline)

    def test_completed_checkpoint_replays_everything(
        self, baseline, tmp_path, monkeypatch
    ):
        path = tmp_path / "table1.ckpt.json"
        run_table1(NAMES, checkpoint=path)

        def must_not_run(name, *args, **kwargs):
            raise AssertionError(f"row {name} recomputed despite checkpoint")

        monkeypatch.setattr(table1_mod, "table1_row", must_not_run)
        resumed = run_table1(NAMES, checkpoint=path, resume=True)
        assert [comparable(r) for r in resumed] == [
            comparable(r) for r in baseline
        ]

    def test_without_resume_checkpoint_rows_are_recomputed(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "table1.ckpt.json"
        run_table1(NAMES[:1], checkpoint=path)
        calls = []
        real_row = table1_mod.table1_row

        def counting(name, *args, **kwargs):
            calls.append(name)
            return real_row(name, *args, **kwargs)

        monkeypatch.setattr(table1_mod, "table1_row", counting)
        run_table1(NAMES[:1], checkpoint=path)  # no resume flag
        assert calls == NAMES[:1]

    def test_mismatched_config_is_ignored(self, tmp_path, monkeypatch):
        path = tmp_path / "table1.ckpt.json"
        run_table1(NAMES[:1], checkpoint=path)
        calls = []
        real_row = table1_mod.table1_row

        def counting(name, *args, **kwargs):
            calls.append(name)
            return real_row(name, *args, **kwargs)

        monkeypatch.setattr(table1_mod, "table1_row", counting)
        # A --unate resume must not replay structural-exposure rows.
        run_table1(NAMES[:1], use_unateness=True, checkpoint=path, resume=True)
        assert calls == NAMES[:1]

    def test_corrupted_checkpoint_degrades_to_full_run(self, tmp_path):
        path = tmp_path / "table1.ckpt.json"
        path.write_text("garbage {{{")
        results = run_table1(NAMES[:1], checkpoint=path, resume=True)
        assert results[0].status == "ok"
        # And the file was replaced by a valid checkpoint afterwards.
        raw = json.loads(path.read_text())
        assert raw["version"] == CHECKPOINT_VERSION
        assert NAMES[0] in raw["rows"]

    def test_checkpoint_writes_are_atomic(self, tmp_path):
        path = tmp_path / "table1.ckpt.json"
        run_table1(NAMES[:2], checkpoint=path)
        assert [p.name for p in tmp_path.iterdir()] == [path.name]


class TestErrorRows:
    def test_failing_row_is_contained(self, monkeypatch):
        real_row = table1_mod.table1_row

        def dies_on_first(name, *args, **kwargs):
            if name == NAMES[0]:
                raise RuntimeError("boom")
            return real_row(name, *args, **kwargs)

        monkeypatch.setattr(table1_mod, "table1_row", dies_on_first)
        results = run_table1(NAMES[:2], on_error="skip")
        assert results[0].status == "error"
        assert "boom" in (results[0].error or "")
        assert results[1].status == "ok"
        # The rendered table carries the ERROR marker instead of crashing.
        assert "ERROR" in format_table1(results)

    def test_flowresult_roundtrips_through_dict(self, monkeypatch):
        real_row = table1_mod.table1_row

        def dies(name, *args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(table1_mod, "table1_row", dies)
        (row,) = run_table1(NAMES[:1], on_error="skip")
        restored = FlowResult.from_dict(row.to_dict())
        assert restored.to_dict() == row.to_dict()

    def test_resume_requires_checkpoint_flag(self, capsys):
        with pytest.raises(SystemExit):
            table1_mod.main(["--resume", "--circuits", "s400"])
