"""Integration tests of the Fig. 19 experiment flow."""

from __future__ import annotations

import pytest

from repro.bench.iscas_like import build_table1_circuit
from repro.bench.minmax import minmax_circuit
from repro.core.verify import SeqVerdict
from repro.flows.flow import run_flow
from repro.flows.report import render_table
from repro.flows.table1 import format_table1, table1_row
from repro.flows.table2 import format_table2, table2_row


class TestRunFlow:
    @pytest.fixture(scope="class")
    def minmax_result(self):
        return run_flow(minmax_circuit(4))

    def test_verifies_equivalent(self, minmax_result):
        assert minmax_result.verify_verdict is SeqVerdict.EQUIVALENT
        assert minmax_result.verify_seconds > 0

    def test_exposure_fraction(self, minmax_result):
        assert round(minmax_result.pct_exposed) == 67

    def test_latch_counts_reported(self, minmax_result):
        assert minmax_result.latches_a == 12
        for tag in ("B", "C", "D", "E"):
            assert tag in minmax_result.latches

    def test_area_normalisation(self, minmax_result):
        assert minmax_result.normalised_area("D") == 1.0
        for tag in ("C", "E"):
            assert minmax_result.normalised_area(tag) is not None

    def test_paper_claim_delay(self, minmax_result):
        """Claim 8.1(1): retiming+synthesis never slower than comb-only."""
        assert minmax_result.delay["C"] <= minmax_result.delay["D"]

    def test_paper_claim_area(self, minmax_result):
        """Claim 8.1(2): min-area retiming at D's delay not worse on latches."""
        assert minmax_result.latches["E"] <= minmax_result.latches["D"] + 1

    def test_small_iscas_flow(self):
        result = run_flow(build_table1_circuit("s953"))
        assert result.verify_verdict is SeqVerdict.EQUIVALENT

    def test_flow_without_unexposed_variants(self):
        result = run_flow(
            minmax_circuit(3), build_unexposed_variants=False
        )
        assert "F" not in result.latches
        assert result.verify_verdict is SeqVerdict.EQUIVALENT

    def test_flow_with_unateness(self):
        result = run_flow(minmax_circuit(3), use_unateness=True, verify=True)
        # minmax MIN/MAX updates are not positive unate bit-wise in general,
        # so exposure stays; the flow must still verify.
        assert result.verify_verdict in (
            SeqVerdict.EQUIVALENT,
            SeqVerdict.INCONCLUSIVE,
        )


class TestHarnessFormatting:
    def test_table1_row_and_format(self):
        result = table1_row("s953")
        text = format_table1([result])
        assert "s953" in text
        assert "Verify" in text

    def test_table2_row_and_format(self):
        row = table2_row("ex2")
        assert row.latches == 160
        assert row.exposed_structural == 16
        assert row.exposed_unate <= row.exposed_structural
        text = format_table2([row])
        assert "ex2" in text

    def test_render_table_alignment(self):
        text = render_table(
            ["A", "Bee"], [[1, 2.5], [None, "x"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "-" in lines[2]
        assert "2.50" in text and "-" in lines[3] or True
