"""Tests for the report helpers: stat aggregation and zero suppression."""

from __future__ import annotations

from repro.flows.report import compact_stats, summarize_engine_stats


class TestSummarizeEngineStats:
    def test_empty_input(self):
        assert summarize_engine_stats([]) == "engine stats: none collected"

    def test_rows_without_engine_fields(self):
        rows = [{"total_time": 1.0}, {"depth1": 3}]
        assert summarize_engine_stats(rows) == "engine stats: none collected"

    def test_mixed_key_rows_aggregate(self):
        rows = [
            {"cec_sat_queries": 10, "cec_sweep_merges": 4, "cec_time_sweep": 0.5},
            # A row missing some keys and carrying non-engine noise.
            {"cec_sat_queries": 5, "cec_cache_hits": 3, "cec_cache_misses": 1,
             "total_time": 9.0},
            # An ERROR row contributes nothing.
            {},
        ]
        text = summarize_engine_stats(rows)
        assert "sat queries 15" in text
        assert "sweep merges 4" in text
        assert "cache hits 3  misses 1" in text
        assert "hit rate 75%" in text
        assert "sweep 0.50s" in text

    def test_cache_line_absent_without_traffic(self):
        text = summarize_engine_stats([{"cec_sat_queries": 1}])
        assert "cache hits" not in text

    def test_prefix_filtering(self):
        rows = [{"cec_sat_queries": 7, "eng_sat_queries": 100}]
        assert "sat queries 100" in summarize_engine_stats(rows, prefix="eng_")
        assert "sat queries 7" in summarize_engine_stats(rows)

    def test_phase_times_summed_across_rows(self):
        rows = [
            {"cec_time_sweep": 1.0, "cec_time_build": 0.25},
            {"cec_time_sweep": 2.0},
        ]
        text = summarize_engine_stats(rows)
        assert "sweep 3.00s" in text
        assert "build 0.25s" in text


class TestCompactStats:
    def test_zero_robustness_counters_dropped(self):
        stats = {
            "sat_queries": 10,
            "cascade_sat": 0,
            "cascade_bdd": 0,
            "worker_failures": 0,
            "budget_exhausted": 0,
        }
        assert compact_stats(stats) == {"sat_queries": 10}

    def test_nonzero_robustness_counters_kept(self):
        stats = {"cascade_sat": 3, "worker_timeouts": 1, "cascade_sim": 0}
        assert compact_stats(stats) == {"cascade_sat": 3, "worker_timeouts": 1}

    def test_prefixed_keys_suppressed_too(self):
        stats = {"cec_cascade_sat": 0, "cec_sat_queries": 5}
        assert compact_stats(stats) == {"cec_sat_queries": 5}

    def test_zero_ordinary_stats_survive(self):
        # Only the robustness counters are suppressed — a zero sweep count
        # or cache hit count is information, not noise.
        stats = {"sweep_refuted": 0, "cache_hits": 0}
        assert compact_stats(stats) == stats
