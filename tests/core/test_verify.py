"""End-to-end sequential equivalence checking tests.

These exercise the paper's headline claims:

* Theorem 5.1 — CBF equality ⟺ exact-3-valued equivalence for acyclic
  regular-latch circuits (positive and negative cases, any structural
  relationship);
* Theorem 5.2 — EDBF equality proves retiming+resynthesis pairs with
  load-enabled latches;
* Sec. 6 — feedback circuits verified after unate remodelling / exposure;
* Sec. 5.2 — conservative (INCONCLUSIVE) verdicts on the Fig. 10/11 pairs.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.counterex import fig1_pair, fig10_pair, fig11_pair
from repro.bench.pipeline import pipeline_circuit, trapped_latch_circuit
from repro.bench.random_circuits import random_acyclic_sequential
from repro.core.verify import SeqVerdict, check_sequential_equivalence
from repro.netlist.build import CircuitBuilder
from repro.netlist.circuit import Gate
from repro.netlist.cube import Sop
from repro.retime.apply import retime_min_area, retime_min_period
from repro.retime.incremental import incremental_retime_enabled
from repro.sim.exact3 import exact3_equivalent
from repro.synth.script import optimize_sequential_delay


def mutate_one_gate(circuit, seed=0):
    """Flip one live gate's function (a real behavioural bug)."""
    from repro.netlist.transform import cone_of_influence

    rng = random.Random(seed)
    mutated = circuit.copy(circuit.name + "_bug")
    live = cone_of_influence(mutated)
    candidates = [
        g
        for g in mutated.gates.values()
        if g.inputs and g.sop.cubes and g.output in live
    ]
    gate = rng.choice(candidates)
    flipped = gate.sop.complement()
    mutated.replace_gate(Gate(gate.output, gate.inputs, flipped))
    return mutated


class TestCombinationalPath:
    def test_pure_combinational_circuits(self):
        b1 = CircuitBuilder("a")
        x, y = b1.inputs("x", "y")
        b1.output(b1.NAND(x, y), name="o")
        b2 = CircuitBuilder("b")
        x, y = b2.inputs("x", "y")
        b2.output(b2.NOT(b2.AND(x, y)), name="o")
        r = check_sequential_equivalence(b1.circuit, b2.circuit)
        assert r.equivalent and r.method == "cbf"


class TestTheorem51:
    @pytest.mark.parametrize("seed", range(6))
    def test_retime_and_resynthesise(self, seed):
        c = pipeline_circuit(stages=2, width=3, seed=seed)
        opt = optimize_sequential_delay(c)
        opt, _, _ = retime_min_period(opt)
        opt = optimize_sequential_delay(opt)
        r = check_sequential_equivalence(c, opt)
        assert r.equivalent, r.stats

    @pytest.mark.parametrize("seed", range(6))
    def test_mutation_verdict_agrees_with_simulation(self, seed):
        """Theorem 5.1 both ways: the checker's verdict must match an
        exhaustive-ish simulation oracle (a masked mutation may legitimately
        stay equivalent; a visible one must be caught with a valid trace)."""
        c = pipeline_circuit(stages=2, width=3, seed=seed)
        bug = mutate_one_gate(c, seed)
        r = check_sequential_equivalence(c, bug)
        rng = random.Random(seed)
        seqs = [
            [{i: rng.random() < 0.5 for i in c.inputs} for _ in range(5)]
            for _ in range(150)
        ]
        sim_equivalent = exact3_equivalent(c, bug, seqs)
        if r.verdict is SeqVerdict.NOT_EQUIVALENT:
            # The lifted counterexample must be real (validated by the
            # checker itself through exact-3-valued replay).
            assert r.counterexample is not None
            assert r.stats.get("cex_confirmed") == 1.0
        else:
            assert r.equivalent
            assert sim_equivalent  # no false EQUIVALENT verdicts
        if not sim_equivalent:
            assert r.verdict is SeqVerdict.NOT_EQUIVALENT

    def test_visible_mutation_detected(self):
        """At least one canonical visible bug is caught with a valid trace."""
        b = CircuitBuilder("v1")
        x, y = b.inputs("x", "y")
        b.output(b.latch(b.AND(x, y)), name="o")
        good = b.circuit
        b2 = CircuitBuilder("v2")
        x, y = b2.inputs("x", "y")
        b2.output(b2.latch(b2.NAND(x, y)), name="o")
        r = check_sequential_equivalence(good, b2.circuit)
        assert r.verdict is SeqVerdict.NOT_EQUIVALENT
        assert r.stats.get("cex_confirmed") == 1.0

    def test_beyond_retiming_structural_changes(self):
        """Theorem 5.1 holds for ANY equivalent pair, not just retimed ones."""
        b1 = CircuitBuilder("c1")
        (a,) = b1.inputs("a")
        q1 = b1.latch(a)
        q2 = b1.latch(q1)
        b1.output(b1.XOR(q2, q2), name="o")  # constant 0, obscured
        b2 = CircuitBuilder("c2")
        (a,) = b2.inputs("a")
        z = b2.CONST0()
        b2.output(b2.BUF(z), name="o")
        r = check_sequential_equivalence(b1.circuit, b2.circuit)
        assert r.equivalent

    def test_depth_mismatch_is_inequivalent(self):
        b1 = CircuitBuilder("d1")
        (a,) = b1.inputs("a")
        b1.output(b1.latch(a), name="o")
        b2 = CircuitBuilder("d2")
        (a,) = b2.inputs("a")
        b2.output(b2.latch(b2.latch(a)), name="o")
        r = check_sequential_equivalence(b1.circuit, b2.circuit)
        assert r.verdict is SeqVerdict.NOT_EQUIVALENT

    @pytest.mark.parametrize("seed", range(4))
    def test_trapped_latches(self, seed):
        c = trapped_latch_circuit(width=3, seed=seed)
        opt = optimize_sequential_delay(c)
        r = check_sequential_equivalence(c, opt)
        assert r.equivalent


class TestTheorem52:
    @pytest.mark.parametrize("seed", range(4))
    def test_enabled_resynthesis(self, seed):
        c = pipeline_circuit(stages=2, width=3, seed=seed, enable=True)
        opt = optimize_sequential_delay(c)
        r = check_sequential_equivalence(c, opt)
        assert r.equivalent and r.method == "edbf"

    @pytest.mark.parametrize("seed", range(4))
    def test_class_aware_retiming(self, seed):
        c = pipeline_circuit(stages=2, width=3, seed=seed, enable=True)
        retimed, old, new = incremental_retime_enabled(c)
        r = check_sequential_equivalence(c, retimed)
        assert r.equivalent, (old, new, r.stats)

    def test_enabled_mutation_conservative_or_detected(self):
        c = pipeline_circuit(stages=2, width=3, seed=1, enable=True)
        bug = mutate_one_gate(c, 1)
        r = check_sequential_equivalence(c, bug)
        rng = random.Random(1)
        seqs = [
            [{i: rng.random() < 0.5 for i in c.inputs} for _ in range(6)]
            for _ in range(150)
        ]
        if not exact3_equivalent(c, bug, seqs):
            # A visibly different pair must not be called EQUIVALENT; the
            # EDBF path may be conservative (INCONCLUSIVE) but never wrong.
            assert r.verdict in (
                SeqVerdict.NOT_EQUIVALENT,
                SeqVerdict.INCONCLUSIVE,
            )


class TestFeedbackPath:
    def test_minmax_style_self_check(self):
        from repro.bench.minmax import minmax_circuit

        c = minmax_circuit(3)
        opt = optimize_sequential_delay(c)
        # The same latch names survive combinational synthesis, so the
        # checker can mirror the exposure on both sides.
        r = check_sequential_equivalence(c, opt)
        assert r.equivalent
        assert r.stats.get("exposed", 0) > 0

    def test_unate_feedback_via_remodel(self):
        def build(name, restructure):
            b = CircuitBuilder(name)
            d, e = b.inputs("d", "e")
            b.circuit.add_latch("q", "nxt")
            if restructure:
                # e·d + ē·q written differently
                t1 = b.AND(e, d)
                t2 = b.ANDN("q", e)
                b.OR(t1, t2, name="nxt")
            else:
                b.MUX(e, d, "q", name="nxt")
            b.output("q", name="o")
            return b.circuit

        c1 = build("m1", False)
        c2 = build("m2", True)
        r = check_sequential_equivalence(c1, c2, use_unateness=True)
        assert r.equivalent
        assert r.stats.get("remodelled", 0) == 1

    def test_prepare_false_raises_on_feedback(self):
        from repro.bench.minmax import minmax_circuit

        c = minmax_circuit(2)
        with pytest.raises(ValueError):
            check_sequential_equivalence(c, c.copy("x"), prepare=False)

    def test_io_mismatch_raises(self, builder):
        (a,) = builder.inputs("a")
        builder.output(a, name="o")
        other = CircuitBuilder("x")
        other.inputs("zz")
        other.output("zz", name="o")
        with pytest.raises(ValueError):
            check_sequential_equivalence(builder.circuit, other.circuit)


class TestPaperCounterexamples:
    def test_fig1_equivalent_under_def1(self):
        c1, c2 = fig1_pair()
        r = check_sequential_equivalence(c1, c2)
        assert r.equivalent

    def test_fig10_refuted_by_default(self):
        """Under strict edge-triggered enables the Fig. 10 pair genuinely
        differs; the EDBF mismatch plus the trace search finds a witness."""
        c1, c2 = fig10_pair()
        r = check_sequential_equivalence(c1, c2)
        assert r.verdict is SeqVerdict.NOT_EQUIVALENT
        assert r.counterexample is not None

    def test_fig10_reconciled_by_eq5_rewrite(self):
        """With Eq. 5 the events merge and the pair verifies (paper's fix)."""
        c1, c2 = fig10_pair()
        r = check_sequential_equivalence(c1, c2, event_rewrite=True)
        assert r.equivalent

    def test_fig10_strict_semantics_distinguishes(self):
        """Under strict edge-triggered enables the pair genuinely differs —
        the documented reason the rewrite is opt-in (see core.events)."""
        c1, c2 = fig10_pair()
        # a fires at 0 only; ab fires at 2; c changes in between.
        seq = [
            {"a": True, "b": False, "c": True},
            {"a": False, "b": False, "c": False},
            {"a": True, "b": True, "c": False},
            {"a": False, "b": False, "c": False},
        ]
        assert not exact3_equivalent(c1, c2, [seq])

    def test_fig11_false_negative_even_with_rewrite(self):
        """Enable/data interaction (Fig. 11) stays conservative."""
        c1, c2 = fig11_pair()
        rng = random.Random(4)
        seqs = [
            [
                {"a": rng.random() < 0.5, "b": rng.random() < 0.5}
                for _ in range(6)
            ]
            for _ in range(40)
        ]
        assert exact3_equivalent(c1, c2, seqs)  # truly equivalent
        r = check_sequential_equivalence(c1, c2, event_rewrite=True)
        assert r.verdict is SeqVerdict.INCONCLUSIVE  # method can't see it


class TestPropertyRetimingPreservesCBF:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_pipelines(self, seed):
        c = pipeline_circuit(
            stages=1 + seed % 3, width=2 + seed % 2, seed=seed
        )
        retimed, _, _ = retime_min_period(c)
        r = check_sequential_equivalence(c, retimed)
        assert r.equivalent

    @pytest.mark.parametrize("seed", range(4))
    def test_min_area_retiming(self, seed):
        c = pipeline_circuit(stages=2, width=3, seed=seed)
        result, _ = retime_min_area(c)
        assert result is not None
        r = check_sequential_equivalence(c, result)
        assert r.equivalent
