"""Unit tests for the hash-consed expression DAG."""

from __future__ import annotations

import pytest

from repro.bdd.bdd import BDD
from repro.core.timedvar import CONST0, CONST1, ExprTable
from repro.netlist.cube import Sop


class TestConstruction:
    def test_constants(self):
        t = ExprTable()
        assert t.kind(CONST0) == "c"
        assert t.kind(CONST1) == "c"

    def test_var_interning(self):
        t = ExprTable()
        assert t.var("x") == t.var("x")
        assert t.var("x") != t.var("y")
        assert t.var_key(t.var("x")) == "x"

    def test_apply_interning(self):
        t = ExprTable()
        a, b = t.var("a"), t.var("b")
        assert t.and_(a, b) == t.and_(a, b)
        assert t.and_(a, b) != t.and_(b, a)  # structural, not semantic

    def test_constant_folding(self):
        t = ExprTable()
        a = t.var("a")
        assert t.and_(a, CONST0) == CONST0
        assert t.and_(a, CONST1) == a
        assert t.or_(a, CONST1) == CONST1
        assert t.or_(a, CONST0) == a
        assert t.not_(CONST0) == CONST1
        assert t.not_(CONST1) == CONST0
        assert t.not_(t.var("a")) != a

    def test_buffer_collapse(self):
        t = ExprTable()
        a = t.var("a")
        assert t.apply(Sop.and_all(1), [a]) == a

    def test_mux_folding(self):
        t = ExprTable()
        a, b = t.var("a"), t.var("b")
        assert t.mux(CONST1, a, b) == a
        assert t.mux(CONST0, a, b) == b

    def test_arity_mismatch(self):
        t = ExprTable()
        with pytest.raises(ValueError):
            t.apply(Sop.and_all(2), [t.var("a")])

    def test_var_key_on_op_raises(self):
        t = ExprTable()
        node = t.and_(t.var("a"), t.var("b"))
        with pytest.raises(ValueError):
            t.var_key(node)
        with pytest.raises(ValueError):
            t.op_parts(t.var("a"))


class TestQueries:
    def test_support(self):
        t = ExprTable()
        node = t.or_(t.and_(t.var("a"), t.var("b")), t.var("c"))
        assert t.support(node) == {"a", "b", "c"}
        assert t.support(CONST1) == frozenset()
        assert t.support(t.var("z")) == {"z"}

    def test_support_cached_consistency(self):
        t = ExprTable()
        inner = t.and_(t.var("a"), t.var("b"))
        assert t.support(inner) == {"a", "b"}
        outer = t.or_(inner, t.var("c"))
        assert t.support(outer) == {"a", "b", "c"}

    def test_descendants_topological(self):
        t = ExprTable()
        a, b = t.var("a"), t.var("b")
        ab = t.and_(a, b)
        root = t.not_(ab)
        order = t.descendants([root])
        assert order.index(a) < order.index(ab) < order.index(root)

    def test_eval(self):
        t = ExprTable()
        node = t.xor_(t.var("x"), t.var("y"))
        assert t.eval([node], {"x": True, "y": False}) == [True]
        assert t.eval([node], {"x": True, "y": True}) == [False]

    def test_eval_parallel(self):
        t = ExprTable()
        node = t.and_(t.var("x"), t.var("y"))
        (word,) = t.eval_parallel([node], {"x": 0b1100, "y": 0b1010}, 0b1111)
        assert word == 0b1000

    def test_to_bdd(self):
        t = ExprTable()
        node = t.or_(t.var("x"), t.not_(t.var("x")))
        mgr = BDD()
        (f,) = t.to_bdd([node], mgr, lambda key: str(key))
        assert f == mgr.ONE

    def test_shared_nodes_lower_once(self):
        t = ExprTable()
        shared = t.and_(t.var("a"), t.var("b"))
        r1 = t.or_(shared, t.var("c"))
        r2 = t.xor_(shared, t.var("d"))
        order = t.descendants([r1, r2])
        assert order.count(shared) == 1
