"""Verification-report rendering tests."""

from __future__ import annotations

import pytest

from repro.core.report import render_report, write_report
from repro.core.verify import check_sequential_equivalence
from repro.netlist.build import CircuitBuilder


def equivalent_pair():
    b1 = CircuitBuilder("golden")
    x, y = b1.inputs("x", "y")
    b1.output(b1.latch(b1.AND(x, y)), name="o")
    b2 = CircuitBuilder("revised")
    x, y = b2.inputs("x", "y")
    b2.output(b2.AND(b2.latch(x), b2.latch(y)), name="o")
    return b1.circuit, b2.circuit


def different_pair():
    b1 = CircuitBuilder("golden")
    x, y = b1.inputs("x", "y")
    b1.output(b1.latch(b1.AND(x, y)), name="o")
    b2 = CircuitBuilder("revised")
    x, y = b2.inputs("x", "y")
    b2.output(b2.latch(b2.OR(x, y)), name="o")
    return b1.circuit, b2.circuit


class TestReport:
    def test_equivalent_report(self):
        c1, c2 = equivalent_pair()
        result = check_sequential_equivalence(c1, c2)
        text = render_report(result, c1, c2)
        assert "EQUIVALENT" in text
        assert "`golden`" in text and "`revised`" in text
        assert "cbf" in text
        assert "Counterexample" not in text

    def test_failure_report_has_waveform_table(self):
        c1, c2 = different_pair()
        result = check_sequential_equivalence(c1, c2)
        text = render_report(result, c1, c2)
        assert "NOT EQUIVALENT" in text
        assert "| cycle |" in text
        assert "differ on output `o`" in text

    def test_feedback_preparation_section(self):
        from repro.bench.minmax import minmax_circuit

        c = minmax_circuit(3)
        result = check_sequential_equivalence(c, c.copy("copy"))
        text = render_report(result, c, c)
        assert "Feedback preparation" in text
        assert "latches exposed" in text

    def test_write_report(self, tmp_path):
        c1, c2 = equivalent_pair()
        result = check_sequential_equivalence(c1, c2)
        path = tmp_path / "report.md"
        text = write_report(result, c1, c2, path)
        assert path.read_text() == text

    def test_cli_report_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.netlist.blif import write_blif

        c1, c2 = equivalent_pair()
        p1 = tmp_path / "a.blif"
        p2 = tmp_path / "b.blif"
        p1.write_text(write_blif(c1))
        p2.write_text(write_blif(c2))
        report = tmp_path / "r.md"
        rc = main(["verify", str(p1), str(p2), "--report", str(report)])
        assert rc == 0
        assert "EQUIVALENT" in report.read_text()
