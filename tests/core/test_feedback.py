"""Feedback remodelling tests (paper Sec. 6, Lemmas 6.1/6.2, Figs. 12-14)."""

from __future__ import annotations

import random

import pytest

from repro.bdd.bdd import BDD
from repro.bench.counterex import fig14_conditional_update
from repro.core.feedback import (
    analyze_feedback_latch,
    next_state_bdd,
    remodel_feedback_latches,
    unate_decomposition,
)
from repro.netlist.build import CircuitBuilder
from repro.netlist.graph import feedback_latches
from repro.netlist.validate import validate_circuit
from repro.sim.exact3 import exact3_equivalent


def conditional_update_circuit():
    """q' = e·d + ē·q via an explicit MUX (Fig. 12/14 shape)."""
    b = CircuitBuilder("cond")
    d, e = b.inputs("d", "e")
    b.circuit.add_latch("q", "nxt")
    b.MUX(e, d, "q", name="nxt")
    b.output("q", name="o")
    return b.circuit


def toggle_circuit():
    b = CircuitBuilder("toggle")
    (i,) = b.inputs("i")
    b.circuit.add_latch("q", "nq")
    b.NOT("q", name="nq")
    b.output(b.AND("q", i), name="o")
    return b.circuit


class TestUnateDecomposition:
    def test_lemma_61_positive_unate(self):
        """F = e·d + ē·x decomposes; e is unique; d canonical here."""
        mgr = BDD(["e", "d", "x"])
        e, d, x = mgr.var("e"), mgr.var("d"), mgr.var("x")
        f = mgr.ite(e, d, x)
        result = unate_decomposition(mgr, f, "x")
        assert result is not None
        e_bdd, d_bdd, canonical = result
        assert canonical  # supports {e} and {d} are disjoint (Lemma 6.2)
        assert e_bdd == e
        assert d_bdd == d

    def test_not_unate_returns_none(self):
        mgr = BDD(["a", "x"])
        f = mgr.apply_xor(mgr.var("a"), mgr.var("x"))
        assert unate_decomposition(mgr, f, "x") is None

    def test_rebuild_identity_checked(self):
        """The decomposition always satisfies F = e·d + ē·x."""
        rng = random.Random(5)
        names = ["a", "b", "x"]
        for _ in range(30):
            mgr = BDD(names)
            # random positive-unate-in-x function: f = g + h·x
            def rand_fn(over):
                f = mgr.ZERO
                for _ in range(rng.randint(1, 3)):
                    t = mgr.ONE
                    for v in over:
                        r = rng.random()
                        if r < 0.33:
                            t = mgr.apply_and(t, mgr.var(v))
                        elif r < 0.66:
                            t = mgr.apply_and(t, mgr.nvar(v))
                    f = mgr.apply_or(f, t)
                return f

            g = rand_fn(["a", "b"])
            h = rand_fn(["a", "b"])
            f = mgr.apply_or(g, mgr.apply_and(h, mgr.var("x")))
            result = unate_decomposition(mgr, f, "x")
            assert result is not None  # g + h·x is positive unate in x
            e_bdd, d_bdd, _ = result
            rebuilt = mgr.apply_or(
                mgr.apply_and(e_bdd, d_bdd),
                mgr.apply_and(mgr.apply_not(e_bdd), mgr.var("x")),
            )
            assert rebuilt == f
            assert "x" not in mgr.support(e_bdd)
            assert "x" not in mgr.support(d_bdd)


class TestAnalysis:
    def test_conditional_update_is_unate(self):
        c = conditional_update_circuit()
        analysis = analyze_feedback_latch(c, "q")
        assert analysis.positive_unate
        assert analysis.canonical
        mgr = analysis.manager
        assert mgr.support(analysis.enable_bdd) == {"e"}
        assert mgr.support(analysis.data_bdd) == {"d"}

    def test_toggle_is_not_unate(self):
        analysis = analyze_feedback_latch(toggle_circuit(), "q")
        assert not analysis.positive_unate

    def test_no_self_dependence_is_trivially_fine(self, builder):
        (a,) = builder.inputs("a")
        q = builder.latch(builder.NOT(a), name="q")
        builder.output(q, name="o")
        analysis = analyze_feedback_latch(builder.circuit, "q")
        assert analysis.positive_unate

    def test_enabled_latch_effective_function(self, builder):
        """Load-enabled latches analyse e·d + ē·x uniformly."""
        d, e = builder.inputs("d", "e")
        builder.latch(d, enable=e, name="q")
        builder.output("q", name="o")
        mgr, f = next_state_bdd(builder.circuit, "q")
        assert mgr.support(f) == {"d", "e", "q"}
        assert mgr.is_positive_unate(f, "q")


class TestRemodel:
    def test_remodel_preserves_behaviour(self):
        c = conditional_update_circuit()
        new, remodelled, failed = remodel_feedback_latches(c)
        assert remodelled == ["q"] and not failed
        validate_circuit(new)
        assert not feedback_latches(new)
        assert new.latches["q"].enable is not None
        rng = random.Random(0)
        seqs = [
            [{"d": rng.random() < 0.5, "e": rng.random() < 0.5} for _ in range(6)]
            for _ in range(30)
        ]
        assert exact3_equivalent(c, new, seqs)

    def test_fig14_multi_bit(self):
        c = fig14_conditional_update(width=3)
        new, remodelled, failed = remodel_feedback_latches(c)
        assert len(remodelled) == 3 and not failed
        validate_circuit(new)
        assert not feedback_latches(new)
        rng = random.Random(1)
        names = list(c.inputs)
        seqs = [
            [{n: rng.random() < 0.5 for n in names} for _ in range(5)]
            for _ in range(20)
        ]
        assert exact3_equivalent(c, new, seqs)

    def test_toggle_reported_failed(self):
        c = toggle_circuit()
        new, remodelled, failed = remodel_feedback_latches(c)
        assert failed == ["q"] and not remodelled

    def test_partial_update_with_complex_condition(self):
        """q' = (a+b)·d + (a+b)'·q — non-trivial enable cone."""
        b = CircuitBuilder("c2")
        a, bb, d = b.inputs("a", "b", "d")
        cond = b.OR(a, bb)
        b.circuit.add_latch("q", "nxt")
        b.MUX(cond, d, "q", name="nxt")
        b.output("q", name="o")
        c = b.circuit
        new, remodelled, failed = remodel_feedback_latches(c)
        assert remodelled == ["q"]
        rng = random.Random(2)
        seqs = [
            [
                {n: rng.random() < 0.5 for n in ["a", "b", "d"]}
                for _ in range(6)
            ]
            for _ in range(25)
        ]
        assert exact3_equivalent(c, new, seqs)
