"""Sequential→combinational circuit generation tests (Sec. 7.4, Fig. 18)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.bench.pipeline import fig3_circuit
from repro.bench.random_circuits import random_acyclic_sequential
from repro.cec.engine import check_equivalence
from repro.core.cbf import compute_cbf
from repro.core.edbf import compute_edbf
from repro.core.eq2comb import cbf_to_circuit, edbf_to_circuit, timed_input_name
from repro.core.events import EventContext
from repro.core.timedvar import ExprTable
from repro.netlist.build import CircuitBuilder
from repro.netlist.validate import validate_circuit
from repro.sim.logic2 import simulate


def fig18_circuit():
    """Paper Fig. 18(a): two latches tapping a shared cone."""
    b = CircuitBuilder("fig18")
    a, bb = b.inputs("a", "b")
    g = b.AND(a, bb, name="g")
    q1 = b.latch(g, name="q1")
    q2 = b.latch(q1, name="q2")
    b.output(b.OR(q1, a), name="o1")
    b.output(b.AND(q2, bb), name="o2")
    return b.circuit


class TestCbfToCircuit:
    def test_fig18_replicates_cone(self):
        c = fig18_circuit()
        comb = cbf_to_circuit(compute_cbf(c))
        validate_circuit(comb)
        assert comb.is_combinational()
        # The AND cone is needed at delays 1 and 2: variables of both exist.
        assert "a@1" in comb.inputs and "a@2" in comb.inputs

    def test_combinational_value_matches_cbf(self):
        c = fig3_circuit()
        cbf = compute_cbf(c)
        comb = cbf_to_circuit(cbf)
        validate_circuit(comb)
        for bits in itertools.product([False, True], repeat=3):
            vec = {f"a@{d}": bits[d] for d in range(3)}
            out = simulate(comb, [vec]).outputs[0]
            expect = bits[0] and bits[1] and bits[2]
            assert out[next(iter(comb.outputs))] == expect

    @pytest.mark.parametrize("seed", range(5))
    def test_identical_circuits_produce_equivalent_comb(self, seed):
        c1 = random_acyclic_sequential(seed=seed, name="c1")
        c2 = random_acyclic_sequential(seed=seed, name="c2")
        table = ExprTable()
        cbf1 = compute_cbf(c1, table)
        cbf2 = compute_cbf(c2, table)
        union = sorted(cbf1.variables() | cbf2.variables(), key=repr)
        h = cbf_to_circuit(cbf1, name="H", extra_inputs=union)
        j = cbf_to_circuit(cbf2, name="J", extra_inputs=union)
        assert set(h.inputs) == set(j.inputs)
        assert check_equivalence(h, j).equivalent

    def test_constant_output(self, builder):
        (a,) = builder.inputs("a")
        one = builder.CONST1()
        builder.output(builder.latch(one), name="o")
        comb = cbf_to_circuit(compute_cbf(builder.circuit))
        validate_circuit(comb)
        out = simulate(comb, [{pi: False for pi in comb.inputs}]).outputs[0]
        assert list(out.values()) == [True]

    def test_extra_inputs_declared(self):
        c = fig3_circuit()
        cbf = compute_cbf(c)
        extra = [("t", "zz", 5)]
        comb = cbf_to_circuit(cbf, extra_inputs=extra)
        assert "zz@5" in comb.inputs


class TestEdbfToCircuit:
    def test_enabled_chain(self, builder):
        u, e1 = builder.inputs("u", "e1")
        builder.output(builder.latch(u, enable=e1), name="z")
        edbf = compute_edbf(builder.circuit)
        comb = edbf_to_circuit(edbf)
        validate_circuit(comb)
        assert comb.is_combinational()
        assert any("@E" in s for s in comb.inputs)

    def test_shared_context_miterable(self):
        def build(name):
            b = CircuitBuilder(name)
            u, v, e = b.inputs("u", "v", "e")
            q = b.latch(u, enable=e)
            r = b.latch(v, enable=e)
            b.output(b.AND(q, r), name="z")
            return b.circuit

        ctx = EventContext()
        e1 = compute_edbf(build("c1"), ctx)
        e2 = compute_edbf(build("c2"), ctx)
        union = sorted(e1.variables() | e2.variables(), key=repr)
        h = edbf_to_circuit(e1, name="H", extra_inputs=union)
        j = edbf_to_circuit(e2, name="J", extra_inputs=union)
        assert check_equivalence(h, j).equivalent

    def test_timed_input_name_format(self):
        assert timed_input_name(("t", "x", 3)) == "x@3"
        assert timed_input_name(("e", "x", 7)) == "x@E7"
