"""Event machinery tests (paper Sec. 4.2, Eq. 5)."""

from __future__ import annotations

import pytest

from repro.core.events import EMPTY_EVENT, EventContext
from repro.core.timedvar import CONST1, ExprTable


class TestEventInterning:
    def test_empty_event(self):
        ctx = EventContext()
        assert ctx.predicates(EMPTY_EVENT) == ()
        assert ctx.intern(()) == EMPTY_EVENT

    def test_interning_is_stable(self):
        ctx = EventContext()
        t = ctx.table
        p = t.var(("e", "a", EMPTY_EVENT))
        e1 = ctx.prepend(p, EMPTY_EVENT)
        e2 = ctx.prepend(p, EMPTY_EVENT)
        assert e1 == e2
        assert ctx.predicates(e1) == (p,)

    def test_nested_events(self):
        ctx = EventContext()
        t = ctx.table
        p = t.var(("e", "a", EMPTY_EVENT))
        q = t.var(("e", "b", EMPTY_EVENT))
        e1 = ctx.prepend(p, EMPTY_EVENT)
        e2 = ctx.prepend(q, e1)
        assert ctx.predicates(e2) == (q, p)

    def test_describe(self):
        ctx = EventContext()
        t = ctx.table
        p = t.var(("e", "a", EMPTY_EVENT))
        e = ctx.prepend(CONST1, ctx.prepend(p, EMPTY_EVENT))
        text = ctx.describe(e)
        assert "1" in text and "a" in text


class TestRewrite:
    def _ab_context(self, rewrite):
        ctx = EventContext(rewrite=rewrite)
        t = ctx.table
        a = t.var(("e", "a", EMPTY_EVENT))
        b = t.var(("e", "b", EMPTY_EVENT))
        ab = t.and_(a, b)
        return ctx, a, b, ab

    def test_eq5_drops_implied_head(self):
        """η[a, ab] = η[ab] because ab ⇒ a (Eq. 5)."""
        ctx, a, b, ab = self._ab_context(rewrite=True)
        tail = ctx.prepend(ab, EMPTY_EVENT)
        merged = ctx.prepend(a, tail)
        assert ctx.predicates(merged) == (ab,)

    def test_no_rewrite_without_flag(self):
        ctx, a, b, ab = self._ab_context(rewrite=False)
        tail = ctx.prepend(ab, EMPTY_EVENT)
        merged = ctx.prepend(a, tail)
        assert ctx.predicates(merged) == (a, ab)

    def test_unrelated_head_kept(self):
        """b does not imply a: no drop."""
        ctx, a, b, ab = self._ab_context(rewrite=True)
        tail = ctx.prepend(b, EMPTY_EVENT)
        merged = ctx.prepend(a, tail)
        assert ctx.predicates(merged) == (a, b)

    def test_const1_head_never_dropped(self):
        """Dropping a pure delay would change the timing."""
        ctx, a, b, ab = self._ab_context(rewrite=True)
        tail = ctx.prepend(ab, EMPTY_EVENT)
        merged = ctx.prepend(CONST1, tail)
        assert ctx.predicates(merged) == (CONST1, ab)

    def test_repeated_predicate_kept(self):
        """[p, p] is a genuine double event, not collapsible."""
        ctx, a, b, ab = self._ab_context(rewrite=True)
        tail = ctx.prepend(a, EMPTY_EVENT)
        merged = ctx.prepend(a, tail)
        assert ctx.predicates(merged) == (a, a)

    def test_cascaded_rewrite(self):
        """[a, ab, abc-tail] collapses the head repeatedly."""
        ctx = EventContext(rewrite=True)
        t = ctx.table
        a = t.var(("e", "a", EMPTY_EVENT))
        b = t.var(("e", "b", EMPTY_EVENT))
        c = t.var(("e", "c", EMPTY_EVENT))
        ab = t.and_(a, b)
        abc = t.and_(ab, c)
        e1 = ctx.prepend(abc, EMPTY_EVENT)
        e2 = ctx.prepend(ab, e1)  # ab implied by abc -> dropped
        assert ctx.predicates(e2) == (abc,)
        e3 = ctx.prepend(a, e2)  # a implied by abc -> dropped
        assert ctx.predicates(e3) == (abc,)


class TestPredicateCanonicalisation:
    def test_restructured_enables_merge(self):
        """a·b and b·a (different structure) share a representative."""
        ctx = EventContext()
        t = ctx.table
        a = t.var(("e", "a", EMPTY_EVENT))
        b = t.var(("e", "b", EMPTY_EVENT))
        ab1 = t.and_(a, b)
        ab2 = t.and_(b, a)
        assert ab1 != ab2  # structurally different nodes
        assert ctx.canonical_predicate(ab1) == ctx.canonical_predicate(ab2)

    def test_de_morgan_merge(self):
        ctx = EventContext()
        t = ctx.table
        a = t.var(("e", "a", EMPTY_EVENT))
        b = t.var(("e", "b", EMPTY_EVENT))
        f1 = t.not_(t.and_(a, b))
        f2 = t.or_(t.not_(a), t.not_(b))
        assert ctx.canonical_predicate(f1) == ctx.canonical_predicate(f2)

    def test_different_functions_stay_apart(self):
        ctx = EventContext()
        t = ctx.table
        a = t.var(("e", "a", EMPTY_EVENT))
        b = t.var(("e", "b", EMPTY_EVENT))
        assert ctx.canonical_predicate(t.and_(a, b)) != ctx.canonical_predicate(
            t.or_(a, b)
        )
