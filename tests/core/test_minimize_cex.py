"""Counterexample minimisation tests."""

from __future__ import annotations

import pytest

from repro.core.verify import (
    SeqVerdict,
    check_sequential_equivalence,
    minimize_counterexample,
)
from repro.netlist.build import CircuitBuilder


def and_vs_or_pair():
    b1 = CircuitBuilder("g")
    x, y = b1.inputs("x", "y")
    b1.output(b1.latch(b1.AND(x, y)), name="o")
    b2 = CircuitBuilder("i")
    x, y = b2.inputs("x", "y")
    b2.output(b2.latch(b2.OR(x, y)), name="o")
    return b1.circuit, b2.circuit


class TestMinimize:
    def test_leading_cycles_trimmed(self):
        c1, c2 = and_vs_or_pair()
        padded = [
            {"x": False, "y": False},
            {"x": False, "y": False},
            {"x": True, "y": False},  # distinguishing stimulus
            {"x": False, "y": False},  # observation cycle
        ]
        small = minimize_counterexample(c1, c2, padded)
        assert len(small) < len(padded)
        from repro.core.verify import _trace_distinguishes

        assert _trace_distinguishes(c1, c2, small)

    def test_bits_canonicalised(self):
        c1, c2 = and_vs_or_pair()
        noisy = [
            {"x": True, "y": False},
            {"x": True, "y": True},  # irrelevant late toggles
        ]
        small = minimize_counterexample(c1, c2, noisy)
        # The second cycle's values are irrelevant to the cycle-1 output.
        assert small[-1] == {"x": False, "y": False}

    def test_non_distinguishing_trace_unchanged(self):
        c1, c2 = and_vs_or_pair()
        boring = [{"x": False, "y": False}]
        assert minimize_counterexample(c1, c2, boring) == boring

    def test_checker_returns_minimized_trace(self):
        c1, c2 = and_vs_or_pair()
        result = check_sequential_equivalence(c1, c2)
        assert result.verdict is SeqVerdict.NOT_EQUIVALENT
        assert result.counterexample is not None
        # The AND/OR difference needs exactly two cycles: stimulate, observe.
        assert len(result.counterexample) == 2
        # and the distinguishing bit pattern is the canonical one-hot.
        assert result.counterexample[0] in (
            {"x": True, "y": False},
            {"x": False, "y": True},
        )
