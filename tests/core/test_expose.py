"""Exposure / MFVS tests (paper Sec. 7.1, Fig. 15)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.bench.iscas_like import iscas_like_circuit
from repro.bench.minmax import minmax_circuit
from repro.core.expose import (
    choose_latches_to_expose,
    minimum_feedback_vertex_set,
    prepare_circuit,
)
from repro.netlist.build import CircuitBuilder
from repro.netlist.graph import feedback_latches
from repro.netlist.validate import validate_circuit


class TestMFVS:
    def test_self_loops_always_chosen(self):
        g = nx.DiGraph()
        g.add_edge("a", "a")
        g.add_edge("a", "b")
        assert minimum_feedback_vertex_set(g) == {"a"}

    def test_simple_ring_breaks_with_one(self):
        g = nx.DiGraph()
        g.add_edges_from([("a", "b"), ("b", "c"), ("c", "a")])
        fvs = minimum_feedback_vertex_set(g)
        assert len(fvs) == 1

    def test_result_is_acyclic(self):
        g = nx.DiGraph()
        g.add_edges_from(
            [
                ("a", "b"), ("b", "a"),
                ("b", "c"), ("c", "d"), ("d", "b"),
                ("d", "e"), ("e", "e"),
            ]
        )
        fvs = minimum_feedback_vertex_set(g)
        h = g.copy()
        h.remove_nodes_from(fvs)
        assert nx.is_directed_acyclic_graph(h)

    def test_dag_needs_nothing(self):
        g = nx.DiGraph()
        g.add_edges_from([("a", "b"), ("b", "c"), ("a", "c")])
        assert minimum_feedback_vertex_set(g) == set()

    def test_two_disjoint_rings(self):
        g = nx.DiGraph()
        g.add_edges_from([("a", "b"), ("b", "a"), ("c", "d"), ("d", "c")])
        assert len(minimum_feedback_vertex_set(g)) == 2


class TestChoose:
    def test_unate_latches_remodelled_not_exposed(self):
        b = CircuitBuilder("t")
        d, e = b.inputs("d", "e")
        b.circuit.add_latch("q", "nxt")
        b.MUX(e, d, "q", name="nxt")
        b.output("q", name="o")
        exposed, remodel = choose_latches_to_expose(b.circuit, use_unateness=True)
        assert exposed == set()
        assert remodel == {"q"}

    def test_structural_only_exposes_unate_too(self):
        b = CircuitBuilder("t")
        d, e = b.inputs("d", "e")
        b.circuit.add_latch("q", "nxt")
        b.MUX(e, d, "q", name="nxt")
        b.output("q", name="o")
        exposed, remodel = choose_latches_to_expose(b.circuit, use_unateness=False)
        assert exposed == {"q"}

    def test_pinned_latches_break_cycles_for_free(self):
        b = CircuitBuilder("t")
        (i,) = b.inputs("i")
        b.circuit.add_latch("q0", "d0")
        b.circuit.add_latch("q1", "q0")
        b.XOR("q1", i, name="d0")
        b.output("q1", name="o")
        exposed, _ = choose_latches_to_expose(
            b.circuit, use_unateness=False, pinned=["q0"]
        )
        assert exposed == set()  # the pinned latch already cut the ring

    def test_minmax_exposes_two_thirds(self):
        c = minmax_circuit(6)
        exposed, _ = choose_latches_to_expose(c, use_unateness=False)
        assert len(exposed) == 12  # min + max registers; input reg free
        assert all(n.startswith(("min", "max")) for n in exposed)

    def test_generated_fraction_matches_request(self):
        c = iscas_like_circuit("t", n_latches=40, pct_exposed=50, seed=3)
        exposed, _ = choose_latches_to_expose(c, use_unateness=False)
        assert len(exposed) == 20


class TestPrepare:
    def test_prepare_yields_acyclic(self):
        c = minmax_circuit(4)
        prep = prepare_circuit(c, use_unateness=False)
        validate_circuit(prep.circuit)
        assert not feedback_latches(prep.circuit)
        assert prep.num_exposed == 8

    def test_forced_exposure_set(self):
        c = minmax_circuit(4)
        prep1 = prepare_circuit(c, use_unateness=False)
        prep2 = prepare_circuit(
            c.copy("again"), expose=sorted(prep1.exposed), use_unateness=False
        )
        assert set(prep2.exposed) == set(prep1.exposed)

    def test_prepare_acyclic_circuit_is_noop_shape(self, builder):
        (a,) = builder.inputs("a")
        builder.output(builder.latch(a), name="o")
        prep = prepare_circuit(builder.circuit)
        assert prep.num_exposed == 0
        assert not prep.remodelled

    def test_prepare_with_unateness_remodels(self):
        b = CircuitBuilder("t")
        d, e = b.inputs("d", "e")
        b.circuit.add_latch("q", "nxt")
        b.MUX(e, d, "q", name="nxt")
        b.output("q", name="o")
        prep = prepare_circuit(b.circuit, use_unateness=True)
        assert prep.remodelled == ["q"]
        assert prep.num_exposed == 0
        assert not feedback_latches(prep.circuit)
