"""EDBF tests (paper Sec. 4.2/5.2, Figs. 4-5 and 8, Theorem 5.2)."""

from __future__ import annotations

import random

import pytest

from repro.bench.pipeline import pipeline_circuit
from repro.bench.random_circuits import random_acyclic_sequential
from repro.core.edbf import compute_edbf, edbf_eval_on_trace
from repro.core.events import EMPTY_EVENT, EventContext
from repro.netlist.build import CircuitBuilder
from repro.sim.logic2 import simulate


def fig5_circuit():
    """Paper Fig. 5: z = u through L1(e1), L2(e2); v through L3(e3)."""
    b = CircuitBuilder("fig5")
    u, v, e1, e2, e3 = b.inputs("u", "v", "e1", "e2", "e3")
    w = b.latch(u, enable=e1, name="w")
    y = b.latch(w, enable=e2, name="y")
    x = b.latch(v, enable=e3, name="x")
    b.output(b.AND(y, x), name="z")
    return b.circuit


def fig4_circuit():
    """Paper Fig. 4: y = x sampled when e was last active."""
    b = CircuitBuilder("fig4")
    x, e = b.inputs("x", "e")
    b.output(b.latch(x, enable=e), name="y")
    return b.circuit


class TestFig4And5:
    def test_fig4_single_event(self):
        edbf = compute_edbf(fig4_circuit())
        variables = edbf.variables()
        assert len(variables) == 1
        ((tag, name, event),) = variables
        assert name == "x"
        preds = edbf.context.predicates(event)
        assert len(preds) == 1  # [e]

    def test_fig5_event_structure(self):
        """Eq. 1: z = u(η[e1, e2]) · v(η[e3])."""
        edbf = compute_edbf(fig5_circuit())
        by_input = {key[1]: key[2] for key in edbf.variables()}
        assert set(by_input) == {"u", "v"}
        ctx = edbf.context
        u_preds = ctx.predicates(by_input["u"])
        v_preds = ctx.predicates(by_input["v"])
        assert len(u_preds) == 2  # [e1, e2], inner enable first
        assert len(v_preds) == 1  # [e3]

    def test_fig5_oracle_matches_simulation(self):
        c = fig5_circuit()
        edbf = compute_edbf(c)
        rng = random.Random(3)
        for trial in range(25):
            length = 8
            trace = {
                name: [rng.random() < 0.5 for _ in range(length)]
                for name in c.inputs
            }
            seq = [
                {k: trace[k][t] for k in trace} for t in range(length)
            ]
            # Power-up all-zero; oracle returns None when the EDBF value is
            # power-up dependent, which we skip.
            tr = simulate(c, seq, {l: False for l in c.latches})
            vals = edbf_eval_on_trace(edbf, trace, at_time=length - 1)
            if vals["z"] is not None:
                assert vals["z"] == tr.outputs[length - 1]["z"], trial


class TestEDBFGeneral:
    @pytest.mark.parametrize("seed", range(6))
    def test_oracle_on_random_enabled_circuits(self, seed):
        c = random_acyclic_sequential(seed=seed, enabled=True, n_latches=3)
        edbf = compute_edbf(c)
        rng = random.Random(seed)
        hits = 0
        for _ in range(30):
            length = 7
            trace = {
                name: [rng.random() < 0.7 for _ in range(length)]
                for name in c.inputs
            }
            seq = [{k: trace[k][t] for k in trace} for t in range(length)]
            tr = simulate(c, seq, {l: False for l in c.latches})
            vals = edbf_eval_on_trace(edbf, trace, at_time=length - 1)
            for out in c.outputs:
                if vals[out] is not None:
                    hits += 1
                    assert vals[out] == tr.outputs[length - 1][out]
        assert hits > 0  # the oracle exercised real comparisons

    def test_regular_latches_become_delay_predicates(self, builder):
        (a,) = builder.inputs("a")
        builder.output(builder.latch(builder.latch(a)), name="o")
        edbf = compute_edbf(builder.circuit)
        ((_, name, event),) = edbf.variables()
        assert name == "a"
        from repro.core.timedvar import CONST1

        assert edbf.context.predicates(event) == (CONST1, CONST1)

    def test_mixed_regular_and_enabled(self, builder):
        a, e = builder.inputs("a", "e")
        q1 = builder.latch(a, enable=e)
        builder.output(builder.latch(q1), name="o")
        edbf = compute_edbf(builder.circuit)
        ((_, name, event),) = edbf.variables()
        preds = edbf.context.predicates(event)
        assert len(preds) == 2

    def test_rejects_feedback(self, builder):
        (i,) = builder.inputs("i")
        builder.circuit.add_latch("q", "nq")
        builder.NOT("q", name="nq")
        builder.output("q", name="o")
        with pytest.raises(ValueError, match="feedback"):
            compute_edbf(builder.circuit)

    def test_shared_context_gives_identical_nodes(self):
        c1 = fig5_circuit()
        c2 = fig5_circuit()
        c2.name = "copy"
        ctx = EventContext()
        e1 = compute_edbf(c1, ctx)
        e2 = compute_edbf(c2, ctx)
        assert e1.outputs == e2.outputs

    def test_enabled_pipeline(self):
        c = pipeline_circuit(stages=2, width=3, enable=True, seed=2)
        edbf = compute_edbf(c)
        assert edbf.events_used()
