"""Multi-clock normalisation tests (paper Sec. 5.2 extension, Legl [9])."""

from __future__ import annotations

import random

import pytest

from repro.core.multiclock import MultiClockSpec, normalize_multiclock
from repro.core.verify import check_sequential_equivalence
from repro.netlist.build import CircuitBuilder
from repro.netlist.validate import validate_circuit
from repro.sim.logic2 import simulate


def two_clock_circuit():
    """A fast-domain register feeding a slow-domain register."""
    b = CircuitBuilder("cdc")
    d, slow_tick = b.inputs("d", "slow_tick")
    fast = b.latch(b.NOT(d), name="fast_q")  # default (fast) clock
    slow = b.latch(fast, name="slow_q")  # slow clock via the spec
    b.output(slow, name="o")
    spec = MultiClockSpec(
        clock_of={"slow_q": "slow"},
        tick_input_of={"slow": "slow_tick"},
    )
    return b.circuit, spec


class TestSpec:
    def test_default_clock_assignment(self):
        circuit, spec = two_clock_circuit()
        assert spec.clock("fast_q") == "clk"
        assert spec.clock("slow_q") == "slow"

    def test_legl_classes(self):
        circuit, spec = two_clock_circuit()
        classes = spec.classes(circuit)
        assert ("clk", None) in classes
        assert ("slow", None) in classes


class TestNormalize:
    def test_produces_enabled_latch(self):
        circuit, spec = two_clock_circuit()
        normalized = normalize_multiclock(circuit, spec)
        validate_circuit(normalized)
        assert normalized.latches["slow_q"].enable == "slow_tick"
        assert normalized.latches["fast_q"].enable is None

    def test_slow_domain_semantics(self):
        """The slow register only samples when its clock ticks."""
        circuit, spec = two_clock_circuit()
        normalized = normalize_multiclock(circuit, spec)
        seq = [
            {"d": False, "slow_tick": True},   # slow samples fast_q
            {"d": True, "slow_tick": False},   # slow holds
            {"d": True, "slow_tick": False},   # still holds
            {"d": False, "slow_tick": True},   # samples again
            {"d": False, "slow_tick": False},
        ]
        tr = simulate(normalized, seq, {"fast_q": True, "slow_q": False})
        values = [t["o"] for t in tr.outputs]
        # o(t) = slow_q state entering cycle t.
        assert values[0] is False         # power-up choice
        assert values[1] is True          # sampled fast_q=1 at tick
        assert values[2] is True          # held
        assert values[3] is True          # held
        # At cycle 3 tick fired again sampling fast_q(3)=NOT d(2) latched...
        assert values[4] == tr.states[4]["slow_q"]

    def test_shared_class_shares_conjunction(self):
        b = CircuitBuilder("share")
        d1, d2, en, tick = b.inputs("d1", "d2", "en", "tick")
        b.latch(d1, enable=en, name="q1")
        b.latch(d2, enable=en, name="q2")
        b.output("q1", name="o1")
        b.output("q2", name="o2")
        spec = MultiClockSpec(
            clock_of={"q1": "aux", "q2": "aux"},
            tick_input_of={"aux": "tick"},
        )
        normalized = normalize_multiclock(b.circuit, spec)
        assert (
            normalized.latches["q1"].enable
            == normalized.latches["q2"].enable
        )

    def test_missing_tick_raises(self):
        circuit, spec = two_clock_circuit()
        bad = MultiClockSpec(clock_of={"slow_q": "slow"})
        with pytest.raises(KeyError):
            normalize_multiclock(circuit, bad)

    def test_derived_tick_rejected(self):
        b = CircuitBuilder("bad")
        d, raw = b.inputs("d", "raw")
        gated = b.NOT(raw)
        b.latch(d, name="q")
        b.output("q", name="o")
        spec = MultiClockSpec(
            clock_of={"q": "slow"}, tick_input_of={"slow": gated}
        )
        with pytest.raises(ValueError):
            normalize_multiclock(b.circuit, spec)


class TestVerification:
    def test_multiclock_pair_verified_via_edbf(self):
        """Resynthesised multi-clock circuits verify after normalisation."""
        from repro.synth.script import optimize_sequential_delay

        circuit, spec = two_clock_circuit()
        normalized = normalize_multiclock(circuit, spec)
        optimised = optimize_sequential_delay(normalized)
        result = check_sequential_equivalence(normalized, optimised)
        assert result.equivalent
        assert result.method == "edbf"

    def test_multiclock_bug_not_blessed(self):
        """Dropping the slow clock's gating must be flagged."""
        circuit, spec = two_clock_circuit()
        normalized = normalize_multiclock(circuit, spec)
        # The bug: the slow latch samples every base cycle.
        from repro.netlist.circuit import Latch

        buggy = normalized.copy("buggy")
        buggy.replace_latch(Latch("slow_q", "fast_q", None))
        result = check_sequential_equivalence(normalized, buggy)
        assert not result.equivalent
