"""CBF tests (paper Sec. 4.1/5.1, Figs. 3 and 7, Theorem 5.1, Lemma 5.1)."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.pipeline import fig3_circuit, pipeline_circuit
from repro.bench.random_circuits import random_acyclic_sequential
from repro.core.cbf import compute_cbf, sequential_depth, timed_var, topological_latch_depth
from repro.core.timedvar import ExprTable
from repro.netlist.build import CircuitBuilder
from repro.sim.logic2 import simulate


def cbf_matches_simulation(circuit, seed=0, trials=20):
    """Oracle: CBF value at the flush cycle equals simulation there.

    The observation cycle is the *topological* latch depth: by then every
    latch has been flushed (constant-fed latches too — they need the full
    structural depth even though the CBF folds them away), so the simulated
    output no longer depends on power-up.
    """
    cbf = compute_cbf(circuit)
    at = max(cbf.depth(), topological_latch_depth(circuit))
    rng = random.Random(seed)
    for _ in range(trials):
        seq = [
            {i: rng.random() < 0.5 for i in circuit.inputs}
            for _ in range(at + 1)
        ]
        tr = simulate(circuit, seq, {l: False for l in circuit.latches})
        assignment = {}
        for (tag, name, d) in cbf.variables():
            cycle = at - d
            assignment[(tag, name, d)] = seq[cycle][name] if cycle >= 0 else False
        values = cbf.table.eval(list(cbf.outputs.values()), assignment)
        for out, val in zip(cbf.outputs, values):
            assert val == tr.outputs[at][out], (out, seq)
    return True


class TestFig3:
    def test_depth_is_two(self):
        cbf = compute_cbf(fig3_circuit())
        assert cbf.depth() == 2
        assert sequential_depth(cbf) == 2

    def test_formula_matches_paper(self):
        """o(t) = a(t-1)a(t) · a(t-2)a(t-1) = a(t)a(t-1)a(t-2)."""
        cbf = compute_cbf(fig3_circuit())
        table = cbf.table
        node = cbf.outputs["o"]
        for bits in itertools.product([False, True], repeat=3):
            asg = {timed_var("a", d): bits[d] for d in range(3)}
            expect = bits[0] and bits[1] and bits[2]
            assert table.eval([node], asg)[0] == expect

    def test_matches_simulation(self):
        assert cbf_matches_simulation(fig3_circuit())


class TestCBFGeneral:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_acyclic_matches_simulation(self, seed):
        c = random_acyclic_sequential(seed=seed)
        assert cbf_matches_simulation(c, seed=seed)

    @pytest.mark.parametrize("stages", [1, 2, 4])
    def test_pipeline_depth(self, stages):
        c = pipeline_circuit(stages=stages, width=3, seed=1)
        cbf = compute_cbf(c)
        assert cbf.depth() <= stages
        assert cbf.depth() >= 1

    def test_rejects_enabled_latches(self, builder):
        d, e = builder.inputs("d", "e")
        builder.output(builder.latch(d, enable=e), name="o")
        with pytest.raises(ValueError, match="load-enabled"):
            compute_cbf(builder.circuit)

    def test_rejects_feedback(self, builder):
        (i,) = builder.inputs("i")
        builder.circuit.add_latch("q", "nq")
        builder.NOT("q", name="nq")
        builder.output("q", name="o")
        with pytest.raises(ValueError, match="feedback"):
            compute_cbf(builder.circuit)

    def test_shared_table_gives_shared_variables(self):
        c1 = random_acyclic_sequential(seed=1, name="c1")
        c2 = random_acyclic_sequential(seed=1, name="c2")
        table = ExprTable()
        cbf1 = compute_cbf(c1, table)
        cbf2 = compute_cbf(c2, table)
        # identical circuits -> identical expression nodes
        for out in cbf1.outputs:
            assert cbf1.outputs[out] == cbf2.outputs[out]

    def test_false_dependency_pruned_by_semantic_depth(self, builder):
        """x XOR x through a latch: the delayed value cancels out."""
        (a,) = builder.inputs("a")
        q = builder.latch(a)
        dead = builder.XOR(q, q)
        builder.output(builder.OR(dead, a), name="o")
        cbf = compute_cbf(builder.circuit)
        assert cbf.depth() == 1  # syntactic
        assert sequential_depth(cbf) == 0  # semantic: a(t-1) cancels

    def test_topological_latch_depth(self, builder):
        (a,) = builder.inputs("a")
        q1 = builder.latch(a)
        q2 = builder.latch(q1)
        builder.output(builder.AND(q2, a), name="o")
        assert topological_latch_depth(builder.circuit) == 2


class TestLemma51:
    """Equivalent circuits have equal sequential depth."""

    def test_retimed_pair_same_depth(self):
        b1 = CircuitBuilder("r1")
        x, y = b1.inputs("x", "y")
        b1.output(b1.latch(b1.AND(x, y)), name="o")
        b2 = CircuitBuilder("r2")
        x, y = b2.inputs("x", "y")
        b2.output(b2.AND(b2.latch(x), b2.latch(y)), name="o")
        d1 = sequential_depth(compute_cbf(b1.circuit))
        d2 = sequential_depth(compute_cbf(b2.circuit))
        assert d1 == d2 == 1
