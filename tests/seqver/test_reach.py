"""Baseline symbolic reachability tests."""

from __future__ import annotations

import pytest

from repro.netlist.build import CircuitBuilder
from repro.seqver.product import product_machine
from repro.seqver.reach import check_reset_equivalence, reachable_states


def counter2():
    """A 2-bit counter with an enable input."""
    b = CircuitBuilder("cnt2")
    (en,) = b.inputs("en")
    b.circuit.add_latch("q0", "d0")
    b.circuit.add_latch("q1", "d1")
    b.XOR("q0", en, name="d0")
    carry = b.AND("q0", en)
    b.XOR("q1", carry, name="d1")
    b.output("q1", name="o")
    return b.circuit


class TestReach:
    def test_counter_reaches_all_states(self):
        c = counter2()
        mgr, reached, iters = reachable_states(c)
        assert mgr.sat_count(reached) >> (len(mgr.var_names) - 2) == 4
        assert iters >= 3

    def test_stuck_circuit_reaches_one_state(self, builder):
        (a,) = builder.inputs("a")
        zero = builder.CONST0()
        builder.circuit.add_latch("q", zero)
        builder.output("q", name="o")
        mgr, reached, _ = reachable_states(builder.circuit)
        count = mgr.sat_count(reached) >> (len(mgr.var_names) - 1)
        assert count <= 2  # initial + fixpoint

    def test_node_limit_raises(self):
        c = counter2()
        with pytest.raises(MemoryError):
            reachable_states(c, node_limit=5)


class TestResetEquivalence:
    def test_identical_machines(self):
        c1 = counter2()
        c2 = counter2()
        c2.name = "copy"
        result = check_reset_equivalence(c1, c2)
        assert result.equivalent
        assert result.reachable_count is not None

    def test_different_machines_detected(self):
        c1 = counter2()
        b = CircuitBuilder("other")
        (en,) = b.inputs("en")
        b.circuit.add_latch("q", "d")
        b.XOR("q", en, name="d")
        b.output("q", name="o")  # 1-bit counter, diverges from 2-bit
        result = check_reset_equivalence(c1, b.circuit)
        assert not result.equivalent

    def test_retimed_pair_from_reset(self):
        b1 = CircuitBuilder("r1")
        x, y = b1.inputs("x", "y")
        b1.output(b1.latch(b1.AND(x, y)), name="o")
        b2 = CircuitBuilder("r2")
        x, y = b2.inputs("x", "y")
        b2.output(b2.AND(b2.latch(x), b2.latch(y)), name="o")
        # All-zero resets happen to correspond for this pair.
        result = check_reset_equivalence(b1.circuit, b2.circuit)
        assert result.equivalent

    def test_product_machine_structure(self):
        c1 = counter2()
        c2 = counter2()
        c2.name = "c2"
        pm = product_machine(c1, c2)
        assert pm.num_latches() == 4
        assert pm.outputs == ["__neq"]
