"""Cross-cutting property-based tests (hypothesis) over the full stack.

These are the invariants DESIGN.md commits to:

* synthesis passes preserve every output function (via CEC);
* retiming preserves sequential equivalence (via the CBF reduction);
* CBF equality agrees with exhaustive simulation on random acyclic
  circuits (Theorem 5.1 in both directions);
* the exposure heuristic always yields an acyclic circuit;
* BLIF round-trips preserve behaviour.
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.random_circuits import random_acyclic_sequential, random_combinational
from repro.cec.engine import check_equivalence
from repro.core.cbf import compute_cbf, topological_latch_depth
from repro.core.expose import prepare_circuit
from repro.core.timedvar import ExprTable
from repro.core.verify import check_sequential_equivalence
from repro.netlist.blif import parse_blif, write_blif
from repro.netlist.graph import feedback_latches
from repro.netlist.validate import validate_circuit
from repro.retime.apply import retime_min_period
from repro.sim.logic2 import simulate
from repro.synth.script import optimize_sequential_delay, script_delay

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=st.integers(min_value=0, max_value=10_000))
@SETTINGS
def test_script_preserves_combinational_function(seed):
    circuit = random_combinational(n_inputs=6, n_gates=25, seed=seed)
    original = circuit.copy("orig")
    script_delay(circuit)
    validate_circuit(circuit)
    assert check_equivalence(original, circuit).equivalent


@given(seed=st.integers(min_value=0, max_value=10_000))
@SETTINGS
def test_retiming_preserves_equivalence(seed):
    circuit = random_acyclic_sequential(
        n_inputs=4, n_gates=12, n_latches=4, seed=seed
    )
    retimed, old, new = retime_min_period(circuit)
    validate_circuit(retimed)
    assert new <= old
    assert check_sequential_equivalence(circuit, retimed).equivalent


@given(seed=st.integers(min_value=0, max_value=10_000))
@SETTINGS
def test_synthesis_preserves_sequential_equivalence(seed):
    circuit = random_acyclic_sequential(seed=seed, enabled=(seed % 3 == 0))
    optimised = optimize_sequential_delay(circuit)
    validate_circuit(optimised)
    assert check_sequential_equivalence(circuit, optimised).equivalent


@given(seed=st.integers(min_value=0, max_value=10_000))
@SETTINGS
def test_cbf_matches_exhaustive_simulation(seed):
    """Theorem 5.1, soundness direction, on tiny exhaustively-checked circuits."""
    circuit = random_acyclic_sequential(
        n_inputs=2, n_gates=6, n_latches=2, n_outputs=1, seed=seed
    )
    cbf = compute_cbf(circuit)
    at = max(cbf.depth(), topological_latch_depth(circuit))
    # All input sequences of length at+1.
    names = list(circuit.inputs)
    vectors = [
        dict(zip(names, bits))
        for bits in itertools.product([False, True], repeat=len(names))
    ]
    rng = random.Random(seed)
    sequences = [
        [rng.choice(vectors) for _ in range(at + 1)] for _ in range(8)
    ]
    for seq in sequences:
        tr = simulate(circuit, seq, {l: False for l in circuit.latches})
        assignment = {}
        for key in cbf.variables():
            _, name, d = key
            cycle = at - d
            assignment[key] = seq[cycle][name] if cycle >= 0 else False
        values = cbf.table.eval(list(cbf.outputs.values()), assignment)
        for out, val in zip(cbf.outputs, values):
            assert val == tr.outputs[at][out]


@given(seed=st.integers(min_value=0, max_value=10_000))
@SETTINGS
def test_blif_roundtrip_behaviour(seed):
    circuit = random_acyclic_sequential(seed=seed, enabled=(seed % 2 == 0))
    back = parse_blif(write_blif(circuit))
    validate_circuit(back)
    rng = random.Random(seed)
    vecs = [
        {i: rng.random() < 0.5 for i in circuit.inputs} for _ in range(6)
    ]
    init = {l: False for l in circuit.latches}
    assert (
        simulate(circuit, vecs, init).outputs
        == simulate(back, vecs, init).outputs
    )


@given(
    n_latches=st.integers(min_value=4, max_value=24),
    pct=st.integers(min_value=0, max_value=90),
    seed=st.integers(min_value=1, max_value=1000),
)
@SETTINGS
def test_prepare_always_acyclic(n_latches, pct, seed):
    from repro.bench.iscas_like import iscas_like_circuit

    circuit = iscas_like_circuit(
        "prop", n_latches=n_latches, pct_exposed=pct, seed=seed
    )
    prepared = prepare_circuit(circuit, use_unateness=False)
    validate_circuit(prepared.circuit)
    assert not feedback_latches(prepared.circuit)


@given(seed=st.integers(min_value=0, max_value=10_000))
@SETTINGS
def test_full_loop_retime_synth_verify(seed):
    """The headline loop: synth → retime → synth, verified end to end."""
    circuit = random_acyclic_sequential(
        n_inputs=4, n_gates=14, n_latches=4, seed=seed
    )
    step1 = optimize_sequential_delay(circuit)
    step2, _, _ = retime_min_period(step1)
    step3 = optimize_sequential_delay(step2)
    result = check_sequential_equivalence(circuit, step3)
    assert result.equivalent, result.stats
