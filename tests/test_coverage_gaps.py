"""Targeted tests for less-travelled code paths across the stack."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.bdd.bdd import BDD
from repro.netlist.build import CircuitBuilder
from repro.netlist.cube import Sop


class TestBddComposeMany:
    def test_simultaneous_substitution_of_leaf_cones(self):
        """compose_many substitutes latch variables with PI cones (the
        CBF-style use: substituted functions mention only deeper leaves)."""
        mgr = BDD(["q1", "q2", "a", "b"])
        f = mgr.apply_xor(mgr.var("q1"), mgr.var("q2"))
        substitution = {
            "q1": mgr.apply_and(mgr.var("a"), mgr.var("b")),
            "q2": mgr.apply_or(mgr.var("a"), mgr.var("b")),
        }
        g = mgr.compose_many(f, substitution)
        for va, vb in itertools.product([False, True], repeat=2):
            env = {"a": va, "b": vb, "q1": False, "q2": False}
            expect = (va and vb) != (va or vb)
            assert mgr.eval(g, env) == expect

    def test_deep_cofactor_chain(self):
        names = [f"x{i}" for i in range(40)]
        mgr = BDD(names)
        f = mgr.and_all(mgr.var(n) for n in names)
        g = mgr.restrict(f, {n: True for n in names[:39]})
        assert g == mgr.var("x39")


class TestEventImplicationGiveUp:
    def test_wide_support_predicates_not_merged(self):
        """Implication checks give up (conservatively) past 24 variables."""
        from repro.core.events import EventContext

        ctx = EventContext(rewrite=True)
        t = ctx.table
        wide_and = t.var(("e", "v0", 0))
        for i in range(1, 30):
            wide_and = t.and_(wide_and, t.var(("e", f"v{i}", 0)))
        head = t.var(("e", "v0", 0))
        tail = ctx.prepend(wide_and, 0)
        merged = ctx.prepend(head, tail)
        # wide_and implies head, but the support guard keeps both.
        assert len(ctx.predicates(merged)) == 2


class TestVerifyUnknownPath:
    def test_cec_unknown_propagates(self):
        """A conflict-limited CEC returns UNKNOWN, not a wrong verdict."""
        from repro.cec.engine import CecVerdict, check_miter_unsat
        from repro.netlist.transform import miter

        b1 = CircuitBuilder("h1")
        xs = b1.inputs(*[f"x{i}" for i in range(14)])
        acc = xs[0]
        for x in xs[1:]:
            acc = b1.XOR(acc, x)
        b1.output(acc, name="o")
        b2 = CircuitBuilder("h2")
        xs = b2.inputs(*[f"x{i}" for i in range(14)])
        acc = xs[-1]
        for x in reversed(xs[:-1]):
            acc = b2.XOR(x, acc)
        b2.output(acc, name="o")
        m = miter(b1.circuit, b2.circuit)
        result = check_miter_unsat(m, conflict_limit=1)
        assert result.verdict in (CecVerdict.UNKNOWN, CecVerdict.EQUIVALENT)


class TestFxUnits:
    def test_double_cube_divisor_extracted(self):
        """F1 = ac + bc, F2 = ad + bd share the divisor (a + b)."""
        from repro.synth.fx import fast_extract
        from repro.cec.engine import check_equivalence

        b = CircuitBuilder("fx")
        a, bb, c, d = b.inputs("a", "b", "c", "d")
        f1 = b.gate(Sop(3, ("1-1", "-11")), [a, bb, c], name="f1")
        f2 = b.gate(Sop(3, ("1-1", "-11")), [a, bb, d], name="f2")
        b.output(f1)
        b.output(f2)
        original = b.circuit.copy("orig")
        fast_extract(b.circuit)
        assert check_equivalence(original, b.circuit).equivalent
        new_nodes = [g for g in b.circuit.gates if g.startswith("__fx")]
        assert new_nodes, "the shared divisor should have been extracted"

    def test_no_extraction_when_nothing_shared(self):
        from repro.synth.fx import fast_extract

        b = CircuitBuilder("fx2")
        a, bb = b.inputs("a", "b")
        b.output(b.AND(a, bb), name="o")
        before = b.circuit.num_gates()
        fast_extract(b.circuit)
        assert b.circuit.num_gates() == before


class TestMinAreaConstraintGeneration:
    def test_period_constraint_forces_latch_onto_long_path(self):
        """Min-area at a tight period must keep a latch inside the deep
        cone rather than hoisting everything to the boundary."""
        from repro.retime.apply import retime_min_area
        from repro.retime.minperiod import clock_period
        from repro.retime.rgraph import build_retiming_graph
        from repro.core.verify import check_sequential_equivalence

        b = CircuitBuilder("deep")
        (x,) = b.inputs("x")
        q = b.latch(x)
        s = q
        for _ in range(6):
            s = b.NOT(s)
        b.output(b.latch(s), name="o")
        circuit = b.circuit
        retimed, period = retime_min_area(circuit, period=3)
        assert retimed is not None
        assert clock_period(build_retiming_graph(retimed)) <= 3
        assert retimed.num_latches() >= 2
        assert check_sequential_equivalence(circuit, retimed).equivalent


class TestSopEdges:
    def test_implies_and_equivalent(self):
        ab = Sop(2, ("11",))
        a = Sop(2, ("1-",))
        assert ab.implies(a)
        assert not a.implies(ab)
        assert a.equivalent(Sop(2, ("1-", "11")))

    def test_from_truth_table_bounds(self):
        assert Sop.from_truth_table(0, 1).eval_bool([])
        assert not Sop.from_truth_table(0, 0).eval_bool([])

    def test_truth_table_guard(self):
        with pytest.raises(ValueError):
            Sop.and_all(21).truth_table()

    def test_eval_parallel_wide_words(self):
        s = Sop(2, ("10", "01"))
        mask = (1 << 130) - 1
        x = random.Random(0).getrandbits(130)
        y = random.Random(1).getrandbits(130)
        out = s.eval_parallel([x, y], mask)
        assert out == (x ^ y) & mask


class TestReportEdgeCases:
    def test_render_unknown_verdict(self):
        from repro.core.report import render_report
        from repro.core.verify import SeqCheckResult, SeqVerdict

        b = CircuitBuilder("t")
        (a,) = b.inputs("a")
        b.output(a, name="o")
        result = SeqCheckResult(SeqVerdict.UNKNOWN, "cbf")
        text = render_report(result, b.circuit, b.circuit)
        assert "UNKNOWN" in text
