"""W/D-matrix exact retiming tests (cross-check against FEAS)."""

from __future__ import annotations

import pytest

from repro.bench.pipeline import pipeline_circuit, trapped_latch_circuit
from repro.core.verify import check_sequential_equivalence
from repro.netlist.build import CircuitBuilder
from repro.retime.apply import apply_retiming
from repro.retime.minperiod import clock_period, min_period_retiming
from repro.retime.rgraph import HOST, build_retiming_graph
from repro.retime.wdmatrix import bellman_ford_feasible, exact_min_period, wd_matrices


class TestWDMatrices:
    def test_simple_chain(self):
        b = CircuitBuilder("chain")
        (a,) = b.inputs("a")
        g1 = b.NOT(a)
        q = b.latch(g1)
        g2 = b.NOT(q)
        b.output(g2, name="o")
        g = build_retiming_graph(b.circuit)
        w, d = wd_matrices(g)
        assert w[(g1, g2)] == 1  # one latch between them
        assert d[(g1, g2)] == 2  # both unit delays

    def test_w_zero_on_combinational_path(self):
        b = CircuitBuilder("comb")
        a, c = b.inputs("a", "c")
        g1 = b.AND(a, c)
        g2 = b.NOT(g1)
        b.output(g2, name="o")
        g = build_retiming_graph(b.circuit)
        w, d = wd_matrices(g)
        assert w[(g1, g2)] == 0
        assert d[(g1, g2)] == 2

    def test_no_paths_through_host(self):
        """A PI→PO comb circuit must not produce gate→gate paths via HOST."""
        b = CircuitBuilder("two")
        a, c = b.inputs("a", "c")
        g1 = b.NOT(a)
        g2 = b.NOT(c)
        b.output(g1, name="o1")
        b.output(g2, name="o2")
        g = build_retiming_graph(b.circuit)
        w, _ = wd_matrices(g)
        assert (g1, g2) not in w
        assert (g2, g1) not in w


class TestBellmanFord:
    def test_feasible_system(self):
        sol = bellman_ford_feasible(
            ["a", "b"], [("a", "b", 2), ("b", "a", 1)]
        )
        assert sol is not None
        assert sol["a"] - sol["b"] <= 2
        assert sol["b"] - sol["a"] <= 1

    def test_infeasible_system(self):
        assert (
            bellman_ford_feasible(
                ["a", "b"], [("a", "b", -1), ("b", "a", -1)]
            )
            is None
        )


class TestExactMinPeriod:
    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_feas(self, seed):
        c = pipeline_circuit(stages=2 + seed % 2, width=3, seed=seed)
        g = build_retiming_graph(c)
        p_feas, _ = min_period_retiming(g)
        p_exact, r = exact_min_period(g)
        assert p_feas == p_exact
        assert clock_period(g, r) <= p_exact
        assert r[HOST] == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_retiming_vector_is_applicable(self, seed):
        c = trapped_latch_circuit(width=3, seed=seed)
        g = build_retiming_graph(c)
        period, r = exact_min_period(g)
        retimed = apply_retiming(c, g, r)
        assert clock_period(build_retiming_graph(retimed)) <= period
        assert check_sequential_equivalence(c, retimed).equivalent

    def test_cyclic_circuit(self):
        """Feedback latches are fine for retiming (only CBF needs acyclicity)."""
        b = CircuitBuilder("cyc")
        (i,) = b.inputs("i")
        b.circuit.add_latch("q", "d")
        x = b.XOR("q", i)
        y = b.NOT(x)
        b.BUF(y, name="d")
        b.output("q", name="o")
        g = build_retiming_graph(b.circuit)
        p_feas, _ = min_period_retiming(g)
        p_exact, _ = exact_min_period(g)
        assert p_feas == p_exact
