"""Class-aware retiming tests (Legl et al. [9], paper Fig. 16)."""

from __future__ import annotations

import random

import pytest

from repro.bench.pipeline import pipeline_circuit
from repro.core.verify import check_sequential_equivalence
from repro.netlist.build import CircuitBuilder
from repro.netlist.validate import validate_circuit
from repro.retime.classes import build_multiclass_graph
from repro.retime.incremental import incremental_retime_enabled, rebuild_multiclass
from repro.sim.exact3 import exact3_equivalent


def two_enable_circuit():
    """Latches of two classes around one gate — the Fig. 16 situation."""
    b = CircuitBuilder("two_en")
    a, c, e1, e2 = b.inputs("a", "c", "e1", "e2")
    qa = b.latch(a, enable=e1)
    qc = b.latch(c, enable=e2)
    b.output(b.AND(qa, qc), name="o")
    return b.circuit


def same_enable_circuit():
    b = CircuitBuilder("same_en")
    a, c, e = b.inputs("a", "c", "e")
    qa = b.latch(a, enable=e)
    qc = b.latch(c, enable=e)
    g = b.AND(qa, qc)
    b.output(b.XOR(g, qa), name="o")
    return b.circuit


class TestMoves:
    def test_forward_move_requires_same_class(self):
        mg = build_multiclass_graph(two_enable_circuit())
        # The AND gate's two fanin latches have different enables.
        and_gate = next(
            v for v in mg.graph.vertices if v.startswith("n")
        )
        assert mg.can_move_forward(and_gate) is None

    def test_forward_move_allowed_same_class(self):
        mg = build_multiclass_graph(same_enable_circuit())
        movable = [
            v
            for v in mg.graph.vertices
            if v != "__host__" and mg.can_move_forward(v) is not None
        ]
        assert movable  # the AND over two same-class latches can absorb them

    def test_move_and_undo_roundtrip(self):
        mg = build_multiclass_graph(same_enable_circuit())
        v = next(
            v
            for v in mg.graph.vertices
            if v != "__host__" and mg.can_move_forward(v) is not None
        )
        snapshot = {k: list(vv) for k, vv in mg.edge_classes.items()}
        mg.move_forward(v)
        mg.move_backward(v)
        assert mg.edge_classes == snapshot

    def test_illegal_move_raises(self):
        mg = build_multiclass_graph(two_enable_circuit())
        and_gate = next(v for v in mg.graph.vertices if v.startswith("n"))
        with pytest.raises(ValueError):
            mg.move_forward(and_gate)

    def test_latch_count_preserved_by_moves(self):
        mg = build_multiclass_graph(same_enable_circuit())
        v = next(
            v
            for v in mg.graph.vertices
            if v != "__host__" and mg.can_move_forward(v) is not None
        )
        # Count per-edge; a forward move across a 2-input 1-output gate can
        # reduce the edge-count (that is the point of retiming), but the
        # rebuilt circuit must stay equivalent — checked elsewhere.
        mg.move_forward(v)
        assert mg.period() is not None


class TestIncrementalRetimer:
    @pytest.mark.parametrize("seed", range(4))
    def test_preserves_behaviour(self, seed):
        c = pipeline_circuit(stages=2, width=3, seed=seed, enable=True)
        retimed, old, new = incremental_retime_enabled(c)
        validate_circuit(retimed)
        assert new <= old
        rng = random.Random(seed)
        seqs = [
            [{i: rng.random() < 0.5 for i in c.inputs} for _ in range(6)]
            for _ in range(40)
        ]
        # Retiming preserves the "unknown past" semantics (the paper's CBF
        # semantics); warmup realises it — see exact3_outputs docstring.
        assert exact3_equivalent(c, retimed, seqs, warmup=8)

    @pytest.mark.parametrize("seed", range(3))
    def test_verifiable_by_edbf(self, seed):
        c = pipeline_circuit(stages=2, width=2, seed=seed, enable=True)
        retimed, _, _ = incremental_retime_enabled(c)
        r = check_sequential_equivalence(c, retimed)
        assert r.equivalent

    def test_rebuild_identity(self):
        """Rebuilding without any moves reproduces an equivalent circuit."""
        c = same_enable_circuit()
        mg = build_multiclass_graph(c)
        rebuilt = rebuild_multiclass(c, mg)
        validate_circuit(rebuilt)
        rng = random.Random(7)
        seqs = [
            [{i: rng.random() < 0.5 for i in c.inputs} for _ in range(6)]
            for _ in range(40)
        ]
        assert exact3_equivalent(c, rebuilt, seqs)

    def test_regular_circuit_also_works(self):
        c = pipeline_circuit(stages=2, width=3, seed=5)
        retimed, old, new = incremental_retime_enabled(c)
        validate_circuit(retimed)
        assert new <= old
        assert check_sequential_equivalence(c, retimed).equivalent
