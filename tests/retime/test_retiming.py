"""Retiming tests: graph construction, min-period, min-area, rebuild."""

from __future__ import annotations

import random

import pytest

from repro.bench.pipeline import pipeline_circuit
from repro.core.verify import check_sequential_equivalence
from repro.netlist.build import CircuitBuilder
from repro.netlist.validate import validate_circuit
from repro.retime.apply import apply_retiming, retime_min_area, retime_min_period
from repro.retime.minarea import min_area_retiming
from repro.retime.minperiod import clock_period, feasible_retiming, min_period_retiming
from repro.retime.rgraph import HOST, build_retiming_graph


def correlator():
    """The classic Leiserson-Saxe correlator shape: a latch ring candidate."""
    b = CircuitBuilder("corr")
    (x,) = b.inputs("x")
    d1 = b.latch(x)
    d2 = b.latch(d1)
    d3 = b.latch(d2)
    c1 = b.XNOR(x, d3)
    c2 = b.XNOR(d1, d3)
    s1 = b.OR(c1, c2)
    c3 = b.XNOR(d2, d3)
    s2 = b.OR(s1, c3)
    b.output(s2, name="o")
    return b.circuit


class TestGraph:
    def test_latch_counts_on_edges(self):
        c = correlator()
        g = build_retiming_graph(c)
        assert g.num_latches() >= 3  # per-edge counting may exceed sharing
        assert HOST in g.vertices

    def test_buffers_are_zero_delay(self, builder):
        (a,) = builder.inputs("a")
        buf = builder.BUF(a)
        g1 = builder.AND(buf, a)
        builder.output(g1, name="o")
        g = build_retiming_graph(builder.circuit)
        assert g.delay[buf] == 0
        assert g.delay[g1] == 1

    def test_uniform_class_detection(self, builder):
        a, e = builder.inputs("a", "e")
        q = builder.latch(a, enable=e)
        builder.output(builder.NOT(q), name="o")
        g = build_retiming_graph(builder.circuit)
        uniform, cls = g.uniform_class()
        assert uniform and cls == "e"

    def test_derived_enable_rejected(self, builder):
        a, e1, e2 = builder.inputs("a", "e1", "e2")
        en = builder.AND(e1, e2)
        q = builder.latch(a, enable=en)
        builder.output(q, name="o")
        with pytest.raises(ValueError, match="derived logic"):
            build_retiming_graph(builder.circuit)


class TestMinPeriod:
    def test_correlator_optimal_and_rebuildable(self):
        c = correlator()
        g = build_retiming_graph(c)
        base = clock_period(g)
        period, r = min_period_retiming(g)
        assert period <= base
        retimed = apply_retiming(c, g, r)
        validate_circuit(retimed)
        assert clock_period(build_retiming_graph(retimed)) == period

    def test_latch_wall_improves(self):
        """Input-register wall before deep logic: retiming must cut depth."""
        b = CircuitBuilder("wall")
        ins = b.inputs("a", "b", "c", "d")
        lat = [b.latch(i) for i in ins]
        x = b.AND(lat[0], lat[1])
        y = b.OR(x, lat[2])
        z = b.XOR(y, lat[3])
        w = b.AND(z, lat[0])
        b.output(b.latch(w), name="o")
        g = build_retiming_graph(b.circuit)
        base = clock_period(g)
        period, r = min_period_retiming(g)
        assert period < base
        retimed = apply_retiming(b.circuit, g, r)
        validate_circuit(retimed)
        assert check_sequential_equivalence(b.circuit, retimed).equivalent

    def test_infeasible_period_returns_none(self):
        c = correlator()
        g = build_retiming_graph(c)
        assert feasible_retiming(g, 0) is None

    def test_zero_latch_circuit_unchanged(self, builder):
        a, b = builder.inputs("a", "b")
        builder.output(builder.AND(a, b), name="o")
        g = build_retiming_graph(builder.circuit)
        period, r = min_period_retiming(g)
        assert period == clock_period(g)
        assert all(v == 0 for v in r.values())

    @pytest.mark.parametrize("seed", range(5))
    def test_retiming_preserves_equivalence(self, seed):
        c = pipeline_circuit(stages=2, width=3, seed=seed)
        retimed, old, new = retime_min_period(c)
        validate_circuit(retimed)
        assert new <= old
        assert check_sequential_equivalence(c, retimed).equivalent

    def test_latch_free_pi_po_path_not_a_cycle(self, builder):
        """Regression: combinational PI→PO paths must not look like cycles
        through the host vertex."""
        a, b = builder.inputs("a", "b")
        builder.output(builder.AND(a, b), name="comb_out")
        builder.output(builder.latch(builder.NOT(a)), name="seq_out")
        g = build_retiming_graph(builder.circuit)
        assert clock_period(g) is not None


class TestMinArea:
    def test_reduces_latches_at_relaxed_period(self):
        """Input-register wall can merge after the fanout point."""
        b = CircuitBuilder("share")
        (x,) = b.inputs("x")
        q1 = b.latch(x)
        n1 = b.NOT(q1)
        n2 = b.BUF(q1)
        q2 = b.latch(n1)
        q3 = b.latch(n2)
        b.output(b.AND(q2, q3), name="o")
        c = b.circuit
        g = build_retiming_graph(c)
        base_period = clock_period(g)
        r = min_area_retiming(g, period=base_period + 2)
        assert r is not None
        retimed = apply_retiming(c, g, r)
        validate_circuit(retimed)
        assert retimed.num_latches() <= c.num_latches()
        assert check_sequential_equivalence(c, retimed).equivalent

    def test_respects_period_constraint(self):
        c = correlator()
        g = build_retiming_graph(c)
        minp, _ = min_period_retiming(g)
        r = min_area_retiming(g, period=minp)
        assert r is not None
        assert clock_period(g, r) <= minp

    def test_infeasible_returns_none(self):
        c = correlator()
        g = build_retiming_graph(c)
        assert min_area_retiming(g, period=0) is None

    @pytest.mark.parametrize("seed", range(4))
    def test_never_worse_than_original_at_own_period(self, seed):
        c = pipeline_circuit(stages=3, width=3, seed=seed)
        retimed, period = retime_min_area(c)
        assert retimed is not None
        validate_circuit(retimed)
        assert retimed.num_latches() <= c.num_latches()
        g = build_retiming_graph(retimed)
        assert clock_period(g) <= period
        assert check_sequential_equivalence(c, retimed).equivalent

    def test_fixed_vertices_stay(self):
        c = correlator()
        g = build_retiming_graph(c)
        gates = [v for v in g.vertices if v != HOST]
        r = min_area_retiming(g, period=clock_period(g), fixed=gates)
        assert r is not None
        assert all(r[v] == 0 for v in gates)
