"""MetricsRegistry unit tests: recording, merging, serialisation."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestHistogram:
    def test_observe_and_summary(self):
        hist = Histogram(bounds=(1, 10, 100))
        for value in (0, 1, 5, 50, 500):
            hist.observe(value)
        assert hist.count == 5
        assert hist.total == 556
        assert hist.vmin == 0
        assert hist.vmax == 500
        assert hist.mean == pytest.approx(556 / 5)
        # counts: <=1, <=10, <=100, overflow
        assert hist.counts == [2, 1, 1, 1]

    def test_merge_bucketwise(self):
        a = Histogram(bounds=(1, 10))
        b = Histogram(bounds=(1, 10))
        a.observe(0)
        b.observe(5)
        b.observe(100)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [1, 1, 1]
        assert a.vmin == 0
        assert a.vmax == 100

    def test_merge_rejects_different_buckets(self):
        a = Histogram(bounds=(1, 10))
        b = Histogram(bounds=(1, 100))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1, 1, 2))

    def test_dict_round_trip(self):
        hist = Histogram()
        hist.observe(3)
        hist.observe(70000)
        clone = Histogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert clone.to_dict() == hist.to_dict()


class TestRegistry:
    def test_counters_gauges_series(self):
        reg = MetricsRegistry()
        reg.inc("cec.sat_queries")
        reg.inc("cec.sat_queries", 4)
        reg.set_gauge("cec.n_jobs", 2)
        reg.max_gauge("bdd.peak_nodes", 10)
        reg.max_gauge("bdd.peak_nodes", 5)  # lower: ignored
        reg.append("cec.worker.seconds", 0.5)
        assert reg.counter("cec.sat_queries") == 5
        assert reg.counter("never.seen") == 0
        assert reg.gauge("cec.n_jobs") == 2
        assert reg.gauge("bdd.peak_nodes") == 10
        assert reg.series("cec.worker.seconds") == [0.5]
        assert bool(reg)
        assert not bool(MetricsRegistry())

    def test_merge_semantics(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        a.set_gauge("g", 5)
        b.set_gauge("g", 3)  # lower: merge keeps the peak
        a.observe("h", 1)
        b.observe("h", 1000)
        a.append("s", 0.1)
        b.append("s", 0.2)
        a.merge(b)
        assert a.counter("c") == 3
        assert a.gauge("g") == 5
        assert a.histogram("h").count == 2
        assert a.series("s") == [0.1, 0.2]

    def test_json_round_trip_cross_process_shape(self):
        reg = MetricsRegistry()
        reg.inc("sat.calls", 7)
        reg.observe("sat.conflicts_per_call", 12, bounds=DEFAULT_BUCKETS)
        reg.set_gauge("cec.n_units", 3)
        clone = MetricsRegistry.from_json(reg.to_json())
        assert clone.to_dict() == reg.to_dict()
        assert clone.names() == reg.names()

    def test_as_flat_dict(self):
        reg = MetricsRegistry()
        reg.inc("sat.calls", 2)
        reg.observe("sat.conflicts_per_call", 10)
        reg.observe("sat.conflicts_per_call", 30)
        reg.append("cec.worker.seconds", 1.5)
        flat = reg.as_flat_dict()
        assert flat["sat.calls"] == 2
        assert flat["sat.conflicts_per_call.count"] == 2
        assert flat["sat.conflicts_per_call.sum"] == 40
        assert flat["sat.conflicts_per_call.mean"] == 20
        assert flat["sat.conflicts_per_call.max"] == 30
        assert flat["cec.worker.seconds.count"] == 1
        assert flat["cec.worker.seconds.sum"] == 1.5
        prefixed = reg.as_flat_dict(prefix="x.")
        assert set(prefixed) == {"x." + k for k in flat}
