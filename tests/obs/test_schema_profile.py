"""Schema validator and profiler tests on synthetic traces."""

from __future__ import annotations

from repro.obs.profile import phase_breakdown, profile_events, render_profile
from repro.obs.schema import validate_event, validate_events
from repro.obs.trace import Tracer


def tiny_trace():
    """A hand-built but fully valid trace covering every event kind."""
    tracer = Tracer(sink=[], meta={"command": "test"})
    with tracer.span("cec.check", cat="pair", c1="a", c2="b"):
        with tracer.span("cec.phase.sweep", cat="phase"):
            with tracer.span("cec.obligation", cat="obligation", output="o0") as ob:
                with tracer.span("stage.sat", cat="stage"):
                    pass
                ob.annotate(decided_by="sat", verdict="eq")
            tracer.instant("sweep.unit.requeued", unit=0)
        tracer.metrics(
            {
                "sat.conflicts_per_call.count": 4,
                "sat.conflicts_per_call.mean": 2.0,
                "sat.conflicts_per_call.max": 5,
                "sat.conflicts_per_call.sum": 8,
            },
            name="cec.metrics",
        )
    return tracer.events


class TestSchema:
    def test_valid_trace_has_no_violations(self):
        assert validate_events(tiny_trace()) == []

    def test_non_dict_event(self):
        assert validate_event("nope") == ["event[0]: not a JSON object"]

    def test_missing_required_fields(self):
        errors = validate_event({"type": "span"})
        assert any("name" in e for e in errors)
        assert any("ts" in e for e in errors)

    def test_bad_enum_and_type(self):
        errors = validate_event(
            {"type": "span", "name": 7, "ts": -1, "cat": "nonsense",
             "dur": 0.0, "id": 1, "args": {}}
        )
        assert any("cat" in e for e in errors)
        assert any("name" in e for e in errors)
        assert any("minimum" in e for e in errors)

    def test_trace_must_start_with_meta(self):
        events = tiny_trace()[1:]
        errors = validate_events(events)
        assert any("must start with a meta event" in e for e in errors)

    def test_duplicate_span_ids_flagged(self):
        events = tiny_trace()
        spans = [e for e in events if e["type"] == "span"]
        clone = dict(spans[0])
        errors = validate_events(events + [clone])
        assert any("duplicate span id" in e for e in errors)

    def test_orphan_parent_flagged(self):
        events = tiny_trace()
        bad = {
            "type": "instant", "name": "x", "cat": "event",
            "ts": 1.0, "parent": 999, "args": {},
        }
        errors = validate_events(events + [bad])
        assert any("parent 999" in e for e in errors)


class TestProfile:
    def test_phase_breakdown_counts_and_sums(self):
        events = [
            {"type": "span", "name": "p", "cat": "phase", "ts": 0,
             "dur": 1.0, "id": 1, "parent": None, "args": {}},
            {"type": "span", "name": "p", "cat": "phase", "ts": 2,
             "dur": 0.5, "id": 2, "parent": None, "args": {}},
        ]
        assert phase_breakdown(events) == {"p": (2, 1.5)}

    def test_profile_events_structure(self):
        prof = profile_events(tiny_trace(), top=5)
        assert prof["n_pairs"] == 1
        assert "cec.phase.sweep" in prof["phases"]
        assert "stage.sat" in prof["stages"]
        (ob,) = prof["slowest_obligations"]
        assert ob["output"] == "o0"
        assert ob["decided_by"] == "sat"
        assert ob["verdict"] == "eq"
        (incident,) = prof["incidents"]
        assert incident["name"] == "sweep.unit.requeued"
        assert prof["metrics"]["sat.conflicts_per_call.count"] == 4

    def test_top_limits_obligations(self):
        tracer = Tracer(sink=[])
        for i in range(5):
            with tracer.span("cec.obligation", cat="obligation", output=f"o{i}"):
                pass
        prof = profile_events(tracer.events, top=2)
        assert len(prof["slowest_obligations"]) == 2

    def test_render_profile_mentions_the_hotspots(self):
        text = render_profile(tiny_trace())
        assert "1 circuit-pair check(s)" in text
        assert "cec.phase.sweep" in text
        assert "stage.sat" in text
        assert "o0" in text
        assert "solver effort per call:" in text
        assert "sweep.unit.requeued" in text
