"""Tracer unit tests: span hierarchy, adoption, readers, Chrome export."""

from __future__ import annotations

import json

from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    coerce_tracer,
    export_chrome_trace,
    read_events,
)


def span_events(events):
    return [e for e in events if e["type"] == "span"]


class TestSpans:
    def test_meta_first_and_schema_version(self):
        tracer = Tracer(sink=[])
        events = tracer.events
        assert events[0]["type"] == "meta"
        assert events[0]["schema"] >= 1

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer(sink=[])
        with tracer.span("outer", cat="flow") as outer:
            with tracer.span("inner", cat="phase") as inner:
                assert inner.parent == outer.id
        spans = {e["name"]: e for e in span_events(tracer.events)}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        # Spans are emitted on close: inner lands before outer.
        names = [e["name"] for e in span_events(tracer.events)]
        assert names == ["inner", "outer"]

    def test_annotate_and_exception_marking(self):
        tracer = Tracer(sink=[])
        try:
            with tracer.span("work", cat="phase") as span:
                span.annotate(items=3)
                raise ValueError("boom")
        except ValueError:
            pass
        (span,) = span_events(tracer.events)
        assert span["args"] == {"items": 3, "error": "ValueError"}

    def test_close_is_idempotent(self):
        tracer = Tracer(sink=[])
        span = tracer.span("once", cat="phase")
        span.close()
        span.close()
        assert len(span_events(tracer.events)) == 1

    def test_instants_attach_to_current_span(self):
        tracer = Tracer(sink=[])
        with tracer.span("outer", cat="flow") as outer:
            tracer.instant("tick", cat="event", n=1)
        (instant,) = [e for e in tracer.events if e["type"] == "instant"]
        assert instant["parent"] == outer.id
        assert instant["args"] == {"n": 1}

    def test_monotonic_nonnegative_timestamps(self):
        tracer = Tracer(sink=[])
        with tracer.span("a", cat="phase"):
            pass
        for event in tracer.events:
            assert event["ts"] >= 0
            if event["type"] == "span":
                assert event["dur"] >= 0

    def test_close_flags_abandoned_spans(self):
        tracer = Tracer(sink=[])
        tracer.span("leaked", cat="phase")
        tracer.close()
        names = [e["name"] for e in tracer.events]
        assert "trace.span-abandoned" in names


class TestAdopt:
    def test_adopt_rebases_ids_and_reparents(self):
        parent = Tracer(sink=[])
        root = parent.span("cec.check", cat="pair")
        worker = Tracer(sink=[], epoch=parent.epoch)
        with worker.span("sweep.unit", cat="worker"):
            with worker.span("inner", cat="solver"):
                pass
        parent.adopt(worker.events, parent=root, worker=2)
        root.close()
        spans = {e["name"]: e for e in span_events(parent.events)}
        # Worker root hangs off the adopting span; the child follows it.
        assert spans["sweep.unit"]["parent"] == spans["cec.check"]["id"]
        assert spans["inner"]["parent"] == spans["sweep.unit"]["id"]
        # extra_args land on every adopted event.
        assert spans["sweep.unit"]["args"]["worker"] == 2
        assert spans["inner"]["args"]["worker"] == 2
        # Ids were rebased into the parent's space (no collisions).
        ids = [e["id"] for e in span_events(parent.events)]
        assert len(ids) == len(set(ids))

    def test_adopt_drops_worker_meta(self):
        parent = Tracer(sink=[])
        worker = Tracer(sink=[], epoch=parent.epoch)
        parent.adopt(worker.events)
        metas = [e for e in parent.events if e["type"] == "meta"]
        assert len(metas) == 1  # only the parent's own

    def test_null_tracer_is_inert(self):
        assert coerce_tracer(None) is NULL_TRACER
        span = NULL_TRACER.span("x", cat="phase")
        with span:
            span.annotate(a=1)
        NULL_TRACER.instant("x")
        NULL_TRACER.metrics({"a": 1})
        NULL_TRACER.adopt([{"type": "span"}])
        NULL_TRACER.close()
        assert NULL_TRACER.enabled is False


class TestReadersAndExport:
    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(path=path, meta={"command": "test"})
        with tracer.span("work", cat="phase"):
            tracer.instant("tick")
        tracer.metrics({"cec.sat_queries": 5})
        tracer.close()
        events = read_events(path)
        assert [e["type"] for e in events] == [
            "meta", "instant", "span", "metrics",
        ]
        assert events[0]["args"] == {"command": "test"}

    def test_read_events_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "name": "m", "ts": 0, "schema": 1})
            + "\n\n{not json\n"
            + json.dumps({"type": "instant", "name": "i", "ts": 1, "args": {}})
            + "\n"
        )
        events = read_events(path)
        assert [e["name"] for e in events] == ["m", "i"]

    def test_chrome_export_lanes_and_units(self, tmp_path):
        tracer = Tracer(sink=[])
        with tracer.span("main.work", cat="phase"):
            pass
        tracer.emit(
            {
                "type": "span",
                "name": "sweep.unit",
                "cat": "worker",
                "ts": 0.5,
                "dur": 0.25,
                "id": 99,
                "parent": None,
                "args": {"worker": 1},
            }
        )
        tracer.metrics({"cec.sat_queries": 7, "note": "text-dropped"})
        out = tmp_path / "chrome.json"
        n = export_chrome_trace(tracer.events, out)
        data = json.loads(out.read_text())
        assert n == len(data["traceEvents"]) == 3
        by_name = {e["name"]: e for e in data["traceEvents"]}
        # Main-process events on tid 0, worker events on worker+1 lanes.
        assert by_name["main.work"]["tid"] == 0
        assert by_name["sweep.unit"]["tid"] == 2
        assert by_name["sweep.unit"]["ph"] == "X"
        assert by_name["sweep.unit"]["dur"] == 0.25 * 1e6
        # Counter events keep only numeric args.
        assert by_name["metrics"]["ph"] == "C"
        assert by_name["metrics"]["args"] == {"cec.sat_queries": 7}
