"""End-to-end trace tests: schema stability and stats round-tripping.

The golden contract: running the engine with a tracer on a small but
non-trivial pair (a retimed+resynthesised pipeline, CBF-lowered) must
produce a schema-valid trace whose spans cover every phase and every
cascade stage the run took, whose per-phase durations reconcile with the
engine's own ``stats["time"]``, and whose presence must not perturb the
uninstrumented result.
"""

from __future__ import annotations

import pytest

from repro.bench.pipeline import pipeline_circuit
from repro.cec.engine import check_equivalence
from repro.core.cbf import compute_cbf
from repro.core.eq2comb import cbf_to_circuit
from repro.core.timedvar import ExprTable
from repro.core.verify import check_sequential_equivalence
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import profile_events
from repro.obs.schema import validate_events
from repro.obs.trace import Tracer
from repro.retime.apply import retime_min_period
from repro.synth.script import optimize_sequential_delay


@pytest.fixture(scope="module")
def comb_pair():
    """A combinational pair with real sweep work (H vs J of a pipeline)."""
    c1 = pipeline_circuit(stages=3, width=3, seed=0, name="pipe")
    retimed, _, _ = retime_min_period(c1)
    resynth = optimize_sequential_delay(retimed, "medium", name="resynth")
    table = ExprTable()
    cbf1 = compute_cbf(c1, table)
    cbf2 = compute_cbf(resynth, table)
    all_vars = sorted(cbf1.variables() | cbf2.variables(), key=repr)
    comb1 = cbf_to_circuit(cbf1, name="H", extra_inputs=all_vars)
    comb2 = cbf_to_circuit(cbf2, name="J", extra_inputs=all_vars)
    return comb1, comb2


@pytest.fixture(scope="module")
def traced_run(comb_pair):
    comb1, comb2 = comb_pair
    tracer = Tracer(sink=[], meta={"command": "test"})
    result = check_equivalence(comb1, comb2, tracer=tracer)
    tracer.close()
    return result, tracer.events


class TestGoldenTrace:
    def test_trace_is_schema_valid(self, traced_run):
        _, events = traced_run
        assert validate_events(events) == []

    def test_span_coverage(self, traced_run):
        result, events = traced_run
        names = {e["name"] for e in events if e["type"] == "span"}
        assert "cec.check" in names
        # Every phase the engine timed has a span of the same name.
        for key in result.stats:
            if key.startswith("time_"):
                assert f"cec.phase.{key[len('time_'):]}" in names
        # The run decided outputs by SAT, so obligation/stage spans exist.
        assert "cec.obligation" in names
        assert any(n.startswith("stage.") for n in names)

    def test_metrics_snapshot_embedded(self, traced_run):
        result, events = traced_run
        snapshots = [e for e in events if e["type"] == "metrics"]
        assert snapshots, "trace must embed a metrics snapshot"
        merged = {}
        for snap in snapshots:
            merged.update(snap["args"])
        assert merged["cec.sat_queries"] == result.stats["sat_queries"]
        assert merged["sat.calls"] >= result.stats["sat_queries"]

    def test_profile_reconciles_with_engine_time(self, traced_run):
        result, events = traced_run
        prof = profile_events(events)
        phase_total = sum(
            seconds
            for name, (_, seconds) in prof["phases"].items()
            if name.startswith("cec.phase.")
        )
        # Acceptance: the per-stage breakdown accounts for the engine's
        # own wall time to within 10%.
        assert phase_total == pytest.approx(result.stats["time"], rel=0.10)

    def test_tracing_does_not_change_stats(self, comb_pair, traced_run):
        comb1, comb2 = comb_pair
        traced_result, _ = traced_run
        plain = check_equivalence(comb1, comb2)
        assert plain.verdict == traced_result.verdict
        assert set(plain.stats) == set(traced_result.stats)
        for key, value in plain.stats.items():
            if key.startswith("time") or key in ("worker_utilisation",):
                continue
            assert traced_result.stats[key] == value, key

    def test_caller_registry_receives_merge(self, comb_pair):
        comb1, comb2 = comb_pair
        registry = MetricsRegistry()
        result = check_equivalence(comb1, comb2, metrics=registry)
        assert registry.counter("cec.sat_queries") == result.stats["sat_queries"]
        assert registry.counter("sat.calls") > 0
        # Per-check isolation: a second check merges counters additively.
        check_equivalence(comb1, comb2, metrics=registry)
        assert (
            registry.counter("cec.sat_queries")
            == 2 * result.stats["sat_queries"]
        )


class TestSequentialTrace:
    def test_seq_check_wraps_the_pair_span(self):
        c1 = pipeline_circuit(stages=2, width=2, seed=1, name="p")
        retimed, _, _ = retime_min_period(c1)
        tracer = Tracer(sink=[])
        result = check_sequential_equivalence(c1, retimed, tracer=tracer)
        tracer.close()
        events = tracer.events
        assert validate_events(events) == []
        spans = {e["name"]: e for e in events if e["type"] == "span"}
        assert spans["seq.check"]["args"]["verdict"] == result.verdict.value
        # Lowering and the combinational check both nest inside the root.
        root_id = spans["seq.check"]["id"]
        assert spans["seq.phase.lower"]["parent"] == root_id
        assert spans["cec.check"]["parent"] == root_id
