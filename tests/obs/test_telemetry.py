"""Telemetry snapshots: sampler, schema, delta fold, render surfaces."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.metrics import MetricsRegistry, TIME_BUCKETS
from repro.obs.telemetry import (
    MetricsDeltaFold,
    TelemetrySampler,
    read_snapshots,
    render_prometheus,
    render_snapshot,
    validate_snapshot,
    validate_snapshots,
)


def _probe():
    return {
        "queue": {"depth": 3, "running": 1, "unfinished": 4, "closed": 0},
        "jobs": {"done": 7, "failed": 1},
    }


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class TestSampler:
    def test_sample_stamps_identity_and_seq(self):
        sink = []
        sampler = TelemetrySampler(probe=_probe, sink=sink)
        first = sampler.sample()
        second = sampler.sample()
        assert first["type"] == "snapshot"
        assert (first["seq"], second["seq"]) == (1, 2)
        assert first["source"] == "service"
        assert isinstance(first["host"], str) and first["host"]
        assert isinstance(first["pid"], int) and first["pid"] > 0
        assert first["queue"]["depth"] == 3
        assert sink == [first, second]

    def test_throughput_derived_from_done_delta(self):
        clock = FakeClock()
        state = {"done": 0.0}

        def probe():
            return {"jobs": {"done": state["done"], "failed": 0}}

        sampler = TelemetrySampler(probe=probe, sink=[], clock=clock)
        sampler.sample()
        state["done"] = 10.0
        clock.t += 2.0
        snap = sampler.sample()
        assert snap["throughput"]["jobs_per_sec"] == pytest.approx(5.0)
        assert snap["throughput"]["interval_seconds"] == pytest.approx(2.0)

    def test_file_round_trip_skips_torn_lines(self, tmp_path):
        path = tmp_path / "snap.jsonl"
        sampler = TelemetrySampler(probe=_probe, path=path)
        sampler.sample()
        sampler.sample()
        sampler.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "snapsho')  # torn tail write
        snapshots = read_snapshots(path)
        assert [s["seq"] for s in snapshots] == [1, 2]
        assert validate_snapshots(snapshots) == []

    def test_periodic_task_records_and_final_sample_lands(self):
        async def scenario():
            sink = []
            sampler = TelemetrySampler(
                probe=_probe, sink=sink, interval=0.05
            )
            sampler.start()
            await asyncio.sleep(0.12)
            await sampler.aclose()
            return sink

        sink = asyncio.run(scenario())
        # At least the initial tick plus the final flush.
        assert len(sink) >= 2
        assert validate_snapshots(sink) == []

    def test_probe_exceptions_not_required(self):
        # A probe-less sampler is legal (the status role samples lazily).
        sampler = TelemetrySampler(sink=[])
        snap = sampler.sample()
        assert snap["type"] == "snapshot"
        assert validate_snapshot(snap) == []

    def test_path_and_sink_conflict(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetrySampler(path=tmp_path / "x.jsonl", sink=[])


class TestSnapshotSchema:
    def _good(self):
        sampler = TelemetrySampler(probe=_probe, sink=[])
        return sampler.sample()

    def test_good_snapshot_passes(self):
        assert validate_snapshot(self._good()) == []

    def test_missing_required_field_fails(self):
        snap = self._good()
        del snap["seq"]
        assert validate_snapshot(snap)

    def test_bool_leaf_rejected(self):
        snap = self._good()
        snap["queue"]["depth"] = True
        assert validate_snapshot(snap)

    def test_non_numeric_leaf_rejected(self):
        snap = self._good()
        snap["jobs"]["done"] = "seven"
        assert validate_snapshot(snap)

    def test_seq_regression_flagged_per_source(self):
        sampler = TelemetrySampler(probe=_probe, sink=[])
        a = sampler.sample()
        b = sampler.sample()
        assert validate_snapshots([a, b]) == []
        assert validate_snapshots([b, a])  # out of order -> error
        # A different source is an independent sequence.
        other = dict(b, source="other", seq=1)
        assert validate_snapshots([a, b, other]) == []


class TestMetricsDeltaFold:
    def _delta(self, jobs=1.0):
        reg = MetricsRegistry()
        reg.inc("service.worker.jobs_solved", jobs)
        return reg.to_dict()

    def test_applies_once_per_seq(self):
        target = MetricsRegistry()
        fold = MetricsDeltaFold(target)
        assert fold.apply("w1", 1, self._delta())
        assert not fold.apply("w1", 1, self._delta())  # duplicate
        assert target.counter("service.worker.jobs_solved") == 1.0
        assert (fold.applied, fold.skipped) == (1, 1)

    def test_out_of_order_and_cross_source(self):
        target = MetricsRegistry()
        fold = MetricsDeltaFold(target)
        assert fold.apply("w1", 2, self._delta())
        assert fold.apply("w1", 1, self._delta())  # late but fresh
        assert fold.apply("w2", 1, self._delta())  # same seq, other worker
        assert target.counter("service.worker.jobs_solved") == 3.0

    def test_bad_seq_or_payload_skipped(self):
        target = MetricsRegistry()
        fold = MetricsDeltaFold(target)
        assert not fold.apply("w1", None, self._delta())
        assert not fold.apply("w1", "x", self._delta())
        assert not fold.apply("w1", 3, None)
        assert not fold.apply("w1", 4, {"counters": "garbage"})
        assert target.counter("service.worker.jobs_solved") == 0.0

    def test_sources_listed(self):
        fold = MetricsDeltaFold(MetricsRegistry())
        fold.apply("b", 1, self._delta())
        fold.apply("a", 1, self._delta())
        assert fold.sources() == ["a", "b"]


class TestPrometheusRender:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("service.jobs.done", 5)
        reg.set_gauge("service.store.corrupt_lines", 2)
        reg.observe("service.worker.job_seconds", 0.5, bounds=TIME_BUCKETS)
        text = render_prometheus(reg)
        assert "# TYPE repro_service_jobs_done counter" in text
        assert "repro_service_jobs_done 5" in text
        assert "repro_service_store_corrupt_lines 2" in text
        assert 'repro_service_worker_job_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_service_worker_job_seconds_count 1" in text

    def test_snapshot_sections_become_gauges(self):
        sampler = TelemetrySampler(probe=_probe, sink=[])
        text = render_prometheus(None, sampler.sample())
        assert "repro_telemetry_queue_depth 3" in text
        assert "repro_telemetry_jobs_done 7" in text
        assert "# TYPE repro_telemetry_seq counter" in text

    def test_name_sanitisation(self):
        reg = MetricsRegistry()
        reg.inc("weird-name.1x")
        text = render_prometheus(reg)
        assert "repro_weird_name_1x 1" in text

    def test_empty_inputs_render_empty_exposition(self):
        assert render_prometheus(None, None) == "\n"


class TestDashboardRender:
    def test_rows_present(self):
        sampler = TelemetrySampler(probe=_probe, sink=[], source="serve")
        text = render_snapshot(sampler.sample())
        assert "repro fleet [serve]" in text
        assert "queue" in text and "depth=3" in text
        assert "jobs" in text and "done=7" in text

    def test_render_tolerates_sparse_snapshot(self):
        text = render_snapshot({"type": "snapshot", "seq": 1})
        assert "repro fleet" in text

    def test_json_round_trip(self):
        sampler = TelemetrySampler(probe=_probe, sink=[])
        snap = sampler.sample()
        assert json.loads(json.dumps(snap)) == snap
