"""The per-obligation feature log: extraction, round trip, live capture."""

from __future__ import annotations

from repro.obs.oblog import (
    CASCADE_STAGES,
    ObligationRecord,
    extract_obligation_records,
    read_obligation_log,
    write_obligation_log,
)
from repro.obs.trace import Tracer


def _span(name="cec.obligation", **args):
    return {
        "type": "span",
        "name": name,
        "cat": "obligation",
        "ts": 1.0,
        "dur": 0.25,
        "host": "h1",
        "pid": 11,
        "args": args,
    }


def _instant(**args):
    return {
        "type": "instant",
        "name": "cec.obligation.features",
        "cat": "obligation",
        "ts": 2.0,
        "host": "h2",
        "pid": 22,
        "args": args,
    }


class TestExtraction:
    def test_cascade_span_becomes_record(self):
        events = [
            _span(
                output="y0",
                decided_by="bdd",
                verdict="eq",
                cone=17,
                width=64,
            )
        ]
        (record,) = extract_obligation_records(events)
        assert record.kind == "cascade"
        assert record.output == "y0"
        assert record.engine == "bdd"
        assert record.stage == CASCADE_STAGES["bdd"] == 2
        assert record.cone == 17 and record.width == 64
        assert record.seconds == 0.25
        assert (record.host, record.pid) == ("h1", 11)

    def test_sweep_instant_becomes_record(self):
        events = [
            _instant(
                kind="sweep",
                round=1,
                unit=3,
                group=9,
                width=4,
                cone=120,
                engine="sat",
                verdict="neq",
                seconds=0.01,
            )
        ]
        (record,) = extract_obligation_records(events)
        assert record.kind == "sweep"
        assert (record.round, record.unit, record.group) == (1, 3, 9)
        assert record.stage == CASCADE_STAGES["sat"] == 3
        assert (record.host, record.pid) == ("h2", 22)

    def test_unrelated_events_ignored(self):
        events = [
            {"type": "span", "name": "cec.phase.sweep", "args": {}},
            {"type": "instant", "name": "sweep.unit.lost", "args": {}},
            {"type": "meta", "name": "trace-start"},
        ]
        assert extract_obligation_records(events) == []

    def test_pre_feature_traces_still_mine(self):
        # Spans from before the feature stamps lack cone/width; rows
        # still come out with those fields absent, not a crash.
        events = [_span(output="y1", decided_by="sim", verdict="eq")]
        (record,) = extract_obligation_records(events)
        assert record.cone is None and record.width is None
        assert record.stage == 1

    def test_unknown_engine_has_no_stage(self):
        events = [_span(output="y", decided_by="quantum", verdict="eq")]
        (record,) = extract_obligation_records(events)
        assert record.stage is None and record.engine == "quantum"


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        records = [
            ObligationRecord(
                kind="cascade",
                output="o1",
                cone=5,
                width=32,
                stage=2,
                engine="bdd",
                verdict="eq",
                seconds=0.5,
                host="h",
                pid=1,
            ),
            ObligationRecord(
                kind="sweep",
                output=None,
                cone=9,
                width=3,
                stage=3,
                engine="sat",
                verdict="deferred",
                seconds=0.001,
                round=2,
                unit=0,
                group=7,
            ),
        ]
        path = tmp_path / "ob.jsonl"
        assert write_obligation_log(records, path) == 2
        loaded = read_obligation_log(path)
        assert loaded == records

    def test_reader_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "ob.jsonl"
        path.write_text(
            '{"kind": "cascade", "engine": "sat"}\n'
            "not json at all\n"
            "[1, 2, 3]\n"
            "\n"
        )
        loaded = read_obligation_log(path)
        assert len(loaded) == 1
        assert loaded[0].engine == "sat"

    def test_none_fields_dropped_from_rows(self):
        record = ObligationRecord(
            kind="cascade",
            output=None,
            cone=None,
            width=None,
            stage=None,
            engine="sim",
            verdict="eq",
            seconds=None,
        )
        row = record.to_dict()
        assert row == {"kind": "cascade", "engine": "sim", "verdict": "eq"}


class TestLiveCapture:
    def test_real_verify_emits_feature_records(self):
        """A real engine run yields rows with plausible feature values."""
        from repro.api import VerifyRequest, verify_pair
        from repro.bench.minmax import minmax_circuit
        from repro.synth.script import optimize_sequential_delay

        golden = minmax_circuit(4)
        revised = optimize_sequential_delay(golden)
        tracer = Tracer(sink=[])
        report = verify_pair(
            VerifyRequest(golden=golden, revised=revised), tracer=tracer
        )
        tracer.close()
        assert report.verdict == "equivalent"
        records = extract_obligation_records(tracer.events)
        assert records, "engine emitted no obligation evidence"
        for record in records:
            assert record.kind in ("cascade", "sweep")
            assert record.engine is not None
            assert record.host and record.pid
            if record.cone is not None:
                assert record.cone >= 0
            if record.kind == "sweep":
                assert record.width >= 2
