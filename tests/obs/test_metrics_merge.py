"""Merge algebra of the metrics registry under worker delta streaming.

The telemetry design leans on two facts proved here:

* :meth:`MetricsRegistry.merge` is **commutative and associative** for
  every metric family (counters add, gauges max, histograms bucket-wise
  add, series are order-sensitive only in sequence, not in totals) — so
  out-of-order application of distinct worker deltas converges to the
  same totals;
* counter merge is **not idempotent** (merging the same delta twice
  double-counts) — which is exactly why the protocol layer
  (:class:`MetricsDeltaFold`) enforces exactly-once per ``(source, seq)``
  instead of hoping the transport never re-delivers.
"""

from __future__ import annotations

import random

from repro.obs.metrics import MetricsRegistry, TIME_BUCKETS
from repro.obs.telemetry import MetricsDeltaFold


def _random_delta(rng: random.Random) -> dict:
    reg = MetricsRegistry()
    for _ in range(rng.randint(1, 4)):
        reg.inc(f"c.{rng.randint(0, 2)}", rng.randint(1, 5))
    for _ in range(rng.randint(0, 2)):
        reg.max_gauge(f"g.{rng.randint(0, 1)}", rng.uniform(0, 10))
    for _ in range(rng.randint(0, 3)):
        reg.observe("h.t", rng.uniform(0, 2), bounds=TIME_BUCKETS)
    return reg.to_dict()


def _totals(registry: MetricsRegistry) -> dict:
    data = registry.to_dict()
    hist = data["histograms"].get("h.t")
    return {
        "counters": data["counters"],
        "gauges": {k: round(v, 9) for k, v in data["gauges"].items()},
        "hist_counts": tuple(hist["counts"]) if hist else None,
        "hist_sum": round(hist["sum"], 9) if hist else None,
    }


def _merged(deltas) -> dict:
    registry = MetricsRegistry()
    for delta in deltas:
        registry.merge(delta)
    return _totals(registry)


class TestMergeAlgebra:
    def test_commutative_any_order(self):
        rng = random.Random(7)
        deltas = [_random_delta(rng) for _ in range(6)]
        reference = _merged(deltas)
        for seed in range(5):
            shuffled = list(deltas)
            random.Random(seed).shuffle(shuffled)
            assert _merged(shuffled) == reference

    def test_associative_grouping(self):
        rng = random.Random(11)
        deltas = [_random_delta(rng) for _ in range(4)]
        # (((a+b)+c)+d)  vs  (a+b) + (c+d) pre-combined.
        left = MetricsRegistry()
        for delta in deltas:
            left.merge(delta)
        ab = MetricsRegistry()
        ab.merge(deltas[0])
        ab.merge(deltas[1])
        cd = MetricsRegistry()
        cd.merge(deltas[2])
        cd.merge(deltas[3])
        grouped = MetricsRegistry()
        grouped.merge(ab)
        grouped.merge(cd)
        assert _totals(grouped) == _totals(left)

    def test_counter_merge_not_idempotent(self):
        delta = _random_delta(random.Random(3))
        once = _merged([delta])
        twice = _merged([delta, delta])
        assert once != twice  # the hazard the delta fold exists to stop

    def test_gauge_merge_is_idempotent(self):
        reg = MetricsRegistry()
        reg.max_gauge("g", 5.0)
        delta = reg.to_dict()
        target = MetricsRegistry()
        target.merge(delta)
        target.merge(delta)
        assert target.gauge("g") == 5.0


class TestExactlyOnceUnderRedelivery:
    def test_out_of_order_duplicated_deltas_converge(self):
        """The fleet scenario: two workers, re-sent + shuffled deltas.

        However the transport mangles delivery order and however many
        times a delta is re-sent, folding through MetricsDeltaFold must
        equal the clean in-order, exactly-once application.
        """
        rng = random.Random(42)
        per_worker = {
            "w1": [_random_delta(rng) for _ in range(5)],
            "w2": [_random_delta(rng) for _ in range(5)],
        }
        clean = MetricsRegistry()
        for deltas in per_worker.values():
            for delta in deltas:
                clean.merge(delta)

        for seed in range(8):
            shuffle_rng = random.Random(seed)
            stream = [
                (worker, seq, delta)
                for worker, deltas in per_worker.items()
                for seq, delta in enumerate(deltas, start=1)
            ]
            # Duplicate a random prefix (lease retry re-sends), shuffle all.
            stream += stream[: shuffle_rng.randint(0, len(stream))]
            shuffle_rng.shuffle(stream)
            target = MetricsRegistry()
            fold = MetricsDeltaFold(target)
            for worker, seq, delta in stream:
                fold.apply(worker, seq, delta)
            assert _totals(target) == _totals(clean), f"seed {seed}"
            assert fold.applied == 10

    def test_interleaved_local_and_remote_counts_add(self):
        # Coordinator-local increments and folded worker deltas coexist.
        target = MetricsRegistry()
        fold = MetricsDeltaFold(target)
        target.inc("service.jobs.done", 3)
        worker = MetricsRegistry()
        worker.inc("service.jobs.done", 2)
        fold.apply("w1", 1, worker.to_dict())
        assert target.counter("service.jobs.done") == 5.0
