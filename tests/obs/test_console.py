"""Console verbosity-tier tests."""

from __future__ import annotations

import io

from repro.obs.console import Console


def build(quiet=False, verbose=False, silent=False):
    out, err = io.StringIO(), io.StringIO()
    console = Console(
        stream=out, err_stream=err, quiet=quiet, verbose=verbose, silent=silent
    )
    return console, out, err


def emit_all(console):
    console.result("RESULT")
    console.info("INFO")
    console.detail("DETAIL")
    console.error("ERROR")


class TestTiers:
    def test_default_prints_result_info_error(self):
        console, out, err = build()
        emit_all(console)
        assert out.getvalue() == "RESULT\nINFO\n"
        assert err.getvalue() == "ERROR\n"

    def test_quiet_keeps_only_result_and_error(self):
        console, out, err = build(quiet=True)
        emit_all(console)
        assert out.getvalue() == "RESULT\n"
        assert err.getvalue() == "ERROR\n"

    def test_verbose_adds_detail(self):
        console, out, _ = build(verbose=True)
        emit_all(console)
        assert out.getvalue() == "RESULT\nINFO\nDETAIL\n"

    def test_quiet_beats_verbose(self):
        console, out, _ = build(quiet=True, verbose=True)
        emit_all(console)
        assert out.getvalue() == "RESULT\n"

    def test_silent_writes_nothing(self):
        console, out, err = build(silent=True)
        emit_all(console)
        assert out.getvalue() == ""
        assert err.getvalue() == ""


class TestFactories:
    def test_null_console_is_silent(self):
        assert Console.null().silent is True

    def test_for_stream_wraps_real_streams(self):
        sink = io.StringIO()
        console = Console.for_stream(sink)
        console.result("hello")
        assert sink.getvalue() == "hello\n"

    def test_for_stream_none_is_silent(self):
        assert Console.for_stream(None).silent is True
