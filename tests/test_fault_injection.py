"""Fault-injection validation of the sequential checker.

The critical two-sided property: the checker must flag every behaviourally
*visible* fault (no false EQUIVALENT) and must not raise a false alarm on
*masked* faults (functionally invisible mutations).  The simulation oracle
decides visibility; the checker must agree.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.mutations import apply_mutation, enumerate_mutations, sample_mutations
from repro.bench.pipeline import fig3_circuit, pipeline_circuit, trapped_latch_circuit
from repro.core.verify import SeqVerdict, check_sequential_equivalence
from repro.netlist.validate import validate_circuit
from repro.sim.exact3 import exact3_equivalent


def visible(circuit, mutant, seed=0, warmup=0) -> bool:
    """Is the fault observable by some concrete execution?

    ``warmup > 0`` switches to the unknown-past semantics the CBF/EDBF
    reduction encodes (see EXPERIMENTS.md finding 2): transient-only
    differences — a mutant whose early-cycle output is a constant where the
    original's is power-up garbage — are *safe replacements* and are not
    counted as visible under that reading.
    """
    rng = random.Random(seed)
    seqs = [
        [{i: rng.random() < 0.5 for i in circuit.inputs} for _ in range(6)]
        for _ in range(120)
    ]
    return not exact3_equivalent(circuit, mutant, seqs, warmup=warmup)


class TestEnumerate:
    def test_covers_all_fault_kinds(self):
        c = pipeline_circuit(stages=2, width=3, seed=3, enable=True)
        kinds = {m.kind for m in enumerate_mutations(c)}
        assert {"stuck_at_0", "stuck_at_1", "negation", "wrong_gate"} <= kinds
        assert "latch_bypass" in kinds
        assert "enable_stuck" in kinds

    def test_mutants_are_valid_circuits(self):
        c = pipeline_circuit(stages=2, width=3, seed=3)
        for mutation in enumerate_mutations(c)[:20]:
            mutant = apply_mutation(c, mutation)
            validate_circuit(mutant)
            assert set(mutant.inputs) == set(c.inputs)
            assert set(mutant.outputs) == set(c.outputs)

    def test_describe(self):
        c = fig3_circuit()
        m = enumerate_mutations(c)[0]
        assert m.target in m.describe()


class TestCheckerAgainstFaults:
    @pytest.mark.parametrize(
        "builder,seed",
        [
            (lambda: fig3_circuit(), 0),
            (lambda: pipeline_circuit(stages=2, width=3, seed=1), 1),
            (lambda: trapped_latch_circuit(width=3, seed=2), 2),
        ],
    )
    def test_regular_circuits_two_sided(self, builder, seed):
        circuit = builder()
        caught, errors = 0, []
        for mutation, mutant in sample_mutations(circuit, count=12, seed=seed):
            result = check_sequential_equivalence(circuit, mutant)
            if visible(circuit, mutant, seed, warmup=8):
                # Observable after any unknown past: must be flagged.
                if result.verdict is SeqVerdict.EQUIVALENT:
                    errors.append(f"missed visible fault {mutation.describe()}")
                else:
                    caught += 1
            elif not visible(circuit, mutant, seed, warmup=0):
                # Invisible even to strict Def. 1: must not raise an alarm.
                if result.verdict is SeqVerdict.NOT_EQUIVALENT:
                    errors.append(f"false alarm on masked {mutation.describe()}")
        assert not errors, errors
        assert caught > 0  # the sample contained real bugs

    def test_enabled_circuit_never_false_equivalent(self):
        circuit = pipeline_circuit(stages=2, width=3, seed=4, enable=True)
        for mutation, mutant in sample_mutations(circuit, count=10, seed=4):
            result = check_sequential_equivalence(circuit, mutant)
            # Visibility under the unknown-past reading (warmup): a fault
            # observable by a concrete post-warmup execution must never be
            # blessed.  (Transient-only ⊥-vs-defined differences are safe
            # replacements; the EDBF reduction deliberately accepts them —
            # EXPERIMENTS.md finding 2.)
            if visible(circuit, mutant, 4, warmup=8):
                assert result.verdict is not SeqVerdict.EQUIVALENT, (
                    mutation.describe()
                )

    def test_latch_bypass_is_caught(self):
        """The classic off-by-one-cycle bug must always be found."""
        circuit = fig3_circuit()
        mutation = next(
            m
            for m in enumerate_mutations(circuit)
            if m.kind == "latch_bypass"
        )
        mutant = apply_mutation(circuit, mutation)
        result = check_sequential_equivalence(circuit, mutant)
        assert result.verdict is SeqVerdict.NOT_EQUIVALENT
        assert result.counterexample is not None

    def test_enable_stuck_is_flagged(self):
        """Tying an enable high removes the hold path — a real bug."""
        b_seed = 5
        circuit = pipeline_circuit(stages=2, width=2, seed=b_seed, enable=True)
        mutation = next(
            m
            for m in enumerate_mutations(circuit)
            if m.kind == "enable_stuck"
        )
        mutant = apply_mutation(circuit, mutation)
        if visible(circuit, mutant, b_seed):
            result = check_sequential_equivalence(circuit, mutant)
            assert result.verdict is not SeqVerdict.EQUIVALENT


class TestResourceFaults:
    """Resource exhaustion must degrade to UNKNOWN, never flip a verdict.

    The one-sided soundness contract under injected budgets/faults:

    * a *visible* fault may come back NOT_EQUIVALENT or UNKNOWN, never
      EQUIVALENT (no false proof under starvation);
    * a *masked* mutation may come back EQUIVALENT or UNKNOWN, never
      NOT_EQUIVALENT (resource limits cannot conjure a counterexample);
    * a killed sweep worker changes nothing at all versus the serial run.
    """

    def _mutant_pairs(self, seed=0, count=8):
        circuit = fig3_circuit()
        return circuit, list(sample_mutations(circuit, count=count, seed=seed))

    def test_bdd_starvation_never_flips_verdicts(self):
        from repro.runtime.budget import Budget

        circuit, pairs = self._mutant_pairs(seed=11)
        for mutation, mutant in pairs:
            baseline = check_sequential_equivalence(circuit, mutant)
            starved = check_sequential_equivalence(
                circuit,
                mutant,
                budget=Budget(wall_seconds=30.0, bdd_nodes=4),
            )
            assert starved.verdict in (
                baseline.verdict,
                SeqVerdict.UNKNOWN,
            ), mutation.describe()

    def test_expired_deadline_yields_unknown_not_equivalent(self):
        from repro.runtime.budget import Budget

        circuit, pairs = self._mutant_pairs(seed=12)
        flagged = False
        for mutation, mutant in pairs:
            if not visible(circuit, mutant, 12, warmup=8):
                continue
            result = check_sequential_equivalence(
                circuit, mutant, budget=Budget(wall_seconds=0.0)
            )
            # A visible fault under a dead budget: UNKNOWN is acceptable,
            # a blessing is not.
            assert result.verdict is not SeqVerdict.EQUIVALENT, (
                mutation.describe()
            )
            if result.verdict is SeqVerdict.UNKNOWN:
                assert result.reason is not None
                flagged = True
        assert flagged  # the dead budget actually bit somewhere

    def test_conflict_starvation_never_blesses_visible_fault(self):
        from repro.runtime.budget import Budget

        circuit, pairs = self._mutant_pairs(seed=13)
        for mutation, mutant in pairs:
            if not visible(circuit, mutant, 13, warmup=8):
                continue
            result = check_sequential_equivalence(
                circuit,
                mutant,
                budget=Budget(wall_seconds=30.0, sat_conflicts=1),
            )
            assert result.verdict is not SeqVerdict.EQUIVALENT, (
                mutation.describe()
            )

    def test_killed_sweep_worker_preserves_seq_verdict(self, monkeypatch):
        from repro.cec import parallel

        circuit = pipeline_circuit(stages=2, width=3, seed=21)
        pairs = sample_mutations(circuit, count=4, seed=21)
        for mutation, mutant in pairs:
            serial = check_sequential_equivalence(circuit, mutant, n_jobs=1)

            def crash(payload):
                raise RuntimeError("injected worker crash")

            monkeypatch.setattr(parallel, "_fault_hook", crash)
            try:
                faulty = check_sequential_equivalence(
                    circuit, mutant, n_jobs=2
                )
            finally:
                monkeypatch.setattr(parallel, "_fault_hook", None)
            assert faulty.verdict is serial.verdict, mutation.describe()
