"""Tests for structural transformations (exposure, cores, miters)."""

from __future__ import annotations

import pytest

from repro.bench.random_circuits import random_acyclic_sequential, random_combinational
from repro.netlist.build import CircuitBuilder
from repro.netlist.transform import (
    combinational_core,
    cone_of_influence,
    expose_latches,
    miter,
    rebuild_from_core,
    strip_dangling,
)
from repro.netlist.validate import validate_circuit
from repro.sim.logic2 import simulate


class TestExpose:
    def test_expose_breaks_feedback(self):
        b = CircuitBuilder("t")
        (i,) = b.inputs("i")
        b.circuit.add_latch("q", "nq")
        b.NOT("q", name="nq")
        b.output("q", name="o")
        from repro.netlist.graph import feedback_latches

        assert feedback_latches(b.circuit)
        exposed = expose_latches(b.circuit, ["q"])
        validate_circuit(exposed.circuit)
        assert not feedback_latches(exposed.circuit)
        pseudo_in, pseudo_out = exposed.exposed["q"]
        assert pseudo_in in exposed.circuit.inputs
        assert pseudo_out in exposed.circuit.outputs

    def test_expose_enabled_latch_observes_enable(self):
        b = CircuitBuilder("t")
        d, e = b.inputs("d", "e")
        b.latch(d, enable=e, name="q")
        b.output("q", name="o")
        exposed = expose_latches(b.circuit, ["q"])
        # Data and enable nets both become observable.
        assert len(exposed.circuit.outputs) >= 2

    def test_expose_missing_latch_raises(self, builder):
        (a,) = builder.inputs("a")
        builder.latch(a, name="q")
        with pytest.raises(KeyError):
            expose_latches(builder.circuit, ["nope"])

    def test_exposed_output_rewired(self):
        """A PO that was the latch output is redirected to the pseudo PI."""
        b = CircuitBuilder("t")
        (i,) = b.inputs("i")
        q = b.latch(i, name="q")
        b.output("q")
        exposed = expose_latches(b.circuit, ["q"])
        validate_circuit(exposed.circuit)


class TestCombCore:
    @pytest.mark.parametrize("seed", range(4))
    def test_core_roundtrip_preserves_behavior(self, seed):
        c = random_acyclic_sequential(seed=seed, enabled=(seed % 2 == 1))
        core = combinational_core(c)
        assert core.circuit.is_combinational()
        validate_circuit(core.circuit)
        rebuilt = rebuild_from_core(core)
        validate_circuit(rebuilt)
        import random

        rng = random.Random(seed)
        vecs = [{i: rng.random() < 0.5 for i in c.inputs} for _ in range(8)]
        init = {l: False for l in c.latches}
        assert (
            simulate(c, vecs, init).outputs
            == simulate(rebuilt, vecs, init).outputs
        )

    def test_repeated_core_extraction(self):
        """Cutting a rebuilt circuit again must not collide on names."""
        c = random_acyclic_sequential(seed=3)
        once = rebuild_from_core(combinational_core(c))
        twice = rebuild_from_core(combinational_core(once))
        validate_circuit(twice)


class TestMiter:
    def test_identical_circuits_miter_is_zero(self):
        c1 = random_combinational(seed=1)
        c2 = random_combinational(seed=1, name="copy")
        m = miter(c1, c2)
        validate_circuit(m)
        import itertools

        for bits in itertools.product([False, True], repeat=len(m.inputs)):
            vec = dict(zip(m.inputs, bits))
            assert simulate(m, [vec]).outputs[0]["__miter_out"] is False

    def test_different_circuits_miter_fires(self):
        b1 = CircuitBuilder("a")
        x, y = b1.inputs("x", "y")
        b1.output(b1.AND(x, y), name="o")
        b2 = CircuitBuilder("b")
        x, y = b2.inputs("x", "y")
        b2.output(b2.OR(x, y), name="o")
        m = miter(b1.circuit, b2.circuit)
        out = simulate(m, [{"x": True, "y": False}]).outputs[0]["__miter_out"]
        assert out is True

    def test_miter_rejects_sequential(self, builder):
        (a,) = builder.inputs("a")
        builder.output(builder.latch(a), name="o")
        with pytest.raises(ValueError):
            miter(builder.circuit, builder.circuit.copy())

    def test_miter_rejects_mismatched_io(self):
        c1 = random_combinational(n_inputs=3, seed=1)
        c2 = random_combinational(n_inputs=4, seed=1, name="other")
        with pytest.raises(ValueError):
            miter(c1, c2)


class TestStrip:
    def test_strip_dangling_removes_dead_logic(self, builder):
        a, b = builder.inputs("a", "b")
        keep = builder.AND(a, b, name="o")
        builder.NOT(a)  # dangling
        builder.latch(b)  # dangling latch
        builder.output(keep)
        stripped = strip_dangling(builder.circuit)
        assert stripped.num_gates() == 1
        assert stripped.num_latches() == 0

    def test_cone_of_influence_crosses_latches(self, builder):
        a, b = builder.inputs("a", "b")
        q = builder.latch(builder.NOT(a))
        builder.output(builder.AND(q, b), name="o")
        cone = cone_of_influence(builder.circuit)
        assert "a" in cone and "b" in cone
