"""Tests for the ISCAS'89 .bench reader/writer."""

from __future__ import annotations

import pytest

from repro.netlist.bench_format import BenchError, parse_bench, write_bench
from repro.netlist.validate import validate_circuit
from repro.sim.logic2 import simulate

S27_LIKE = """
# toy s-series circuit
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G10 = NAND(G0, G6)
G11 = NOR(G5, G1)
G16 = NOT(G2)
G17 = AND(G10, G16)
"""


class TestParse:
    def test_basic_structure(self):
        c = parse_bench(S27_LIKE)
        validate_circuit(c)
        assert c.inputs == ["G0", "G1", "G2"]
        assert c.outputs == ["G17"]
        assert set(c.latches) == {"G5", "G6"}
        assert c.num_gates() == 4

    def test_gate_semantics(self):
        c = parse_bench(S27_LIKE)
        tr = simulate(
            c,
            [{"G0": True, "G1": False, "G2": False}],
            {"G5": False, "G6": True},
        )
        # G10 = NAND(1, 1) = 0; G16 = NOT(0) = 1; G17 = 0 AND 1 = 0
        assert tr.outputs[0]["G17"] is False

    def test_xor_parity(self):
        text = """
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(o)
o = XOR(a, b, c)
"""
        c = parse_bench(text)
        import itertools

        for bits in itertools.product([False, True], repeat=3):
            vec = dict(zip(["a", "b", "c"], bits))
            expect = (bits[0] + bits[1] + bits[2]) % 2 == 1
            assert simulate(c, [vec]).outputs[0]["o"] == expect

    def test_dffe_extension(self):
        text = """
INPUT(d)
INPUT(e)
OUTPUT(q)
q = DFFE(d, e)
"""
        c = parse_bench(text)
        assert c.latches["q"].enable == "e"

    def test_comments_and_blanks(self):
        c = parse_bench("# header\n\nINPUT(a)\nOUTPUT(a)\n")
        assert c.inputs == ["a"]

    def test_bad_line_raises(self):
        with pytest.raises(BenchError, match="line"):
            parse_bench("GARBAGE !!!")

    def test_bad_function_raises(self):
        with pytest.raises(BenchError, match="unsupported"):
            parse_bench("INPUT(a)\nx = FROB(a)\n")

    def test_dff_arity_checked(self):
        with pytest.raises(BenchError):
            parse_bench("INPUT(a)\nINPUT(b)\nq = DFF(a, b)\n")


class TestWrite:
    def test_roundtrip(self):
        c = parse_bench(S27_LIKE)
        text = write_bench(c)
        c2 = parse_bench(text)
        validate_circuit(c2)
        assert set(c2.latches) == set(c.latches)
        # behavioural check
        import random

        rng = random.Random(1)
        vecs = [
            {i: rng.random() < 0.5 for i in c.inputs} for _ in range(6)
        ]
        init = {l: False for l in c.latches}
        assert simulate(c, vecs, init).outputs == simulate(c2, vecs, init).outputs

    def test_writes_enabled_latch(self):
        c = parse_bench("INPUT(d)\nINPUT(e)\nOUTPUT(q)\nq = DFFE(d, e)\n")
        assert "DFFE(d, e)" in write_bench(c)

    def test_rejects_fancy_covers(self):
        from repro.netlist.build import CircuitBuilder
        from repro.netlist.cube import Sop

        b = CircuitBuilder("t")
        a, c, d = b.inputs("a", "c", "d")
        b.output(b.gate(Sop(3, ("11-", "0-1")), [a, c, d]), name="o")
        with pytest.raises(BenchError, match="tech-decompose"):
            write_bench(b.circuit)

    def test_generated_circuits_writable_after_mapping(self):
        from repro.bench.random_circuits import random_acyclic_sequential
        from repro.synth.techmap import tech_map

        c = random_acyclic_sequential(seed=2)
        mapped = tech_map(c)
        # Mapped circuits may contain constants; strip them via sweep-free
        # check: only assert the writer handles pure INV/NAND/NOR nets.
        try:
            text = write_bench(mapped)
        except BenchError as err:
            assert "constant" in str(err) or "sweep" in str(err)
            return
        c2 = parse_bench(text)
        validate_circuit(c2)
