"""BLIF parser/writer tests."""

from __future__ import annotations

import pytest

from repro.bench.random_circuits import random_acyclic_sequential
from repro.netlist.blif import BlifError, parse_blif, write_blif
from repro.netlist.validate import validate_circuit
from repro.sim.logic2 import simulate


SIMPLE = """
.model test
.inputs a b
.outputs o q
.names a b o
11 1
0- 1
.latch o q 3
.end
"""


class TestParse:
    def test_simple(self):
        c = parse_blif(SIMPLE)
        assert c.name == "test"
        assert c.inputs == ["a", "b"]
        assert c.outputs == ["o", "q"]
        assert "o" in c.gates
        assert "q" in c.latches
        validate_circuit(c)

    def test_offset_cover(self):
        text = """
.model t
.inputs a b
.outputs o
.names a b o
11 0
.end
"""
        c = parse_blif(text)
        tr = simulate(c, [{"a": 1, "b": 1}, {"a": 0, "b": 1}])
        assert tr.outputs[0]["o"] is False
        assert tr.outputs[1]["o"] is True

    def test_constants(self):
        text = """
.model t
.inputs a
.outputs one zero
.names one
1
.names zero
.end
"""
        c = parse_blif(text)
        tr = simulate(c, [{"a": 0}])
        assert tr.outputs[0]["one"] is True
        assert tr.outputs[0]["zero"] is False

    def test_continuation_and_comments(self):
        text = """
# a comment
.model t
.inputs a \\
        b
.outputs o
.names a b o  # trailing comment
11 1
.end
"""
        c = parse_blif(text)
        assert c.inputs == ["a", "b"]

    def test_enable_extension(self):
        text = """
.model t
.inputs d e
.outputs q
.latch d q 3
.enable q e
.end
"""
        c = parse_blif(text)
        assert c.latches["q"].enable == "e"

    def test_enable_unknown_latch(self):
        text = """
.model t
.inputs d e
.outputs d
.enable nope e
.end
"""
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_mixed_cover_rejected(self):
        text = """
.model t
.inputs a
.outputs o
.names a o
1 1
0 0
.end
"""
        with pytest.raises(BlifError):
            parse_blif(text)

    def test_row_outside_names(self):
        with pytest.raises(BlifError):
            parse_blif(".model t\n11 1\n.end\n")

    def test_bad_directive(self):
        with pytest.raises(BlifError):
            parse_blif(".model t\n.frobnicate x\n.end\n")


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_sequential_roundtrip(self, seed):
        c = random_acyclic_sequential(seed=seed, enabled=(seed % 2 == 0))
        text = write_blif(c)
        c2 = parse_blif(text)
        validate_circuit(c2)
        assert set(c2.inputs) == set(c.inputs)
        assert set(c2.outputs) == set(c.outputs)
        assert set(c2.latches) == set(c.latches)
        for name, latch in c.latches.items():
            assert c2.latches[name].enable == latch.enable
        # Behavioural equality on a few traces.
        import random

        rng = random.Random(seed)
        vecs = [
            {i: rng.random() < 0.5 for i in c.inputs} for _ in range(6)
        ]
        init = {l: False for l in c.latches}
        t1 = simulate(c, vecs, init)
        t2 = simulate(c2, vecs, init)
        assert t1.outputs == t2.outputs
