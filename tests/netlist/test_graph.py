"""Tests for structural graph analyses."""

from __future__ import annotations

from repro.netlist.build import CircuitBuilder
from repro.netlist.graph import (
    combinational_fanin_cone,
    feedback_latches,
    has_combinational_cycle,
    is_acyclic_sequential,
    latch_dependency_graph,
    latch_sccs,
    self_loop_latches,
    transitive_fanin,
    transitive_fanout,
)


def toggle_circuit():
    b = CircuitBuilder("toggle")
    (i,) = b.inputs("i")
    b.circuit.add_latch("q", "nq")
    b.NOT("q", name="nq")
    b.output(b.AND("q", i), name="o")
    return b.circuit


def two_latch_ring():
    b = CircuitBuilder("ring")
    (i,) = b.inputs("i")
    b.circuit.add_latch("q0", "d0")
    b.circuit.add_latch("q1", "q0")
    b.XOR("q1", i, name="d0")
    b.output("q1", name="o")
    return b.circuit


class TestFeedbackDetection:
    def test_self_loop(self):
        c = toggle_circuit()
        assert self_loop_latches(c) == {"q"}
        assert feedback_latches(c) == {"q"}
        assert not is_acyclic_sequential(c)

    def test_ring(self):
        c = two_latch_ring()
        assert self_loop_latches(c) == set()
        assert feedback_latches(c) == {"q0", "q1"}
        sccs = latch_sccs(c)
        assert len(sccs) == 1
        assert sccs[0] == frozenset({"q0", "q1"})

    def test_pipeline_is_acyclic(self, builder):
        (a,) = builder.inputs("a")
        builder.output(builder.latch(builder.latch(a)), name="o")
        assert is_acyclic_sequential(builder.circuit)
        assert feedback_latches(builder.circuit) == set()

    def test_enable_dependency_counts(self, builder):
        """A latch whose *enable* depends on a latch creates an edge."""
        (a,) = builder.inputs("a")
        q1 = builder.latch(a, name="q1")
        q2 = builder.latch(a, enable=q1, name="q2")
        g = latch_dependency_graph(builder.circuit)
        assert g.has_edge("q1", "q2")

    def test_dependency_through_gates(self, builder):
        (a,) = builder.inputs("a")
        q1 = builder.latch(a, name="q1")
        x = builder.AND(q1, a)
        y = builder.NOT(x)
        builder.latch(y, name="q2")
        g = latch_dependency_graph(builder.circuit)
        assert g.has_edge("q1", "q2")
        assert not g.has_edge("q2", "q1")


class TestCones:
    def test_transitive_fanin_crosses_latches(self, builder):
        (a,) = builder.inputs("a")
        q = builder.latch(builder.NOT(a))
        o = builder.AND(q, a)
        builder.circuit.add_output(o)
        cone = transitive_fanin(builder.circuit, [o])
        assert "a" in cone and q in cone

    def test_combinational_cone_stops_at_latches(self, builder):
        (a,) = builder.inputs("a")
        g1 = builder.NOT(a)
        q = builder.latch(g1)
        g2 = builder.AND(q, a)
        cone = combinational_fanin_cone(builder.circuit, [g2])
        assert g2 in cone and q in cone and "a" in cone
        assert g1 not in cone  # behind the latch

    def test_transitive_fanout(self, builder):
        (a,) = builder.inputs("a")
        g = builder.NOT(a)
        q = builder.latch(g)
        fan = transitive_fanout(builder.circuit, [a])
        assert g in fan and q in fan

    def test_no_combinational_cycle(self, builder):
        (a,) = builder.inputs("a")
        builder.NOT(a)
        assert not has_combinational_cycle(builder.circuit)
