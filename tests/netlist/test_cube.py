"""Unit and property tests for cube/SOP algebra."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.cube import (
    Sop,
    cube_and,
    cube_contains,
    cube_distance,
    cube_from_literals,
    cube_literals,
)


def cubes(ninputs: int):
    return st.text(alphabet="01-", min_size=ninputs, max_size=ninputs)


def sops(ninputs: int, max_cubes: int = 4):
    return st.lists(cubes(ninputs), min_size=0, max_size=max_cubes).map(
        lambda cs: Sop(ninputs, tuple(cs))
    )


def assignments(ninputs: int):
    return st.lists(st.booleans(), min_size=ninputs, max_size=ninputs)


class TestCubeOps:
    def test_cube_and_basic(self):
        assert cube_and("1-0", "-10") == "110"
        assert cube_and("1--", "0--") is None
        assert cube_and("---", "101") == "101"

    def test_cube_contains(self):
        assert cube_contains("1--", "10-")
        assert not cube_contains("10-", "1--")
        assert cube_contains("---", "010")

    def test_cube_distance(self):
        assert cube_distance("10-", "01-") == 2
        assert cube_distance("1--", "-0-") == 0
        assert cube_distance("111", "110") == 1

    def test_literal_roundtrip(self):
        for cube in ["101", "-1-", "---", "000"]:
            lits = cube_literals(cube)
            assert cube_from_literals(lits, 3) == cube

    def test_literal_conflict_raises(self):
        with pytest.raises(ValueError):
            cube_from_literals({0, 1}, 2)  # x0 negative and positive

    def test_literal_out_of_range(self):
        with pytest.raises(ValueError):
            cube_from_literals({10}, 2)


class TestSopBasics:
    def test_const0(self):
        s = Sop.const0(3)
        assert s.is_const0()
        assert not s.eval_bool([True, True, True])

    def test_const1(self):
        s = Sop.const1(3)
        assert s.is_const1_syntactic()
        assert s.eval_bool([False, False, False])

    def test_const1_zero_arity(self):
        assert Sop.const1(0).eval_bool([])

    def test_arity_check(self):
        with pytest.raises(ValueError):
            Sop(2, ("101",))

    def test_bad_character(self):
        with pytest.raises(ValueError):
            Sop(2, ("1x",))

    def test_literal_function(self):
        s = Sop.literal(3, 1, True)
        assert s.eval_bool([False, True, False])
        assert not s.eval_bool([True, False, True])
        n = Sop.literal(3, 1, False)
        assert n.eval_bool([True, False, True])

    def test_and_or_all(self):
        a = Sop.and_all(3)
        assert a.eval_bool([True, True, True])
        assert not a.eval_bool([True, True, False])
        o = Sop.or_all(3)
        assert o.eval_bool([False, False, True])
        assert not o.eval_bool([False, False, False])

    def test_xor2(self):
        s = Sop.xor2()
        assert s.eval_bool([True, False])
        assert not s.eval_bool([True, True])

    def test_mux(self):
        s = Sop.mux()
        assert s.eval_bool([True, True, False])  # sel -> a
        assert not s.eval_bool([True, False, True])
        assert s.eval_bool([False, False, True])  # !sel -> b

    def test_truth_table_roundtrip(self):
        for bits in range(16):
            s = Sop.from_truth_table(2, bits)
            assert s.truth_table() == bits

    def test_num_literals(self):
        assert Sop(3, ("1-0", "01-")).num_literals == 4

    def test_support(self):
        assert Sop(3, ("1--", "-0-")).support() == {0, 1}

    def test_eval_parallel_matches_bool(self):
        s = Sop(3, ("1-0", "011"))
        words = [0b1010, 0b1100, 0b0110]
        out = s.eval_parallel(words, 0b1111)
        for bit in range(4):
            assignment = [(w >> bit) & 1 == 1 for w in words]
            assert ((out >> bit) & 1 == 1) == s.eval_bool(assignment)


class TestSopSemantics:
    @given(sops(3), assignments(3))
    @settings(max_examples=200, deadline=None)
    def test_complement_correct(self, s, asg):
        assert s.complement().eval_bool(asg) != s.eval_bool(asg)

    @given(sops(3), sops(3), assignments(3))
    @settings(max_examples=200, deadline=None)
    def test_and_or_correct(self, a, b, asg):
        assert a.and_(b).eval_bool(asg) == (a.eval_bool(asg) and b.eval_bool(asg))
        assert a.or_(b).eval_bool(asg) == (a.eval_bool(asg) or b.eval_bool(asg))

    @given(sops(4))
    @settings(max_examples=150, deadline=None)
    def test_minimized_preserves_function(self, s):
        m = s.minimized()
        assert m.truth_table() == s.truth_table()
        assert m.num_literals <= s.num_literals

    @given(sops(4))
    @settings(max_examples=150, deadline=None)
    def test_scc_minimal_preserves_function(self, s):
        assert s.scc_minimal().truth_table() == s.truth_table()

    @given(sops(3))
    @settings(max_examples=100, deadline=None)
    def test_tautology_matches_truth_table(self, s):
        assert s.is_tautology() == (s.truth_table() == (1 << 8) - 1)

    @given(sops(3), sops(3))
    @settings(max_examples=100, deadline=None)
    def test_implies_matches_truth_tables(self, a, b):
        ta, tb = a.truth_table(), b.truth_table()
        assert a.implies(b) == ((ta & ~tb) == 0)

    @given(sops(3), st.integers(min_value=0, max_value=2), st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_cofactor(self, s, index, phase):
        c = s.cofactor(index, phase)
        for m in range(8):
            asg = [(m >> i) & 1 == 1 for i in range(3)]
            if asg[index] == phase:
                assert c.eval_bool(asg) == s.eval_bool(asg)

    @given(sops(3))
    @settings(max_examples=100, deadline=None)
    def test_xor_self_is_zero(self, s):
        assert s.xor(s).truth_table() == 0

    def test_negate_input(self):
        s = Sop(2, ("10",))
        n = s.negate_input(0)
        assert n.eval_bool([False, False])
        assert not n.eval_bool([True, False])

    def test_permute(self):
        s = Sop(2, ("10",))  # x0 AND NOT x1
        p = s.permute([1, 0], 2)
        assert p.eval_bool([False, True])
        assert not p.eval_bool([True, False])

    def test_remove_input_requires_nonsupport(self):
        s = Sop(2, ("1-",))
        with pytest.raises(ValueError):
            s.remove_input(0)
        r = s.remove_input(1)
        assert r.ninputs == 1
