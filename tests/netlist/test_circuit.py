"""Unit tests for the Circuit model and builder."""

from __future__ import annotations

import pytest

from repro.netlist.build import CircuitBuilder
from repro.netlist.circuit import Circuit, Gate, Latch
from repro.netlist.cube import Sop
from repro.netlist.validate import CircuitError, validate_circuit


class TestCircuitConstruction:
    def test_single_driver_invariant(self, builder):
        builder.input("a")
        with pytest.raises(ValueError):
            builder.circuit.add_input("a")
        with pytest.raises(ValueError):
            builder.circuit.add_gate("a", (), Sop.const0(0))
        with pytest.raises(ValueError):
            builder.circuit.add_latch("a", "a")

    def test_gate_arity_checked(self, builder):
        a, b = builder.inputs("a", "b")
        with pytest.raises(ValueError):
            builder.circuit.add_gate("g", (a,), Sop.and_all(2))

    def test_driver_kind(self, builder):
        a = builder.input("a")
        g = builder.NOT(a)
        q = builder.latch(g)
        c = builder.circuit
        assert c.driver_kind(a) == "input"
        assert c.driver_kind(g) == "gate"
        assert c.driver_kind(q) == "latch"
        assert c.driver_kind("nope") is None

    def test_fanin_signals(self, builder):
        a, e = builder.inputs("a", "e")
        q = builder.latch(a, enable=e)
        c = builder.circuit
        assert set(c.fanin_signals(q)) == {a, e}

    def test_fanout_map(self, builder):
        a = builder.input("a")
        g = builder.NOT(a)
        h = builder.AND(a, g)
        fanouts = builder.circuit.fanout_map()
        assert set(fanouts[a]) == {g, h}
        assert fanouts[g] == [h]

    def test_topo_gates_order(self, builder):
        a = builder.input("a")
        g1 = builder.NOT(a)
        g2 = builder.NOT(g1)
        g3 = builder.AND(g1, g2)
        order = [g.output for g in builder.circuit.topo_gates()]
        assert order.index(g1) < order.index(g2) < order.index(g3)

    def test_topo_detects_cycle(self):
        c = Circuit("cyc")
        c.add_input("a")
        c.add_gate("x", ("y", "a"), Sop.and_all(2))
        c.add_gate("y", ("x",), Sop.and_all(1))
        with pytest.raises(ValueError):
            c.topo_gates()

    def test_latch_classes(self, builder):
        a, e = builder.inputs("a", "e")
        builder.latch(a)
        builder.latch(a, enable=e)
        builder.latch(a, enable=e)
        classes = builder.circuit.latch_classes()
        assert len(classes[None]) == 1
        assert len(classes[e]) == 2

    def test_stats(self, builder):
        a = builder.input("a")
        q = builder.latch(builder.NOT(a), name="o")
        builder.output(q)
        s = builder.circuit.stats()
        assert s == {
            "inputs": 1,
            "outputs": 1,
            "gates": 1,
            "latches": 1,
            "literals": 1,
        }


class TestCopyRename:
    def test_copy_is_detached(self, builder):
        a = builder.input("a")
        builder.output(builder.NOT(a), name="o")
        clone = builder.circuit.copy()
        clone.remove_output("o")
        assert "o" in builder.circuit.outputs

    def test_renamed(self, builder):
        a, e = builder.inputs("a", "e")
        q = builder.latch(a, enable=e, name="q")
        builder.output(q)
        renamed = builder.circuit.renamed({"q": "qq", "a": "aa"})
        assert "qq" in renamed.latches
        assert renamed.latches["qq"].data == "aa"
        assert renamed.latches["qq"].enable == "e"
        assert renamed.outputs == ["qq"]

    def test_with_prefix_keeps(self, builder):
        a = builder.input("a")
        g = builder.NOT(a)
        pref = builder.circuit.with_prefix("p_", keep=[a])
        assert "a" in pref.inputs
        assert ("p_" + g) in pref.gates

    def test_fresh_signal(self, builder):
        builder.input("a")
        assert builder.circuit.fresh_signal("a") != "a"
        assert builder.circuit.fresh_signal("b") == "b"


class TestValidate:
    def test_valid_circuit_passes(self, builder):
        a = builder.input("a")
        builder.output(builder.latch(builder.NOT(a)), name="o")
        validate_circuit(builder.circuit)

    def test_undriven_fanin(self):
        c = Circuit("bad")
        c.add_gate("g", ("ghost",), Sop.and_all(1))
        c.add_output("g")
        with pytest.raises(CircuitError):
            validate_circuit(c)

    def test_undriven_output(self):
        c = Circuit("bad")
        c.add_output("ghost")
        with pytest.raises(CircuitError):
            validate_circuit(c)

    def test_undriven_enable(self):
        c = Circuit("bad")
        c.add_input("a")
        c.add_latch("q", "a", enable="ghost")
        c.add_output("q")
        with pytest.raises(CircuitError):
            validate_circuit(c)


class TestBuilder:
    def test_gate_constructors_semantics(self, builder):
        a, b = builder.inputs("a", "b")
        from repro.sim.logic2 import simulate

        outs = {
            "and": builder.AND(a, b),
            "or": builder.OR(a, b),
            "nand": builder.NAND(a, b),
            "nor": builder.NOR(a, b),
            "xor": builder.XOR(a, b),
            "xnor": builder.XNOR(a, b),
            "not": builder.NOT(a),
            "andn": builder.ANDN(a, b),
            "implies": builder.IMPLIES(a, b),
        }
        for name, sig in outs.items():
            builder.output(sig, name="o_" + name)
        expected = {
            (0, 0): dict(and_=0, or_=0, nand=1, nor=1, xor=0, xnor=1, not_=1, andn=0, implies=1),
            (0, 1): dict(and_=0, or_=1, nand=1, nor=0, xor=1, xnor=0, not_=1, andn=0, implies=1),
            (1, 0): dict(and_=0, or_=1, nand=1, nor=0, xor=1, xnor=0, not_=0, andn=1, implies=0),
            (1, 1): dict(and_=1, or_=1, nand=0, nor=0, xor=0, xnor=1, not_=0, andn=0, implies=1),
        }
        key_map = {
            "and": "and_", "or": "or_", "nand": "nand", "nor": "nor",
            "xor": "xor", "xnor": "xnor", "not": "not_", "andn": "andn",
            "implies": "implies",
        }
        for (va, vb), exp in expected.items():
            tr = simulate(builder.circuit, [{"a": bool(va), "b": bool(vb)}])
            for name in outs:
                assert tr.outputs[0]["o_" + name] == bool(exp[key_map[name]]), name

    def test_xor_tree(self, builder):
        sigs = builder.inputs("a", "b", "c", "d", "e")
        out = builder.xor_tree(sigs, name="o")
        builder.circuit.add_output(out)
        from repro.sim.logic2 import simulate

        for m in range(32):
            vec = {s: bool((m >> i) & 1) for i, s in enumerate(sigs)}
            got = simulate(builder.circuit, [vec]).outputs[0]["o"]
            assert got == (bin(m).count("1") % 2 == 1)

    def test_latch_chain(self, builder):
        (a,) = builder.inputs("a")
        outs = builder.latch_chain(a, 3)
        assert len(outs) == 3
        assert builder.circuit.num_latches() == 3

    def test_const_gates(self, builder):
        one = builder.CONST1()
        zero = builder.CONST0()
        builder.output(one, name="o1")
        builder.output(zero, name="o0")
        from repro.sim.logic2 import simulate

        tr = simulate(builder.circuit, [{}])
        assert tr.outputs[0]["o1"] is True
        assert tr.outputs[0]["o0"] is False
