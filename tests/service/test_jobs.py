"""Job/JobResult schemas and the batch-manifest format."""

from __future__ import annotations

import json

import pytest

from repro.api import EXIT_UNKNOWN, VerifyReport
from repro.service.jobs import (
    Job,
    JobResult,
    JobState,
    load_manifest,
    parse_manifest,
)


class TestJob:
    def test_sort_key_orders_by_priority_then_seq(self):
        from repro.api import VerifyRequest

        hi = Job(
            request=VerifyRequest("g.blif", "r.blif", priority=5),
            fingerprint="a",
            seq=7,
        )
        lo = Job(
            request=VerifyRequest("g.blif", "r.blif", priority=0),
            fingerprint="b",
            seq=1,
        )
        assert hi.sort_key() < lo.sort_key()

    def test_to_dict_is_json_stable(self):
        from repro.api import VerifyRequest

        job = Job(
            request=VerifyRequest("g.blif", "r.blif", name="row"),
            fingerprint="abc",
            seq=3,
        )
        data = json.loads(json.dumps(job.to_dict()))
        assert data["fingerprint"] == "abc"
        assert data["state"] == "pending"
        assert data["request"]["name"] == "row"


class TestJobResult:
    def test_exit_code_defined_without_report(self):
        result = JobResult(name="x", fingerprint="f", status="failed")
        assert result.exit_code == EXIT_UNKNOWN

    def test_round_trip(self):
        report = VerifyReport(
            verdict="not_equivalent",
            method="cec",
            name="x",
            fingerprint="f",
            stats={"cec_sat_queries": 3.0},
        )
        result = JobResult(
            name="x",
            fingerprint="f",
            status=JobState.DONE.value,
            report=report,
            attempts=2,
            lane=1,
            elapsed_seconds=0.5,
        )
        data = json.loads(json.dumps(result.to_dict()))
        assert data["exit_code"] == 1
        back = JobResult.from_dict(data)
        assert back.report is not None
        assert back.report.verdict == "not_equivalent"
        assert back.attempts == 2
        assert back.lane == 1
        assert back.exit_code == 1


class TestManifest:
    def test_envelope_with_defaults(self, tmp_path):
        manifest = {
            "version": 1,
            "defaults": {"time_limit": 9.0, "priority": 2},
            "jobs": [
                {"golden": "g.blif", "revised": "r.blif"},
                {"golden": "g.blif", "revised": "r.blif", "priority": 7},
            ],
        }
        requests = parse_manifest(manifest)
        assert [r.priority for r in requests] == [2, 7]
        assert all(r.time_limit == 9.0 for r in requests)

    def test_bare_list_accepted(self):
        requests = parse_manifest(
            [{"golden": "g.blif", "revised": "r.blif", "name": "only"}]
        )
        assert len(requests) == 1
        assert requests[0].name == "only"

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            parse_manifest({"version": 99, "jobs": []})

    def test_bad_row_names_its_index(self):
        with pytest.raises(ValueError, match="row 1"):
            parse_manifest(
                {
                    "version": 1,
                    "jobs": [
                        {"golden": "g.blif", "revised": "r.blif"},
                        {"golden": "g.blif"},  # missing revised
                    ],
                }
            )

    def test_load_manifest_resolves_relative_paths(self, tmp_path):
        from repro.bench.pipeline import pipeline_circuit
        from repro.netlist.blif import write_blif

        circuit = pipeline_circuit(stages=1, width=2, seed=0, name="tiny")
        (tmp_path / "tiny.blif").write_text(write_blif(circuit))
        path = tmp_path / "manifest.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "jobs": [{"golden": "tiny.blif", "revised": "tiny.blif"}],
                }
            )
        )
        requests = load_manifest(path)
        golden, revised = requests[0].load()
        assert golden.name == "tiny"
        assert revised.name == "tiny"
