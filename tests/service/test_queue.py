"""JobQueue: priority order, dedup, backpressure, drain and cancel."""

from __future__ import annotations

import asyncio

import pytest

from repro.api import VerifyRequest
from repro.service.jobs import Job, JobState
from repro.service.queue import JobQueue, QueueClosedError


def _job(name: str, priority: int = 0, fingerprint: str = "") -> Job:
    request = VerifyRequest(
        golden=f"{name}_g.blif",
        revised=f"{name}_r.blif",
        name=name,
        priority=priority,
    )
    return Job(request=request, fingerprint=fingerprint or f"fp-{name}")


def _run(coro):
    return asyncio.run(coro)


class TestOrdering:
    def test_higher_priority_first_then_fifo(self):
        async def scenario():
            queue = JobQueue()
            for job in (
                _job("low-1", priority=0),
                _job("hi", priority=5),
                _job("low-2", priority=0),
                _job("mid", priority=2),
            ):
                queue.submit_nowait(job)
            queue.close()
            order = []
            while True:
                job = await queue.get()
                if job is None:
                    break
                order.append(job.name)
                queue.finish(job, JobState.DONE)
            return order

        assert _run(scenario()) == ["hi", "mid", "low-1", "low-2"]

    def test_pending_names_in_schedule_order(self):
        queue = JobQueue()
        queue.submit_nowait(_job("b", priority=1))
        queue.submit_nowait(_job("a", priority=9))
        assert queue.pending_names() == ["a", "b"]


class TestDedup:
    def test_same_fingerprint_collapses(self):
        async def scenario():
            queue = JobQueue()
            primary = _job("one", fingerprint="same")
            dup = _job("two", fingerprint="same")
            assert queue.submit_nowait(primary) is JobState.PENDING
            assert queue.submit_nowait(dup) is JobState.DEDUPED
            assert len(queue) == 1
            assert queue.unfinished == 1
            got = await queue.get()
            dups = queue.finish(got, JobState.DONE)
            return [d.name for d in dups]

        assert _run(scenario()) == ["two"]

    def test_resubmit_after_finish_runs_again(self):
        async def scenario():
            queue = JobQueue()
            queue.submit_nowait(_job("one", fingerprint="same"))
            job = await queue.get()
            queue.finish(job, JobState.DONE)
            # The fingerprint is no longer in flight: a new submission
            # is a fresh job, not a dedup.
            assert (
                queue.submit_nowait(_job("again", fingerprint="same"))
                is JobState.PENDING
            )

        _run(scenario())


class TestShutdown:
    def test_close_rejects_submissions_and_unblocks_get(self):
        async def scenario():
            queue = JobQueue()
            queue.close()
            with pytest.raises(QueueClosedError):
                queue.submit_nowait(_job("late"))
            assert await queue.get() is None

        _run(scenario())

    def test_cancel_pending_returns_jobs_and_duplicates(self):
        queue = JobQueue()
        queue.submit_nowait(_job("a", fingerprint="fa"))
        queue.submit_nowait(_job("b", fingerprint="fb"))
        queue.submit_nowait(_job("b2", fingerprint="fb"))
        cancelled = queue.cancel_pending()
        assert sorted(j.name for j in cancelled) == ["a", "b", "b2"]
        assert all(j.state is JobState.CANCELLED for j in cancelled)
        assert len(queue) == 0
        assert queue.unfinished == 0

    def test_drain_waits_for_in_flight_work(self):
        async def scenario():
            queue = JobQueue()
            queue.submit_nowait(_job("slow"))
            queue.close()
            finished = []

            async def worker():
                job = await queue.get()
                await asyncio.sleep(0.01)
                queue.finish(job, JobState.DONE)
                finished.append(job.name)

            task = asyncio.ensure_future(worker())
            await queue.drain()
            assert finished == ["slow"]
            await task

        _run(scenario())


class TestBackpressure:
    def test_bounded_put_waits_for_a_slot(self):
        async def scenario():
            queue = JobQueue(maxsize=1)
            await queue.put(_job("first"))
            waiter = asyncio.ensure_future(queue.put(_job("second")))
            await asyncio.sleep(0.01)
            assert not waiter.done()  # blocked: queue is full
            job = await queue.get()  # frees the slot
            await asyncio.wait_for(waiter, timeout=1.0)
            queue.finish(job, JobState.DONE)
            assert len(queue) == 1

        _run(scenario())

    def test_submit_nowait_raises_when_full(self):
        queue = JobQueue(maxsize=1)
        queue.submit_nowait(_job("first"))
        with pytest.raises(asyncio.QueueFull):
            queue.submit_nowait(_job("second"))
