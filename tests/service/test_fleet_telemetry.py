"""Fleet telemetry end-to-end: status role, Prometheus, worker deltas.

Drives a real :class:`TcpServer` on loopback and exercises the three
observation surfaces the fleet exposes: the ``status`` connection role
(`repro status`), the Prometheus text endpoint (``--prom-port``) and the
worker→coordinator metric-delta stream that makes remote work visible in
the coordinator's registry.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    TelemetrySampler,
    validate_snapshot,
    validate_snapshots,
)
from repro.service import BatchRunner, TcpServer, run_worker


@pytest.fixture(scope="module")
def circuit_pair(tmp_path_factory):
    from repro.bench.pipeline import pipeline_circuit
    from repro.netlist.blif import write_blif

    tmp = tmp_path_factory.mktemp("fleet")
    circuit = pipeline_circuit(stages=2, width=3, seed=4, name="fleet")
    path = tmp / "fleet.blif"
    path.write_text(write_blif(circuit))
    return str(path)


@pytest.fixture(scope="module")
def circuit_pairs(tmp_path_factory):
    """Two distinct pairs -> two fingerprints (dedup must not collapse)."""
    from repro.bench.pipeline import pipeline_circuit
    from repro.netlist.blif import write_blif

    tmp = tmp_path_factory.mktemp("fleet2")
    paths = []
    for seed in (4, 5):
        circuit = pipeline_circuit(
            stages=2, width=3, seed=seed, name=f"fleet{seed}"
        )
        path = tmp / f"fleet{seed}.blif"
        path.write_text(write_blif(circuit))
        paths.append(str(path))
    return paths


def _row(path, name):
    return json.dumps({"golden": path, "revised": path, "name": name})


async def _client(port):
    return await asyncio.open_connection("127.0.0.1", port)


async def _send_line(writer, text):
    writer.write((text + "\n").encode())
    await writer.drain()


async def _read_msg(reader, timeout=30.0):
    line = await asyncio.wait_for(reader.readline(), timeout)
    assert line, "connection closed unexpectedly"
    return json.loads(line)


class TestStatusRole:
    def test_one_shot_snapshot(self, circuit_pair):
        async def main():
            runner = BatchRunner(
                jobs=1, use_processes=False, retries=0,
                metrics=MetricsRegistry(),
            )
            server = TcpServer(runner, port=0)
            await server.start()
            try:
                reader, writer = await _client(server.port)
                await _send_line(writer, _row(circuit_pair, "j0"))
                result = await _read_msg(reader)
                assert result["type"] == "result"

                obs_r, obs_w = await _client(server.port)
                await _send_line(
                    obs_w, json.dumps({"type": "hello", "role": "status"})
                )
                snap = await _read_msg(obs_r)
                # One-shot: the server closes after a single snapshot.
                tail = await asyncio.wait_for(obs_r.read(), 10.0)
                writer.close()
                return snap, tail
            finally:
                await server.aclose()

        snap, tail = asyncio.run(main())
        assert validate_snapshot(snap) == []
        assert snap["source"] == "serve"
        assert snap["jobs"]["done"] >= 1
        assert snap["workers"] == {"connected": 0, "lanes": 0}
        assert tail == b""

    def test_watch_streams_until_hangup(self):
        async def main():
            runner = BatchRunner(jobs=1, use_processes=False, retries=0)
            server = TcpServer(runner, port=0)
            await server.start()
            try:
                obs_r, obs_w = await _client(server.port)
                await _send_line(
                    obs_w,
                    json.dumps(
                        {
                            "type": "hello",
                            "role": "status",
                            "watch": True,
                            "interval": 0.05,
                        }
                    ),
                )
                snaps = [await _read_msg(obs_r) for _ in range(3)]
                obs_w.close()
                return snaps
            finally:
                await server.aclose()

        snaps = asyncio.run(main())
        assert validate_snapshots(snaps) == []
        seqs = [s["seq"] for s in snaps]
        assert seqs == sorted(seqs) and len(set(seqs)) == 3

    def test_garbage_status_hello_is_harmless(self):
        async def main():
            runner = BatchRunner(jobs=1, use_processes=False, retries=0)
            server = TcpServer(runner, port=0)
            await server.start()
            try:
                obs_r, obs_w = await _client(server.port)
                await _send_line(
                    obs_w,
                    json.dumps(
                        {
                            "type": "hello",
                            "role": "status",
                            "watch": "nonsense",
                            "interval": "also nonsense",
                        }
                    ),
                )
                snap = await _read_msg(obs_r)
                obs_w.close()
                return snap
            finally:
                await server.aclose()

        assert validate_snapshot(asyncio.run(main())) == []


class TestPrometheusEndpoint:
    def test_scrape_exposes_registry_and_snapshot(self, circuit_pair):
        async def main():
            runner = BatchRunner(
                jobs=1, use_processes=False, retries=0,
                metrics=MetricsRegistry(),
            )
            server = TcpServer(runner, port=0, prom_port=0)
            await server.start()
            assert server.prom_port not in (None, 0)
            try:
                reader, writer = await _client(server.port)
                await _send_line(writer, _row(circuit_pair, "j0"))
                await _read_msg(reader)

                prom_r, prom_w = await asyncio.open_connection(
                    "127.0.0.1", server.prom_port
                )
                prom_w.write(
                    b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                await prom_w.drain()
                raw = await asyncio.wait_for(prom_r.read(), 10.0)
                writer.close()
                return raw.decode("utf-8", "replace")
            finally:
                await server.aclose()

        response = asyncio.run(main())
        head, _, body = response.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.1 200 OK")
        assert "text/plain; version=0.0.4" in head
        assert "# TYPE repro_service_jobs_done counter" in body
        assert "repro_service_jobs_done 1" in body
        assert "repro_telemetry_queue_depth" in body

    def test_prom_endpoint_closes_with_server(self):
        async def main():
            runner = BatchRunner(jobs=1, use_processes=False, retries=0)
            server = TcpServer(runner, port=0, prom_port=0)
            await server.start()
            port = server.prom_port
            await server.aclose()
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.open_connection("127.0.0.1", port)

        asyncio.run(main())


class TestWorkerDeltaStream:
    def test_remote_work_lands_in_coordinator_registry(self, circuit_pairs):
        async def main():
            metrics = MetricsRegistry()
            runner = BatchRunner(
                jobs=1,
                use_processes=False,
                retries=0,
                metrics=metrics,
                lease_ttl=5.0,
            )
            server = TcpServer(runner, port=0, local_lanes=0)
            await server.start()
            worker = asyncio.ensure_future(
                run_worker(
                    "127.0.0.1", server.port, lanes=1, use_processes=False
                )
            )
            try:
                reader, writer = await _client(server.port)
                for i, path in enumerate(circuit_pairs):
                    await _send_line(writer, _row(path, f"j{i}"))
                for _ in circuit_pairs:
                    await _read_msg(reader)
                writer.close()
            finally:
                await server.aclose()
            await asyncio.wait_for(worker, 10.0)
            return metrics

        metrics = asyncio.run(main())
        # The workers' own counters arrived via the delta stream: remote
        # solves are visible coordinator-side, not trapped in the worker.
        assert metrics.counter("service.worker.jobs_solved") == 2.0
        assert metrics.counter("service.metrics.deltas_applied") >= 1.0
        hist = metrics.histogram("service.worker.job_seconds")
        assert hist is not None and hist.count == 2

    def test_worker_identity_on_connection(self, circuit_pair):
        """The worker hello carries host/pid; the server keys deltas on it."""

        async def main():
            metrics = MetricsRegistry()
            runner = BatchRunner(
                jobs=1,
                use_processes=False,
                retries=0,
                metrics=metrics,
                lease_ttl=5.0,
            )
            server = TcpServer(runner, port=0, local_lanes=0)
            await server.start()
            seen = {}

            async def observe_worker():
                r, w = await _client(server.port)
                await _send_line(
                    w,
                    json.dumps(
                        {
                            "type": "hello",
                            "role": "worker",
                            "lanes": 1,
                            "host": "testhost",
                            "pid": 4242,
                        }
                    ),
                )
                await _read_msg(r)  # welcome
                job = await _read_msg(r)
                assert job["type"] == "job"
                delta = MetricsRegistry()
                delta.inc("service.worker.jobs_solved")
                out = {
                    "report": {
                        "verdict": "equivalent",
                        "method": "edbf",
                        "fingerprint": job["id"],
                    },
                    "error": None,
                    "attempts": 1,
                    "elapsed": 0.01,
                    "events": [],
                    "metrics": None,
                }
                await _send_line(
                    w,
                    json.dumps(
                        {
                            "type": "result",
                            "id": job["id"],
                            "out": out,
                            "metrics": {
                                "seq": 1,
                                "data": delta.to_dict(),
                            },
                        }
                    ),
                )
                seen.update(
                    {c.key: True for c in server._workers}
                )
                w.close()

            fake = asyncio.ensure_future(observe_worker())
            try:
                reader, writer = await _client(server.port)
                await _send_line(writer, _row(circuit_pair, "j0"))
                await _read_msg(reader)
                writer.close()
                await asyncio.wait_for(fake, 10.0)
            finally:
                await server.aclose()
            return metrics, seen

        metrics, seen = asyncio.run(main())
        assert any("testhost:4242" in key for key in seen)
        assert metrics.counter("service.worker.jobs_solved") == 1.0

    def test_malformed_result_fails_job_without_wedging(self, circuit_pair):
        """A worker answering garbage `out` must not strand the job."""

        async def main():
            metrics = MetricsRegistry()
            runner = BatchRunner(
                jobs=1,
                use_processes=False,
                retries=0,
                metrics=metrics,
                lease_ttl=5.0,
            )
            server = TcpServer(runner, port=0, local_lanes=0)
            await server.start()

            async def hostile_worker():
                r, w = await _client(server.port)
                await _send_line(
                    w,
                    json.dumps(
                        {"type": "hello", "role": "worker", "lanes": 1}
                    ),
                )
                await _read_msg(r)  # welcome
                job = await _read_msg(r)
                # `out` is not an execute_request dict: no "report" key.
                await _send_line(
                    w,
                    json.dumps(
                        {
                            "type": "result",
                            "id": job["id"],
                            "out": {"nonsense": True},
                        }
                    ),
                )
                return w

            hostile = asyncio.ensure_future(hostile_worker())
            try:
                reader, writer = await _client(server.port)
                await _send_line(writer, _row(circuit_pair, "j0"))
                answer = await _read_msg(reader)
                writer.close()
                (await asyncio.wait_for(hostile, 10.0)).close()
            finally:
                await server.aclose()
            return metrics, answer

        metrics, answer = asyncio.run(main())
        assert answer["status"] == "failed"
        assert answer["report"]["verdict"] == "unknown"
        assert metrics.counter("service.transport.malformed_results") == 1.0


class TestRunnerTelemetry:
    def test_batch_run_records_schema_valid_series(self, circuit_pairs):
        from repro.api import VerifyRequest

        async def main():
            sink = []
            runner = BatchRunner(
                jobs=1,
                use_processes=False,
                retries=0,
                metrics=MetricsRegistry(),
                telemetry=TelemetrySampler(
                    sink=sink, interval=0.05, source="batch"
                ),
            )
            requests = [
                VerifyRequest(golden=path, revised=path, name=f"j{i}")
                for i, path in enumerate(circuit_pairs)
            ]
            results = await runner.run(requests)
            return sink, results

        sink, results = asyncio.run(main())
        assert all(r.report.verdict == "equivalent" for r in results)
        assert sink, "no snapshots recorded"
        assert validate_snapshots(sink) == []
        final = sink[-1]
        assert final["source"] == "batch"
        assert final["jobs"]["done"] == 2
        assert final["queue"]["unfinished"] == 0
