"""The ``repro serve`` stdio loop under hostile input.

The loop's contract: per-line degradation, never per-stream.  Malformed
JSON, an oversized line, or a line truncated by mid-stream EOF each
produce exactly one structured ``{"type": "error"}`` response; the loop
keeps serving afterwards, and no queue slot leaks (a bounded queue stays
usable for later jobs).
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.service.scheduler import BatchRunner


@pytest.fixture(scope="module")
def pair(tmp_path_factory):
    from repro.bench.pipeline import pipeline_circuit
    from repro.netlist.blif import write_blif

    tmp = tmp_path_factory.mktemp("hostile")
    golden = pipeline_circuit(stages=2, width=3, seed=1, name="g")
    path = tmp / "g.blif"
    path.write_text(write_blif(golden))
    return str(path)


def _serve(lines, *, queue_maxsize=0, max_line_bytes=1 << 20, jobs=1):
    runner = BatchRunner(jobs=jobs, use_processes=False, retries=0)
    out = io.StringIO()
    emitted = asyncio.run(
        runner.serve(
            io.StringIO(lines),
            out,
            queue_maxsize=queue_maxsize,
            max_line_bytes=max_line_bytes,
        )
    )
    rows = [json.loads(line) for line in out.getvalue().splitlines()]
    return emitted, rows


def _row(pair, name):
    return json.dumps({"golden": pair, "revised": pair, "name": name})


class TestHostileStdio:
    def test_malformed_json_gets_one_error_and_loop_survives(self, pair):
        lines = "\n".join(
            ["{this is not json", _row(pair, "after-garbage")]
        ) + "\n"
        emitted, rows = _serve(lines)
        errors = [r for r in rows if r["type"] == "error"]
        results = [r for r in rows if r["type"] == "result"]
        assert len(errors) == 1
        assert len(results) == 1 and emitted == 1
        assert results[0]["name"] == "after-garbage"
        assert results[0]["report"]["verdict"] == "equivalent"

    def test_wrong_shape_row_gets_structured_error(self, pair):
        lines = "\n".join(
            [json.dumps({"golden": pair}), _row(pair, "ok")]
        ) + "\n"
        _, rows = _serve(lines)
        errors = [r for r in rows if r["type"] == "error"]
        assert len(errors) == 1 and errors[0]["error"]

    def test_oversized_line_rejected_not_fatal(self, pair):
        big = json.dumps(
            {"golden": pair, "revised": pair, "name": "x" * 4096}
        )
        lines = "\n".join([big, _row(pair, "small")]) + "\n"
        emitted, rows = _serve(lines, max_line_bytes=1024)
        errors = [r for r in rows if r["type"] == "error"]
        results = [r for r in rows if r["type"] == "result"]
        assert len(errors) == 1
        assert "exceeds" in errors[0]["error"]
        assert [r["name"] for r in results] == ["small"]
        assert emitted == 1

    def test_midstream_eof_truncated_line(self, pair):
        # The final line has no newline and is cut mid-JSON: one error,
        # and the complete job before it is still answered.
        truncated = _row(pair, "never-finished")[:25]
        lines = _row(pair, "whole") + "\n" + truncated
        emitted, rows = _serve(lines)
        errors = [r for r in rows if r["type"] == "error"]
        results = [r for r in rows if r["type"] == "result"]
        assert len(errors) == 1
        assert [r["name"] for r in results] == ["whole"]
        assert emitted == 1

    def test_no_queue_slot_leak_on_bounded_queue(self, pair):
        """Rejected lines must not consume bounded-queue slots.

        With maxsize=1, ten hostile lines followed by three real jobs
        only works if errors never occupy (and leak) queue capacity.
        """
        hostile = ["{broken" for _ in range(10)]
        good = [_row(pair, f"job{i}") for i in range(3)]
        lines = "\n".join(hostile + good) + "\n"
        emitted, rows = _serve(lines, queue_maxsize=1)
        errors = [r for r in rows if r["type"] == "error"]
        results = [r for r in rows if r["type"] == "result"]
        assert len(errors) == 10
        assert len(results) == 3 and emitted == 3
        statuses = {r["status"] for r in results}
        assert statuses <= {"done", "deduped"}

    def test_blank_lines_ignored(self, pair):
        lines = "\n\n" + _row(pair, "solo") + "\n\n"
        emitted, rows = _serve(lines)
        assert emitted == 1
        assert all(r["type"] == "result" for r in rows)
