"""The TCP transport: clients, remote workers, leases, drain, timeouts.

Drives a real :class:`TcpServer` on a loopback socket with real protocol
traffic: plain clients, the :func:`run_worker` helper, and hand-rolled
"hostile" workers that accept jobs and then vanish — the scenario the
lease machinery exists for.  The acceptance property throughout: every
accepted job is answered exactly once, no matter which peer died.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import BatchRunner, TcpServer, run_worker
from repro.service.scheduler import execute_request
from repro.service.transport import parse_hostport


@pytest.fixture(scope="module")
def circuits(tmp_path_factory):
    """Three distinct (trivially equivalent) pairs -> three fingerprints."""
    from repro.bench.pipeline import pipeline_circuit
    from repro.netlist.blif import write_blif

    tmp = tmp_path_factory.mktemp("tcp")
    paths = []
    for seed in (1, 2, 3):
        c = pipeline_circuit(stages=2, width=3, seed=seed, name=f"c{seed}")
        path = tmp / f"c{seed}.blif"
        path.write_text(write_blif(c))
        paths.append(str(path))
    return paths


def _row(path, name):
    return json.dumps({"golden": path, "revised": path, "name": name})


async def _client(port):
    return await asyncio.open_connection("127.0.0.1", port)


async def _send_line(writer, text):
    writer.write((text + "\n").encode())
    await writer.drain()


async def _read_msg(reader, timeout=30.0):
    line = await asyncio.wait_for(reader.readline(), timeout)
    assert line, "connection closed unexpectedly"
    return json.loads(line)


class TestParseHostport:
    def test_forms(self):
        assert parse_hostport("1.2.3.4:99") == ("1.2.3.4", 99)
        assert parse_hostport(":99") == ("127.0.0.1", 99)
        assert parse_hostport("somehost") == ("somehost", 9431)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_hostport("")
        with pytest.raises(ValueError):
            parse_hostport("host:notaport")
        with pytest.raises(ValueError):
            parse_hostport("host:70000")


class TestClientRole:
    def test_round_trip_with_per_line_errors(self, circuits):
        async def main():
            runner = BatchRunner(jobs=2, use_processes=False, retries=0)
            server = TcpServer(runner, port=0)
            await server.start()
            try:
                reader, writer = await _client(server.port)
                await _send_line(writer, _row(circuits[0], "a"))
                await _send_line(writer, "{broken json")
                await _send_line(writer, _row(circuits[1], "b"))
                msgs = [await _read_msg(reader) for _ in range(3)]
                writer.close()
            finally:
                await server.aclose()
            kinds = sorted(m["type"] for m in msgs)
            assert kinds == ["error", "result", "result"]
            results = {m["name"]: m for m in msgs if m["type"] == "result"}
            assert set(results) == {"a", "b"}
            for m in results.values():
                assert m["report"]["verdict"] == "equivalent"
                assert m["exit_code"] == 0

        asyncio.run(main())

    def test_results_route_to_the_submitting_connection(self, circuits):
        async def main():
            runner = BatchRunner(jobs=2, use_processes=False, retries=0)
            server = TcpServer(runner, port=0)
            await server.start()
            try:
                r1, w1 = await _client(server.port)
                r2, w2 = await _client(server.port)
                await _send_line(w1, _row(circuits[0], "mine"))
                await _send_line(w2, _row(circuits[1], "yours"))
                m1 = await _read_msg(r1)
                m2 = await _read_msg(r2)
                w1.close()
                w2.close()
            finally:
                await server.aclose()
            assert m1["name"] == "mine"
            assert m2["name"] == "yours"

        asyncio.run(main())

    def test_read_timeout_answers_then_disconnects(self, circuits):
        async def main():
            runner = BatchRunner(jobs=1, use_processes=False, retries=0)
            server = TcpServer(runner, port=0, read_timeout=0.15)
            await server.start()
            try:
                reader, writer = await _client(server.port)
                # Say nothing: the server must not pin this connection.
                msg = await _read_msg(reader, timeout=10.0)
                tail = await asyncio.wait_for(reader.read(), 10.0)
                writer.close()
            finally:
                await server.aclose()
            assert msg["type"] == "error"
            assert "no input" in msg["error"]
            assert tail == b""  # then EOF

        asyncio.run(main())

    def test_oversized_line_errors_and_closes(self, circuits):
        async def main():
            runner = BatchRunner(jobs=1, use_processes=False, retries=0)
            server = TcpServer(runner, port=0, max_line_bytes=256)
            await server.start()
            try:
                reader, writer = await _client(server.port)
                await _send_line(writer, _row(circuits[0], "ok-size"))
                first = await _read_msg(reader)
                await _send_line(writer, "x" * 4096)
                second = await _read_msg(reader, timeout=10.0)
                writer.close()
            finally:
                await server.aclose()
            assert first["type"] == "result"
            assert second["type"] == "error"
            assert "exceeds" in second["error"]

        asyncio.run(main())

    def test_shutdown_drains_accepted_jobs(self, circuits):
        async def main():
            runner = BatchRunner(jobs=1, use_processes=False, retries=0)
            server = TcpServer(runner, port=0)
            await server.start()
            reader, writer = await _client(server.port)
            await _send_line(writer, _row(circuits[0], "accepted"))
            # SIGTERM semantics: stop intake, finish what was accepted.
            # (Wait for intake so the job is "accepted", not in flight
            # on the socket — drain only owes answers for accepted work.)
            while server._queue.unfinished == 0 and server.emitted == 0:
                await asyncio.sleep(0.005)
            server.request_shutdown()
            msg = await _read_msg(reader)
            writer.close()
            await server.aclose()
            assert msg["type"] == "result"
            assert msg["name"] == "accepted"
            assert msg["report"]["verdict"] == "equivalent"

        asyncio.run(main())


class TestWorkerRole:
    def test_remote_worker_solves_everything(self, circuits):
        async def main():
            runner = BatchRunner(
                jobs=1, use_processes=False, retries=0, lease_ttl=5.0
            )
            server = TcpServer(runner, port=0, local_lanes=0)
            await server.start()
            worker = asyncio.ensure_future(
                run_worker("127.0.0.1", server.port, lanes=2)
            )
            try:
                reader, writer = await _client(server.port)
                for i, path in enumerate(circuits):
                    await _send_line(writer, _row(path, f"j{i}"))
                msgs = [await _read_msg(reader) for _ in circuits]
                writer.close()
            finally:
                await server.aclose()
            solved = await asyncio.wait_for(worker, 10.0)
            assert solved == len(circuits)
            assert {m["name"] for m in msgs} == {"j0", "j1", "j2"}
            for m in msgs:
                assert m["report"]["verdict"] == "equivalent"
                assert str(m["lane"]).startswith("tcp:")

        asyncio.run(main())

    def test_killed_worker_jobs_requeued_and_batch_completes(self, circuits):
        """The acceptance scenario: kill a TCP worker mid-batch.

        A saboteur worker accepts one job and drops the connection
        without answering.  Its lease is charged immediately and the job
        reinjected; an honest worker that joins afterwards finishes the
        whole batch.  Nothing is lost, nothing double-answered.
        """

        async def main():
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
            runner = BatchRunner(
                jobs=1,
                use_processes=False,
                retries=0,
                metrics=metrics,
                lease_ttl=5.0,
                lease_backoff=0.0,
                lease_backoff_cap=0.0,
            )
            server = TcpServer(runner, port=0, local_lanes=0)
            await server.start()

            # The saboteur: hello, take one job, die without answering.
            sab_r, sab_w = await _client(server.port)
            await _send_line(
                sab_w, json.dumps({"type": "hello", "role": "worker", "lanes": 1})
            )
            welcome = await _read_msg(sab_r)
            assert welcome["type"] == "welcome"

            reader, writer = await _client(server.port)
            for i, path in enumerate(circuits):
                await _send_line(writer, _row(path, f"j{i}"))

            job_msg = await _read_msg(sab_r)  # the doomed dispatch
            assert job_msg["type"] == "job"
            sab_w.close()  # killed mid-solve

            honest = asyncio.ensure_future(
                run_worker("127.0.0.1", server.port, lanes=1)
            )
            try:
                msgs = [
                    await _read_msg(reader, timeout=60.0) for _ in circuits
                ]
                writer.close()
            finally:
                await server.aclose()
            await asyncio.wait_for(honest, 10.0)

            assert {m["name"] for m in msgs} == {"j0", "j1", "j2"}
            for m in msgs:
                assert m["type"] == "result"
                assert m["report"]["verdict"] == "equivalent"
            assert metrics.counter("service.lease.expired") >= 1
            assert metrics.counter("service.lease.requeued") >= 1
            assert metrics.counter("service.lease.poisoned") == 0

        asyncio.run(main())

    def test_heartbeats_keep_a_slow_worker_leased(self, circuits):
        """A worker slower than the TTL survives by heartbeating."""

        async def main():
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
            runner = BatchRunner(
                jobs=1,
                use_processes=False,
                retries=0,
                metrics=metrics,
                lease_ttl=0.2,
            )
            server = TcpServer(runner, port=0, local_lanes=0)
            await server.start()

            slow_r, slow_w = await _client(server.port)
            await _send_line(
                slow_w,
                json.dumps({"type": "hello", "role": "worker", "lanes": 1}),
            )
            await _read_msg(slow_r)  # welcome

            reader, writer = await _client(server.port)
            await _send_line(writer, _row(circuits[0], "slow"))
            job_msg = await _read_msg(slow_r)
            fingerprint = job_msg["id"]

            # Stall for 3 TTLs, heartbeating; the lease must hold.
            for _ in range(6):
                await asyncio.sleep(0.1)
                await _send_line(
                    slow_w,
                    json.dumps({"type": "heartbeat", "id": fingerprint}),
                )
            out = execute_request(job_msg["payload"])
            await _send_line(
                slow_w,
                json.dumps(
                    {"type": "result", "id": fingerprint, "out": out}
                ),
            )
            msg = await _read_msg(reader)
            writer.close()
            slow_w.close()
            await server.aclose()

            assert msg["type"] == "result"
            assert msg["report"]["verdict"] == "equivalent"
            assert metrics.counter("service.lease.expired") == 0
            assert metrics.counter("service.lease.requeued") == 0

        asyncio.run(main())
