"""Lease-table semantics and the scheduler's lease-driven requeue.

Pure-bookkeeping tests drive :class:`LeaseTable` from a fake clock;
integration tests run a :class:`BatchRunner` with a tiny TTL against a
workload whose workers hang (via an injected chaos delay), checking the
two lease outcomes: requeue-and-recover, and quarantine-as-poison.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.runtime import chaos
from repro.runtime.budget import REASON_POISON_JOB
from repro.runtime.chaos import FaultPlan, FaultRule
from repro.service.jobs import JobState
from repro.service.lease import Lease, LeaseTable


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def table(clock):
    return LeaseTable(
        ttl=10.0, max_attempts=3, rng=random.Random(0), clock=clock
    )


class TestLeaseTable:
    def test_grant_and_remaining(self, table, clock):
        lease = table.grant("fp1", lane="0")
        assert isinstance(lease, Lease)
        assert table.get("fp1") is lease
        assert table.remaining("fp1") == pytest.approx(10.0)
        clock.advance(4)
        assert table.remaining("fp1") == pytest.approx(6.0)
        assert not table.expired("fp1")

    def test_heartbeat_extends_deadline(self, table, clock):
        table.grant("fp1")
        clock.advance(9)
        assert table.heartbeat("fp1")
        clock.advance(9)
        assert not table.expired("fp1")  # extended past the original TTL
        assert table.get("fp1").heartbeats == 1

    def test_heartbeat_after_expiry_tells_stale_holder(self, table, clock):
        table.grant("fp1")
        clock.advance(11)
        assert table.expired("fp1")
        table.expire("fp1")
        # The lease is gone: the presumed-dead holder's heartbeat fails,
        # so it knows to drop its result instead of racing the re-run.
        assert not table.heartbeat("fp1")

    def test_expiries_accumulate_until_release(self, table, clock):
        for expected in (1, 2):
            table.grant("fp1")
            clock.advance(11)
            assert table.expire("fp1") == expected
        assert table.expiries("fp1") == 2
        assert not table.poisoned("fp1")
        table.grant("fp1")
        clock.advance(11)
        assert table.expire("fp1") == 3
        assert table.poisoned("fp1")

    def test_release_clears_history(self, table, clock):
        table.grant("fp1")
        clock.advance(11)
        table.expire("fp1")
        table.grant("fp1")
        table.release("fp1")
        assert table.expiries("fp1") == 0
        assert table.get("fp1") is None

    def test_remaining_clamps_at_zero(self, table, clock):
        table.grant("fp1")
        clock.advance(50)
        assert table.remaining("fp1") == 0.0
        assert table.expired("fp1")

    def test_sweep_pops_only_expired(self, table, clock):
        table.grant("old")
        clock.advance(6)
        table.grant("young")
        clock.advance(5)  # old at 11s (expired), young at 5s (live)
        dead = table.sweep()
        assert [lease.fingerprint for lease in dead] == ["old"]
        assert table.expiries("old") == 1
        assert table.get("young") is not None

    def test_regrant_bumps_token(self, table):
        first = table.grant("fp1")
        second = table.grant("fp1")
        assert second.token > first.token

    def test_backoff_deterministic_and_capped(self, clock):
        a = LeaseTable(ttl=1, rng=random.Random(3), clock=clock)
        b = LeaseTable(ttl=1, rng=random.Random(3), clock=clock)
        pauses_a = [a.backoff(k) for k in range(1, 6)]
        pauses_b = [b.backoff(k) for k in range(1, 6)]
        assert pauses_a == pauses_b
        assert all(0 <= p <= a.backoff_cap for p in pauses_a)


@pytest.fixture
def hang_workload(tmp_path):
    """One real circuit pair; chaos makes its workers 'hang'."""
    from repro.bench.pipeline import pipeline_circuit
    from repro.netlist.blif import write_blif

    golden = pipeline_circuit(stages=2, width=3, seed=1, name="g")
    path = tmp_path / "g.blif"
    path.write_text(write_blif(golden))
    return str(path)


@pytest.fixture(autouse=True)
def _clean_chaos(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    chaos.uninstall()
    yield
    chaos.uninstall()


def _run(runner, requests):
    return asyncio.run(runner.run(requests))


class TestSchedulerLeases:
    def test_hung_worker_requeued_then_recovers(self, hang_workload):
        """The first dispatch hangs past the TTL; the re-run decides."""
        from repro.api import VerifyRequest
        from repro.obs.metrics import MetricsRegistry
        from repro.service.scheduler import BatchRunner

        # Hit 1 of worker.entry sleeps well past the lease TTL; later
        # hits (the in-worker retries and the requeued dispatch) run
        # clean.  The delay is short enough for the thread to unwind
        # before the test's event loop closes.
        chaos.install(
            FaultPlan(
                [
                    FaultRule(
                        site="worker.entry",
                        action="delay",
                        seconds=0.4,
                        hits=[1],
                    )
                ]
            )
        )
        metrics = MetricsRegistry()
        runner = BatchRunner(
            jobs=1,
            use_processes=False,
            retries=0,
            metrics=metrics,
            lease_ttl=0.1,
            lease_attempts=3,
            lease_backoff=0.0,
            lease_backoff_cap=0.0,
        )
        request = VerifyRequest(
            golden=hang_workload, revised=hang_workload, name="hang-once"
        )
        results = _run(runner, [request])
        assert len(results) == 1
        assert results[0].status == JobState.DONE.value
        assert results[0].report.verdict == "equivalent"
        assert metrics.counter("service.lease.expired") >= 1
        assert metrics.counter("service.lease.requeued") >= 1
        assert metrics.counter("service.lease.poisoned") == 0

    def test_poison_job_quarantined_as_unknown(self, hang_workload):
        """Every dispatch hangs: the job must be quarantined, not loop."""
        from repro.api import VerifyRequest
        from repro.obs.metrics import MetricsRegistry
        from repro.service.scheduler import BatchRunner

        chaos.install(
            FaultPlan(
                [
                    FaultRule(
                        site="worker.entry", action="delay", seconds=0.3
                    )
                ]
            )
        )
        metrics = MetricsRegistry()
        runner = BatchRunner(
            jobs=1,
            use_processes=False,
            retries=0,
            metrics=metrics,
            lease_ttl=0.05,
            lease_attempts=2,
            lease_backoff=0.0,
            lease_backoff_cap=0.0,
        )
        request = VerifyRequest(
            golden=hang_workload, revised=hang_workload, name="poison"
        )
        results = _run(runner, [request])
        assert len(results) == 1
        result = results[0]
        assert result.status == JobState.QUARANTINED.value
        assert result.report.verdict == "unknown"
        assert result.report.reason == REASON_POISON_JOB
        assert result.exit_code == 2
        assert "poison" in (result.error or "")
        assert metrics.counter("service.lease.poisoned") == 1
        assert metrics.counter("service.jobs.quarantined") == 1

    def test_leases_off_by_default(self, hang_workload):
        """No TTL -> no lease machinery engages at all."""
        from repro.api import VerifyRequest
        from repro.obs.metrics import MetricsRegistry
        from repro.service.scheduler import BatchRunner

        metrics = MetricsRegistry()
        runner = BatchRunner(
            jobs=1, use_processes=False, retries=0, metrics=metrics
        )
        assert runner._make_leases() is None
        request = VerifyRequest(
            golden=hang_workload, revised=hang_workload, name="plain"
        )
        results = _run(runner, [request])
        assert results[0].status == JobState.DONE.value
        assert metrics.counter("service.lease.expired") == 0
