"""ResultStore: append-only persistence, resume, header fencing."""

from __future__ import annotations

import json

from repro.api import VerifyReport
from repro.service.jobs import JobResult, JobState
from repro.service.store import ResultStore


def _result(name: str, verdict: str, fingerprint: str = "") -> JobResult:
    fingerprint = fingerprint or f"fp-{name}"
    return JobResult(
        name=name,
        fingerprint=fingerprint,
        status=JobState.DONE.value,
        report=VerifyReport(
            verdict=verdict, method="cbf", name=name, fingerprint=fingerprint
        ),
    )


class TestAppendLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultStore(path) as store:
            store.append(_result("a", "equivalent"))
            store.append(_result("b", "not_equivalent"))
        reopened = ResultStore(path).open()
        try:
            assert len(reopened) == 2
            assert reopened.get("fp-a").report.verdict == "equivalent"
            assert reopened.get("fp-b").report.verdict == "not_equivalent"
        finally:
            reopened.close()

    def test_last_write_per_fingerprint_wins(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultStore(path) as store:
            store.append(_result("a", "unknown", fingerprint="same"))
            store.append(_result("a", "equivalent", fingerprint="same"))
        reopened = ResultStore(path).open()
        try:
            assert reopened.get("same").report.verdict == "equivalent"
        finally:
            reopened.close()

    def test_corrupt_lines_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultStore(path) as store:
            store.append(_result("a", "equivalent"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{torn-write\n")  # simulated crash mid-append
        reopened = ResultStore(path).open()
        try:
            assert len(reopened) == 1
            assert reopened.corrupt_lines == 1
        finally:
            reopened.close()


class TestResume:
    def test_decided_skips_only_definitive_verdicts(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultStore(path) as store:
            store.append(_result("eq", "equivalent"))
            store.append(_result("neq", "not_equivalent"))
            store.append(_result("unk", "unknown"))
        reopened = ResultStore(path).open()
        try:
            assert reopened.decided("fp-eq") is not None
            assert reopened.decided("fp-neq") is not None
            # An unknown verdict is a fact about the budget, not the
            # circuits: it must be re-run, not resumed.
            assert reopened.decided("fp-unk") is None
            assert "fp-unk" in reopened
        finally:
            reopened.close()


class TestHeaderFencing:
    def test_config_mismatch_fences_old_results(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultStore(path, config={"event_rewrite": False}) as store:
            store.append(_result("a", "equivalent"))
        # Same file, different verdict-relevant config: prior results
        # must not resume, and a fresh fencing header is appended.
        second = ResultStore(path, config={"event_rewrite": True}).open()
        try:
            assert len(second) == 0
            assert second.fenced_results == 1
            second.append(_result("b", "equivalent"))
        finally:
            second.close()
        # Re-open under each config: only its own results are visible.
        under_new = ResultStore(path, config={"event_rewrite": True}).open()
        try:
            assert under_new.get("fp-b") is not None
            assert under_new.get("fp-a") is None
        finally:
            under_new.close()

    def test_headerless_file_is_fenced_wholesale(self, tmp_path):
        path = tmp_path / "results.jsonl"
        line = {"type": "result", **_result("a", "equivalent").to_dict()}
        path.write_text(json.dumps(line) + "\n")
        store = ResultStore(path).open()
        try:
            assert len(store) == 0
            assert store.fenced_results == 1
        finally:
            store.close()

    def test_file_stays_append_only(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with ResultStore(path, config={"v": 1}) as store:
            store.append(_result("a", "equivalent"))
        size_before = path.stat().st_size
        with ResultStore(path, config={"v": 2}) as store:
            store.append(_result("b", "equivalent"))
        # The fence never rewrites history; the file only grows.
        assert path.stat().st_size > size_before
        first_line = path.read_text().splitlines()[0]
        assert json.loads(first_line)["type"] == "header"
