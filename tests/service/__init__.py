"""Tests for the batch verification service (repro.service)."""
