"""The seeded fault matrix: no chaos plan may lose or flip a job.

One mixed ~50-row workload runs fault-free to establish a baseline, then
re-runs under each seeded :class:`FaultPlan` in the matrix — worker
crashes, dispatch delays, store-append crashes, cache-save crashes,
transport drops, poison jobs.  The acceptance invariants, checked for
every plan:

* **accounted** — every submitted job comes back decided, UNKNOWN with a
  ``REASON_*`` code, or failed-with-error; none vanish;
* **verdict identity** — any job that still reaches a decided verdict
  under faults reaches the *same* verdict as the fault-free baseline
  (faults may cost answers, never change them);
* **store survives** — the result store written under fire loads back
  cleanly and can seed a resume.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.api import VerifyRequest
from repro.obs.metrics import MetricsRegistry
from repro.runtime import chaos
from repro.runtime.budget import KNOWN_REASONS, REASON_POISON_JOB
from repro.runtime.chaos import FaultPlan, FaultRule
from repro.service.jobs import JobState
from repro.service.scheduler import BatchRunner
from repro.service.store import ResultStore

DECIDED = {"equivalent", "not_equivalent"}

#: Terminal statuses a chaos run may produce (anything else = a lost job).
ACCOUNTED = {
    JobState.DONE.value,
    JobState.FAILED.value,
    JobState.DEDUPED.value,
    JobState.RESUMED.value,
    JobState.QUARANTINED.value,
}


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """~50 manifest rows over 8 distinct fingerprints (eq and neq)."""
    from repro.bench.mutations import apply_mutation, enumerate_mutations
    from repro.bench.pipeline import pipeline_circuit
    from repro.netlist.blif import write_blif

    tmp = tmp_path_factory.mktemp("matrix")
    pairs = []
    for seed in (1, 2, 3, 4, 5):
        c = pipeline_circuit(stages=2, width=3, seed=seed, name=f"c{seed}")
        path = tmp / f"c{seed}.blif"
        path.write_text(write_blif(c))
        pairs.append((str(path), str(path)))  # identical: equivalent
    for seed in (1, 2, 3):
        c = pipeline_circuit(stages=2, width=3, seed=seed, name=f"c{seed}")
        mutation = next(
            m for m in enumerate_mutations(c) if m.kind == "negation"
        )
        mutant = apply_mutation(c, mutation)
        path = tmp / f"m{seed}.blif"
        path.write_text(write_blif(mutant))
        pairs.append((str(tmp / f"c{seed}.blif"), str(path)))  # refutable
    requests = []
    for index in range(48):
        golden, revised = pairs[index % len(pairs)]
        requests.append(
            VerifyRequest(golden=golden, revised=revised, name=f"row{index}")
        )
    return requests


@pytest.fixture(autouse=True)
def _clean_chaos(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    chaos.uninstall()
    yield
    chaos.uninstall()


def _run_batch(requests, *, store=None, plan=None, resume=False, **kwargs):
    if plan is not None:
        chaos.install(plan)
    else:
        chaos.uninstall()
    kwargs.setdefault("retries", 2)
    runner = BatchRunner(
        jobs=2,
        use_processes=False,
        store=store,
        resume=resume,
        **kwargs,
    )
    try:
        return asyncio.run(runner.run(requests))
    finally:
        chaos.uninstall()


def _assert_accounted(requests, results):
    assert len(results) == len(requests)
    for request, result in zip(requests, results):
        assert result.name == request.name
        assert result.status in ACCOUNTED, result.status
        assert result.exit_code in (0, 1, 2)
        report = result.report
        assert report is not None
        if report.verdict == "unknown":
            assert report.reason, f"{result.name}: unknown without a reason"
            assert report.reason in KNOWN_REASONS


def _assert_verdict_identity(baseline, results):
    expected = {r.name: r.report.verdict for r in baseline}
    for result in results:
        verdict = result.report.verdict
        if verdict in DECIDED:
            assert verdict == expected[result.name], result.name


@pytest.fixture(scope="module")
def baseline(workload):
    chaos.uninstall()
    runner = BatchRunner(jobs=2, use_processes=False, retries=2)
    results = asyncio.run(runner.run(workload))
    verdicts = {r.report.verdict for r in results}
    assert verdicts == DECIDED  # the workload exercises both outcomes
    return results


class TestFaultMatrix:
    def test_worker_crash_storm(self, workload, baseline):
        plan = FaultPlan(
            [FaultRule(site="worker.entry", action="crash", every=3)],
            seed=11,
        )
        results = _run_batch(workload, plan=plan)
        assert chaos.uninstall() is None  # _run_batch cleans up
        _assert_accounted(workload, results)
        _assert_verdict_identity(baseline, results)
        assert plan.fired("worker.entry") >= 1

    def test_dispatch_delays(self, workload, baseline):
        plan = FaultPlan(
            [
                FaultRule(
                    site="scheduler.dispatch",
                    action="delay",
                    seconds=0.01,
                    every=4,
                )
            ],
            seed=12,
        )
        results = _run_batch(workload, plan=plan)
        _assert_accounted(workload, results)
        _assert_verdict_identity(baseline, results)
        # Pure delays may never cost an answer, only time.
        assert {r.report.verdict for r in results} == DECIDED
        assert plan.fired("scheduler.dispatch") >= 1

    def test_store_append_crashes(self, workload, baseline, tmp_path):
        store_path = tmp_path / "under-fire.jsonl"
        plan = FaultPlan(
            [FaultRule(site="store.append", action="crash", hits=[2, 5, 7])],
            seed=13,
        )
        with pytest.warns(RuntimeWarning, match="store append failed"):
            results = _run_batch(workload, store=str(store_path), plan=plan)
        _assert_accounted(workload, results)
        _assert_verdict_identity(baseline, results)
        # Losing a store line loses durability for that job, never the
        # in-memory answer: every job still reported a decided verdict.
        assert {r.report.verdict for r in results} == DECIDED
        assert plan.fired("store.append") == 3
        # The store written under fire loads back cleanly...
        reloaded = ResultStore(store_path).open()
        assert reloaded.corrupt_lines == 0
        assert len(reloaded) >= 1
        reloaded.close()
        # ...and can seed a resume that fills the dropped lines back in.
        resumed = _run_batch(workload, store=str(store_path), resume=True)
        _assert_accounted(workload, resumed)
        _assert_verdict_identity(baseline, resumed)

    def test_cache_save_crashes(self, workload, baseline, tmp_path):
        plan = FaultPlan(
            [FaultRule(site="cache.save", action="crash", every=2)],
            seed=14,
        )
        results = _run_batch(
            workload, plan=plan, cache=str(tmp_path / "cache.json")
        )
        _assert_accounted(workload, results)
        _assert_verdict_identity(baseline, results)
        # A cache-save failure is post-verdict: no answer may be lost.
        assert {r.report.verdict for r in results} == DECIDED
        assert plan.fired("cache.save") >= 1

    def test_transport_drop_midstream(self, workload, baseline):
        """The stdio stream drops mid-batch: accepted jobs still answer."""
        plan = FaultPlan(
            [FaultRule(site="transport.recv", action="crash", hits=[25])],
            seed=15,
        )
        chaos.install(plan)
        runner = BatchRunner(jobs=2, use_processes=False, retries=2)
        lines = "".join(
            json.dumps(
                {"golden": r.golden, "revised": r.revised, "name": r.name}
            )
            + "\n"
            for r in workload
        )
        out = io.StringIO()
        try:
            emitted = asyncio.run(runner.serve(io.StringIO(lines), out))
        finally:
            chaos.uninstall()
        rows = [json.loads(line) for line in out.getvalue().splitlines()]
        results = [r for r in rows if r["type"] == "result"]
        # The 25th line was dropped with the rest of the stream: exactly
        # the 24 accepted jobs are answered — each one, exactly once.
        assert plan.fired("transport.recv") == 1
        assert emitted == len(results) == 24
        expected = {r.name: r.report.verdict for r in baseline}
        names = [r["name"] for r in results]
        assert sorted(names) == sorted(f"row{i}" for i in range(24))
        for row in results:
            verdict = row["report"]["verdict"]
            if verdict in DECIDED:
                assert verdict == expected[row["name"]]

    def test_poison_jobs_quarantined(self, workload, baseline):
        """Jobs that hang every dispatch are quarantined, not looped."""
        poison_rows = workload[:3]
        plan = FaultPlan(
            [FaultRule(site="worker.entry", action="delay", seconds=0.3)],
            seed=16,
        )
        metrics = MetricsRegistry()
        results = _run_batch(
            poison_rows,
            plan=plan,
            metrics=metrics,
            retries=0,
            lease_ttl=0.05,
            lease_attempts=2,
            lease_backoff=0.0,
            lease_backoff_cap=0.0,
        )
        _assert_accounted(poison_rows, results)
        primary = [r for r in results if r.status != JobState.DEDUPED.value]
        assert primary, "workload collapsed entirely onto duplicates"
        for result in primary:
            assert result.status == JobState.QUARANTINED.value
            assert result.report.verdict == "unknown"
            assert result.report.reason == REASON_POISON_JOB
        assert metrics.counter("service.lease.poisoned") == len(primary)
