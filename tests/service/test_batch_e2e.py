"""End-to-end batch service runs: verdicts, budgets, resume, CLI, serve.

Builds a small workload on disk — equivalent retimed+resynthesised
pairs, an identical pair, a duplicate row, and a mutated (refutable)
revision — then drives it through :func:`repro.api.verify_batch`, the
``repro batch`` CLI and the ``repro serve`` stream loop, checking the
service-level guarantees: per-job verdicts and exit codes, shared
proof-cache warmth, budget-slice exhaustion surfacing ``REASON_*``
codes, store resume, schema-valid traces, and a DeprecationWarning-free
first-party path.
"""

from __future__ import annotations

import io
import json
import warnings

import pytest

from repro.api import VerifyRequest, verify_batch
from repro.bench.mutations import apply_mutation, enumerate_mutations
from repro.bench.pipeline import pipeline_circuit
from repro.netlist.blif import write_blif
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_events
from repro.obs.trace import Tracer
from repro.runtime.budget import KNOWN_REASONS
from repro.service.jobs import JobResult
from repro.service.store import ResultStore


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """BLIF files + manifest rows for a small mixed batch."""
    from repro.retime.apply import retime_min_period
    from repro.synth.script import optimize_sequential_delay

    tmp = tmp_path_factory.mktemp("batch")
    rows = []
    for seed in (1, 2):
        golden = pipeline_circuit(stages=2, width=3, seed=seed, name=f"g{seed}")
        revised, _, _ = retime_min_period(golden)
        revised = optimize_sequential_delay(revised, "medium", name=f"r{seed}")
        gp = tmp / f"g{seed}.blif"
        rp = tmp / f"r{seed}.blif"
        gp.write_text(write_blif(golden))
        rp.write_text(write_blif(revised))
        rows.append({"golden": gp.name, "revised": rp.name, "name": f"eq{seed}"})
    # A mutated revision: provably not equivalent (a live gate inverted).
    golden = pipeline_circuit(stages=2, width=3, seed=1, name="g1")
    mutation = next(
        m for m in enumerate_mutations(golden) if m.kind == "negation"
    )
    mutated = apply_mutation(golden, mutation)
    mp = tmp / "mutated.blif"
    mp.write_text(write_blif(mutated))
    rows.append({"golden": "g1.blif", "revised": "mutated.blif", "name": "neq"})
    # A duplicate of eq1 under another name: must dedup, not re-solve.
    rows.append({"golden": "g1.blif", "revised": "r1.blif", "name": "eq1-dup"})
    manifest = tmp / "manifest.json"
    manifest.write_text(json.dumps({"version": 1, "jobs": rows}))
    return {"dir": tmp, "manifest": manifest, "rows": rows}


def _requests(workload):
    from repro.service.jobs import load_manifest

    return load_manifest(workload["manifest"])


class TestVerifyBatch:
    def test_mixed_verdicts_in_request_order(self, workload, tmp_path):
        events = []
        metrics = MetricsRegistry()
        reports = verify_batch(
            _requests(workload),
            jobs=2,
            cache=tmp_path / "cache.json",
            store=tmp_path / "results.jsonl",
            use_processes=False,
            tracer=Tracer(sink=events),
            metrics=metrics,
        )
        assert [r.name for r in reports] == ["eq1", "eq2", "neq", "eq1-dup"]
        assert [r.exit_code for r in reports] == [0, 0, 1, 0]
        assert reports[2].counterexample is not None
        # The duplicate row mirrors eq1's report without a second solve.
        assert reports[3].fingerprint == reports[0].fingerprint
        assert metrics.counter("service.jobs.deduped") == 1
        assert metrics.counter("service.jobs.done") == 3
        # The trace is schema-valid and carries per-job pair spans.
        assert validate_events(events) == []
        job_spans = [
            e
            for e in events
            if e.get("type") == "span"
            and str(e.get("name", "")).startswith("job.")
        ]
        assert len(job_spans) == 3
        # The store parses back as JSONL, one result line per solved job.
        store = ResultStore(tmp_path / "results.jsonl").open()
        try:
            assert len(store) == 3
        finally:
            store.close()

    def test_warm_cache_on_second_run(self, workload, tmp_path):
        cache = tmp_path / "warm-cache.json"
        cold = MetricsRegistry()
        verify_batch(
            _requests(workload),
            cache=cache,
            use_processes=False,
            metrics=cold,
        )
        warm = MetricsRegistry()
        verify_batch(
            _requests(workload),
            cache=cache,
            use_processes=False,
            metrics=warm,
        )
        assert warm.counter("service.cache.hits") > 0
        assert (
            warm.counter("service.cache.misses")
            < cold.counter("service.cache.misses")
        )

    def test_resume_skips_decided_pairs(self, workload, tmp_path):
        store = tmp_path / "resume.jsonl"
        first = MetricsRegistry()
        verify_batch(
            _requests(workload),
            store=store,
            resume=True,
            use_processes=False,
            metrics=first,
        )
        assert first.counter("service.jobs.resumed") == 0
        second = MetricsRegistry()
        reports = verify_batch(
            _requests(workload),
            store=store,
            resume=True,
            use_processes=False,
            metrics=second,
        )
        # Every distinct decided pair replays from the store; nothing runs.
        assert second.counter("service.jobs.resumed") == 3
        assert second.counter("service.jobs.done") == 0
        assert [r.exit_code for r in reports] == [0, 0, 1, 0]

    def test_budget_slices_surface_reason_codes(self, workload):
        reports = verify_batch(
            _requests(workload)[:2],
            budget=0.0,  # nothing can finish: every slice is exhausted
            use_processes=False,
        )
        for report in reports:
            assert report.verdict == "unknown"
            assert report.reason in KNOWN_REASONS
            assert report.exit_code == 2

    def test_process_pool_matches_in_process(self, workload, tmp_path):
        reports = verify_batch(
            _requests(workload),
            jobs=2,
            use_processes=True,
        )
        assert [r.exit_code for r in reports] == [0, 0, 1, 0]

    def test_no_first_party_deprecation_warnings(self, workload):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            reports = verify_batch(
                _requests(workload)[:1], use_processes=False
            )
        assert reports[0].exit_code == 0


class TestBatchCli:
    def test_exit_code_reflects_worst_job(self, workload, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "batch",
                str(workload["manifest"]),
                "--jobs",
                "2",
                "--in-process",
                "--store",
                str(tmp_path / "store.jsonl"),
                "--trace",
                str(tmp_path / "trace.jsonl"),
                "--metrics-out",
                str(tmp_path / "metrics.json"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1  # the mutated pair refutes: 1 dominates
        assert "not_equivalent" in out
        assert "batch summary:" in out
        # Artifacts parse: trace is schema-valid, metrics is valid JSON.
        from repro.obs.trace import read_events

        events = read_events(tmp_path / "trace.jsonl")
        assert events and validate_events(events) == []
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["counters"]["service.jobs.done"] == 3

    def test_all_equivalent_exits_zero(self, workload, tmp_path, capsys):
        from repro.cli import main

        rows = [r for r in workload["rows"] if r["name"].startswith("eq")]
        manifest = tmp_path / "eq-only.json"
        manifest.write_text(
            json.dumps(
                {
                    "version": 1,
                    "jobs": [
                        {
                            **row,
                            "golden": str(workload["dir"] / row["golden"]),
                            "revised": str(workload["dir"] / row["revised"]),
                        }
                        for row in rows
                    ],
                }
            )
        )
        assert main(["batch", str(manifest), "--in-process", "--quiet"]) == 0

    def test_bad_manifest_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99, "jobs": []}))
        assert main(["batch", str(bad)]) == 2


class TestServe:
    def test_jsonl_stream_round_trip(self, workload):
        import asyncio

        from repro.service.scheduler import BatchRunner

        rows = []
        for request in _requests(workload)[:3]:
            rows.append(json.dumps(request.to_dict()))
        rows.append("{not json")
        in_stream = io.StringIO("\n".join(rows) + "\n")
        out_stream = io.StringIO()
        runner = BatchRunner(jobs=2, use_processes=False)
        emitted = asyncio.run(runner.serve(in_stream, out_stream))
        lines = [
            json.loads(line)
            for line in out_stream.getvalue().splitlines()
            if line
        ]
        results = [l for l in lines if l["type"] == "result"]
        errors = [l for l in lines if l["type"] == "error"]
        assert emitted == 3
        assert len(results) == 3
        assert len(errors) == 1
        by_name = {r["name"]: r for r in results}
        assert by_name["eq1"]["exit_code"] == 0
        assert by_name["neq"]["exit_code"] == 1
        # Each emitted line parses back into a JobResult.
        for line in results:
            JobResult.from_dict(line)
