"""Tseitin encoding tests: CNF models must match circuit simulation."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.bench.random_circuits import random_combinational
from repro.netlist.build import CircuitBuilder
from repro.sat.solver import Solver
from repro.sat.tseitin import tseitin_encode
from repro.sim.logic2 import simulate


class TestTseitin:
    @pytest.mark.parametrize("seed", range(6))
    def test_models_match_simulation(self, seed):
        c = random_combinational(n_inputs=4, n_gates=12, seed=seed)
        enc = tseitin_encode(c)
        for bits in itertools.product([False, True], repeat=4):
            vec = dict(zip(c.inputs, bits))
            sim = simulate(c, [vec]).outputs[0]
            solver = Solver()
            solver.add_cnf(enc.cnf)
            assumptions = [enc.lit(pi, vec[pi]) for pi in c.inputs]
            r = solver.solve(assumptions=assumptions)
            assert r.satisfiable  # the circuit constrains nothing
            for out in c.outputs:
                assert r.model[enc.var_of[out]] == sim[out], (vec, out)

    def test_constant_gates(self):
        b = CircuitBuilder("t")
        b.inputs("a")
        one = b.CONST1()
        zero = b.CONST0()
        b.output(one, name="o1")
        b.output(zero, name="o0")
        enc = tseitin_encode(b.circuit)
        s = Solver()
        s.add_cnf(enc.cnf)
        r = s.solve()
        assert r.model[enc.var_of[one]] is True
        assert r.model[enc.var_of[zero]] is False

    def test_rejects_sequential(self):
        b = CircuitBuilder("t")
        (a,) = b.inputs("a")
        b.output(b.latch(a), name="o")
        with pytest.raises(ValueError):
            tseitin_encode(b.circuit)

    def test_shared_encoding(self):
        """Two circuits can share PIs through a common var map."""
        c1 = random_combinational(seed=1, name="c1")
        c2 = c1.with_prefix("x_", keep=set(c1.inputs))
        c2.name = "c2"
        enc = tseitin_encode(c1)
        enc2 = tseitin_encode(c2, enc.cnf, enc.var_of)
        assert enc2.var_of is enc.var_of
        for pi in c1.inputs:
            assert enc.var_of[pi] == enc2.var_of[pi]
