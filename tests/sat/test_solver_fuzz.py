"""Differential solver fuzz: incremental solve() sequences vs enumeration.

Each seed builds a small random CNF and drives one Solver instance
through a sequence of incremental queries — random assumption sets,
occasional mid-sequence clause additions, and occasional tiny conflict
limits.  Every decided answer is cross-checked against exhaustive
enumeration; every UNSAT core is checked for soundness (a subset of the
assumptions that is UNSAT on its own) and for being no wider than the
assumption set.  A final pass cross-checks ``export_learned`` /
``import_learned``: a fresh solver seeded with the first solver's
exported clauses must still agree with enumeration on every query.

Deterministically seeded and small (n <= 6 variables) so the whole
module stays well under the CI smoke budget.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.sat.solver import Solver


def enum_sat(n, clauses, assumptions=()):
    """Exhaustive satisfiability of ``clauses`` under unit assumptions."""
    constraints = list(clauses) + [[lit] for lit in assumptions]
    for bits in itertools.product([False, True], repeat=n):
        if all(
            any(bits[abs(l) - 1] == (l > 0) for l in cl)
            for cl in constraints
        ):
            return True
    return False


def random_clauses(rng, n, m):
    clauses = []
    for _ in range(m):
        k = rng.randint(1, min(3, n))
        vs = rng.sample(range(1, n + 1), k)
        clauses.append([v if rng.random() < 0.5 else -v for v in vs])
    return clauses


def random_assumptions(rng, n):
    k = rng.randint(0, n)
    vs = rng.sample(range(1, n + 1), k)
    return [v if rng.random() < 0.5 else -v for v in vs]


def check_core(n, clauses, assumptions, core):
    """Cores are subsets of the assumptions, UNSAT on their own, and
    never wider than what was assumed."""
    assert core is not None
    assert set(core) <= set(assumptions)
    assert len(core) <= len(assumptions)
    assert not enum_sat(n, clauses, core)


@pytest.mark.parametrize("seed", range(40))
def test_incremental_sequences_match_enumeration(seed):
    rng = random.Random(seed)
    n = rng.randint(2, 6)
    clauses = random_clauses(rng, n, rng.randint(2, 18))
    s = Solver()
    s.ensure_vars(n)
    ok = all(s.add_clause(cl) for cl in clauses)
    for _ in range(6):
        if rng.random() < 0.3:
            extra = random_clauses(rng, n, 1)[0]
            clauses.append(extra)
            ok = s.add_clause(extra) and ok
        assumptions = random_assumptions(rng, n)
        limit = 2 if rng.random() < 0.2 else None
        r = s.solve(assumptions=assumptions, conflict_limit=limit)
        if s.last_unknown:
            continue  # limited call gave up: nothing to cross-check
        expected = enum_sat(n, clauses, assumptions)
        assert r.satisfiable == expected
        if r.satisfiable:
            assert r.core is None
            model = r.model
            # The model satisfies every clause and every assumption.
            for cl in clauses:
                assert any(model.get(abs(l), l < 0) == (l > 0) for l in cl)
            for lit in assumptions:
                assert model.get(abs(lit)) == (lit > 0)
        else:
            check_core(n, clauses, assumptions, r.core)
            if not enum_sat(n, clauses):
                assert r.core == []
    assert ok == enum_sat(n, clauses) or not ok


@pytest.mark.parametrize("seed", range(15))
def test_export_import_preserves_answers(seed):
    rng = random.Random(1000 + seed)
    n = rng.randint(3, 6)
    clauses = random_clauses(rng, n, rng.randint(6, 20))
    donor = Solver()
    donor.ensure_vars(n)
    for cl in clauses:
        donor.add_clause(cl)
    for _ in range(4):  # build up some learned clauses
        donor.solve(assumptions=random_assumptions(rng, n))
    exported = donor.export_learned(max_len=8, max_lbd=4)

    recipient = Solver()
    recipient.ensure_vars(n)
    for cl in clauses:
        recipient.add_clause(cl)
    recipient.import_learned(exported)
    for _ in range(6):
        assumptions = random_assumptions(rng, n)
        r = recipient.solve(assumptions=assumptions)
        expected = enum_sat(n, clauses, assumptions)
        assert r.satisfiable == expected
        if not r.satisfiable:
            check_core(n, clauses, assumptions, r.core)


@pytest.mark.parametrize("seed", range(10))
def test_scoped_export_stays_inside_variable_slice(seed):
    rng = random.Random(2000 + seed)
    n = 6
    clauses = random_clauses(rng, n, 20)
    s = Solver()
    s.ensure_vars(n)
    for cl in clauses:
        s.add_clause(cl)
    for _ in range(4):
        s.solve(assumptions=random_assumptions(rng, n))
    scope = {1, 2, 3}
    for cl in s.export_learned(variables=scope):
        assert {abs(l) for l in cl} <= scope
