"""CDCL solver tests: unit, brute-force cross-checks, classics."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.budget import REASON_CONFLICT_LIMIT
from repro.sat.cnf import CNF
from repro.sat.solver import Solver


def brute_force(n, clauses):
    for bits in itertools.product([False, True], repeat=n):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in cl) for cl in clauses):
            return True
    return False


def random_instance(rng, n_max=8, m_max=25):
    n = rng.randint(1, n_max)
    m = rng.randint(1, m_max)
    clauses = []
    for _ in range(m):
        k = rng.randint(1, min(3, n))
        vs = rng.sample(range(1, n + 1), k)
        clauses.append([v if rng.random() < 0.5 else -v for v in vs])
    return n, clauses


class TestBasics:
    def test_empty_problem_sat(self):
        assert Solver().solve().satisfiable

    def test_unit_propagation(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-1, 2])
        r = s.solve()
        assert r.satisfiable and r.model[1] and r.model[2]

    def test_contradiction(self):
        s = Solver()
        s.add_clause([1])
        assert not s.add_clause([-1])
        assert not s.solve().satisfiable

    def test_tautological_clause_ignored(self):
        s = Solver()
        assert s.add_clause([1, -1])
        assert s.solve().satisfiable

    def test_duplicate_literals(self):
        s = Solver()
        s.add_clause([1, 1, 2])
        assert s.solve().satisfiable

    def test_model_satisfies(self):
        s = Solver()
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [2]]
        for cl in clauses:
            s.add_clause(cl)
        r = s.solve()
        assert r.satisfiable
        for cl in clauses:
            assert any(r.model[abs(l)] == (l > 0) for l in cl)


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = Solver()
        s.add_clause([1, 2])
        r = s.solve(assumptions=[-1])
        assert r.satisfiable and r.model[2]

    def test_conflicting_assumptions(self):
        s = Solver()
        s.add_clause([1, 2])
        assert not s.solve(assumptions=[-1, -2]).satisfiable

    def test_incremental_reuse(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-1, 3])
        assert not s.solve(assumptions=[-2, -3]).satisfiable
        assert s.solve(assumptions=[-2]).satisfiable
        assert s.solve().satisfiable

    def test_assumption_of_fresh_variable(self):
        s = Solver()
        s.add_clause([1])
        r = s.solve(assumptions=[5])
        assert r.satisfiable and r.model[5]


class TestCrossCheck:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_vs_brute_force(self, seed):
        rng = random.Random(seed)
        n, clauses = random_instance(rng)
        s = Solver()
        ok = True
        for cl in clauses:
            if not s.add_clause(cl):
                ok = False
                break
        got = s.solve().satisfiable if ok else False
        assert got == brute_force(n, clauses)

    def test_pigeonhole_unsat(self):
        def php(p, h):
            s = Solver()
            v = lambda i, j: i * h + j + 1
            s.ensure_vars(p * h)
            for i in range(p):
                s.add_clause([v(i, j) for j in range(h)])
            for j in range(h):
                for i1 in range(p):
                    for i2 in range(i1 + 1, p):
                        s.add_clause([-v(i1, j), -v(i2, j)])
            return s.solve()

        assert not php(5, 4).satisfiable
        assert php(4, 4).satisfiable

    def test_xor_chain_unsat(self):
        """x1 ^ x2, x2 ^ x3, ..., with odd parity constraint — unsat."""
        s = Solver()
        n = 8
        for i in range(1, n):
            # xi != xi+1
            s.add_clause([i, i + 1])
            s.add_clause([-i, -(i + 1)])
        # force x1 == xn, contradicting alternation for even n
        s.add_clause([1, -n])
        s.add_clause([-1, n])
        assert not s.solve().satisfiable

    def test_conflict_limit_reports_unknown(self):
        s = Solver()
        # A moderately hard unsat instance with a tiny budget.
        p, h = 7, 6
        v = lambda i, j: i * h + j + 1
        s.ensure_vars(p * h)
        for i in range(p):
            s.add_clause([v(i, j) for j in range(h)])
        for j in range(h):
            for i1 in range(p):
                for i2 in range(i1 + 1, p):
                    s.add_clause([-v(i1, j), -v(i2, j)])
        r = s.solve(conflict_limit=5)
        assert not r.satisfiable
        assert s.last_unknown


class TestCNF:
    def test_dimacs_roundtrip(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, -b])
        cnf.add_clause([b])
        text = cnf.to_dimacs()
        back = CNF.from_dimacs(text)
        assert back.num_vars == 2
        assert back.clauses == [(1, -2), (2,)]

    def test_rejects_zero_literal(self):
        cnf = CNF(2)
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_rejects_out_of_range(self):
        cnf = CNF(1)
        with pytest.raises(ValueError):
            cnf.add_clause([5])

    def test_extend_from(self):
        a = CNF(2)
        a.add_clause([1, -2])
        b = CNF(1)
        b.add_clause([-1])
        a.extend_from(b, offset=2)
        assert a.num_vars == 3
        assert a.clauses[-1] == (-3,)


def _pigeonhole_solver(holes: int) -> Solver:
    """PHP(holes+1, holes): UNSAT with no short proof — reliably hard."""
    pigeons = holes + 1

    def var(i: int, j: int) -> int:
        return i * holes + j + 1

    solver = Solver()
    solver.ensure_vars(pigeons * holes)
    for i in range(pigeons):
        assert solver.add_clause([var(i, j) for j in range(holes)])
    for j in range(holes):
        for i in range(pigeons):
            for k in range(i + 1, pigeons):
                assert solver.add_clause([-var(i, j), -var(k, j)])
    return solver


class TestConflictLimitContract:
    """conflict_limit is exact: stop *at* the limit, never beyond it."""

    @pytest.mark.parametrize("limit", [1, 8, 30])
    def test_limit_is_never_overrun(self, limit):
        # The historical bug: limits were only checked at restart
        # boundaries, whose Luby budgets have a floor of 64 conflicts, so
        # conflict_limit=8 could burn 64+ conflicts before reporting.
        solver = _pigeonhole_solver(6)
        result = solver.solve(conflict_limit=limit)
        assert solver.last_call_stats["conflicts"] <= limit
        if solver.last_unknown:
            assert solver.last_unknown_reason == REASON_CONFLICT_LIMIT
            assert not result.satisfiable
            assert result.model is None

    def test_limit_eight_reports_conflict_limit(self):
        solver = _pigeonhole_solver(6)
        result = solver.solve(conflict_limit=8)
        assert not result.satisfiable
        assert solver.last_unknown
        assert solver.last_unknown_reason == REASON_CONFLICT_LIMIT
        assert solver.last_call_stats["conflicts"] <= 8

    def test_limit_spanning_restarts_accumulates(self):
        # A limit above one Luby window (64) must still be exact across
        # the restart boundary.
        solver = _pigeonhole_solver(7)
        solver.solve(conflict_limit=100)
        assert solver.last_call_stats["conflicts"] <= 100

    def test_limit_zero_is_immediate_unknown(self):
        solver = _pigeonhole_solver(6)
        result = solver.solve(conflict_limit=0)
        assert not result.satisfiable
        assert solver.last_unknown
        assert solver.last_unknown_reason == REASON_CONFLICT_LIMIT
        assert solver.last_call_stats["conflicts"] == 0


class TestInstanceState:
    """Per-call state is per-instance, never shared across solvers."""

    def test_last_call_stats_not_shared(self):
        a, b = Solver(), Solver()
        assert a.last_call_stats is not b.last_call_stats
        a.add_clause([1, 2])
        a.solve()
        assert a.last_call_stats["decisions"] >= 0
        assert b.last_call_stats == {}

    def test_unknown_flags_not_shared(self):
        limited = _pigeonhole_solver(6)
        fresh = Solver()
        limited.solve(conflict_limit=1)
        assert limited.last_unknown
        assert not fresh.last_unknown
        assert fresh.last_unknown_reason is None

    def test_sat_model_covers_only_assigned_vars(self):
        # ensure_vars can grow the tables past what the clauses constrain;
        # the model must not invent False for untouched variables.
        s = Solver()
        s.add_clause([1])
        result = s.solve()
        assert result.satisfiable
        assert result.model is not None
        assert result.model[1] is True
        assert all(v in (True, False) for v in result.model.values())

    def test_results_report_cumulative_totals(self):
        s = _pigeonhole_solver(4)
        r1 = s.solve()
        r2 = s.solve()
        # Cumulative solver totals grow monotonically across calls...
        assert r2.conflicts >= r1.conflicts
        assert r2.propagations >= r1.propagations
        # ...while per-call effort lives in last_call_stats.
        assert s.last_call_stats["conflicts"] == r2.conflicts - r1.conflicts


class TestAssumptionCores:
    """Final-conflict analysis: ``SATResult.core`` on UNSAT answers."""

    def test_sat_has_no_core(self):
        s = Solver()
        s.add_clause([1, 2])
        r = s.solve(assumptions=[1])
        assert r.satisfiable and r.core is None

    def test_formula_unsat_gives_empty_core(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-1])
        r = s.solve(assumptions=[2, 3])
        assert not r.satisfiable
        assert r.core == []

    def test_contradictory_assumptions(self):
        s = Solver()
        s.ensure_vars(1)
        r = s.solve(assumptions=[1, -1])
        assert not r.satisfiable
        assert sorted(r.core) == [-1, 1]

    def test_root_false_assumption_is_singleton_core(self):
        s = Solver()
        s.add_clause([-1])
        r = s.solve(assumptions=[1])
        assert not r.satisfiable
        assert r.core == [1]

    def test_core_excludes_irrelevant_assumptions(self):
        # 1 -> 2 -> ... -> 5; assuming 1 and -5 is UNSAT, assuming 6 is
        # idle decoration the refutation never touches.
        s = Solver()
        for v in range(1, 5):
            s.add_clause([-v, v + 1])
        s.ensure_vars(6)
        r = s.solve(assumptions=[6, 1, -5])
        assert not r.satisfiable
        assert r.core is not None
        assert set(r.core) <= {1, -5}
        assert set(r.core) == {1, -5}  # both really needed here

    def test_core_is_subset_and_unsat_on_its_own(self):
        s = Solver()
        s.add_clause([-1, -2])
        r = s.solve(assumptions=[3, 1, 2])
        assert not r.satisfiable
        core = r.core
        assert core is not None and set(core) <= {3, 1, 2}
        # The core alone must already be refutable.
        s2 = Solver()
        s2.add_clause([-1, -2])
        assert not s2.solve(assumptions=core).satisfiable

    def test_any_superset_of_core_stays_unsat(self):
        s = Solver()
        s.add_clause([-1, -2])
        core = s.solve(assumptions=[1, 2]).core
        assert core is not None
        assert not s.solve(assumptions=core + [3, -4]).satisfiable

    def test_incremental_cores_across_calls(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve(assumptions=[-1]).satisfiable
        s.add_clause([-2])
        r = s.solve(assumptions=[-1])
        assert not r.satisfiable
        assert r.core == [-1]
        # Formula-level UNSAT after one more unit: empty core.
        s.add_clause([-1])
        assert s.solve(assumptions=[-1]).core == []


class TestPhaseSavingUnderAssumptions:
    """Assumption pseudo-decisions must not pollute saved phases."""

    def test_assumptions_leave_saved_phases_alone(self):
        # 1 <-> 2, plus 1 -> (3 and -3) so assuming 1 is always UNSAT.
        s = Solver()
        for cl in ([-1, 2], [1, -2], [-1, 3], [-1, -3]):
            s.add_clause(cl)
        assert s.solve().satisfiable
        saved = list(s._phase)
        # Two-direction EQ query on the pair (1, 2): both UNSAT.
        assert not s.solve(assumptions=[-1, 2]).satisfiable
        assert not s.solve(assumptions=[1, -2]).satisfiable
        assert list(s._phase) == saved

    def test_decisions_do_not_regress_after_eq_query(self):
        # Regression for the phase-pollution bug: the second direction's
        # assumption 1=True used to overwrite var 1's saved phase, so the
        # follow-up model search re-decided 1=True, hit the 3/-3 conflict
        # it had already avoided, and paid an extra conflict + decision.
        s = Solver()
        for cl in ([-1, 2], [1, -2], [-1, 3], [-1, -3]):
            s.add_clause(cl)
        r_first = s.solve()
        assert r_first.satisfiable
        first_decisions = s.last_call_stats["decisions"]
        assert not s.solve(assumptions=[-1, 2]).satisfiable
        assert not s.solve(assumptions=[1, -2]).satisfiable
        r_final = s.solve()
        assert r_final.satisfiable
        assert s.last_call_stats["conflicts"] == 0
        assert s.last_call_stats["decisions"] <= first_decisions
