"""CDCL solver tests: unit, brute-force cross-checks, classics."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.solver import Solver


def brute_force(n, clauses):
    for bits in itertools.product([False, True], repeat=n):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in cl) for cl in clauses):
            return True
    return False


def random_instance(rng, n_max=8, m_max=25):
    n = rng.randint(1, n_max)
    m = rng.randint(1, m_max)
    clauses = []
    for _ in range(m):
        k = rng.randint(1, min(3, n))
        vs = rng.sample(range(1, n + 1), k)
        clauses.append([v if rng.random() < 0.5 else -v for v in vs])
    return n, clauses


class TestBasics:
    def test_empty_problem_sat(self):
        assert Solver().solve().satisfiable

    def test_unit_propagation(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-1, 2])
        r = s.solve()
        assert r.satisfiable and r.model[1] and r.model[2]

    def test_contradiction(self):
        s = Solver()
        s.add_clause([1])
        assert not s.add_clause([-1])
        assert not s.solve().satisfiable

    def test_tautological_clause_ignored(self):
        s = Solver()
        assert s.add_clause([1, -1])
        assert s.solve().satisfiable

    def test_duplicate_literals(self):
        s = Solver()
        s.add_clause([1, 1, 2])
        assert s.solve().satisfiable

    def test_model_satisfies(self):
        s = Solver()
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [2]]
        for cl in clauses:
            s.add_clause(cl)
        r = s.solve()
        assert r.satisfiable
        for cl in clauses:
            assert any(r.model[abs(l)] == (l > 0) for l in cl)


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = Solver()
        s.add_clause([1, 2])
        r = s.solve(assumptions=[-1])
        assert r.satisfiable and r.model[2]

    def test_conflicting_assumptions(self):
        s = Solver()
        s.add_clause([1, 2])
        assert not s.solve(assumptions=[-1, -2]).satisfiable

    def test_incremental_reuse(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-1, 3])
        assert not s.solve(assumptions=[-2, -3]).satisfiable
        assert s.solve(assumptions=[-2]).satisfiable
        assert s.solve().satisfiable

    def test_assumption_of_fresh_variable(self):
        s = Solver()
        s.add_clause([1])
        r = s.solve(assumptions=[5])
        assert r.satisfiable and r.model[5]


class TestCrossCheck:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_vs_brute_force(self, seed):
        rng = random.Random(seed)
        n, clauses = random_instance(rng)
        s = Solver()
        ok = True
        for cl in clauses:
            if not s.add_clause(cl):
                ok = False
                break
        got = s.solve().satisfiable if ok else False
        assert got == brute_force(n, clauses)

    def test_pigeonhole_unsat(self):
        def php(p, h):
            s = Solver()
            v = lambda i, j: i * h + j + 1
            s.ensure_vars(p * h)
            for i in range(p):
                s.add_clause([v(i, j) for j in range(h)])
            for j in range(h):
                for i1 in range(p):
                    for i2 in range(i1 + 1, p):
                        s.add_clause([-v(i1, j), -v(i2, j)])
            return s.solve()

        assert not php(5, 4).satisfiable
        assert php(4, 4).satisfiable

    def test_xor_chain_unsat(self):
        """x1 ^ x2, x2 ^ x3, ..., with odd parity constraint — unsat."""
        s = Solver()
        n = 8
        for i in range(1, n):
            # xi != xi+1
            s.add_clause([i, i + 1])
            s.add_clause([-i, -(i + 1)])
        # force x1 == xn, contradicting alternation for even n
        s.add_clause([1, -n])
        s.add_clause([-1, n])
        assert not s.solve().satisfiable

    def test_conflict_limit_reports_unknown(self):
        s = Solver()
        # A moderately hard unsat instance with a tiny budget.
        p, h = 7, 6
        v = lambda i, j: i * h + j + 1
        s.ensure_vars(p * h)
        for i in range(p):
            s.add_clause([v(i, j) for j in range(h)])
        for j in range(h):
            for i1 in range(p):
                for i2 in range(i1 + 1, p):
                    s.add_clause([-v(i1, j), -v(i2, j)])
        r = s.solve(conflict_limit=5)
        assert not r.satisfiable
        assert s.last_unknown


class TestCNF:
    def test_dimacs_roundtrip(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, -b])
        cnf.add_clause([b])
        text = cnf.to_dimacs()
        back = CNF.from_dimacs(text)
        assert back.num_vars == 2
        assert back.clauses == [(1, -2), (2,)]

    def test_rejects_zero_literal(self):
        cnf = CNF(2)
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_rejects_out_of_range(self):
        cnf = CNF(1)
        with pytest.raises(ValueError):
            cnf.add_clause([5])

    def test_extend_from(self):
        a = CNF(2)
        a.add_clause([1, -2])
        b = CNF(1)
        b.add_clause([-1])
        a.extend_from(b, offset=2)
        assert a.num_vars == 3
        assert a.clauses[-1] == (-3,)
