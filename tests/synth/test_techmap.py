"""Technology mapping tests (the paper's INV/NAND2/NOR2 unit-delay library)."""

from __future__ import annotations

import pytest

from repro.bench.random_circuits import random_acyclic_sequential, random_combinational
from repro.cec.engine import check_equivalence
from repro.core.verify import check_sequential_equivalence
from repro.netlist.build import CircuitBuilder
from repro.netlist.validate import validate_circuit
from repro.synth.network import fanout_counts
from repro.synth.script import optimize_sequential_delay, script_delay
from repro.synth.techmap import MappedStats, mapped_stats, tech_map


class TestTechMap:
    @pytest.mark.parametrize("seed", range(4))
    def test_mapping_preserves_function(self, seed):
        c = random_combinational(n_inputs=5, n_gates=20, seed=seed)
        mapped = tech_map(c)
        validate_circuit(mapped)
        assert check_equivalence(c, mapped).equivalent

    @pytest.mark.parametrize("seed", range(4))
    def test_only_library_cells(self, seed):
        c = random_combinational(n_inputs=5, n_gates=20, seed=seed)
        mapped = tech_map(c)
        stats = mapped_stats(mapped)  # raises on non-library gates
        assert stats.area > 0
        assert set(stats.cells) <= {"inv", "nand2", "nor2", "buf", "const"}

    @pytest.mark.parametrize("seed", range(4))
    def test_fanout_limit_enforced(self, seed):
        c = random_combinational(n_inputs=4, n_gates=30, seed=seed)
        mapped = tech_map(c, fanout_limit=4)
        counts = fanout_counts(mapped)
        for sig in mapped.gates:
            gate_readers = sum(
                1
                for g in mapped.gates.values()
                for s in g.inputs
                if s == sig
            )
            assert gate_readers <= 4, sig

    def test_sequential_mapping(self):
        c = random_acyclic_sequential(seed=3)
        mapped = tech_map(c)
        validate_circuit(mapped)
        assert mapped.num_latches() == c.num_latches()
        r = check_sequential_equivalence(c, mapped)
        assert r.equivalent

    def test_xor_maps_to_four_nands(self, builder):
        a, b = builder.inputs("a", "b")
        builder.output(builder.XOR(a, b), name="o")
        mapped = tech_map(builder.circuit, fanout_limit=0)
        stats = mapped_stats(mapped)
        assert stats.cells.get("nand2", 0) == 4
        assert check_equivalence(builder.circuit, mapped).equivalent

    def test_stats_string(self):
        b = CircuitBuilder("t")
        a = b.input("a")
        b.output(b.NOT(a), name="o")
        mapped = tech_map(b.circuit)
        text = str(mapped_stats(mapped))
        assert "area" in text and "delay" in text


class TestScript:
    @pytest.mark.parametrize("seed", range(3))
    def test_script_delay_reduces_depth(self, seed):
        from repro.synth.depth import circuit_depth

        c = random_combinational(n_inputs=8, n_gates=60, seed=seed)
        original = c.copy("orig")
        before = circuit_depth(c)
        script_delay(c)
        validate_circuit(c)
        assert circuit_depth(c) <= before
        assert check_equivalence(original, c).equivalent

    def test_efforts(self):
        for effort in ("low", "medium", "high"):
            c = random_combinational(n_inputs=6, n_gates=30, seed=9)
            original = c.copy("orig")
            script_delay(c, effort=effort)
            assert check_equivalence(original, c).equivalent

    @pytest.mark.parametrize("seed", range(3))
    def test_sequential_wrapper(self, seed):
        c = random_acyclic_sequential(seed=seed)
        opt = optimize_sequential_delay(c)
        validate_circuit(opt)
        assert opt.num_latches() == c.num_latches()
        assert check_sequential_equivalence(c, opt).equivalent

    def test_enabled_sequential_wrapper(self):
        c = random_acyclic_sequential(seed=4, enabled=True)
        opt = optimize_sequential_delay(c)
        validate_circuit(opt)
        r = check_sequential_equivalence(c, opt)
        assert r.equivalent

    def test_script_rejects_sequential(self):
        c = random_acyclic_sequential(seed=1)
        with pytest.raises(ValueError):
            script_delay(c)
