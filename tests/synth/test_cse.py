"""Structural sharing (strash) tests."""

from __future__ import annotations

import pytest

from repro.bench.random_circuits import random_combinational
from repro.cec.engine import check_equivalence
from repro.netlist.build import CircuitBuilder
from repro.netlist.validate import validate_circuit
from repro.synth.cse import strash
from repro.synth.sweep import sweep


class TestStrash:
    def test_identical_gates_merge(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.AND(a, b)
        g2 = builder.AND(a, b)
        builder.output(builder.OR(g1, g2), name="o")
        original = builder.circuit.copy("orig")
        strash(builder.circuit)
        sweep(builder.circuit)
        # One AND survives (plus the OR collapsed by sweep's dedupe).
        ands = [
            g
            for g in builder.circuit.gates.values()
            if g.sop.num_literals == 2 and len(g.sop.cubes) == 1
        ]
        assert len(ands) <= 1
        assert check_equivalence(original, builder.circuit).equivalent

    def test_commutative_merge(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.AND(a, b)
        g2 = builder.AND(b, a)  # swapped fanins
        builder.output(builder.XOR(g1, g2), name="o")
        original = builder.circuit.copy("orig")
        strash(builder.circuit)
        validate_circuit(builder.circuit)
        xor_gate = builder.circuit.gates["o"]
        # Both XOR fanins now reference the same signal.
        inner = [g for g in builder.circuit.gates.values() if g.output != "o"]
        assert check_equivalence(original, builder.circuit).equivalent

    def test_nand_nor_commutative(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.NAND(a, b)
        g2 = builder.NAND(b, a)
        o1 = builder.output(g1, name="o1")
        o2 = builder.output(g2, name="o2")
        strash(builder.circuit)
        validate_circuit(builder.circuit)
        # One of the protected outputs keeps its gate; outputs still work.
        from repro.sim.logic2 import simulate

        out = simulate(builder.circuit, [{"a": True, "b": True}]).outputs[0]
        assert out["o1"] is False and out["o2"] is False

    def test_mux_not_merged_when_operands_differ(self, builder):
        s, a, b = builder.inputs("s", "a", "b")
        m1 = builder.MUX(s, a, b)
        m2 = builder.MUX(s, b, a)  # different function!
        builder.output(m1, name="o1")
        builder.output(m2, name="o2")
        original = builder.circuit.copy("orig")
        strash(builder.circuit)
        assert check_equivalence(original, builder.circuit).equivalent
        out = None
        from repro.sim.logic2 import simulate

        res = simulate(
            builder.circuit, [{"s": True, "a": True, "b": False}]
        ).outputs[0]
        assert res["o1"] is True and res["o2"] is False

    def test_cascaded_merging(self, builder):
        """Merging leaves enables merging parents in the next round."""
        a, b, c = builder.inputs("a", "b", "c")
        l1 = builder.AND(a, b)
        l2 = builder.AND(b, a)
        p1 = builder.OR(l1, c)
        p2 = builder.OR(l2, c)
        builder.output(builder.XOR(p1, p2), name="o")
        original = builder.circuit.copy("orig")
        strash(builder.circuit)
        sweep(builder.circuit)
        validate_circuit(builder.circuit)
        assert check_equivalence(original, builder.circuit).equivalent
        # XOR(x, x) should have been constant-folded away by now or left as
        # a gate whose two fanins coincide.
        gate = builder.circuit.gates["o"]
        assert len(set(gate.inputs)) <= 1 or not gate.inputs

    @pytest.mark.parametrize("seed", range(4))
    def test_preserves_function_on_random(self, seed):
        c = random_combinational(n_inputs=6, n_gates=30, seed=seed)
        original = c.copy("orig")
        strash(c)
        validate_circuit(c)
        assert check_equivalence(original, c).equivalent

    def test_latch_reader_retargeted(self, builder):
        a, b = builder.inputs("a", "b")
        g1 = builder.AND(a, b, name="keep")
        g2 = builder.AND(b, a, name="dup")
        q = builder.latch("dup", name="q")
        builder.output("keep")
        builder.output(q, name="oq")
        strash(builder.circuit)
        validate_circuit(builder.circuit)
        # The latch now reads the surviving gate.
        assert builder.circuit.latches["q"].data in builder.circuit.gates
