"""Algebraic division and kernel tests."""

from __future__ import annotations

import pytest

from repro.netlist.cube import cube_from_literals, cube_literals
from repro.synth.division import (
    common_cube,
    cube_free,
    kernels,
    make_cube_free,
    weak_divide,
)


def lits(*pairs):
    """Literal set from (var, phase) pairs."""
    return frozenset(2 * v + (1 if p else 0) for v, p in pairs)


def pos(*vs):
    return frozenset(2 * v + 1 for v in vs)


class TestWeakDivide:
    def test_textbook_example(self):
        # F = abc + abd + e; D = c + d  ->  Q = ab, R = e
        f = [pos(0, 1, 2), pos(0, 1, 3), pos(4)]
        d = [pos(2), pos(3)]
        q, r = weak_divide(f, d)
        assert q == [pos(0, 1)]
        assert r == [pos(4)]

    def test_no_quotient(self):
        f = [pos(0), pos(1)]
        d = [pos(2)]
        q, r = weak_divide(f, d)
        assert q == [] and r == f

    def test_division_by_itself(self):
        f = [pos(0, 1), pos(2)]
        q, r = weak_divide(f, f)
        # quotient is the empty cube (1) only if f*1 = f
        assert q == [frozenset()] and r == []

    def test_reconstruction_identity(self):
        """F = Q*D + R exactly as cube sets."""
        f = [pos(0, 2), pos(0, 3), pos(1, 2), pos(1, 3), pos(4)]
        d = [pos(2), pos(3)]
        q, r = weak_divide(f, d)
        product = {frozenset(qq | dd) for qq in q for dd in d}
        assert product | set(r) == set(f)

    def test_empty_divisor_raises(self):
        with pytest.raises(ValueError):
            weak_divide([pos(0)], [])

    def test_respects_disjoint_support_rule(self):
        # F = ab; D = a: quotient is b (supports disjoint after removal)
        q, r = weak_divide([pos(0, 1)], [pos(0)])
        assert q == [pos(1)] and r == []
        # F = a; D = a: quotient = 1-cube
        q, r = weak_divide([pos(0)], [pos(0)])
        assert q == [frozenset()] and r == []


class TestCubeOps:
    def test_common_cube(self):
        assert common_cube([pos(0, 1, 2), pos(0, 1, 3)]) == pos(0, 1)
        assert common_cube([pos(0), pos(1)]) == frozenset()
        assert common_cube([]) == frozenset()

    def test_cube_free(self):
        assert cube_free([pos(0), pos(1)])
        assert not cube_free([pos(0, 1), pos(0, 2)])
        assert not cube_free([pos(0)])

    def test_make_cube_free(self):
        out = make_cube_free([pos(0, 1), pos(0, 2)])
        assert out == [pos(1), pos(2)]


class TestKernels:
    def test_textbook_kernels(self):
        # F = adf + aef + bdf + bef + cdf + cef + g
        #   = (a+b+c)(d+e)f + g ; kernels include (a+b+c), (d+e), F itself.
        a, b, c, d, e, f, g = range(7)
        cover = [
            pos(a, d, f), pos(a, e, f), pos(b, d, f),
            pos(b, e, f), pos(c, d, f), pos(c, e, f), pos(g),
        ]
        ks = kernels(cover)
        kernel_sets = {tuple(sorted(tuple(sorted(cu)) for cu in k)) for _, k in ks}
        abc = tuple(sorted(tuple(sorted(pos(v))) for v in (a, b, c)))
        de = tuple(sorted(tuple(sorted(pos(v))) for v in (d, e)))
        assert abc in kernel_sets
        assert de in kernel_sets

    def test_kernels_are_cube_free(self):
        cover = [pos(0, 1, 2), pos(0, 1, 3), pos(0, 4)]
        for cokernel, kernel in kernels(cover):
            assert len(kernel) > 1
            assert not common_cube(kernel)

    def test_single_cube_has_no_kernels(self):
        assert kernels([pos(0, 1, 2)]) == []

    def test_cokernel_times_kernel_in_cover(self):
        cover = [pos(0, 2), pos(0, 3), pos(1, 2), pos(1, 3)]
        for cokernel, kernel in kernels(cover):
            for cube in kernel:
                assert frozenset(cokernel | cube) in set(cover)
