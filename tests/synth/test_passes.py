"""Synthesis-pass tests: every pass must preserve every output function."""

from __future__ import annotations

import pytest

from repro.bench.random_circuits import random_combinational
from repro.cec.engine import check_equivalence
from repro.netlist.build import CircuitBuilder
from repro.netlist.cube import Sop
from repro.netlist.validate import validate_circuit
from repro.synth.decomp import algebraic_decomp, tech_decomp
from repro.synth.depth import circuit_depth, reduce_depth
from repro.synth.eliminate import eliminate, node_value
from repro.synth.fx import fast_extract
from repro.synth.network import compose_sop, fanout_counts
from repro.synth.resub import resubstitute
from repro.synth.simplify import simplify_network
from repro.synth.sweep import sweep

PASSES = {
    "sweep": sweep,
    "decomp": algebraic_decomp,
    "tech_decomp": tech_decomp,
    "resub": resubstitute,
    "reduce_depth": reduce_depth,
    "eliminate": lambda c: eliminate(c, threshold=-1),
    "simplify": simplify_network,
    "fx": fast_extract,
}


@pytest.mark.parametrize("name", sorted(PASSES))
@pytest.mark.parametrize("seed", range(4))
def test_pass_preserves_function(name, seed):
    c = random_combinational(n_inputs=6, n_gates=25, seed=seed)
    original = c.copy("orig")
    PASSES[name](c)
    validate_circuit(c)
    assert check_equivalence(original, c).equivalent, name


@pytest.mark.parametrize("seed", range(3))
def test_pass_pipeline_preserves_function(seed):
    """All passes chained (the script order) stay correct."""
    c = random_combinational(n_inputs=7, n_gates=40, seed=seed)
    original = c.copy("orig")
    for name in [
        "sweep",
        "decomp",
        "tech_decomp",
        "resub",
        "sweep",
        "reduce_depth",
        "eliminate",
        "simplify",
        "sweep",
        "decomp",
        "fx",
        "tech_decomp",
    ]:
        PASSES[name](c)
        validate_circuit(c)
    assert check_equivalence(original, c).equivalent


class TestSweep:
    def test_removes_dangling(self, builder):
        a, b = builder.inputs("a", "b")
        keep = builder.AND(a, b, name="o")
        builder.NOT(a)
        builder.output(keep)
        sweep(builder.circuit)
        assert builder.circuit.num_gates() == 1

    def test_folds_constants(self, builder):
        a = builder.input("a")
        one = builder.CONST1()
        g = builder.AND(a, one, name="o")
        builder.output(g)
        sweep(builder.circuit)
        gate = builder.circuit.gates["o"]
        assert gate.inputs == ("a",)

    def test_bypasses_buffers(self, builder):
        a = builder.input("a")
        buf = builder.BUF(a)
        g = builder.NOT(buf, name="o")
        builder.output(g)
        sweep(builder.circuit)
        assert builder.circuit.gates["o"].inputs == ("a",)

    def test_merges_inverters(self, builder):
        a, b = builder.inputs("a", "b")
        na = builder.NOT(a)
        g = builder.AND(na, b, name="o")
        builder.output(g)
        sweep(builder.circuit)
        gate = builder.circuit.gates["o"]
        assert set(gate.inputs) == {"a", "b"}
        assert builder.circuit.num_gates() == 1

    def test_keeps_po_constants(self, builder):
        builder.inputs("a")
        one = builder.CONST1(name="o")
        builder.output(one)
        sweep(builder.circuit)
        assert "o" in builder.circuit.gates


class TestEliminate:
    def test_node_value_formula(self, builder):
        a, b = builder.inputs("a", "b")
        g = builder.AND(a, b)  # 2 literals
        u1 = builder.NOT(g, name="o1")
        u2 = builder.BUF(g, name="o2")
        builder.output(u1)
        builder.output(u2)
        counts = fanout_counts(builder.circuit)
        # value = (2-1)*2 - 2 = 0
        assert node_value(builder.circuit, g, counts) == 0

    def test_collapse_guard_respects_limit(self, builder):
        """XOR-chain collapse would blow up; the guard must prevent it."""
        sigs = list(builder.inputs(*[f"x{i}" for i in range(12)]))
        acc = sigs[0]
        for s in sigs[1:]:
            acc = builder.XOR(acc, s)
        builder.output(acc, name="o")
        c = builder.circuit
        original = c.copy("orig")
        eliminate(c, threshold=100, max_literals=60)
        validate_circuit(c)
        for gate in c.gates.values():
            assert gate.num_literals <= 60
        assert check_equivalence(original, c).equivalent


class TestComposeSop:
    def test_substitution_semantics(self):
        # outer = x AND y over [x, inner]; inner = a OR b
        outer = Sop(2, ("11",))
        inner = Sop(2, ("1-", "-1"))
        sop, fanins = compose_sop(outer, ["x", "g"], "g", inner, ["a", "b"])
        assert set(fanins) == {"x", "a", "b"}
        idx = {s: i for i, s in enumerate(fanins)}
        for x in (False, True):
            for a in (False, True):
                for b in (False, True):
                    vec = {"x": x, "a": a, "b": b}
                    asg = [vec[fanins[i]] for i in range(len(fanins))]
                    assert sop.eval_bool(asg) == (x and (a or b))

    def test_negative_literal_substitution(self):
        outer = Sop(1, ("0",))  # NOT g
        inner = Sop(2, ("11",))  # a AND b
        sop, fanins = compose_sop(outer, ["g"], "g", inner, ["a", "b"])
        idx = {s: i for i, s in enumerate(fanins)}
        for a in (False, True):
            for b in (False, True):
                vec = {"a": a, "b": b}
                asg = [vec[s] for s in fanins]
                assert sop.eval_bool(asg) == (not (a and b))


class TestDepth:
    def test_reduce_depth_balances_chain(self, builder):
        sigs = list(builder.inputs(*[f"x{i}" for i in range(8)]))
        acc = sigs[0]
        for s in sigs[1:]:
            acc = builder.AND(acc, s)
        builder.output(acc, name="o")
        c = builder.circuit
        original = c.copy("orig")
        before = circuit_depth(c)
        reduce_depth(c)
        validate_circuit(c)
        after = circuit_depth(c)
        assert after < before
        assert after == 3  # ceil(log2(8))
        assert check_equivalence(original, c).equivalent

    def test_circuit_depth_ignores_buffers(self, builder):
        a = builder.input("a")
        buf = builder.BUF(a)
        g = builder.NOT(buf, name="o")
        builder.output(g)
        assert circuit_depth(builder.circuit) == 1
