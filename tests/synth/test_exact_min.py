"""Exact minimisation tests and heuristic-quality cross-checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.cube import Sop
from repro.synth.exact_min import exact_minimize, prime_implicants


def sops(ninputs, max_cubes=5):
    cube = st.text(alphabet="01-", min_size=ninputs, max_size=ninputs)
    return st.lists(cube, min_size=0, max_size=max_cubes).map(
        lambda cs: Sop(ninputs, tuple(cs))
    )


class TestPrimes:
    def test_xor_primes(self):
        s = Sop.xor2()
        primes = prime_implicants(s)
        assert sorted(primes) == ["01", "10"]

    def test_consensus_prime_found(self):
        """ab + a'c has the consensus prime bc."""
        s = Sop(3, ("11-", "0-1"))
        primes = set(prime_implicants(s))
        assert "-11" in primes
        assert "11-" in primes and "0-1" in primes

    def test_tautology(self):
        s = Sop(2, ("1-", "0-"))
        assert prime_implicants(s) == ["--"]

    def test_too_many_inputs_raises(self):
        with pytest.raises(ValueError):
            prime_implicants(Sop.and_all(13))


class TestExactMinimize:
    def test_constants(self):
        assert exact_minimize(Sop.const0(3)).is_const0()
        assert exact_minimize(Sop(2, ("1-", "0-"))).is_const1_syntactic()

    def test_redundant_cover_shrinks(self):
        # ab + ab'c + abc' ... a classic redundant cover of a(b+c)
        s = Sop(3, ("11-", "101", "110"))
        m = exact_minimize(s)
        assert m.truth_table() == s.truth_table()
        assert m.num_cubes <= 2

    @given(sops(4))
    @settings(max_examples=120, deadline=None)
    def test_preserves_function(self, s):
        m = exact_minimize(s)
        assert m.truth_table() == s.truth_table()

    @given(sops(4))
    @settings(max_examples=120, deadline=None)
    def test_heuristic_never_beats_exact(self, s):
        """espresso-lite must not produce fewer cubes than the optimum."""
        exact = exact_minimize(s)
        heuristic = s.minimized()
        assert heuristic.truth_table() == s.truth_table()
        assert exact.num_cubes <= heuristic.num_cubes

    @given(sops(3))
    @settings(max_examples=80, deadline=None)
    def test_result_cubes_are_primes(self, s):
        m = exact_minimize(s)
        if m.is_const0() or m.is_const1_syntactic():
            return
        primes = set(prime_implicants(s))
        for cube in m.cubes:
            assert cube in primes

    def test_heuristic_quality_on_benchmarkish_covers(self):
        """On random 5-input covers the heuristic stays within 1 cube of
        the optimum at least 80% of the time (quality regression guard)."""
        import random

        rng = random.Random(42)
        close = 0
        total = 40
        for _ in range(total):
            cubes = tuple(
                "".join(rng.choice("01--") for _ in range(5))
                for _ in range(rng.randint(2, 6))
            )
            s = Sop(5, cubes)
            exact = exact_minimize(s)
            heuristic = s.minimized()
            if heuristic.num_cubes <= exact.num_cubes + 1:
                close += 1
        assert close >= int(0.8 * total), close
