"""BDD manager tests: unit + property-based against truth tables."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd.bdd import BDD

VARS = ["a", "b", "c", "d"]


def eval_tt(tt: int, asg: dict) -> bool:
    idx = sum((1 << i) for i, v in enumerate(VARS) if asg[v])
    return bool((tt >> idx) & 1)


def build_from_tt(mgr: BDD, tt: int) -> int:
    """Build a BDD from a 4-variable truth table by minterm OR."""
    acc = mgr.ZERO
    for idx in range(16):
        if (tt >> idx) & 1:
            term = mgr.ONE
            for i, v in enumerate(VARS):
                lit = mgr.var(v) if (idx >> i) & 1 else mgr.nvar(v)
                term = mgr.apply_and(term, lit)
            acc = mgr.apply_or(acc, term)
    return acc


def all_assignments():
    for bits in itertools.product([False, True], repeat=4):
        yield dict(zip(VARS, bits))


class TestBasics:
    def test_terminals(self):
        mgr = BDD(VARS)
        assert mgr.eval(mgr.ONE, {}) is True
        assert mgr.eval(mgr.ZERO, {}) is False

    def test_var_and_nvar(self):
        mgr = BDD(VARS)
        a = mgr.var("a")
        na = mgr.nvar("a")
        assert mgr.apply_and(a, na) == mgr.ZERO
        assert mgr.apply_or(a, na) == mgr.ONE
        assert mgr.apply_not(a) == na

    def test_canonicity(self):
        """Same function built two ways gives the same node."""
        mgr = BDD(VARS)
        a, b = mgr.var("a"), mgr.var("b")
        f1 = mgr.apply_not(mgr.apply_and(a, b))
        f2 = mgr.apply_or(mgr.apply_not(a), mgr.apply_not(b))
        assert f1 == f2

    def test_ite(self):
        mgr = BDD(VARS)
        a, b, c = mgr.var("a"), mgr.var("b"), mgr.var("c")
        f = mgr.ite(a, b, c)
        for asg in all_assignments():
            expect = asg["b"] if asg["a"] else asg["c"]
            assert mgr.eval(f, asg) == expect

    def test_support(self):
        mgr = BDD(VARS)
        f = mgr.apply_and(mgr.var("a"), mgr.var("c"))
        assert mgr.support(f) == {"a", "c"}
        assert mgr.support(mgr.ONE) == frozenset()

    def test_xor_xnor(self):
        mgr = BDD(VARS)
        a, b = mgr.var("a"), mgr.var("b")
        x = mgr.apply_xor(a, b)
        xn = mgr.apply_xnor(a, b)
        assert mgr.apply_not(x) == xn

    def test_and_all_short_circuit(self):
        mgr = BDD(VARS)
        nodes = [mgr.var("a"), mgr.ZERO, mgr.var("b")]
        assert mgr.and_all(nodes) == mgr.ZERO
        assert mgr.or_all([mgr.var("a"), mgr.ONE]) == mgr.ONE


class TestSemantics:
    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=60, deadline=None)
    def test_build_matches_truth_table(self, tt):
        mgr = BDD(VARS)
        f = build_from_tt(mgr, tt)
        for asg in all_assignments():
            assert mgr.eval(f, asg) == eval_tt(tt, asg)

    @given(
        st.integers(min_value=0, max_value=(1 << 16) - 1),
        st.integers(min_value=0, max_value=(1 << 16) - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_apply_ops(self, t1, t2):
        mgr = BDD(VARS)
        f, g = build_from_tt(mgr, t1), build_from_tt(mgr, t2)
        assert build_from_tt(mgr, t1 & t2) == mgr.apply_and(f, g)
        assert build_from_tt(mgr, t1 | t2) == mgr.apply_or(f, g)
        assert build_from_tt(mgr, (t1 ^ t2) & 0xFFFF) == mgr.apply_xor(f, g)
        assert build_from_tt(mgr, ~t1 & 0xFFFF) == mgr.apply_not(f)

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=40, deadline=None)
    def test_cofactor_and_quantify(self, tt):
        mgr = BDD(VARS)
        f = build_from_tt(mgr, tt)
        f0 = mgr.cofactor(f, "b", False)
        f1 = mgr.cofactor(f, "b", True)
        assert mgr.exists(f, ["b"]) == mgr.apply_or(f0, f1)
        assert mgr.forall(f, ["b"]) == mgr.apply_and(f0, f1)
        assert "b" not in mgr.support(f0)

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=40, deadline=None)
    def test_sat_count(self, tt):
        mgr = BDD(VARS)
        f = build_from_tt(mgr, tt)
        assert mgr.sat_count(f) == bin(tt).count("1")

    @given(st.integers(min_value=1, max_value=(1 << 16) - 1))
    @settings(max_examples=40, deadline=None)
    def test_pick_minterm(self, tt):
        mgr = BDD(VARS)
        f = build_from_tt(mgr, tt)
        m = mgr.pick_minterm(f)
        assert m is not None
        full = {v: m.get(v, False) for v in VARS}
        assert mgr.eval(f, full)

    def test_pick_minterm_of_zero(self):
        mgr = BDD(VARS)
        assert mgr.pick_minterm(mgr.ZERO) is None

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=30, deadline=None)
    def test_compose(self, tt):
        mgr = BDD(VARS)
        f = build_from_tt(mgr, tt)
        g = mgr.apply_and(mgr.var("c"), mgr.var("d"))
        h = mgr.compose(f, "a", g)
        for asg in all_assignments():
            sub = dict(asg)
            sub["a"] = asg["c"] and asg["d"]
            assert mgr.eval(h, asg) == mgr.eval(f, sub)

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=40, deadline=None)
    def test_isop_covers_function(self, tt):
        mgr = BDD(VARS)
        f = build_from_tt(mgr, tt)
        cover = mgr.isop(f)
        for asg in all_assignments():
            val = any(
                all(asg[v] == phase for v, phase in cube.items())
                for cube in cover
            )
            assert val == mgr.eval(f, asg)

    def test_unateness(self):
        mgr = BDD(VARS)
        a, b = mgr.var("a"), mgr.var("b")
        f = mgr.apply_or(a, b)
        assert mgr.is_positive_unate(f, "a")
        assert not mgr.is_negative_unate(f, "a")
        g = mgr.apply_xor(a, b)
        assert not mgr.is_positive_unate(g, "a")
        assert not mgr.is_negative_unate(g, "a")

    def test_implies(self):
        mgr = BDD(VARS)
        a, b = mgr.var("a"), mgr.var("b")
        ab = mgr.apply_and(a, b)
        assert mgr.implies(ab, a)
        assert not mgr.implies(a, ab)

    def test_iter_minterms(self):
        mgr = BDD(VARS)
        f = mgr.apply_xor(mgr.var("a"), mgr.var("b"))
        minterms = list(mgr.iter_minterms(f, ["a", "b"]))
        assert len(minterms) == 2
        for m in minterms:
            assert m["a"] != m["b"]

    def test_from_sop(self):
        from repro.netlist.cube import Sop

        mgr = BDD(VARS)
        sop = Sop(2, ("10", "01"))
        f = mgr.from_sop(sop, [mgr.var("a"), mgr.var("b")])
        assert f == mgr.apply_xor(mgr.var("a"), mgr.var("b"))
