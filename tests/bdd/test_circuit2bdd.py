"""Tests for circuit→BDD lowering and BDD→gates synthesis."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.bdd.bdd import BDD
from repro.bdd.circuit2bdd import circuit_bdds, output_bdds
from repro.bdd.order import dfs_variable_order
from repro.bdd.synth import bdd_to_gates, sop_from_bdd
from repro.bench.random_circuits import random_combinational
from repro.netlist.build import CircuitBuilder
from repro.netlist.validate import validate_circuit
from repro.sim.logic2 import simulate


class TestCircuitToBdd:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_simulation(self, seed):
        c = random_combinational(n_inputs=5, n_gates=15, seed=seed)
        mgr = BDD()
        nodes = circuit_bdds(c, mgr)
        rng = random.Random(seed)
        for _ in range(20):
            vec = {i: rng.random() < 0.5 for i in c.inputs}
            sim = simulate(c, [vec]).outputs[0]
            for out in c.outputs:
                assert mgr.eval(nodes[out], vec) == sim[out]

    def test_latch_outputs_are_variables(self):
        b = CircuitBuilder("t")
        (a,) = b.inputs("a")
        q = b.latch(b.NOT(a))
        b.output(b.AND(q, a), name="o")
        mgr = BDD()
        nodes = output_bdds(b.circuit, mgr)
        assert mgr.support(nodes["o"]) == {q, "a"}

    def test_dfs_order_covers_all_leaves(self):
        c = random_combinational(seed=7)
        order = dfs_variable_order(c)
        assert set(order) == set(c.inputs)


class TestBddSynth:
    def _roundtrip(self, build):
        """Build f over a circuit's PIs, lower it back, compare."""
        mgr = BDD(["x", "y", "z"])
        f = build(mgr)
        b = CircuitBuilder("t")
        b.inputs("x", "y", "z")
        c = b.circuit
        sig = bdd_to_gates(mgr, f, c, "syn")
        c.add_output(sig)
        validate_circuit(c)
        for bits in itertools.product([False, True], repeat=3):
            vec = dict(zip(["x", "y", "z"], bits))
            assert simulate(c, [vec]).outputs[0][sig] == mgr.eval(f, vec)

    def test_mux_tree_roundtrip(self):
        self._roundtrip(
            lambda m: m.ite(m.var("x"), m.var("y"), m.apply_not(m.var("z")))
        )

    def test_constants(self):
        self._roundtrip(lambda m: m.ONE)
        self._roundtrip(lambda m: m.ZERO)

    def test_xor_chain(self):
        self._roundtrip(
            lambda m: m.apply_xor(m.var("x"), m.apply_xor(m.var("y"), m.var("z")))
        )

    def test_sop_from_bdd(self):
        mgr = BDD(["x", "y"])
        f = mgr.apply_xor(mgr.var("x"), mgr.var("y"))
        extraction = sop_from_bdd(mgr, f, ["x", "y"])
        assert extraction is not None
        sop, fanins = extraction
        assert set(fanins) == {"x", "y"}
        idx = {s: i for i, s in enumerate(fanins)}
        for bits in itertools.product([False, True], repeat=2):
            vec = {"x": bits[0], "y": bits[1]}
            asg = [vec[fanins[i]] for i in range(2)]
            assert sop.eval_bool(asg) == mgr.eval(f, vec)

    def test_sop_from_bdd_missing_support_raises(self):
        mgr = BDD(["x", "y"])
        f = mgr.apply_and(mgr.var("x"), mgr.var("y"))
        with pytest.raises(ValueError):
            sop_from_bdd(mgr, f, ["x"])
