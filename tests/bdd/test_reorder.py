"""Tests for BDD transfer and order selection."""

from __future__ import annotations

import itertools

import pytest

from repro.bdd.bdd import BDD
from repro.bdd.circuit2bdd import circuit_bdds
from repro.bdd.reorder import (
    bfs_variable_order,
    build_with_best_order,
    choose_best_order,
    transfer,
)
from repro.bench.random_circuits import random_combinational
from repro.netlist.build import CircuitBuilder


class TestTransfer:
    def test_same_function_different_order(self):
        src = BDD(["a", "b", "c"])
        f = src.ite(src.var("a"), src.var("b"), src.var("c"))
        dst = BDD(["c", "b", "a"])  # reversed order
        (g,) = transfer(src, [f], dst)
        for bits in itertools.product([False, True], repeat=3):
            asg = dict(zip(["a", "b", "c"], bits))
            assert src.eval(f, asg) == dst.eval(g, asg)

    def test_terminals(self):
        src = BDD(["a"])
        dst = BDD()
        assert transfer(src, [src.ONE, src.ZERO], dst) == [dst.ONE, dst.ZERO]

    def test_shared_subgraphs_stay_shared(self):
        src = BDD(["a", "b", "c", "d"])
        shared = src.apply_and(src.var("c"), src.var("d"))
        f = src.apply_or(src.var("a"), shared)
        g = src.apply_or(src.var("b"), shared)
        dst = BDD(["a", "b", "c", "d"])
        tf, tg = transfer(src, [f, g], dst)
        assert tf == src_rebuild(dst, "a", "c", "d")
        assert tg == src_rebuild(dst, "b", "c", "d")

    def test_order_sensitivity_demonstrated(self):
        """The classic 2n-variable function where order matters a lot:
        (a1·b1)+(a2·b2)+(a3·b3) — interleaved beats separated."""
        n = 4
        good = [f"a{i}" for i in range(n) for _ in (0,)]
        interleaved = []
        separated = []
        for i in range(n):
            interleaved += [f"a{i}", f"b{i}"]
        separated = [f"a{i}" for i in range(n)] + [f"b{i}" for i in range(n)]

        def build(order):
            mgr = BDD(order)
            acc = mgr.ZERO
            for i in range(n):
                acc = mgr.apply_or(
                    acc, mgr.apply_and(mgr.var(f"a{i}"), mgr.var(f"b{i}"))
                )
            return mgr

        small = build(interleaved).num_nodes()
        large = build(separated).num_nodes()
        assert small < large


def src_rebuild(mgr, x, c, d):
    return mgr.apply_or(mgr.var(x), mgr.apply_and(mgr.var(c), mgr.var(d)))


class TestOrderSelection:
    def test_bfs_order_covers_all_leaves(self):
        c = random_combinational(seed=3)
        order = bfs_variable_order(c)
        assert set(order) == set(c.inputs)

    @pytest.mark.parametrize("seed", range(3))
    def test_best_order_never_worse_than_dfs(self, seed):
        c = random_combinational(n_inputs=7, n_gates=30, seed=seed)
        from repro.bdd.order import dfs_variable_order

        mgr = BDD()
        circuit_bdds(c, mgr, order=dfs_variable_order(c))
        dfs_size = mgr.num_nodes()
        _, best_size = choose_best_order(c)
        assert best_size <= dfs_size

    def test_build_with_best_order_correct(self):
        c = random_combinational(n_inputs=5, n_gates=15, seed=4)
        manager, nodes = build_with_best_order(c)
        from repro.sim.logic2 import simulate
        import random

        rng = random.Random(0)
        for _ in range(10):
            vec = {i: rng.random() < 0.5 for i in c.inputs}
            sim = simulate(c, [vec]).outputs[0]
            for out in c.outputs:
                assert manager.eval(nodes[out], vec) == sim[out]
