"""Benchmark generator tests: structure matches the paper's regimes."""

from __future__ import annotations

import pytest

from repro.bench.counterex import fig1_pair, fig10_pair, fig11_pair, fig14_conditional_update
from repro.bench.industrial import TABLE2_CIRCUITS, build_table2_circuit, industrial_circuit
from repro.bench.iscas_like import TABLE1_CIRCUITS, build_table1_circuit, iscas_like_circuit
from repro.bench.minmax import minmax_circuit
from repro.bench.pipeline import fig3_circuit, pipeline_circuit, trapped_latch_circuit
from repro.core.expose import choose_latches_to_expose
from repro.netlist.graph import feedback_latches, is_acyclic_sequential
from repro.netlist.validate import validate_circuit
from repro.sim.logic2 import simulate


class TestMinmax:
    @pytest.mark.parametrize("k", [2, 4, 10])
    def test_latch_count_is_3k(self, k):
        c = minmax_circuit(k)
        validate_circuit(c)
        assert c.num_latches() == 3 * k

    def test_behaviour_tracks_min_and_max(self):
        k = 4
        c = minmax_circuit(k)
        values = [5, 3, 9, 1, 7]
        # The input register pipelines the stream by one cycle: power it up
        # holding values[0], feed the rest, then pad so the last value
        # reaches the MIN/MAX registers before observing.
        seq = [
            {f"in{i}": bool((v >> i) & 1) for i in range(k)}
            for v in values[1:]
        ]
        seq += [{f"in{i}": False for i in range(k)}] * 2
        init = {l: False for l in c.latches}
        for i in range(k):
            init[f"min{i}"] = True  # MIN starts at 15
            init[f"max{i}"] = False  # MAX starts at 0
            init[f"r{i}"] = bool((values[0] >> i) & 1)
        tr = simulate(c, seq, init)
        # MIN/MAX at cycle len(values) cover exactly values[0..4].
        final = tr.outputs[len(values)]
        got_min = sum((1 << i) for i in range(k) if final[f"omin{i}"])
        got_max = sum((1 << i) for i in range(k) if final[f"omax{i}"])
        assert got_min == min(values)
        assert got_max == max(values)

    def test_two_thirds_feedback(self):
        c = minmax_circuit(5)
        fb = feedback_latches(c)
        assert len(fb) == 10  # min+max registers
        assert all(n.startswith(("min", "max")) for n in fb)


class TestPipelines:
    def test_pipeline_is_acyclic(self):
        c = pipeline_circuit(stages=3, width=4, seed=0)
        validate_circuit(c)
        assert is_acyclic_sequential(c)
        assert c.num_latches() == 12

    def test_enabled_pipeline_has_classes(self):
        c = pipeline_circuit(stages=2, width=3, seed=0, enable=True)
        classes = c.latch_classes()
        assert len(classes) == 2

    def test_fig3_shape(self):
        c = fig3_circuit()
        assert c.num_latches() == 2
        assert is_acyclic_sequential(c)

    def test_trapped_latches(self):
        c = trapped_latch_circuit(width=3, seed=1)
        validate_circuit(c)
        assert is_acyclic_sequential(c)


class TestIscasLike:
    def test_table1_catalogue_buildable_small(self):
        for name, latches, pct in TABLE1_CIRCUITS:
            if latches > 100:
                continue
            c = build_table1_circuit(name)
            validate_circuit(c)
            assert c.num_latches() == latches, name

    @pytest.mark.parametrize(
        "name,latches,pct",
        [e for e in TABLE1_CIRCUITS if 20 < e[1] <= 140 and not e[0].startswith("minmax")],
    )
    def test_exposure_fraction_matches_paper(self, name, latches, pct):
        c = build_table1_circuit(name)
        exposed, _ = choose_latches_to_expose(c, use_unateness=False)
        got_pct = 100 * len(exposed) / latches
        assert abs(got_pct - pct) <= 6, (name, got_pct, pct)

    def test_custom_parameters(self):
        c = iscas_like_circuit("x", n_latches=30, pct_exposed=40, seed=2)
        validate_circuit(c)
        assert c.num_latches() == 30
        exposed, _ = choose_latches_to_expose(c, use_unateness=False)
        assert len(exposed) == 12


class TestIndustrial:
    def test_table2_catalogue_small(self):
        for name, latches, exposed_target in TABLE2_CIRCUITS:
            if latches > 500:
                continue
            c = build_table2_circuit(name)
            validate_circuit(c)
            assert c.num_latches() == latches, name
            exposed, _ = choose_latches_to_expose(c, use_unateness=False)
            assert len(exposed) == exposed_target, name

    def test_has_load_enabled_latches(self):
        c = industrial_circuit("t", n_latches=80, n_exposed=20, seed=1)
        assert any(l.enable is not None for l in c.latches.values())


class TestCounterexamples:
    def test_fig1_pair_shapes(self):
        c1, c2 = fig1_pair()
        validate_circuit(c1)
        validate_circuit(c2)
        assert set(c1.inputs) == set(c2.inputs)
        assert set(c1.outputs) == set(c2.outputs)

    def test_fig10_pair_shapes(self):
        c1, c2 = fig10_pair()
        validate_circuit(c1)
        validate_circuit(c2)
        assert c1.num_latches() == 2 and c2.num_latches() == 1

    def test_fig11_pair_shapes(self):
        c1, c2 = fig11_pair()
        validate_circuit(c1)
        validate_circuit(c2)

    def test_fig14_has_unate_feedback(self):
        c = fig14_conditional_update(2)
        validate_circuit(c)
        assert len(feedback_latches(c)) == 2
