"""Benchmark regression gating: the `repro bench compare` semantics."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import (
    ABSOLUTE_FLOORS,
    DEFAULT_THRESHOLDS,
    compare_reports,
    load_report,
    parse_thresholds,
    render_comparison,
)


def _report(**totals):
    return {
        "totals": {
            mode: dict(values) for mode, values in totals.items()
        },
        "verdict_divergences": [],
    }


BASE = _report(
    serial={"sat_queries": 100, "seconds": 1.0},
    parallel={"sat_queries": 40, "seconds": 0.5},
)


class TestLoadAndThresholds:
    def test_load_report_round_trip(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps(BASE))
        assert load_report(path)["totals"]["serial"]["sat_queries"] == 100

    def test_load_rejects_non_report(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"rows": []}')
        with pytest.raises(ValueError):
            load_report(path)

    def test_parse_thresholds_folds_over_defaults(self):
        thresholds = parse_thresholds(["seconds=50", "extra_metric=5"])
        assert thresholds["seconds"] == 50.0
        assert thresholds["sat_queries"] == DEFAULT_THRESHOLDS["sat_queries"]
        assert thresholds["extra_metric"] == 5.0

    def test_parse_thresholds_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_thresholds(["seconds"])
        with pytest.raises(ValueError):
            parse_thresholds(["seconds=fast"])
        with pytest.raises(ValueError):
            parse_thresholds(["=20"])


class TestCompare:
    def test_baseline_vs_itself_passes(self):
        deltas, failures = compare_reports(BASE, BASE)
        assert failures == []
        assert all(d.status == "ok" for d in deltas)
        assert "PASS" in render_comparison(deltas, failures)

    def test_regression_over_both_gates_fails(self):
        fresh = _report(
            serial={"sat_queries": 130, "seconds": 1.0},  # +30%, +30 abs
            parallel={"sat_queries": 40, "seconds": 0.5},
        )
        deltas, failures = compare_reports(BASE, fresh)
        assert len(failures) == 1
        assert "serial.sat_queries" in failures[0]
        assert "FAIL" in render_comparison(deltas, failures)

    def test_absolute_floor_suppresses_tiny_regressions(self):
        # +50% relative but only +2 queries: under the 3-query floor.
        base = _report(tiny={"sat_queries": 4, "seconds": 0.001})
        fresh = _report(tiny={"sat_queries": 6, "seconds": 0.002})
        assert ABSOLUTE_FLOORS["sat_queries"] >= 2
        deltas, failures = compare_reports(base, fresh)
        assert failures == []

    def test_improvement_reported_not_failed(self):
        fresh = _report(
            serial={"sat_queries": 50, "seconds": 0.4},
            parallel={"sat_queries": 40, "seconds": 0.5},
        )
        deltas, failures = compare_reports(BASE, fresh)
        assert failures == []
        improved = {d.metric for d in deltas if d.status == "improved"}
        assert "sat_queries" in improved

    def test_missing_mode_fails(self):
        fresh = _report(serial={"sat_queries": 100, "seconds": 1.0})
        deltas, failures = compare_reports(BASE, fresh)
        assert any("parallel" in f for f in failures)
        assert any(d.status == "missing" for d in deltas)

    def test_added_mode_is_not_a_failure(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["totals"]["new_mode"] = {"sat_queries": 9, "seconds": 0.1}
        deltas, failures = compare_reports(BASE, fresh)
        assert failures == []
        assert any(d.status == "added" for d in deltas)

    def test_verdict_divergence_fails_outright(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["verdict_divergences"] = [
            {"pair": "p1", "serial": "eq", "parallel": "neq"}
        ]
        _, failures = compare_reports(BASE, fresh)
        assert any("divergence" in f for f in failures)

    def test_custom_threshold_tightens_gate(self):
        fresh = _report(
            serial={"sat_queries": 110, "seconds": 1.0},  # +10%, +10 abs
            parallel={"sat_queries": 40, "seconds": 0.5},
        )
        _, default_failures = compare_reports(BASE, fresh)
        assert default_failures == []  # within the default 20%
        _, tight_failures = compare_reports(
            BASE, fresh, parse_thresholds(["sat_queries=5"])
        )
        assert len(tight_failures) == 1

    def test_zero_baseline_has_no_pct_but_compares(self):
        base = _report(mode={"sat_queries": 0, "seconds": 0.0})
        fresh = _report(mode={"sat_queries": 10, "seconds": 0.0})
        deltas, failures = compare_reports(base, fresh)
        row = next(d for d in deltas if d.metric == "sat_queries")
        assert row.delta_pct is None
        # 10 > 0*(1.2) and 10 > floor(3): a from-zero jump is real.
        assert failures

    def test_delta_rows_serialise(self):
        deltas, _ = compare_reports(BASE, BASE)
        for delta in deltas:
            row = delta.to_dict()
            assert json.loads(json.dumps(row)) == row


class TestRealBaseline:
    def test_checked_in_baseline_passes_against_itself(self):
        """The identity check CI runs: BENCH_cec.json vs BENCH_cec.json."""
        from pathlib import Path

        report = load_report(Path(__file__).parents[2] / "BENCH_cec.json")
        deltas, failures = compare_reports(report, report)
        assert failures == []
        assert deltas, "baseline has no comparable totals"
