"""Deterministic fault injection: plans, firing rules, registry, backoff.

Chaos is only trustworthy if it is *reproducible*: the same plan against
the same workload must fire the same faults at the same hits, regardless
of cross-site interleaving.  These tests pin that contract, the plan
format's loud validation, the zero-overhead off state, and the jittered
exponential backoff the requeue paths share.
"""

from __future__ import annotations

import asyncio
import json
import random
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.runtime import chaos
from repro.runtime.chaos import ChaosError, FaultPlan, FaultRule
from repro.runtime.retry import backoff_pause, run_with_retries


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    """Every test starts and ends chaos-free."""
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    chaos.uninstall()
    yield
    chaos.uninstall()


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos site"):
            FaultRule(site="nonsense.site", action="crash")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            FaultRule(site="worker.entry", action="explode")

    def test_unknown_plan_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-rule"):
            FaultRule.from_dict(
                {"site": "worker.entry", "action": "crash", "wat": 1}
            )
        with pytest.raises(ValueError, match="unknown fault-plan"):
            FaultPlan.from_dict({"faults": [], "extra": True})

    def test_roundtrip(self):
        plan = FaultPlan(
            rules=[
                FaultRule(site="worker.entry", action="crash", hits=[1, 3]),
                FaultRule(site="cache.save", action="delay", seconds=0.5),
            ],
            seed=7,
        )
        again = FaultPlan.from_dict(plan.to_dict())
        assert again.to_dict() == plan.to_dict()
        assert again.seed == 7


class TestFiring:
    def test_hits_list_fires_exactly_those_visits(self):
        plan = FaultPlan(
            [FaultRule(site="worker.entry", action="crash", hits=[2, 4])]
        )
        outcomes = []
        for _ in range(5):
            try:
                plan.fire("worker.entry")
                outcomes.append("ok")
            except ChaosError:
                outcomes.append("crash")
        assert outcomes == ["ok", "crash", "ok", "crash", "ok"]

    def test_every_and_times_cap(self):
        plan = FaultPlan(
            [FaultRule(site="store.append", action="crash", every=2, times=1)]
        )
        crashes = 0
        for _ in range(6):
            try:
                plan.fire("store.append")
            except ChaosError:
                crashes += 1
        assert crashes == 1  # every 2nd hit, capped at one firing

    def test_corrupt_yields_invalid_json(self):
        plan = FaultPlan([FaultRule(site="transport.recv", action="corrupt")])
        line = json.dumps({"golden": "a.blif"})
        garbled = plan.fire("transport.recv", line)
        assert garbled != line
        with pytest.raises(ValueError):
            json.loads(garbled)

    def test_corrupt_passes_through_unknown_payloads(self):
        plan = FaultPlan([FaultRule(site="transport.recv", action="corrupt")])
        payload = {"not": "text"}
        assert plan.fire("transport.recv", payload) is payload

    def test_delay_sleeps(self):
        plan = FaultPlan(
            [FaultRule(site="scheduler.dispatch", action="delay", seconds=0.03)]
        )
        t0 = time.perf_counter()
        plan.fire("scheduler.dispatch")
        assert time.perf_counter() - t0 >= 0.025

    def test_afire_delay_and_crash(self):
        plan = FaultPlan(
            [
                FaultRule(
                    site="transport.recv", action="crash", hits=[2]
                )
            ]
        )

        async def drive():
            assert await plan.afire("transport.recv", "x") == "x"
            with pytest.raises(ChaosError):
                await plan.afire("transport.recv", "x")

        asyncio.run(drive())

    def test_log_records_every_firing(self):
        plan = FaultPlan(
            [FaultRule(site="worker.entry", action="crash", hits=[1])]
        )
        with pytest.raises(ChaosError):
            plan.fire("worker.entry")
        plan.fire("worker.entry")
        assert plan.fired() == 1
        assert plan.fired("worker.entry") == 1
        assert plan.fired("cache.save") == 0
        entry = plan.log[0]
        assert entry["site"] == "worker.entry"
        assert entry["action"] == "crash"
        assert entry["hit"] == 1

    def test_metrics_counter(self):
        registry = MetricsRegistry()
        plan = FaultPlan([FaultRule(site="cache.save", action="delay", seconds=0)])
        plan.metrics = registry
        plan.fire("cache.save")
        plan.fire("cache.save")
        assert registry.counter("chaos.faults_fired") == 2


class TestDeterminism:
    def test_prob_pattern_reproducible_across_instances(self):
        def pattern():
            plan = FaultPlan(
                [FaultRule(site="worker.entry", action="crash", prob=0.5)],
                seed=42,
            )
            fired = []
            for _ in range(32):
                try:
                    plan.fire("worker.entry")
                    fired.append(0)
                except ChaosError:
                    fired.append(1)
            return fired

        assert pattern() == pattern()

    def test_site_isolation_from_interleaving(self):
        """Hitting *other* sites never shifts a site's firing pattern."""
        rules = [
            FaultRule(site="worker.entry", action="crash", prob=0.5),
            FaultRule(site="store.append", action="crash", prob=0.5),
        ]
        solo = FaultPlan(list(rules), seed=9)
        mixed = FaultPlan(list(rules), seed=9)
        solo_pattern = []
        for _ in range(20):
            try:
                solo.fire("worker.entry")
                solo_pattern.append(0)
            except ChaosError:
                solo_pattern.append(1)
        mixed_pattern = []
        for _ in range(20):
            # Interleave hits on an unrelated site between every visit.
            try:
                mixed.fire("store.append")
            except ChaosError:
                pass
            try:
                mixed.fire("worker.entry")
                mixed_pattern.append(0)
            except ChaosError:
                mixed_pattern.append(1)
        assert mixed_pattern == solo_pattern

    def test_different_seeds_differ(self):
        def pattern(seed):
            plan = FaultPlan(
                [FaultRule(site="worker.entry", action="crash", prob=0.5)],
                seed=seed,
            )
            out = []
            for _ in range(64):
                try:
                    plan.fire("worker.entry")
                    out.append(0)
                except ChaosError:
                    out.append(1)
            return out

        assert pattern(1) != pattern(2)


class TestRegistry:
    def test_fire_is_noop_when_off(self):
        assert chaos.active() is None
        assert chaos.fire("worker.entry", "data") == "data"

        async def drive():
            return await chaos.afire("transport.recv", "x")

        assert asyncio.run(drive()) == "x"

    def test_install_uninstall(self):
        plan = FaultPlan([FaultRule(site="worker.entry", action="crash")])
        chaos.install(plan)
        assert chaos.active() is plan
        with pytest.raises(ChaosError):
            chaos.fire("worker.entry")
        assert chaos.uninstall() is plan
        assert chaos.active() is None

    def test_ensure_env_plan_installs_from_env(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {
                    "seed": 3,
                    "faults": [{"site": "worker.entry", "action": "crash"}],
                }
            )
        )
        monkeypatch.setenv(chaos.ENV_VAR, str(path))
        plan = chaos.ensure_env_plan()
        assert plan is not None and plan.seed == 3
        # Idempotent: a second call keeps the installed plan.
        assert chaos.ensure_env_plan() is plan

    def test_ensure_env_plan_fails_loudly_on_bad_file(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        monkeypatch.setenv(chaos.ENV_VAR, str(path))
        with pytest.raises(ValueError):
            chaos.ensure_env_plan()

    def test_no_env_means_no_plan(self):
        assert chaos.ensure_env_plan() is None


class TestBackoffPause:
    def test_linear_default_unchanged(self):
        assert backoff_pause(1, 0.05) == pytest.approx(0.05)
        assert backoff_pause(3, 0.05) == pytest.approx(0.15)

    def test_exponential_bounded_by_doubling_ceiling(self):
        rng = random.Random(0)
        for attempt in range(1, 8):
            pause = backoff_pause(
                attempt, 0.1, exponential=True, backoff_cap=2.0, rng=rng
            )
            assert 0.0 <= pause <= min(2.0, 0.1 * 2 ** (attempt - 1))

    def test_exponential_respects_cap(self):
        rng = random.Random(1)
        draws = [
            backoff_pause(20, 1.0, exponential=True, backoff_cap=0.25, rng=rng)
            for _ in range(50)
        ]
        assert all(d <= 0.25 for d in draws)

    def test_seeded_rng_reproducible(self):
        a = [
            backoff_pause(k, 0.1, exponential=True, rng=random.Random(5))
            for k in range(1, 6)
        ]
        b = [
            backoff_pause(k, 0.1, exponential=True, rng=random.Random(5))
            for k in range(1, 6)
        ]
        assert a == b

    def test_zero_base_never_pauses(self):
        assert backoff_pause(4, 0.0, exponential=True) == 0.0

    def test_run_with_retries_exponential_path(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("boom")
            return "ok"

        result, error, retries = run_with_retries(
            flaky,
            attempts=3,
            backoff_seconds=0.0,
            exponential=True,
            rng=random.Random(0),
        )
        assert result == "ok" and error is None and retries == 2
