"""Budget semantics and their enforcement inside the proving engines."""

from __future__ import annotations

import time

import pytest

from repro.bdd.bdd import BDD
from repro.runtime.budget import (
    KNOWN_REASONS,
    REASON_BDD_BLOWUP,
    REASON_CONFLICT_LIMIT,
    REASON_PROPAGATION_LIMIT,
    REASON_TIMEOUT,
    Budget,
)
from repro.runtime.errors import BddBlowupError, BudgetExceededError
from repro.runtime.retry import run_with_retries
from repro.sat.solver import Solver


def pigeonhole_cnf(holes: int):
    """PHP(holes+1, holes): unsatisfiable and hard for CDCL (no short proof)."""
    pigeons = holes + 1

    def var(i: int, j: int) -> int:
        return i * holes + j + 1

    clauses = [[var(i, j) for j in range(holes)] for i in range(pigeons)]
    for j in range(holes):
        for i in range(pigeons):
            for k in range(i + 1, pigeons):
                clauses.append([-var(i, j), -var(k, j)])
    return pigeons * holes, clauses


def _loaded_solver(holes: int) -> Solver:
    num_vars, clauses = pigeonhole_cnf(holes)
    solver = Solver()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        assert solver.add_clause(clause)
    return solver


class TestBudgetObject:
    def test_coerce(self):
        assert Budget.coerce(None) is None
        b = Budget(sat_conflicts=5)
        assert Budget.coerce(b) is b
        b2 = Budget.coerce(2.5)
        assert b2.wall_seconds == 2.5
        assert b2.sat_conflicts is None

    def test_unlimited(self):
        assert Budget().unlimited
        assert not Budget(wall_seconds=1).unlimited
        assert not Budget(bdd_nodes=10).unlimited

    def test_lazy_clock_and_remaining(self):
        b = Budget(wall_seconds=10.0)
        assert b._deadline is None  # clock not started at construction
        remaining = b.remaining()
        assert remaining is not None and 9.0 < remaining <= 10.0
        assert not b.expired()
        assert Budget().remaining() is None

    def test_zero_budget_is_expired(self):
        b = Budget(wall_seconds=0.0)
        assert b.expired()
        with pytest.raises(BudgetExceededError) as info:
            b.check("unit test")
        assert info.value.reason == REASON_TIMEOUT
        assert "unit test" in str(info.value)

    def test_start_is_idempotent(self):
        b = Budget(wall_seconds=5.0).start()
        deadline = b.deadline
        time.sleep(0.01)
        assert b.start().deadline == deadline

    def test_slice_inherits_caps_and_clips_deadline(self):
        parent = Budget(
            wall_seconds=10.0, sat_conflicts=100, bdd_nodes=1000
        ).start()
        child = parent.slice(4)
        assert child.sat_conflicts == 100
        assert child.bdd_nodes == 1000
        share = child.remaining()
        assert share is not None and share <= 10.0 / 4 + 0.01
        assert child.deadline <= parent.deadline

    def test_slice_of_untimed_budget_is_a_copy(self):
        child = Budget(sat_conflicts=7).slice(3)
        assert child.sat_conflicts == 7
        assert child.remaining() is None

    def test_reason_codes_are_stable(self):
        assert {
            "timeout",
            "conflict-limit",
            "propagation-limit",
            "bdd-blowup",
            "worker-failure",
        } <= KNOWN_REASONS


class TestSolverBudgets:
    def test_unbudgeted_php_is_unsat(self):
        solver = _loaded_solver(4)
        result = solver.solve()
        assert not result.satisfiable
        assert not solver.last_unknown
        assert solver.last_unknown_reason is None

    def test_conflict_limit_reports_reason(self):
        solver = _loaded_solver(6)
        result = solver.solve(conflict_limit=3)
        assert not result.satisfiable
        assert solver.last_unknown
        assert solver.last_unknown_reason == REASON_CONFLICT_LIMIT

    def test_propagation_limit_reports_reason(self):
        solver = _loaded_solver(6)
        result = solver.solve(propagation_limit=10)
        assert not result.satisfiable
        assert solver.last_unknown
        assert solver.last_unknown_reason == REASON_PROPAGATION_LIMIT

    def test_expired_deadline_returns_immediately(self):
        solver = _loaded_solver(6)
        t0 = time.monotonic()
        solver.solve(deadline=time.monotonic() - 1.0)
        assert time.monotonic() - t0 < 0.1
        assert solver.last_unknown
        assert solver.last_unknown_reason == REASON_TIMEOUT

    def test_mid_search_deadline_stops_promptly(self):
        solver = _loaded_solver(8)  # minutes of CDCL without a budget
        window = 0.2
        t0 = time.monotonic()
        solver.solve(deadline=time.monotonic() + window)
        elapsed = time.monotonic() - t0
        assert solver.last_unknown
        assert solver.last_unknown_reason == REASON_TIMEOUT
        assert elapsed < window * 2 + 0.2  # the ~2x-budget return contract

    def test_limit_never_degrades_a_finished_answer(self):
        # PHP(5,4) refutes in 28 conflicts, so a limit the search finishes
        # within must not turn the real UNSAT into UNKNOWN.  (A limit
        # *below* the finishing cost now correctly reports UNKNOWN — the
        # limit is exact, no longer checked only at restart boundaries.)
        solver = _loaded_solver(4)
        result = solver.solve(conflict_limit=64)
        assert not result.satisfiable
        assert not solver.last_unknown

    def test_limit_below_finishing_cost_is_unknown(self):
        solver = _loaded_solver(4)
        result = solver.solve(conflict_limit=1)
        assert not result.satisfiable
        assert solver.last_unknown
        assert solver.last_unknown_reason == REASON_CONFLICT_LIMIT
        assert solver.last_call_stats["conflicts"] <= 1

    def test_unknown_state_clears_on_next_solve(self):
        solver = _loaded_solver(6)
        solver.solve(conflict_limit=3)
        assert solver.last_unknown
        result = solver.solve()
        assert not result.satisfiable
        assert not solver.last_unknown
        assert solver.last_unknown_reason is None


def _xor_tower(manager: BDD, n: int) -> int:
    node = manager.add_var("x0")
    for i in range(1, n):
        node = manager.apply_xor(node, manager.add_var(f"x{i}"))
    return node


class TestBddNodeLimit:
    def test_blowup_raises_catchable_error(self):
        manager = BDD(node_limit=20)
        with pytest.raises(BddBlowupError) as info:
            _xor_tower(manager, 32)
        assert info.value.reason == REASON_BDD_BLOWUP
        assert info.value.limit == 20
        assert info.value.nodes >= 20

    def test_limit_can_be_lifted(self):
        manager = BDD(node_limit=10)
        manager.set_node_limit(None)
        _xor_tower(manager, 32)  # must not raise

    def test_generous_limit_is_inert(self):
        manager = BDD(node_limit=10_000)
        a = manager.add_var("a")
        b = manager.add_var("b")
        assert manager.apply_xor(a, b) == manager.apply_xor(a, b)


class TestRetry:
    def test_success_first_try(self):
        result, error, retries = run_with_retries(lambda: 42)
        assert (result, error, retries) == (42, None, 0)

    def test_transient_failure_then_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return "ok"

        result, error, retries = run_with_retries(
            flaky, attempts=3, backoff_seconds=0.0
        )
        assert result == "ok"
        assert error is None
        assert retries == 1

    def test_persistent_failure_returns_last_error(self):
        def broken():
            raise ValueError("always")

        result, error, retries = run_with_retries(
            broken, attempts=3, backoff_seconds=0.0
        )
        assert result is None
        assert isinstance(error, ValueError)
        assert retries == 2

    def test_deadline_blocks_reattempts(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("always")

        run_with_retries(
            broken,
            attempts=5,
            backoff_seconds=0.0,
            deadline=time.monotonic() - 1.0,
        )
        assert len(calls) == 1  # first attempt always runs, retries blocked

    def test_keyboard_interrupt_propagates(self):
        def interrupted():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_with_retries(interrupted, attempts=3)
