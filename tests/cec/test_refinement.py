"""Counterexample-guided refinement (fraiging) loop tests.

Covers the refinement loop added to :func:`check_equivalence`: refuting
SAT models become new simulation-pattern columns, surviving classes are
re-split, and deferred in-class queries are saved outright.  Also pins
down the satellite bugfixes that rode along: constant node 0 joining
signature classes, PI-PI candidate exclusion, per-round seed mixing, and
re-simulation validation of NEQ models before they refine anything.
"""

from __future__ import annotations

import pytest

from repro.bench.random_circuits import random_combinational
from repro.cec.engine import (
    CecVerdict,
    _class_candidates,
    _initial_signatures,
    _model_to_pattern,
    _refine_signatures,
    _round_seed,
    _signature_classes,
    check_equivalence,
)
from repro.cec.miter import build_miter
from repro.sim.logic2 import simulate

from tests.cec.test_sweep_parallel import xor_chain, xor_tree

# Narrow initial signatures: one 4-bit round aliases many inequivalent
# nodes into shared classes, which is exactly the regime refinement is
# for (the refuting models split the classes instead of SAT doing it
# pair by pair).
NARROW = dict(sim_rounds=1, sim_width=4)


class TestRefinementConvergence:
    def test_fewer_sat_queries_than_no_refine(self):
        c1, c2 = xor_chain(16), xor_tree(16)
        refined = check_equivalence(c1, c2, refine=True, **NARROW)
        plain = check_equivalence(c1, c2, refine=False, **NARROW)
        assert refined.verdict is CecVerdict.EQUIVALENT
        assert plain.verdict is CecVerdict.EQUIVALENT
        assert refined.stats["refine_rounds"] >= 1
        assert refined.stats["refine_patterns"] >= 1
        assert refined.stats["sat_queries"] < plain.stats["sat_queries"]

    def test_no_refine_disables_all_refinement_work(self):
        plain = check_equivalence(
            xor_chain(16), xor_tree(16), refine=False, **NARROW
        )
        assert plain.stats["refine_rounds"] == 0
        assert plain.stats["refine_patterns"] == 0
        assert plain.stats["refine_saved"] == 0

    def test_deferred_queries_are_reported_saved(self):
        refined = check_equivalence(
            xor_chain(16), xor_tree(16), refine=True, **NARROW
        )
        # Narrow signatures produce multi-member spurious classes, so at
        # least one in-class query must be deferred and never re-asked.
        assert refined.stats["refine_saved"] >= 1

    def test_wide_signatures_converge_in_one_round(self):
        # With healthy 4x64-bit signatures the xor pair has no spurious
        # classes: no NEQ models, hence no refinement rounds.
        r = check_equivalence(xor_chain(16), xor_tree(16), refine=True)
        assert r.verdict is CecVerdict.EQUIVALENT
        assert r.stats["refine_rounds"] == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_verdicts_match_no_refine_on_random_pairs(self, seed):
        c1 = random_combinational(n_inputs=8, n_gates=60, seed=seed)
        c2 = random_combinational(
            n_inputs=8, n_gates=60, seed=seed + 10, name="other"
        )
        refined = check_equivalence(c1, c2, refine=True, **NARROW)
        plain = check_equivalence(c1, c2, refine=False, **NARROW)
        assert refined.verdict is plain.verdict
        if refined.verdict is CecVerdict.NOT_EQUIVALENT:
            vec = refined.counterexample
            o1 = simulate(c1, [vec]).outputs[0]
            o2 = simulate(c2, [vec]).outputs[0]
            assert o1 != o2

    @pytest.mark.parametrize("n_jobs", [2, 3])
    def test_parallel_refinement_matches_serial(self, n_jobs):
        c1, c2 = xor_chain(16), xor_tree(16)
        serial = check_equivalence(c1, c2, refine=True, **NARROW)
        parallel = check_equivalence(
            c1, c2, refine=True, n_jobs=n_jobs, **NARROW
        )
        # Workers prove on fresh per-unit solvers, so their NEQ *models*
        # (and hence later-round class evolution) may legitimately differ
        # from the serial run's; the verdict must not.
        assert parallel.verdict is serial.verdict
        assert parallel.verdict is CecVerdict.EQUIVALENT

    def test_refined_runs_are_deterministic(self):
        c1, c2 = xor_chain(16), xor_tree(16)
        a = check_equivalence(c1, c2, refine=True, **NARROW)
        b = check_equivalence(c1, c2, refine=True, **NARROW)
        assert a.verdict is b.verdict
        for key in (
            "sat_queries",
            "sweep_merges",
            "sweep_refuted",
            "refine_rounds",
            "refine_patterns",
            "refine_saved",
        ):
            assert a.stats[key] == b.stats[key]

    def test_refine_rounds_caps_the_loop(self):
        r = check_equivalence(
            xor_chain(16), xor_tree(16), refine=True, refine_rounds=0, **NARROW
        )
        assert r.verdict is CecVerdict.EQUIVALENT
        assert r.stats["refine_rounds"] == 0


class TestClassConstruction:
    @staticmethod
    def _stuck_at_zero_pair():
        """o = x1 computed two ways, one via a stuck-at-0 AND node.

        ``XOR(a, b) AND XNOR(a, b)`` is constant 0, but the two sides are
        built from structurally different AND trees, so AIG strashing
        cannot fold the node away — only semantic analysis (simulation +
        a constant-class merge) can.
        """
        from repro.netlist.build import CircuitBuilder

        b = CircuitBuilder("stuck")
        x0, x1 = b.inputs("x0", "x1")
        xor = b.XOR(x0, x1)
        xnor = b.OR(b.AND(x0, x1), b.AND(b.NOT(x0), b.NOT(x1)))
        zero = b.AND(xor, xnor)  # constant 0 in disguise
        b.output(b.XOR(zero, x1), name="o")
        c1 = b.circuit

        b2 = CircuitBuilder("wire")
        _, y1 = b2.inputs("x0", "x1")
        b2.output(b2.AND(y1, y1), name="o")
        return c1, b2.circuit

    def test_constant_node_joins_its_class(self):
        # Regression: classes started at node 1, so stuck-at-constant
        # nodes could never merge with constant node 0.
        c1, c2 = self._stuck_at_zero_pair()
        m = build_miter(c1, c2)
        aig = m.aig
        signatures, mask = _initial_signatures(aig, 4, 64, 0)
        classes = _signature_classes(
            signatures, mask, range(aig.num_nodes())
        )
        const_class = next(
            members for members in classes.values() if 0 in members
        )
        assert const_class[0] == 0  # node order => the constant is rep
        class_list = _class_candidates(aig, classes, signatures)
        const_cands = [
            c for cls in class_list for c in cls if c.rep == 0
        ]
        assert const_cands, "stuck-at-0 node must pair with the constant"

    def test_constant_node_merge_proves_equivalence(self):
        c1, c2 = self._stuck_at_zero_pair()
        r = check_equivalence(c1, c2)
        assert r.verdict is CecVerdict.EQUIVALENT

    def test_pi_pi_pairs_are_excluded(self):
        # Two PIs can only alias under degenerate signatures, and their
        # query is guaranteed SAT; fabricate the aliasing directly.
        m = build_miter(xor_chain(4), xor_tree(4))
        aig = m.aig
        pi_a, pi_b = aig.pis[0], aig.pis[1]
        signatures = [0] * aig.num_nodes()
        signatures[pi_a] = signatures[pi_b] = 0b10
        classes = {0b10: [pi_a, pi_b]}
        assert _class_candidates(aig, classes, signatures) == []

    def test_const_pi_pairs_are_excluded(self):
        m = build_miter(xor_chain(4), xor_tree(4))
        aig = m.aig
        pi = aig.pis[0]
        signatures = [0] * aig.num_nodes()
        classes = {0: [0, pi]}
        assert _class_candidates(aig, classes, signatures) == []

    def test_resolved_pairs_are_not_regenerated(self):
        m = build_miter(xor_chain(8), xor_tree(8))
        aig = m.aig
        signatures, mask = _initial_signatures(aig, 4, 64, 0)
        classes = _signature_classes(
            signatures, mask, range(aig.num_nodes())
        )
        full = _class_candidates(aig, classes, signatures)
        cand = full[0][0]
        resolved = {(cand.rep, cand.node, cand.phase_equal)}
        pruned = _class_candidates(aig, classes, signatures, resolved)
        flat = [
            (c.rep, c.node, c.phase_equal) for cls in pruned for c in cls
        ]
        assert (cand.rep, cand.node, cand.phase_equal) not in flat

    def test_group_ids_respect_offset(self):
        m = build_miter(xor_chain(8), xor_tree(8))
        aig = m.aig
        signatures, mask = _initial_signatures(aig, 4, 64, 0)
        classes = _signature_classes(
            signatures, mask, range(aig.num_nodes())
        )
        shifted = _class_candidates(
            aig, classes, signatures, group_offset=100
        )
        assert all(c.group >= 100 for cls in shifted for c in cls)


class TestSeedMixing:
    def test_rounds_do_not_alias_neighbouring_seeds(self):
        # Regression: ``seed + r`` made round 1 of seed 0 identical to
        # round 0 of seed 1, so neighbouring seeds shared their streams.
        assert _round_seed(0, 1) != _round_seed(1, 0)
        assert _round_seed(0, 0) != _round_seed(0, 1)

    def test_round_seeds_are_stable(self):
        # hashlib mixing: no PYTHONHASHSEED dependence, same value in
        # every interpreter.
        assert _round_seed(0, 0) == _round_seed(0, 0)
        seeds = {_round_seed(s, r) for s in range(8) for r in range(8)}
        assert len(seeds) == 64


class TestModelValidation:
    def _one_candidate(self, aig):
        signatures, mask = _initial_signatures(aig, 4, 64, 0)
        classes = _signature_classes(
            signatures, mask, range(aig.num_nodes())
        )
        class_list = _class_candidates(aig, classes, signatures)
        return signatures, mask, class_list[0][0]

    def test_bogus_model_raises_instead_of_refining(self):
        # Every signature class of the xor pair is a genuine equivalence,
        # so NO pattern can distinguish any candidate: a model claiming
        # to must be rejected by re-simulation, mirroring
        # ``_validate_counterexample``.
        m = build_miter(xor_chain(8), xor_tree(8))
        signatures, mask, cand = self._one_candidate(m.aig)
        bogus = {name: False for name in m.aig.pi_names}
        with pytest.raises(RuntimeError, match="does not distinguish"):
            _refine_signatures(m.aig, signatures, mask, [(cand, bogus)])

    def test_model_to_pattern_defaults_unconstrained_pis_false(self):
        m = build_miter(xor_chain(4), xor_tree(4))
        aig = m.aig
        model = {aig.pis[0]: True}
        pattern = _model_to_pattern(aig, model)
        assert set(pattern) == set(aig.pi_names)
        assert sum(pattern.values()) == 1

    def test_genuine_model_appends_a_column(self):
        # A genuinely distinguishing assignment must extend the mask by
        # exactly one column and keep old columns intact.
        m = build_miter(xor_chain(8), xor_tree(8))
        aig = m.aig
        signatures, mask, cand = self._one_candidate(aig)
        words, _ = aig.simulate_patterns(
            [{name: False for name in aig.pi_names}]
        )
        # Find an assignment flipping exactly one PI that distinguishes a
        # fabricated anti-phase pair: pair the candidate's rep against
        # its own complement, which every assignment distinguishes.
        from repro.cec.partition import Candidate

        anti = Candidate(cand.rep, cand.rep, phase_equal=False)
        pattern = {name: False for name in aig.pi_names}
        refined, new_mask, added = _refine_signatures(
            aig, signatures, mask, [(anti, pattern)]
        )
        assert added == 1
        assert new_mask == (mask << 1) | 1
        assert all(
            (refined[n] >> 1) == signatures[n]
            for n in range(aig.num_nodes())
        )

    def test_duplicate_patterns_fold_into_one_column(self):
        m = build_miter(xor_chain(8), xor_tree(8))
        aig = m.aig
        signatures, mask, cand = self._one_candidate(aig)
        from repro.cec.partition import Candidate

        anti = Candidate(cand.rep, cand.rep, phase_equal=False)
        pattern = {name: False for name in aig.pi_names}
        _, _, added = _refine_signatures(
            aig, signatures, mask, [(anti, pattern), (anti, dict(pattern))]
        )
        assert added == 1


class TestFacadeAndFlags:
    def test_verify_request_round_trips_refine(self):
        from repro.api import VerifyRequest

        request = VerifyRequest(golden="a.blif", revised="b.blif", refine=False)
        data = request.to_dict()
        assert data["refine"] is False
        assert VerifyRequest.from_dict(data).refine is False
        assert VerifyRequest(golden="a", revised="b").refine is True

    def test_refine_does_not_change_fingerprint(self):
        # Engine options are verdict-preserving, so the request
        # fingerprint must ignore them.
        from repro.api import VerifyRequest

        c1, c2 = xor_chain(4), xor_tree(4)
        on = VerifyRequest(golden=c1, revised=c2, refine=True)
        off = VerifyRequest(golden=c1, revised=c2, refine=False)
        assert on.fingerprint() == off.fingerprint()

    def test_cli_exposes_no_refine(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["verify", "a.blif", "b.blif", "--no-refine"])
        assert args.no_refine is True
        args = parser.parse_args(["verify", "a.blif", "b.blif"])
        assert args.no_refine is False
        args = parser.parse_args(["table1", "--quick", "--no-refine"])
        assert args.no_refine is True

    def test_refinement_threads_through_sequential_verify(self):
        from repro.core.verify import SeqVerdict, check_sequential_equivalence
        from tests.cec.test_sweep_parallel import retimed_resynthesised_pair

        h, j = retimed_resynthesised_pair(seed=0)
        on = check_equivalence(h, j, refine=True, **NARROW)
        off = check_equivalence(h, j, refine=False, **NARROW)
        assert on.verdict is off.verdict
