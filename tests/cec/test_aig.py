"""AIG structural hashing and simulation tests."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.aig.aig import AIG, FALSE_LIT, TRUE_LIT, aig_from_circuit
from repro.bench.random_circuits import random_combinational
from repro.sim.logic2 import simulate


class TestStructuralHashing:
    def test_constants(self):
        aig = AIG()
        a = aig.add_pi("a")
        assert aig.and_(a, FALSE_LIT) == FALSE_LIT
        assert aig.and_(a, TRUE_LIT) == a
        assert aig.and_(a, a) == a
        assert aig.and_(a, a ^ 1) == FALSE_LIT

    def test_commutative_hashing(self):
        aig = AIG()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        assert aig.and_(a, b) == aig.and_(b, a)

    def test_de_morgan_sharing(self):
        aig = AIG()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        nand = aig.and_(a, b) ^ 1
        or_ = aig.or_(a ^ 1, b ^ 1)
        assert nand == or_

    def test_xor(self):
        aig = AIG()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        x = aig.xor(a, b)
        aig.add_output("x", x)
        for va, vb in itertools.product([False, True], repeat=2):
            assert aig.eval_outputs({"a": va, "b": vb})["x"] == (va != vb)

    def test_mux(self):
        aig = AIG()
        s, a, b = aig.add_pi("s"), aig.add_pi("a"), aig.add_pi("b")
        aig.add_output("m", aig.mux(s, a, b))
        for vs, va, vb in itertools.product([False, True], repeat=3):
            expect = va if vs else vb
            assert aig.eval_outputs({"s": vs, "a": va, "b": vb})["m"] == expect

    def test_and_all_empty(self):
        aig = AIG()
        assert aig.and_all([]) == TRUE_LIT
        assert aig.or_all([]) == FALSE_LIT


class TestImport:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_simulation(self, seed):
        c = random_combinational(n_inputs=5, n_gates=18, seed=seed)
        aig, _ = aig_from_circuit(c)
        rng = random.Random(seed)
        for _ in range(25):
            vec = {i: rng.random() < 0.5 for i in c.inputs}
            sim = simulate(c, [vec]).outputs[0]
            got = aig.eval_outputs(vec)
            for out in c.outputs:
                assert got[out] == sim[out]

    def test_shared_import_collapses_identical(self):
        c1 = random_combinational(seed=3, name="c1")
        c2 = random_combinational(seed=3, name="c2")
        aig = AIG()
        aig, lits1 = aig_from_circuit(c1, aig)
        before = aig.num_nodes()
        aig, lits2 = aig_from_circuit(c2, aig)
        # Identical structure: no new AND nodes.
        assert aig.num_nodes() == before
        for out in c1.outputs:
            assert lits1[out] == lits2[out]

    def test_rejects_sequential(self):
        from repro.netlist.build import CircuitBuilder

        b = CircuitBuilder("t")
        (a,) = b.inputs("a")
        b.output(b.latch(a), name="o")
        with pytest.raises(ValueError):
            aig_from_circuit(b.circuit)

    def test_random_simulation_is_deterministic(self):
        c = random_combinational(seed=4)
        aig, _ = aig_from_circuit(c)
        w1, m1 = aig.random_simulate(seed=11)
        w2, m2 = aig.random_simulate(seed=11)
        assert w1 == w2 and m1 == m2

    def test_to_cnf_consistency(self):
        from repro.sat.solver import Solver

        c = random_combinational(n_inputs=4, n_gates=10, seed=5)
        aig, lits = aig_from_circuit(c)
        cnf, lit2cnf = aig.to_cnf()
        for bits in itertools.product([False, True], repeat=4):
            vec = dict(zip(c.inputs, bits))
            s = Solver()
            s.add_cnf(cnf)
            assumptions = []
            for node, name in zip(aig.pis, aig.pi_names):
                v = lit2cnf(2 * node)
                assumptions.append(v if vec[name] else -v)
            r = s.solve(assumptions=assumptions)
            assert r.satisfiable
            expect = aig.eval_outputs(vec)
            for out, lit in aig.outputs:
                var = lit2cnf(lit)
                val = r.model[abs(var)] == (var > 0)
                assert val == expect[out]
