"""Robustness of the CEC engine: poisoned caches, dying workers, budgets.

The invariant under test everywhere: faults and resource exhaustion may
cost wall time or decidedness (UNKNOWN), but they must never change a
decided verdict — a crashed worker, a corrupted cache file, or a
conflict-limited solve must leave the engine verdict-identical to a
clean serial run.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cec import parallel
from repro.cec.cache import EQ, NEQ, SCHEMA_VERSION, ProofCache
from repro.cec.engine import (
    CecVerdict,
    check_equivalence,
    check_equivalence_bdd,
)
from repro.runtime.budget import (
    KNOWN_REASONS,
    REASON_BDD_BLOWUP,
    REASON_CONFLICT_LIMIT,
    REASON_TIMEOUT,
    Budget,
)

from tests.cec.test_sweep_parallel import xor_chain, xor_tree


class TestCacheHardening:
    def _roundtrip(self, tmp_path):
        path = tmp_path / "proofs.json"
        cache = ProofCache(path)
        cache.put("k1", EQ)
        cache.put("k2", NEQ)
        cache.save()
        return path

    def test_envelope_roundtrip(self, tmp_path):
        path = self._roundtrip(tmp_path)
        raw = json.loads(path.read_text())
        assert raw["version"] == SCHEMA_VERSION
        reloaded = ProofCache(path)
        assert reloaded.get("k1") == EQ
        assert reloaded.get("k2") == NEQ

    @pytest.mark.parametrize(
        "content",
        [
            "not json at all {{{",
            '"a bare string"',
            "[1, 2, 3]",
            '{"no": "envelope"}',
            '{"version": 999, "proofs": {"k1": "eq"}}',
            '{"version": 1, "proofs": "not-a-dict"}',
        ],
    )
    def test_poisoned_file_degrades_to_misses(self, tmp_path, content):
        path = tmp_path / "proofs.json"
        path.write_text(content)
        cache = ProofCache(path)
        assert len(cache) == 0
        assert cache.get("k1") is None

    def test_invalid_verdicts_dropped_individually(self, tmp_path):
        path = tmp_path / "proofs.json"
        path.write_text(
            json.dumps(
                {
                    "version": SCHEMA_VERSION,
                    "proofs": {"good": "eq", "bad": "maybe", "worse": 7},
                }
            )
        )
        cache = ProofCache(path)
        assert cache.get("good") == EQ
        assert cache.get("bad") is None
        assert cache.get("worse") is None

    def test_pre_envelope_format_is_ignored(self, tmp_path):
        # The seed's bare {key: verdict} files have no version field.
        path = tmp_path / "proofs.json"
        path.write_text(json.dumps({"k1": "eq"}))
        assert ProofCache(path).get("k1") is None

    def test_uncacheable_verdict_rejected(self):
        with pytest.raises(ValueError):
            ProofCache().put("k", "unknown")

    def test_save_leaves_no_temp_files(self, tmp_path):
        self._roundtrip(tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == ["proofs.json"]

    def test_corrupted_cache_does_not_change_verdict(self, tmp_path):
        c1, c2 = xor_chain(16), xor_tree(16)
        clean = check_equivalence(c1, c2)
        path = tmp_path / "proofs.json"
        # A hostile file full of wrong verdicts under random keys plus
        # garbage rows: everything must be ignored or dropped.
        path.write_text(
            json.dumps(
                {
                    "version": SCHEMA_VERSION,
                    "proofs": {f"bogus{i}": NEQ for i in range(50)},
                }
            )
        )
        poisoned = check_equivalence(c1, c2, cache=path)
        assert poisoned.verdict is clean.verdict

    def test_unparsable_file_quarantined_as_evidence(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        path = tmp_path / "proofs.json"
        path.write_text("not json at all {{{")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            cache = ProofCache(path)
        # The corrupt bytes are set aside, byte-for-byte, not destroyed.
        assert not path.exists()
        quarantined = tmp_path / "proofs.json.corrupt"
        assert quarantined.read_text() == "not json at all {{{"
        assert cache.corrupt_files == 1
        registry = MetricsRegistry()
        cache.attach_metrics(registry)
        assert registry.counter("cec.cache.corrupt_files") == 1
        # The next save writes a fresh file; the evidence stays put.
        cache.put("k1", EQ)
        cache.save()
        assert path.exists() and quarantined.exists()

    def test_version_mismatch_ignored_not_quarantined(self, tmp_path):
        path = tmp_path / "proofs.json"
        content = json.dumps({"version": 999, "proofs": {"k1": "eq"}})
        path.write_text(content)
        cache = ProofCache(path)
        # Incompatible-but-well-formed is not corruption: file untouched.
        assert cache.corrupt_files == 0
        assert path.read_text() == content
        assert not (tmp_path / "proofs.json.corrupt").exists()


def multi_block_pair(blocks=4, width=10):
    """Equivalent multi-output pairs with cone-disjoint outputs.

    Each output is an independent XOR block (chain on one side, tree on
    the other), so the sweep partitions into multiple work units and the
    pool path genuinely engages under ``n_jobs > 1``.
    """
    from repro.netlist.build import CircuitBuilder

    def build(kind, name):
        b = CircuitBuilder(name)
        for j in range(blocks):
            xs = list(b.inputs(*[f"x{j}_{i}" for i in range(width)]))
            if kind == "chain":
                acc = xs[0]
                for x in xs[1:]:
                    acc = b.XOR(acc, x)
            else:
                while len(xs) > 1:
                    nxt = [
                        b.XOR(xs[i], xs[i + 1])
                        for i in range(0, len(xs) - 1, 2)
                    ]
                    if len(xs) % 2:
                        nxt.append(xs[-1])
                    xs = nxt
                acc = xs[0]
            b.output(acc, name=f"o{j}")
        return b.circuit

    return build("chain", "mchain"), build("tree", "mtree")


class TestWorkerFaults:
    def _pair(self):
        return multi_block_pair()

    def test_crashing_workers_preserve_verdict(self, monkeypatch):
        c1, c2 = self._pair()
        serial = check_equivalence(c1, c2, n_jobs=1)

        def crash(payload):
            raise RuntimeError("injected worker crash")

        monkeypatch.setattr(parallel, "_fault_hook", crash)
        faulty = check_equivalence(c1, c2, n_jobs=2)
        assert faulty.verdict is serial.verdict
        # Every unit died in the pool AND on the serial retries, so the
        # telemetry must show contained failures, not silence.
        assert faulty.stats.get("worker_failures", 0) > 0

    def test_inconsistent_cnf_slice_is_contained(self, monkeypatch):
        # Satellite regression: the sweep worker's CNF sanity check used
        # to kill the whole sweep; now it costs only that unit's merges.
        c1, c2 = self._pair()
        serial = check_equivalence(c1, c2, n_jobs=1)

        def poison(payload):
            raise RuntimeError("inconsistent CNF slice in sweep worker")

        monkeypatch.setattr(parallel, "_fault_hook", poison)
        faulty = check_equivalence(c1, c2, n_jobs=2)
        assert faulty.verdict is serial.verdict
        assert faulty.stats.get("sweep_unknown", 0) > 0

    def test_intermittent_crash_recovers_via_retry(self, monkeypatch):
        c1, c2 = self._pair()
        serial = check_equivalence(c1, c2, n_jobs=1)
        state = {"calls": 0}

        def flaky(payload):
            state["calls"] += 1
            if state["calls"] % 2 == 1:
                raise RuntimeError("flaky worker")

        monkeypatch.setattr(parallel, "_fault_hook", flaky)
        faulty = check_equivalence(c1, c2, n_jobs=2)
        assert faulty.verdict is serial.verdict

    def test_hung_worker_is_killed_and_requeued(self, monkeypatch):
        c1, c2 = self._pair()
        serial = check_equivalence(c1, c2, n_jobs=1)

        def hang_in_pool(payload):
            # The hook runs in fork children AND on the serial requeue
            # path; hang only in children so the requeue succeeds.
            import multiprocessing

            if multiprocessing.parent_process() is not None:
                time.sleep(60)

        monkeypatch.setattr(parallel, "_fault_hook", hang_in_pool)
        t0 = time.monotonic()
        result = check_equivalence(
            c1, c2, n_jobs=2, budget=Budget(wall_seconds=2.0)
        )
        elapsed = time.monotonic() - t0
        assert elapsed < 15.0  # 60s sleeps must not be waited out
        assert result.verdict is serial.verdict or (
            result.verdict is CecVerdict.UNKNOWN
            and result.reason in KNOWN_REASONS
        )


class TestBudgetedEngine:
    def test_no_budget_is_bitforbit_baseline(self):
        c1, c2 = xor_chain(16), xor_tree(16)
        plain = check_equivalence(c1, c2)
        nulled = check_equivalence(c1, c2, budget=Budget())
        assert plain.verdict is nulled.verdict
        assert plain.reason is None and nulled.reason is None
        # Canonical keys are always present, and the cascade counters
        # record decided obligations on both paths (satellite: the old
        # ``ctx.budgeted`` gate left classic runs with zero cascades).
        assert nulled.stats["cascade_sat"] == plain.stats["cascade_sat"]
        assert nulled.stats["cascade_bdd"] == plain.stats["cascade_bdd"]
        assert nulled.stats["cascade_sim"] == plain.stats["cascade_sim"]
        # The two paths must agree key-for-key (satellite of the
        # zero-suppression fix: suppression happens at render time only).
        assert set(plain.stats) == set(nulled.stats)

    def test_classic_unknown_carries_solver_reason(self):
        # Satellite: the unbudgeted SAT path used to discard the
        # solver's reason (reason=None on UNKNOWN); it now propagates
        # ``last_unknown_reason`` exactly like the budgeted path.
        r = check_equivalence(
            xor_chain(40), xor_tree(40), conflict_limit=1, preprocess=False
        )
        assert r.verdict is CecVerdict.UNKNOWN
        assert r.reason == REASON_CONFLICT_LIMIT
        assert r.reason in KNOWN_REASONS

    def test_hard_miter_budget_returns_within_two_x(self):
        c1, c2 = xor_chain(1500), xor_tree(1500)
        window = 1.0
        t0 = time.monotonic()
        result = check_equivalence(c1, c2, budget=window)
        elapsed = time.monotonic() - t0
        assert result.verdict is CecVerdict.UNKNOWN
        assert result.reason in KNOWN_REASONS
        assert elapsed < window * 2 + 0.5

    def test_budget_unknown_reason_is_surfaced(self):
        result = check_equivalence(
            xor_chain(800), xor_tree(800), budget=Budget(wall_seconds=0.0)
        )
        assert result.verdict is CecVerdict.UNKNOWN
        assert result.reason == REASON_TIMEOUT

    def test_budgeted_inequivalence_still_finds_cex(self):
        c1 = xor_chain(16)
        from repro.netlist.build import CircuitBuilder

        b = CircuitBuilder("mutant")
        xs = b.inputs(*[f"x{i}" for i in range(16)])
        acc = xs[0]
        for x in xs[1:-1]:
            acc = b.XOR(acc, x)
        acc = b.OR(acc, xs[-1])  # the bug
        b.output(acc, name="o")
        result = check_equivalence(c1, b.circuit, budget=10.0)
        assert result.verdict is CecVerdict.NOT_EQUIVALENT
        assert result.counterexample is not None

    def test_bdd_fallback_decides_under_sat_starvation(self):
        # With SAT effectively disabled (conflict cap 1) the bounded BDD
        # stage must still prove the pair inside the budget.
        c1, c2 = xor_chain(12), xor_tree(12)
        result = check_equivalence(
            c1,
            c2,
            sweep=False,
            budget=Budget(wall_seconds=20.0),
        )
        assert result.verdict is CecVerdict.EQUIVALENT
        assert result.stats.get("cascade_bdd", 0) > 0

    def test_tiny_bdd_limit_falls_through_to_sat(self):
        c1, c2 = xor_chain(12), xor_tree(12)
        result = check_equivalence(
            c1,
            c2,
            sweep=False,
            budget=Budget(wall_seconds=20.0, bdd_nodes=8),
        )
        assert result.verdict is CecVerdict.EQUIVALENT
        assert result.stats.get("bdd_blowups", 0) > 0
        assert result.stats.get("cascade_sat", 0) > 0


class TestBoundedBddCheck:
    def test_node_limit_yields_unknown(self):
        c1, c2 = xor_chain(24), xor_tree(24)
        result = check_equivalence_bdd(c1, c2, node_limit=10)
        assert result.verdict is CecVerdict.UNKNOWN
        assert result.reason == REASON_BDD_BLOWUP

    def test_unlimited_still_decides(self):
        c1, c2 = xor_chain(12), xor_tree(12)
        assert check_equivalence_bdd(c1, c2).verdict is CecVerdict.EQUIVALENT
