"""Parallel / cache-aware sweeping tests plus sweep-path regressions.

Covers the scaling layers of :mod:`repro.cec` (partitioning, the
multiprocessing dispatcher, the persistent proof cache) and pins down the
three sweep/miter bugfixes: union-of-inputs miter matching, the
``sweep_unknown`` / ``sweep_refuted`` distinction, and counterexample
re-validation.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.pipeline import pipeline_circuit
from repro.bench.random_circuits import random_combinational
from repro.cec.cache import EQ, NEQ, ProofCache
from repro.cec.engine import (
    CecVerdict,
    _validate_counterexample,
    check_equivalence,
    check_equivalence_bdd,
)
from repro.cec.miter import build_miter
from repro.cec.parallel import sweep_unit_payload
from repro.cec.partition import partition_candidates
from repro.core.cbf import compute_cbf
from repro.core.eq2comb import cbf_to_circuit
from repro.core.timedvar import ExprTable
from repro.core.verify import check_sequential_equivalence
from repro.netlist.build import CircuitBuilder
from repro.retime.apply import retime_min_period
from repro.sat.solver import Solver
from repro.sim.logic2 import simulate
from repro.synth.script import optimize_sequential_delay


def xor_chain(n, name="chain"):
    b = CircuitBuilder(name)
    xs = b.inputs(*[f"x{i}" for i in range(n)])
    acc = xs[0]
    for x in xs[1:]:
        acc = b.XOR(acc, x)
    b.output(acc, name="o")
    return b.circuit


def xor_tree(n, name="tree"):
    b = CircuitBuilder(name)
    xs = list(b.inputs(*[f"x{i}" for i in range(n)]))
    while len(xs) > 1:
        nxt = [b.XOR(xs[i], xs[i + 1]) for i in range(0, len(xs) - 1, 2)]
        if len(xs) % 2:
            nxt.append(xs[-1])
        xs = nxt
    b.output(xs[0], name="o")
    return b.circuit


def lowered_cbf_pair(c1, c2):
    """Lower two sequential circuits to combinational CBF circuits (H/J)."""
    table = ExprTable()
    cbf1 = compute_cbf(c1, table)
    cbf2 = compute_cbf(c2, table)
    all_vars = sorted(cbf1.variables() | cbf2.variables(), key=repr)
    comb1 = cbf_to_circuit(cbf1, name=c1.name + "_H", extra_inputs=all_vars)
    comb2 = cbf_to_circuit(cbf2, name=c2.name + "_J", extra_inputs=all_vars)
    return comb1, comb2


def retimed_resynthesised_pair(seed=0):
    """A pipeline and its retimed+resynthesised version, CBF-lowered."""
    c1 = pipeline_circuit(stages=3, width=3, seed=seed, name=f"pipe{seed}")
    retimed, _, _ = retime_min_period(c1)
    resynth = optimize_sequential_delay(retimed, "medium", name="resynth")
    return lowered_cbf_pair(c1, resynth)


class TestPartition:
    def _classes(self, aig, n=None):
        """Signature-class candidates straight from the engine's helpers."""
        from repro.cec.engine import (
            _class_candidates,
            _initial_signatures,
            _signature_classes,
        )

        signatures, mask = _initial_signatures(aig, rounds=4, width=64, seed=0)
        classes = _signature_classes(signatures, mask, range(aig.num_nodes()))
        return _class_candidates(aig, classes, signatures)

    def test_units_cover_all_candidates_once(self):
        m = build_miter(xor_chain(16), xor_tree(16))
        class_list = self._classes(m.aig)
        flat = sorted(
            (c.rep, c.node, c.phase_equal)
            for cls in class_list
            for c in cls
        )
        for n_units in (1, 2, 4, 8):
            units = partition_candidates(m.aig, class_list, n_units)
            got = sorted(
                (c.rep, c.node, c.phase_equal)
                for u in units
                for c in u.candidates
            )
            assert got == flat
            assert len(units) <= max(1, n_units)

    def test_units_contain_their_cones(self):
        m = build_miter(xor_chain(16), xor_tree(16))
        class_list = self._classes(m.aig)
        units = partition_candidates(m.aig, class_list, 4)
        assert len(units) > 1
        for unit in units:
            for cand in unit.candidates:
                cone = m.aig.cone_nodes([cand.rep_lit, cand.node_lit])
                assert cone <= unit.cone

    def test_partition_is_deterministic(self):
        m = build_miter(xor_chain(16), xor_tree(16))
        class_list = self._classes(m.aig)
        a = partition_candidates(m.aig, class_list, 4)
        b = partition_candidates(m.aig, class_list, 4)
        assert [u.candidates for u in a] == [u.candidates for u in b]
        assert [u.cone for u in a] == [u.cone for u in b]


class TestParallelSweep:
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_verdicts_match_serial_equivalent(self, n_jobs):
        c1, c2 = xor_chain(16), xor_tree(16)
        serial = check_equivalence(c1, c2)
        parallel = check_equivalence(c1, c2, n_jobs=n_jobs)
        assert serial.verdict is CecVerdict.EQUIVALENT
        assert parallel.verdict is serial.verdict
        assert parallel.stats["sweep_merges"] == serial.stats["sweep_merges"]

    @pytest.mark.parametrize("seed", range(4))
    def test_verdicts_match_serial_random(self, seed):
        c1 = random_combinational(n_inputs=8, n_gates=60, seed=seed)
        c2 = random_combinational(
            n_inputs=8, n_gates=60, seed=seed + 10, name="other"
        )
        serial = check_equivalence(c1, c2)
        parallel = check_equivalence(c1, c2, n_jobs=3)
        assert parallel.verdict is serial.verdict
        if parallel.verdict is CecVerdict.NOT_EQUIVALENT:
            vec = parallel.counterexample
            o1 = simulate(c1, [vec]).outputs[0]
            o2 = simulate(c2, [vec]).outputs[0]
            assert o1 != o2

    def test_serial_runs_are_deterministic(self):
        c1, c2 = xor_chain(12), xor_tree(12)
        a = check_equivalence(c1, c2, n_jobs=1)
        b = check_equivalence(c1, c2, n_jobs=1)
        assert a.verdict is b.verdict
        for key in ("sweep_merges", "sweep_refuted", "sweep_unknown",
                    "sat_queries"):
            assert a.stats[key] == b.stats[key]

    def test_worker_stats_reported(self):
        r = check_equivalence(xor_chain(16), xor_tree(16), n_jobs=4)
        assert r.engine is not None
        assert r.stats["n_units"] >= 1
        if r.stats["n_units"] > 1:
            assert 0.0 < r.stats["worker_utilisation"] <= 1.0

    def test_unit_payload_is_self_contained(self):
        m = build_miter(xor_chain(8), xor_tree(8))
        cnf, _ = m.aig.to_cnf()
        solver = Solver()
        assert solver.add_cnf(cnf)
        from repro.cec.engine import (
            _class_candidates,
            _initial_signatures,
            _signature_classes,
        )

        signatures, mask = _initial_signatures(m.aig, 4, 64, 0)
        classes = _signature_classes(
            signatures, mask, range(m.aig.num_nodes())
        )
        units = partition_candidates(
            m.aig, _class_candidates(m.aig, classes, signatures), 2
        )
        for unit in units:
            num_vars, clauses, queries = sweep_unit_payload(
                solver, unit, 2000
            )[:3]
            assert len(queries) == len(unit.candidates)
            for clause in clauses:
                assert all(1 <= abs(lit) <= num_vars for lit in clause)


class TestProofCache:
    def test_warm_cache_skips_queries(self):
        c1, c2 = xor_chain(16), xor_tree(16)
        cache = ProofCache()
        cold = check_equivalence(c1, c2, cache=cache)
        warm = check_equivalence(c1, c2, cache=cache)
        assert cold.stats["cache_hits"] == 0
        assert cold.stats["cache_stores"] > 0
        assert warm.stats["cache_hits"] > 0
        assert warm.stats["sat_queries"] < cold.stats["sat_queries"]
        assert warm.verdict is cold.verdict

    def test_cache_keys_are_name_independent(self):
        # The same structure under renamed inputs must hit the cache.
        cache = ProofCache()
        check_equivalence(xor_chain(8), xor_tree(8), cache=cache)
        renamed_chain = xor_chain(8)
        renamed_tree = xor_tree(8)
        warm = check_equivalence(renamed_chain, renamed_tree, cache=cache)
        assert warm.stats["cache_hits"] > 0

    def test_persistent_roundtrip(self, tmp_path):
        path = tmp_path / "proofs.json"
        cold = check_equivalence(xor_chain(12), xor_tree(12), cache=path)
        assert path.exists()
        warm = check_equivalence(xor_chain(12), xor_tree(12), cache=str(path))
        assert warm.stats["cache_hits"] > 0
        assert warm.verdict is cold.verdict

    def test_cached_neq_still_produces_counterexample(self):
        c1 = random_combinational(n_inputs=6, n_gates=40, seed=1)
        c2 = random_combinational(
            n_inputs=6, n_gates=40, seed=7, name="other"
        )
        cache = ProofCache()
        cold = check_equivalence(c1, c2, cache=cache)
        warm = check_equivalence(c1, c2, cache=cache)
        assert cold.verdict is warm.verdict
        if warm.verdict is CecVerdict.NOT_EQUIVALENT:
            vec = warm.counterexample
            assert simulate(c1, [vec]).outputs[0] != simulate(c2, [vec]).outputs[0]

    def test_corrupt_cache_file_is_tolerated(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("not json{{{")
        r = check_equivalence(xor_chain(8), xor_tree(8), cache=path)
        assert r.verdict is CecVerdict.EQUIVALENT
        # The save replaced the corrupt file with valid JSON.
        assert isinstance(json.loads(path.read_text()), dict)

    def test_put_rejects_unknown(self):
        cache = ProofCache()
        with pytest.raises(ValueError):
            cache.put("k", "unknown")
        cache.put("k", EQ)
        assert cache.get("k") == EQ
        cache.put("k", NEQ)
        assert cache.get("k") == NEQ

    def test_save_merges_with_concurrent_writer(self, tmp_path):
        path = tmp_path / "shared.json"
        a = ProofCache(path)
        b = ProofCache(path)
        a.put("ka", EQ)
        a.save()
        b.put("kb", NEQ)
        b.save()
        merged = ProofCache(path)
        assert merged.get("ka") == EQ and merged.get("kb") == NEQ


class TestRetimedSweepCoverage:
    """The sweep path on the engine's real workload: retime+resynthesise."""

    @pytest.mark.parametrize("seed", range(3))
    def test_sweep_modes_and_bdd_agree(self, seed):
        comb1, comb2 = retimed_resynthesised_pair(seed)
        swept = check_equivalence(comb1, comb2, sweep=True)
        monolithic = check_equivalence(comb1, comb2, sweep=False)
        parallel = check_equivalence(comb1, comb2, sweep=True, n_jobs=2)
        bdd = check_equivalence_bdd(comb1, comb2)
        assert swept.verdict is CecVerdict.EQUIVALENT
        assert monolithic.verdict is swept.verdict
        assert parallel.verdict is swept.verdict
        assert bdd.verdict is swept.verdict

    def test_mutated_pair_detected_in_all_modes(self):
        comb1, comb2 = retimed_resynthesised_pair(1)
        # Break one output of the resynthesised side.
        out = sorted(comb2.outputs)[0]
        mutated = comb2.copy("mutated")
        gate = mutated.gates[out]
        mutated.gates[out] = type(gate)(
            gate.output, gate.inputs, gate.sop.complement()
        )
        for result in (
            check_equivalence(comb1, mutated, sweep=True),
            check_equivalence(comb1, mutated, sweep=False),
            check_equivalence(comb1, mutated, n_jobs=2),
            check_equivalence_bdd(comb1, mutated),
        ):
            assert result.verdict is CecVerdict.NOT_EQUIVALENT
            assert result.failing_output == out
            vec = result.counterexample
            o1 = simulate(comb1, [vec]).outputs[0]
            o2 = simulate(
                mutated,
                [{k: v for k, v in vec.items() if k in mutated.inputs}],
            ).outputs[0]
            assert o1 != o2

    def test_seq_checker_threads_cache_and_jobs(self):
        c1 = pipeline_circuit(stages=3, width=3, seed=0, name="pipe")
        retimed, _, _ = retime_min_period(c1)
        resynth = optimize_sequential_delay(retimed, "medium", name="resynth")
        cache = ProofCache()
        cold = check_sequential_equivalence(c1, resynth, cache=cache)
        warm = check_sequential_equivalence(c1, resynth, cache=cache, n_jobs=2)
        assert cold.equivalent and warm.equivalent
        assert warm.stats.get("cec_cache_hits", 0) > 0
        # The pre-facade kwarg spelling still works, behind a warning.
        with pytest.warns(DeprecationWarning, match="cec_cache"):
            legacy = check_sequential_equivalence(c1, resynth, cec_cache=cache)
        assert legacy.equivalent
        assert legacy.stats.get("cec_cache_hits", 0) > 0


class TestBugfixRegressions:
    def test_miter_accepts_swept_unused_input(self):
        # Regression: resynthesis removed an unused PI; the pair is still
        # legitimate and equivalent.
        b1 = CircuitBuilder("a")
        x, y, _u = b1.inputs("x", "y", "u")
        b1.output(b1.AND(x, y), name="o")
        b2 = CircuitBuilder("b")
        x, y = b2.inputs("x", "y")
        b2.output(b2.AND(x, y), name="o")
        for result in (
            check_equivalence(b1.circuit, b2.circuit),
            check_equivalence(b1.circuit, b2.circuit, sweep=False),
            check_equivalence_bdd(b1.circuit, b2.circuit),
        ):
            assert result.verdict is CecVerdict.EQUIVALENT

    def test_miter_missing_input_is_unconstrained(self):
        # The side lacking the input must treat it as free — and a cex
        # over the union of inputs must genuinely distinguish the pair.
        b1 = CircuitBuilder("a")
        x, y = b1.inputs("x", "y")
        b1.output(b1.AND(x, y), name="o")
        b2 = CircuitBuilder("b")
        (x,) = b2.inputs("x")
        b2.output(x, name="o")
        r = check_equivalence(b1.circuit, b2.circuit)
        assert r.verdict is CecVerdict.NOT_EQUIVALENT
        vec = r.counterexample
        assert set(vec) == {"x", "y"}
        o1 = simulate(b1.circuit, [vec]).outputs[0]
        o2 = simulate(b2.circuit, [{"x": vec["x"]}]).outputs[0]
        assert o1 != o2

    def test_miter_output_mismatch_still_hard_error(self):
        b1 = CircuitBuilder("a")
        (x,) = b1.inputs("x")
        b1.output(x, name="o1")
        b2 = CircuitBuilder("b")
        (x,) = b2.inputs("x")
        b2.output(x, name="o2")
        with pytest.raises(ValueError, match="output sets differ"):
            build_miter(b1.circuit, b2.circuit)

    def test_conflict_limited_sweep_counts_unknown_not_refuted(self):
        # Regression: a query that hits the conflict limit used to be
        # counted in sweep_refuted.  The candidate classes of a parity
        # chain-vs-tree miter are all genuinely equivalent, so any
        # "refuted" here would be the bug resurfacing.
        c1, c2 = xor_chain(32), xor_tree(32)
        r = check_equivalence(c1, c2, conflict_limit=1)
        assert r.stats["sweep_unknown"] > 0
        assert r.stats["sweep_refuted"] == 0

    def test_generous_limit_has_no_unknowns(self):
        r = check_equivalence(xor_chain(16), xor_tree(16))
        assert r.stats["sweep_unknown"] == 0
        assert r.stats["sweep_merges"] > 0

    def test_counterexample_validation_rejects_bogus_assignment(self):
        m = build_miter(xor_chain(4, "c1"), xor_chain(4, "c2"))
        aig = m.aig
        # Both sides collapse to the same literal; any pair (lit, lit) can
        # never be distinguished, so validation must refuse it.
        name, l1, _ = m.output_pairs[0]
        with pytest.raises(RuntimeError, match="does not distinguish"):
            _validate_counterexample(
                aig, {pi: False for pi in aig.pi_names}, l1, l1, name
            )

    def test_counterexamples_still_validated_end_to_end(self):
        b1 = CircuitBuilder("a")
        x, y = b1.inputs("x", "y")
        b1.output(b1.AND(x, y), name="o")
        b2 = CircuitBuilder("b")
        x, y = b2.inputs("x", "y")
        b2.output(b2.OR(x, y), name="o")
        r = check_equivalence(b1.circuit, b2.circuit)
        assert r.verdict is CecVerdict.NOT_EQUIVALENT
        assert r.counterexample["x"] != r.counterexample["y"]


class TestSolverExport:
    def test_export_reproduces_problem(self):
        s = Solver()
        s.ensure_vars(4)
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, 3, 4])
        clauses = s.export_clauses()
        t = Solver()
        t.ensure_vars(4)
        for clause in clauses:
            assert t.add_clause(clause)
        assert t.solve().satisfiable
        assert not t.solve(assumptions=[-2]).satisfiable

    def test_export_restricts_to_variables(self):
        s = Solver()
        s.ensure_vars(6)
        s.add_clause([1, 2])
        s.add_clause([3, 4])
        s.add_clause([5, 6])
        sliced = s.export_clauses({3, 4})
        assert sliced == [[3, 4]]
