"""Pre-sweep AIG rewriting: semantics preservation and verdict identity."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.aig.aig import AIG, FALSE_LIT, TRUE_LIT, aig_from_circuit
from repro.aig.rewrite import (
    and_rewrite,
    preprocess_miter,
    remap_literal,
    rewrite_cone,
)
from repro.bench.mutations import sample_mutations
from repro.bench.random_circuits import random_combinational
from repro.cec.engine import CecVerdict, check_equivalence
from repro.cec.miter import build_miter
from repro.synth.script import script_delay


def _lit_value(aig: AIG, words, lit: int) -> int:
    return (words[lit >> 1] & 1) ^ (lit & 1)


class TestAndRewrite:
    """The two-level rules are semantic AND in every case."""

    def test_rules_exhaustively_against_truth_tables(self):
        # Every operand shape one fanin level deep: a, ¬a, ab, ¬(ab) ...
        aig = AIG()
        a, b, c = aig.add_pi("a"), aig.add_pi("b"), aig.add_pi("c")
        operands = [
            TRUE_LIT,
            FALSE_LIT,
            a,
            a ^ 1,
            aig.and_(a, b),
            aig.and_(a, b) ^ 1,
            aig.and_(b, c),
            aig.and_(b, c) ^ 1,
            aig.and_(a ^ 1, c),
            aig.and_(a ^ 1, c) ^ 1,
        ]
        for x, y in itertools.product(operands, repeat=2):
            lit = and_rewrite(aig, x, y)
            for va, vb, vc in itertools.product([0, 1], repeat=3):
                words = aig.simulate({"a": va, "b": vb, "c": vc}, 1)
                expect = _lit_value(aig, words, x) & _lit_value(aig, words, y)
                assert _lit_value(aig, words, lit) == expect, (x, y)

    def test_absorption_shrinks(self):
        aig = AIG()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        ab = aig.and_(a, b)
        assert and_rewrite(aig, ab, a) == ab
        assert and_rewrite(aig, ab, a ^ 1) == FALSE_LIT
        assert and_rewrite(aig, ab ^ 1, a ^ 1) == a ^ 1


class TestRewriteCone:
    @pytest.mark.parametrize("seed", range(6))
    def test_output_functions_preserved(self, seed):
        circuit = random_combinational(
            n_inputs=7, n_gates=60, n_outputs=4, seed=seed
        )
        aig, lits = aig_from_circuit(circuit)
        roots = list(lits.values())
        new, node_map = rewrite_cone(aig, roots)
        assert new.num_ands() <= aig.num_ands()
        assert new.pi_names == aig.pi_names
        rng = random.Random(seed)
        pi_words = {name: rng.getrandbits(64) for name in aig.pi_names}
        mask = (1 << 64) - 1
        old_words = aig.simulate(dict(pi_words), mask)
        new_words = new.simulate(dict(pi_words), mask)
        for lit in roots:
            mapped = remap_literal(node_map, lit)
            old = old_words[lit >> 1] ^ (mask if lit & 1 else 0)
            got = new_words[mapped >> 1] ^ (mask if mapped & 1 else 0)
            assert got == old

    def test_dead_nodes_dropped(self):
        aig = AIG()
        a, b, c = aig.add_pi("a"), aig.add_pi("b"), aig.add_pi("c")
        keep = aig.and_(a, b)
        aig.and_(aig.and_(b, c), aig.and_(a, c))  # orphaned cone
        new, node_map = rewrite_cone(aig, [keep])
        assert new.num_ands() == 1
        assert (keep >> 1) in node_map


class TestPreprocessMiter:
    @pytest.mark.parametrize("seed", range(4))
    def test_pair_semantics_preserved(self, seed):
        c1 = random_combinational(n_inputs=8, n_gates=70, seed=seed)
        c2 = c1.copy("resynth")
        script_delay(c2)
        miter = build_miter(c1, c2)
        pre, removed = preprocess_miter(miter)
        assert removed >= 0
        assert pre.aig.num_ands() == miter.aig.num_ands() - removed
        assert [p[0] for p in pre.output_pairs] == [
            p[0] for p in miter.output_pairs
        ]
        rng = random.Random(seed ^ 0xBEEF)
        pi_words = {
            name: rng.getrandbits(64) for name in miter.aig.pi_names
        }
        mask = (1 << 64) - 1
        old_words = miter.aig.simulate(dict(pi_words), mask)
        new_words = pre.aig.simulate(dict(pi_words), mask)

        def lit_word(words, lit):
            return words[lit >> 1] ^ (mask if lit & 1 else 0)

        for (name, o1, o2), (_, n1, n2) in zip(
            miter.output_pairs, pre.output_pairs
        ):
            assert lit_word(new_words, n1) == lit_word(old_words, o1), name
            assert lit_word(new_words, n2) == lit_word(old_words, o2), name

    def test_resynthesised_pair_collapses_structurally(self):
        # Rebuilding both cones through one fresh strash table merges a
        # circuit with its resynthesised self far more than import did.
        c1 = random_combinational(n_inputs=8, n_gates=70, seed=11)
        c2 = c1.copy("resynth")
        script_delay(c2)
        miter = build_miter(c1, c2)
        pre, removed = preprocess_miter(miter)
        assert removed > 0


class TestVerdictIdentity:
    """preprocess on/off must never change a verdict (PR 5 invariant +)."""

    def _pairs(self):
        pairs = []
        for seed in range(2):
            c1 = random_combinational(n_inputs=7, n_gates=50, seed=seed)
            c2 = c1.copy("resynth")
            script_delay(c2)
            pairs.append((c1, c2))
            other = random_combinational(
                n_inputs=7, n_gates=50, seed=seed + 100, name="other"
            )
            pairs.append((c1, other))
        base = random_combinational(n_inputs=7, n_gates=50, seed=31)
        for _, mutant in sample_mutations(base, 2, seed=5):
            pairs.append((base, mutant))
        return pairs

    def test_preprocess_on_off_verdicts_identical(self):
        for c1, c2 in self._pairs():
            plain = check_equivalence(c1, c2, preprocess=False)
            pre = check_equivalence(c1, c2, preprocess=True)
            assert pre.verdict == plain.verdict
            if pre.verdict is CecVerdict.NOT_EQUIVALENT:
                # Counterexamples are assignments over the original PIs
                # and both must be genuine (the engine re-validates).
                assert set(pre.counterexample) == set(plain.counterexample)

    def test_preprocess_counterexample_replays_on_originals(self):
        base = random_combinational(n_inputs=7, n_gates=50, seed=5)
        mutants = [m for _, m in sample_mutations(base, 6, seed=7)]
        checked = 0
        for mutant in mutants:
            result = check_equivalence(base, mutant, preprocess=True)
            if result.verdict is not CecVerdict.NOT_EQUIVALENT:
                continue
            checked += 1
            aig, lits = aig_from_circuit(base)
            aig, lits2 = aig_from_circuit(mutant, aig)
            out = result.failing_output
            v1, v2 = aig.eval_literals(
                [lits[out], lits2[out]], result.counterexample
            )
            assert v1 != v2
        assert checked > 0

    def test_stats_key_set_stable_across_preprocess(self):
        c1 = random_combinational(n_inputs=6, n_gates=30, seed=1)
        c2 = c1.copy("resynth")
        script_delay(c2)
        on = check_equivalence(c1, c2, preprocess=True)
        off = check_equivalence(c1, c2, preprocess=False)
        assert "preprocess_removed" in on.stats
        assert "preprocess_removed" in off.stats
        assert on.stats["aig_ands_preprocessed"] <= on.stats["aig_ands"]
