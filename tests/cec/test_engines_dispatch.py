"""Engine-adapter portfolio and dispatch-policy tests (PR 9 tentpole).

Pins the redesign's guarantees:

* the registry round-trips the built-in adapters and rejects unknown
  names loudly (``engines=["nope"]`` raises instead of skipping);
* cascade and heuristic policies return identical EQ/NEQ verdicts,
  serially and with ``n_jobs > 1`` — only UNKNOWNs may differ;
* restricted portfolios behave as selected: SAT-only still decides,
  sim-only refutes but cannot prove, and a portfolio without ``sat``
  skips the sweep entirely (zero SAT queries, including in workers);
* ``cec.cascade.sat`` is counted at a single site (the SAT adapter), so
  it always equals the engine's decided count;
* the heuristic never spends more SAT queries than the cascade and the
  :class:`OutcomeStore` reorders engines once it holds enough data.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.bench.random_circuits import random_combinational
from repro.cec.cache import EQ, NEQ
from repro.cec.dispatch import (
    CascadePolicy,
    HeuristicPolicy,
    OutcomeStore,
    available_policies,
    coerce_policy,
)
from repro.cec.engine import CecVerdict, check_equivalence
from repro.cec.engines.base import (
    _REGISTRY,
    EngineAdapter,
    EngineOutcome,
    Obligation,
    PASS,
    available_engines,
    get_engine,
    register_engine,
    resolve_portfolio,
)
from repro.cec.miter import build_miter
from repro.cec.parallel import UNKNOWN as SWEEP_UNKNOWN
from repro.cec.parallel import _sweep_unit_worker, sweep_unit_payload
from repro.cec.partition import partition_candidates
from repro.netlist.build import CircuitBuilder
from repro.runtime.budget import Budget, REASON_RESOURCE_LIMIT
from repro.sat.solver import Solver
from repro.sim.logic2 import simulate


def xor_chain(n, name="chain"):
    b = CircuitBuilder(name)
    xs = b.inputs(*[f"x{i}" for i in range(n)])
    acc = xs[0]
    for x in xs[1:]:
        acc = b.XOR(acc, x)
    b.output(acc, name="o")
    return b.circuit


def xor_tree(n, name="tree"):
    b = CircuitBuilder(name)
    xs = list(b.inputs(*[f"x{i}" for i in range(n)]))
    while len(xs) > 1:
        nxt = [b.XOR(xs[i], xs[i + 1]) for i in range(0, len(xs) - 1, 2)]
        if len(xs) % 2:
            nxt.append(xs[-1])
        xs = nxt
    b.output(xs[0], name="o")
    return b.circuit


def complement_chain(n, name="notchain"):
    """The chain's complement — differs on *every* input vector."""
    b = CircuitBuilder(name)
    xs = b.inputs(*[f"x{i}" for i in range(n)])
    acc = xs[0]
    for x in xs[1:]:
        acc = b.XOR(acc, x)
    b.output(b.NOT(acc), name="o")
    return b.circuit


class TestRegistry:
    def test_builtins_registered(self):
        assert {"structural", "sim", "bdd", "sat"} <= set(available_engines())

    def test_get_engine_round_trips_names(self):
        for name in available_engines():
            assert get_engine(name).name == name

    def test_unknown_engine_lists_available(self):
        with pytest.raises(ValueError, match="unknown engine 'nope'"):
            get_engine("nope")
        with pytest.raises(ValueError, match="available: .*sat"):
            get_engine("nope")

    def test_unknown_engine_rejected_by_check(self):
        c = xor_chain(4)
        with pytest.raises(ValueError, match="unknown engine"):
            check_equivalence(c, xor_tree(4), engines=["sim", "nope"])

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError, match="empty engine portfolio"):
            resolve_portfolio([])

    def test_comma_string_portfolio(self):
        names = [a.name for a in resolve_portfolio("sim, sat")]
        assert names == ["sim", "sat"]

    def test_unknown_policy_lists_available(self):
        with pytest.raises(ValueError, match="unknown dispatch policy"):
            coerce_policy("nope")
        with pytest.raises(ValueError, match="unknown dispatch policy"):
            check_equivalence(
                xor_chain(4), xor_tree(4), dispatch_policy="nope"
            )

    def test_third_party_engine_pluggable(self):
        """A registered custom adapter slots into a portfolio end to end."""

        class NosyEngine(EngineAdapter):
            name = "nosy"
            proving = True
            seen = 0

            def decide(self, ob, ctx):
                """Count the obligation, then hand it on."""
                NosyEngine.seen += 1
                return EngineOutcome(PASS)

        register_engine(NosyEngine)
        try:
            r = check_equivalence(
                xor_chain(6),
                xor_tree(6),
                engines=["structural", "nosy", "sat"],
                preprocess=False,
            )
            assert r.equivalent
            assert NosyEngine.seen > 0
            assert r.stats.get("engine_nosy", 0) == 0  # never decided
        finally:
            _REGISTRY.pop("nosy", None)


class TestPolicyVerdictParity:
    """Cascade and heuristic must agree on every decided verdict."""

    CASES = [
        ("eq-xor", lambda: (xor_chain(12, "a"), xor_tree(12, "b")), EQ),
        (
            "neq-complement",
            lambda: (xor_chain(8, "a"), complement_chain(8, "b")),
            NEQ,
        ),
        (
            "neq-random",
            lambda: (
                random_combinational(seed=3, name="a"),
                random_combinational(seed=77, name="b"),
            ),
            None,  # whatever cascade says, heuristic must match
        ),
    ]

    @pytest.mark.parametrize("policy", ["cascade", "heuristic"])
    @pytest.mark.parametrize("n_jobs", [1, 2])
    @pytest.mark.parametrize(
        "case", CASES, ids=[case[0] for case in CASES]
    )
    def test_same_verdict(self, case, policy, n_jobs):
        _, make, expect = case
        c1, c2 = make()
        reference = check_equivalence(c1, c2)
        r = check_equivalence(
            c1, c2, dispatch_policy=policy, n_jobs=n_jobs
        )
        assert r.verdict is reference.verdict
        if expect == EQ:
            assert r.equivalent
        elif expect == NEQ:
            assert r.verdict is CecVerdict.NOT_EQUIVALENT
        if r.verdict is CecVerdict.NOT_EQUIVALENT:
            vec = {k: bool(v) for k, v in r.counterexample.items()}
            assert (
                simulate(c1, [vec]).outputs[0]
                != simulate(c2, [vec]).outputs[0]
            )

    def test_heuristic_never_spends_more_sat_queries(self):
        pairs = [
            (xor_chain(10, "a"), xor_tree(10, "b")),
            (xor_chain(8, "a"), complement_chain(8, "b")),
        ]
        for c1, c2 in pairs:
            cascade = check_equivalence(c1, c2)
            heuristic = check_equivalence(
                c1, c2, dispatch_policy="heuristic"
            )
            assert heuristic.verdict is cascade.verdict
            assert (
                heuristic.stats["sat_queries"]
                <= cascade.stats["sat_queries"]
            )


class TestPortfolioSelection:
    def test_sat_only_proves(self):
        r = check_equivalence(
            xor_chain(8, "a"), xor_tree(8, "b"),
            engines=["sat"], preprocess=False,
        )
        assert r.equivalent
        assert r.stats.get("engine_sat", 0) >= 1

    def test_sat_only_refutes_with_counterexample(self):
        c1, c2 = xor_chain(6, "a"), complement_chain(6, "b")
        r = check_equivalence(c1, c2, engines=["sat"], preprocess=False)
        assert r.verdict is CecVerdict.NOT_EQUIVALENT
        vec = {k: bool(v) for k, v in r.counterexample.items()}
        assert simulate(c1, [vec]).outputs[0] != simulate(c2, [vec]).outputs[0]

    def test_sim_only_cannot_prove(self):
        r = check_equivalence(
            xor_chain(8, "a"), xor_tree(8, "b"),
            engines=["structural", "sim"], preprocess=False,
        )
        assert r.verdict is CecVerdict.UNKNOWN
        assert r.reason == REASON_RESOURCE_LIMIT
        assert r.stats["sat_queries"] == 0  # sweep skipped without "sat"

    def test_sim_only_refutes(self):
        r = check_equivalence(
            xor_chain(6, "a"), complement_chain(6, "b"),
            engines=["sim"], preprocess=False,
        )
        assert r.verdict is CecVerdict.NOT_EQUIVALENT
        assert r.stats["sat_queries"] == 0

    def test_worker_honors_portfolio(self):
        """A sweep payload without ``sat`` decides nothing, queries nothing."""
        m = build_miter(xor_chain(8), xor_tree(8))
        cnf, _ = m.aig.to_cnf()
        solver = Solver()
        assert solver.add_cnf(cnf)
        from repro.cec.engine import (
            _class_candidates,
            _initial_signatures,
            _signature_classes,
        )

        signatures, mask = _initial_signatures(m.aig, 4, 64, 0)
        classes = _signature_classes(
            signatures, mask, range(m.aig.num_nodes())
        )
        units = partition_candidates(
            m.aig, _class_candidates(m.aig, classes, signatures), 2
        )
        assert units
        for unit in units:
            payload = sweep_unit_payload(
                solver, unit, 2000, engines=("structural", "sim")
            )
            statuses, n_queries, _elapsed, _obs, _models, _extras = (
                _sweep_unit_worker(payload)
            )
            assert n_queries == 0
            assert statuses == [SWEEP_UNKNOWN] * len(unit.candidates)


class TestSingleSiteSatCounting:
    """Satellite 2: ``cec.cascade.sat`` is incremented only in the adapter."""

    def test_cascade_sat_equals_engine_decided(self):
        # A tiny BDD node bound forces the budgeted ladder past the BDD
        # stage, so the SAT adapter decides (and counts) the outputs.
        r = check_equivalence(
            xor_chain(10, "a"),
            xor_tree(10, "b"),
            budget=Budget(wall_seconds=60.0, bdd_nodes=4),
            preprocess=False,
        )
        assert r.equivalent
        assert r.stats["cascade_sat"] >= 1
        assert r.stats["cascade_sat"] == r.stats["engine_sat"]

    def test_classic_run_counts_cascade_like_budgeted(self):
        # Satellite 2: the old adapter gated the cascade counters on
        # ``ctx.budgeted``, so classic runs reported an empty cascade
        # breakdown even though the SAT engine decided every output.
        # Both paths now count once per decided obligation.
        r = check_equivalence(
            xor_chain(8, "a"), xor_tree(8, "b"), preprocess=False
        )
        assert r.equivalent
        assert r.stats.get("engine_sat", 0) >= 1
        assert r.stats["cascade_sat"] == r.stats["engine_sat"]


class TestOutcomeStore:
    def test_record_and_attempts(self):
        store = OutcomeStore()
        assert store.attempts("sat", 100) == 0
        store.record("sat", 100, decided=True, seconds=0.25)
        store.record("sat", 120, decided=False, seconds=0.75)  # same bucket
        assert store.attempts("sat", 100) == 2
        assert store.attempts("sat", 100_000) == 0  # different bucket

    def test_expected_cost_prices_per_decision(self):
        store = OutcomeStore()
        assert store.expected_cost("sat", 100) is None
        store.record("sat", 100, decided=True, seconds=0.2)
        store.record("sat", 100, decided=True, seconds=0.4)
        assert store.expected_cost("sat", 100) == pytest.approx(0.3)
        # An engine that never decides is expensive but not infinite.
        store.record("bdd", 100, decided=False, seconds=0.1)
        cost = store.expected_cost("bdd", 100)
        assert cost is not None and cost > 0.1

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "outcomes.json"
        store = OutcomeStore(path)
        store.record("sat", 100, decided=True, seconds=0.5)
        store.save()
        assert not store.dirty
        reloaded = OutcomeStore(path)
        assert reloaded.attempts("sat", 100) == 1
        assert reloaded.expected_cost("sat", 100) == pytest.approx(0.5)

    def test_save_without_path_is_noop(self):
        store = OutcomeStore()
        store.record("sat", 1, decided=True, seconds=0.1)
        store.save()  # must not raise
        assert store.dirty  # nothing was persisted

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"not": "a store"}))
        with pytest.raises(ValueError, match="not a dispatch outcome store"):
            OutcomeStore(path)

    def test_ingest_oblog_rows(self):
        store = OutcomeStore()
        rows = [
            {"engine": "sat", "verdict": EQ, "cone": 90, "seconds": 0.2},
            {"engine": "sat", "verdict": "unknown", "cone": 90, "seconds": 1.0},
            {"engine": "", "verdict": EQ, "cone": 90, "seconds": 0.1},  # skip
        ]
        assert store.ingest_records(rows) == 2
        assert store.attempts("sat", 90) == 2

    def test_store_reorders_heuristic(self):
        """Enough recorded data flips the static BDD-before-SAT rank."""
        adapters = resolve_portfolio(["structural", "sim", "bdd", "sat"])
        ob = Obligation("o", 2, 4, _cone=100)  # small cone: bdd first

        static = HeuristicPolicy()
        assert [a.name for a in static.order(ob, adapters, None)] == [
            "structural", "sim", "bdd", "sat",
        ]

        store = OutcomeStore()
        for _ in range(HeuristicPolicy.min_attempts):
            store.record("sim", 100, decided=False, seconds=0.001)
            store.record("bdd", 100, decided=False, seconds=1.0)  # costly
            store.record("sat", 100, decided=True, seconds=0.01)  # cheap
        trained = HeuristicPolicy(store=store)
        ordered = [a.name for a in trained.order(ob, adapters, None)]
        assert ordered.index("sat") < ordered.index("bdd")
        assert ordered[0] == "structural"  # passive adapters stay first

    def test_cascade_policy_records_into_store(self):
        """Outcome recording is policy-independent — cascade trains too."""
        store = OutcomeStore()
        r = check_equivalence(
            xor_chain(8, "a"),
            xor_tree(8, "b"),
            dispatch_store=store,
            preprocess=False,
        )
        assert r.equivalent
        assert any(key.startswith("sat|") for key in store.cells)

    def test_available_policy_names(self):
        assert {"cascade", "heuristic"} <= set(available_policies())
        assert CascadePolicy.name == "cascade"
        assert coerce_policy(None).name == "cascade"
