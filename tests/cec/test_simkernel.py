"""Vectorised simulation kernel: bit-identity against the scalar oracle."""

from __future__ import annotations

import random

import pytest

from repro.aig import simkernel
from repro.aig.aig import AIG, aig_from_circuit
from repro.bench.random_circuits import random_combinational

needs_numpy = pytest.mark.skipif(
    not simkernel.HAVE_NUMPY, reason="numpy not available"
)


def _random_aig(seed: int, n_inputs: int = 7, n_gates: int = 60) -> AIG:
    aig, _ = aig_from_circuit(
        random_combinational(
            n_inputs=n_inputs, n_gates=n_gates, n_outputs=4, seed=seed
        )
    )
    return aig


def _random_words(aig: AIG, width: int, seed: int):
    rng = random.Random(seed)
    return {name: rng.getrandbits(width) for name in aig.pi_names}


class TestDifferentialIdentity:
    """Property: kernel and scalar oracle agree bit-for-bit."""

    @pytest.mark.parametrize("seed", range(8))
    @needs_numpy
    def test_kernel_matches_oracle_random_aigs(self, seed):
        aig = _random_aig(seed)
        width = random.Random(seed ^ 0xFEED).choice([1, 13, 64, 65, 200])
        pi_words = _random_words(aig, width, seed)
        mask = (1 << width) - 1
        scalar = aig.simulate(dict(pi_words), mask)
        vector = aig.simulate_words(dict(pi_words), width, use_kernel=True)
        assert vector == scalar

    @pytest.mark.parametrize("seed", range(4))
    @needs_numpy
    def test_random_simulate_identical_with_and_without_kernel(self, seed):
        # random_simulate routes through simulate_words; the dispatch
        # decision (kernel vs scalar) must never change the words.
        aig = _random_aig(seed, n_gates=80)
        forced, mask1 = (
            aig.simulate_words(
                _random_words(aig, 64, seed), 64, use_kernel=True
            ),
            (1 << 64) - 1,
        )
        scalar = aig.simulate(
            {n: w for n, w in _random_words(aig, 64, seed).items()}, mask1
        )
        assert forced == scalar

    @needs_numpy
    def test_single_lane_and_multi_lane_agree(self):
        aig = _random_aig(3)
        pi_words = _random_words(aig, 64, 11)
        one_lane = aig.simulate_words(dict(pi_words), 64, use_kernel=True)
        # Same corpus zero-extended to three lanes: low 64 bits identical.
        three_lane = aig.simulate_words(dict(pi_words), 192, use_kernel=True)
        mask = (1 << 64) - 1
        assert [w & mask for w in three_lane] == one_lane


class TestEdgeCases:
    def test_simulate_patterns_empty_corpus(self):
        aig = _random_aig(0)
        words, mask = aig.simulate_patterns([])
        assert mask == 0
        assert words == [0] * aig.num_nodes()

    def test_simulate_patterns_multi_lane_corpus(self):
        # >64 patterns means multiple uint64 lanes on the kernel path.
        aig = _random_aig(1, n_inputs=5, n_gates=40)
        rng = random.Random(42)
        patterns = [
            {name: rng.random() < 0.5 for name in aig.pi_names}
            for _ in range(130)
        ]
        words, mask = aig.simulate_patterns(patterns)
        assert mask == (1 << 130) - 1
        # Cross-check a sample of columns against single-pattern eval.
        for col in (0, 63, 64, 129):
            expected = aig.simulate(
                {n: int(patterns[col][n]) for n in aig.pi_names}, 1
            )
            assert [(w >> col) & 1 for w in words] == expected

    def test_kernel_requires_numpy_when_forced(self):
        aig = _random_aig(2)
        if simkernel.HAVE_NUMPY:
            aig.simulate_words(_random_words(aig, 8, 0), 8, use_kernel=True)
        else:
            with pytest.raises(RuntimeError):
                aig.simulate_words(
                    _random_words(aig, 8, 0), 8, use_kernel=True
                )

    def test_missing_pis_default_to_zero(self):
        aig = _random_aig(4)
        scalar = aig.simulate(
            {name: 0 for name in aig.pi_names}, (1 << 16) - 1
        )
        assert aig.simulate_words({}, 16, use_kernel=False) == scalar
        if simkernel.HAVE_NUMPY:
            assert aig.simulate_words({}, 16, use_kernel=True) == scalar


@needs_numpy
class TestScheduleCache:
    def test_schedule_is_cached(self):
        aig = _random_aig(5)
        assert aig.sim_schedule() is aig.sim_schedule()

    def test_mutation_invalidates_schedule(self):
        aig = _random_aig(6)
        before = aig.sim_schedule()
        a = aig.add_pi("fresh_pi")
        b = aig.add_pi("fresh_pi2")
        aig.and_(a, b)
        after = aig.sim_schedule()
        assert after is not before
        assert after.num_nodes == aig.num_nodes()
        # And the refreshed schedule still simulates correctly.
        pi_words = _random_words(aig, 32, 9)
        assert aig.simulate_words(dict(pi_words), 32, use_kernel=True) == (
            aig.simulate(dict(pi_words), (1 << 32) - 1)
        )

    def test_worthwhile_thresholds_small_workloads_out(self):
        aig = _random_aig(7, n_inputs=3, n_gates=4)
        schedule = aig.sim_schedule()
        assert schedule is not None
        # Too little bulk work: fixed dispatch cost dominates.
        assert not simkernel.worthwhile(schedule, 1)
        # Too wide: scalar big-int ops win, conversion cost dominates.
        assert not simkernel.worthwhile(schedule, 64 * 100000)

    def test_worthwhile_accepts_big_narrow_corpora(self):
        # Random circuits strash down to a few hundred nodes; build the
        # deep AIG directly so num_nodes clears MIN_NODE_LANES.
        rng = random.Random(8)
        big = AIG()
        lits = [big.add_pi(f"i{k}") for k in range(16)]
        while big.num_nodes() < simkernel.MIN_NODE_LANES + 64:
            a, b = rng.sample(lits[-256:], 2)
            lits.append(
                big.and_(a ^ (rng.random() < 0.5), b ^ (rng.random() < 0.5))
            )
        schedule = big.sim_schedule()
        assert simkernel.worthwhile(schedule, 64)
        assert simkernel.worthwhile(
            schedule, 64 * simkernel.MAX_KERNEL_LANES
        )
        assert not simkernel.worthwhile(
            schedule, 64 * (simkernel.MAX_KERNEL_LANES + 1)
        )
