"""AIG → Circuit export tests."""

from __future__ import annotations

import pytest

from repro.aig import AIG, aig_from_circuit, aig_to_circuit
from repro.bench.random_circuits import random_combinational
from repro.cec import check_equivalence
from repro.netlist.validate import validate_circuit
from repro.sim.logic2 import simulate


class TestAigExport:
    @pytest.mark.parametrize("seed", range(5))
    def test_roundtrip_equivalent(self, seed):
        c = random_combinational(seed=seed)
        aig, _ = aig_from_circuit(c)
        back = aig_to_circuit(aig, name="back")
        validate_circuit(back)
        assert check_equivalence(c, back).equivalent

    def test_constant_outputs(self):
        aig = AIG()
        a = aig.add_pi("a")
        aig.add_output("zero", 0)
        aig.add_output("one", 1)
        aig.add_output("na", a ^ 1)
        c = aig_to_circuit(aig)
        validate_circuit(c)
        out = simulate(c, [{"a": True}]).outputs[0]
        values = {name: out[name] for name in out}
        assert values["zero"] is False
        assert values["one"] is True
        assert values["na"] is False

    def test_output_name_collides_with_pi(self):
        aig = AIG()
        a = aig.add_pi("a")
        aig.add_output("a", a ^ 1)  # output named like the PI
        c = aig_to_circuit(aig)
        validate_circuit(c)
        assert len(c.outputs) == 1

    def test_shared_nodes_shared_gates(self):
        aig = AIG()
        a, b, x = aig.add_pi("a"), aig.add_pi("b"), aig.add_pi("x")
        shared = aig.and_(a, b)
        aig.add_output("o1", aig.or_(shared, x))
        aig.add_output("o2", aig.and_(shared, x))
        c = aig_to_circuit(aig)
        validate_circuit(c)
        # 3 AND nodes (OR is one AND via De Morgan) + 2 output buffers.
        assert c.num_gates() == 3 + 2
        # The shared AND(a,b) node appears exactly once.
        shared_gates = [
            g for g in c.gates.values() if set(g.inputs) == {"a", "b"}
        ]
        assert len(shared_gates) == 1
