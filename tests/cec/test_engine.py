"""CEC engine tests: verdict correctness, counterexamples, cross-checks."""

from __future__ import annotations

import random

import pytest

from repro.bench.random_circuits import random_combinational
from repro.cec.engine import (
    CecVerdict,
    check_equivalence,
    check_equivalence_bdd,
    check_miter_unsat,
)
from repro.cec.miter import build_miter
from repro.netlist.build import CircuitBuilder
from repro.netlist.transform import miter as circuit_miter
from repro.sim.logic2 import simulate
from repro.synth.script import script_delay


class TestVerdicts:
    @pytest.mark.parametrize("seed", range(8))
    def test_identical_circuits(self, seed):
        c1 = random_combinational(seed=seed, name="c1")
        c2 = random_combinational(seed=seed, name="c2")
        r = check_equivalence(c1, c2)
        assert r.equivalent
        assert r.stats.get("structural") == 1  # collapsed in the shared AIG

    @pytest.mark.parametrize("seed", range(8))
    def test_sat_vs_bdd_agree(self, seed):
        c1 = random_combinational(seed=seed, name="c1")
        c3 = random_combinational(seed=seed + 50, name="c3")
        r_sat = check_equivalence(c1, c3)
        r_bdd = check_equivalence_bdd(c1, c3)
        assert r_sat.verdict == r_bdd.verdict

    @pytest.mark.parametrize("seed", range(8))
    def test_counterexample_is_real(self, seed):
        c1 = random_combinational(seed=seed, name="c1")
        c3 = random_combinational(seed=seed + 100, name="c3")
        r = check_equivalence(c1, c3)
        if r.verdict is CecVerdict.NOT_EQUIVALENT:
            vec = {k: bool(v) for k, v in r.counterexample.items()}
            o1 = simulate(c1, [vec]).outputs[0]
            o3 = simulate(c3, [vec]).outputs[0]
            assert o1 != o3

    @pytest.mark.parametrize("seed", range(5))
    def test_synthesised_circuit_equivalent(self, seed):
        """The engine proves synthesis-restructured circuits (the real use)."""
        c1 = random_combinational(n_inputs=6, n_gates=30, seed=seed, name="c1")
        c2 = c1.copy("c2")
        script_delay(c2)
        r = check_equivalence(c1, c2)
        assert r.equivalent

    def test_single_bit_difference_found(self):
        b1 = CircuitBuilder("a")
        xs = b1.inputs(*[f"x{i}" for i in range(6)])
        acc = xs[0]
        for x in xs[1:]:
            acc = b1.XOR(acc, x)
        b1.output(acc, name="o")
        b2 = CircuitBuilder("b")
        xs = b2.inputs(*[f"x{i}" for i in range(6)])
        acc = xs[0]
        for x in xs[1:]:
            acc = b2.XOR(acc, x)
        b2.output(b2.NOT(acc), name="o")  # complemented
        r = check_equivalence(b1.circuit, b2.circuit)
        assert r.verdict is CecVerdict.NOT_EQUIVALENT

    def test_no_sweep_mode(self):
        c1 = random_combinational(seed=2, name="c1")
        c2 = random_combinational(seed=2, name="c2")
        script_delay(c2)
        r = check_equivalence(c1, c2, sweep=False)
        assert r.equivalent


class TestMiterPaths:
    def test_build_miter_pairs_outputs(self):
        c1 = random_combinational(seed=1, name="c1")
        c2 = random_combinational(seed=1, name="c2")
        m = build_miter(c1, c2)
        assert m.trivially_equivalent

    def test_build_miter_output_mismatch(self):
        b1 = CircuitBuilder("a")
        x, y = b1.inputs("x", "y")
        b1.output(b1.AND(x, y), name="o")
        b2 = CircuitBuilder("b")
        x, y = b2.inputs("x", "y")
        b2.output(b2.AND(x, y), name="other")
        with pytest.raises(ValueError):
            build_miter(b1.circuit, b2.circuit)

    def test_build_miter_input_mismatch_allowed(self):
        # Resynthesis may sweep away an unused PI; the miter matches over
        # the union of input names instead of rejecting the pair.
        c1 = random_combinational(n_inputs=3, seed=1)
        c2 = random_combinational(n_inputs=4, seed=2, name="other")
        m = build_miter(c1, c2)
        assert {"i0", "i1", "i2", "i3"} <= set(m.aig.pi_names)

    def test_check_miter_unsat_path(self):
        c1 = random_combinational(seed=4, name="c1")
        c2 = c1.copy("c2")
        script_delay(c2)
        m = circuit_miter(c1, c2)
        r = check_miter_unsat(m)
        assert r.equivalent

    def test_check_miter_sat_path(self):
        b1 = CircuitBuilder("a")
        x, y = b1.inputs("x", "y")
        b1.output(b1.AND(x, y), name="o")
        b2 = CircuitBuilder("b")
        x, y = b2.inputs("x", "y")
        b2.output(b2.OR(x, y), name="o")
        m = circuit_miter(b1.circuit, b2.circuit)
        r = check_miter_unsat(m)
        assert r.verdict is CecVerdict.NOT_EQUIVALENT
        vec = r.counterexample
        assert vec["x"] != vec["y"]
