"""Assumption-core retirement and cross-worker clause sharing (PR 10).

Pins the tentpole's guarantees:

* :class:`~repro.sat.cores.CoreIndex` subsumption semantics — the empty
  core retires everything, singletons retire by membership, wide cores
  by subset, and ``core_retires`` records root-false assumptions;
* stuck-at-constant signature classes retire sweep queries without a
  solver call (``cec.sat.core_retired`` > 0) while the verdict and the
  serial/parallel identity are untouched;
* a worker fed ``known_cores`` retires at least as much as a cold one
  and answers identically; a worker fed valid ``shared_clauses``
  imports them and still answers identically;
* worker extras (learned clauses, cores) come home in the *parent*
  variable space;
* ``share_learned=False`` changes no verdict, serially or in parallel.
"""

from __future__ import annotations

import pytest

from repro.bench.random_circuits import random_combinational
from repro.cec.engine import (
    CecVerdict,
    _class_candidates,
    _initial_signatures,
    _signature_classes,
    check_equivalence,
)
from repro.cec.miter import build_miter
from repro.cec.parallel import _sweep_unit_worker, sweep_unit_payload
from repro.cec.partition import partition_candidates
from repro.netlist.build import CircuitBuilder
from repro.sat.cores import CoreIndex, core_retires
from repro.sat.solver import Solver
from repro.synth.script import script_delay


def xor_chain(n, name="chain"):
    b = CircuitBuilder(name)
    xs = b.inputs(*[f"x{i}" for i in range(n)])
    acc = xs[0]
    for x in xs[1:]:
        acc = b.XOR(acc, x)
    b.output(acc, name="o")
    return b.circuit


def xor_tree(n, name="tree"):
    b = CircuitBuilder(name)
    xs = list(b.inputs(*[f"x{i}" for i in range(n)]))
    while len(xs) > 1:
        nxt = [b.XOR(xs[i], xs[i + 1]) for i in range(0, len(xs) - 1, 2)]
        if len(xs) % 2:
            nxt.append(xs[-1])
        xs = nxt
    b.output(xs[0], name="o")
    return b.circuit


def hidden_const_circuit(name, decorated):
    """``o = core [OR two hidden stuck-at-0 nodes]``.

    The constant cones are ``(a AND d) AND (NOT a AND d)`` — semantically
    0 but invisible to structural hashing, so with ``preprocess=False``
    they survive into the sweep and join the constant signature class.
    """
    b = CircuitBuilder(name)
    a, x, d, e, f = b.inputs("a", "x", "d", "e", "f")
    core = b.XOR(b.AND(d, e), f)
    if decorated:
        z1 = b.AND(b.AND(a, d), b.AND(b.NOT(a), d))
        z2 = b.AND(b.AND(x, e), b.AND(b.NOT(x), e))
        o = b.OR(b.OR(z1, z2), core)
    else:
        o = core
    b.output(o, name="o")
    return b.circuit


class TestCoreIndex:
    def test_empty_core_retires_everything(self):
        idx = CoreIndex()
        idx.add([])
        assert idx.subsumed([]) and idx.subsumed([5, -7])

    def test_singleton_membership(self):
        idx = CoreIndex()
        idx.add([3])
        assert idx.subsumed([1, 3])
        assert not idx.subsumed([1, -3])

    def test_wide_core_subset(self):
        idx = CoreIndex()
        idx.add([2, -4])
        assert idx.subsumed([2, -4, 9])
        assert not idx.subsumed([2, 4, 9])

    def test_duplicates_collapse(self):
        idx = CoreIndex()
        idx.add([1, 2])
        idx.add([2, 1])
        assert len(idx) == 1

    def test_export_round_trips(self):
        idx = CoreIndex()
        idx.add_many([[3], [1, -2], []])
        clone = CoreIndex()
        clone.add_many(idx.export())
        assert clone.subsumed([3, 7])
        assert clone.subsumed([])  # the empty core survived the trip

    def test_core_retires_records_root_false(self):
        s = Solver()
        s.add_clause([-1])
        s.solve()
        idx = CoreIndex()
        assert core_retires(s, idx, [1, 2])
        # The singleton was recorded: the next check needs no solver.
        assert idx.subsumed([1, 5])

    def test_none_index_never_retires(self):
        s = Solver()
        s.add_clause([-1])
        s.solve()
        assert not core_retires(s, None, [1])


class TestConstantClassRetirement:
    def test_constant_class_queries_retired(self):
        r = check_equivalence(
            hidden_const_circuit("l", True),
            hidden_const_circuit("r", False),
            preprocess=False,
        )
        assert r.verdict is CecVerdict.EQUIVALENT
        assert r.stats["core_retired"] >= 1
        # Retired directions were never solved, so the query count stays
        # below what two directions per candidate would cost.
        assert r.stats["sat_queries"] < 2 * r.stats["sweep_candidates"] + 2

    def test_retirement_identical_in_parallel(self):
        kwargs = dict(preprocess=False)
        serial = check_equivalence(
            hidden_const_circuit("l", True),
            hidden_const_circuit("r", False),
            **kwargs,
        )
        parallel = check_equivalence(
            hidden_const_circuit("l", True),
            hidden_const_circuit("r", False),
            n_jobs=2,
            **kwargs,
        )
        assert serial.verdict is parallel.verdict is CecVerdict.EQUIVALENT
        assert parallel.stats["core_retired"] >= 1


class TestShareLearnedKnob:
    @pytest.mark.parametrize("seed", range(3))
    def test_verdicts_identical_with_and_without_sharing(self, seed):
        c1 = random_combinational(n_inputs=8, n_gates=60, seed=seed, name="g")
        c2 = c1.copy("r")
        script_delay(c2)
        baseline = check_equivalence(c1, c2)
        for kwargs in (
            dict(share_learned=False),
            dict(n_jobs=2),
            dict(n_jobs=2, share_learned=False),
        ):
            r = check_equivalence(c1, c2, **kwargs)
            assert r.verdict is baseline.verdict

    def test_neq_verdict_survives_sharing_modes(self):
        c1 = random_combinational(n_inputs=8, n_gates=60, seed=0, name="g")
        c3 = random_combinational(n_inputs=8, n_gates=60, seed=9, name="u")
        baseline = check_equivalence(c1, c3)
        for kwargs in (
            dict(share_learned=False),
            dict(n_jobs=2),
            dict(n_jobs=2, share_learned=False),
        ):
            assert check_equivalence(c1, c3, **kwargs).verdict is baseline.verdict


def _unit_payloads(c1, c2, **payload_kwargs):
    """Worker payloads for the miter's sweep units (test scaffolding)."""
    m = build_miter(c1, c2)
    cnf, _ = m.aig.to_cnf()
    solver = Solver()
    assert solver.add_cnf(cnf)
    signatures, mask = _initial_signatures(m.aig, 4, 64, 0)
    classes = _signature_classes(signatures, mask, range(m.aig.num_nodes()))
    units = partition_candidates(
        m.aig, _class_candidates(m.aig, classes, signatures), 2
    )
    assert units
    return solver, [
        sweep_unit_payload(solver, unit, 2000, **payload_kwargs)
        for unit in units
    ]


class TestWorkerSharing:
    def test_known_cores_retire_in_worker(self):
        c1 = hidden_const_circuit("l", True)
        c2 = hidden_const_circuit("r", False)
        _, payloads = _unit_payloads(c1, c2)
        cold_statuses, cores, retired_cold = [], [], 0
        for payload in payloads:
            statuses, _nq, _el, _obs, _models, extras = _sweep_unit_worker(
                payload
            )
            cold_statuses.append(statuses)
            assert extras is not None
            cores.extend(extras["cores"])
            retired_cold += extras["core_retired"]
        assert retired_cold >= 1  # constant-class directions retire cold
        # A second pass fed the harvested cores answers identically and
        # retires at least as much.
        _, payloads = _unit_payloads(c1, c2, known_cores=cores)
        retired_warm = 0
        for payload, expected in zip(payloads, cold_statuses):
            statuses, _nq, _el, _obs, _models, extras = _sweep_unit_worker(
                payload
            )
            assert statuses == expected
            retired_warm += extras["core_retired"]
        assert retired_warm >= retired_cold

    def test_shared_clauses_imported_without_changing_answers(self):
        c1, c2 = xor_chain(8, "a"), xor_tree(8, "b")
        _, payloads = _unit_payloads(c1, c2)
        baseline = [
            _sweep_unit_worker(payload)[0] for payload in payloads
        ]
        # Feed each worker a clause it already owns — trivially valid,
        # short enough for the import filter — and check it is counted
        # and harmless.
        _, payloads = _unit_payloads(c1, c2)
        for payload, expected in zip(payloads, baseline):
            clause = next(
                cl for cl in payload[1] if 1 < len(cl) <= 4
            )
            reshipped = payload[:12] + ([list(clause)],) + payload[13:]
            statuses, _nq, _el, _obs, _models, extras = _sweep_unit_worker(
                reshipped
            )
            assert statuses == expected
            assert extras["shared_imported"] >= 1

    def test_worker_extras_come_home_in_parent_space(self):
        c1 = hidden_const_circuit("l", True)
        c2 = hidden_const_circuit("r", False)
        solver, payloads = _unit_payloads(c1, c2)
        for payload in payloads:
            _st, _nq, _el, _obs, _models, extras = _sweep_unit_worker(payload)
            for group in (extras["learned"], extras["cores"]):
                for lits in group:
                    for lit in lits:
                        assert 1 <= abs(lit) <= solver._num_vars
