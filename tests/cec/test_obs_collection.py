"""Worker-side observability collection and partial-stat preservation.

Dispatcher-level tests for the two sweep-path guarantees added with the
observability stack: (a) when collection is on, every unit ships back its
own metrics snapshot and span buffer; (b) a unit whose attempts all die
keeps the SAT queries, wall time, and independently-proven statuses its
attempts managed instead of degrading to a zero-stat all-UNKNOWN row.
"""

from __future__ import annotations

import pytest

from repro.cec import parallel
from repro.cec.engine import (
    _class_candidates,
    _initial_signatures,
    _signature_classes,
    check_equivalence,
)
from repro.cec.miter import build_miter
from repro.cec.parallel import EQ, NEQ, UNKNOWN, sweep_units_parallel
from repro.cec.partition import partition_candidates
from repro.obs.schema import validate_events
from repro.obs.trace import Tracer
from repro.sat.solver import Solver

from tests.cec.test_sweep_parallel import xor_chain, xor_tree


def solver_and_units(n_units=2, n=8):
    """A loaded parent solver plus self-contained work units.

    ``n_units`` must be >= 2: a 1-way partition skips cone computation
    (the serial sweep never ships payloads), so its units cannot be
    exported to workers.
    """
    miter = build_miter(xor_chain(n), xor_tree(n))
    cnf, _ = miter.aig.to_cnf()
    solver = Solver()
    assert solver.add_cnf(cnf)
    signatures, mask = _initial_signatures(miter.aig, 4, 64, 0)
    classes = _signature_classes(signatures, mask, range(miter.aig.num_nodes()))
    units = partition_candidates(
        miter.aig, _class_candidates(miter.aig, classes, signatures), n_units
    )
    return solver, units


class TestWorkerCollection:
    def test_collect_ships_metrics_and_spans(self):
        solver, units = solver_and_units(n_units=2)
        results = sweep_units_parallel(
            solver, units, 2000, n_jobs=1, collect=True, trace_epoch=0.0
        )
        assert len(results) == len(units)
        for index, (unit, result) in enumerate(zip(units, results)):
            assert len(result.statuses) == len(unit.candidates)
            assert result.metrics is not None
            assert result.metrics["counters"]["sat.calls"] == result.sat_queries
            assert result.events is not None
            (span,) = [e for e in result.events if e["type"] == "span"]
            assert span["name"] == "sweep.unit"
            assert span["cat"] == "worker"
            assert span["args"]["unit"] == index
            assert span["args"]["sat_queries"] == result.sat_queries

    def test_collect_off_ships_nothing(self):
        solver, units = solver_and_units()
        for result in sweep_units_parallel(solver, units, 2000, n_jobs=1):
            assert result.events is None
            assert result.metrics is None
            assert result.error is None

    def test_worker_spans_land_in_engine_trace(self):
        tracer = Tracer(sink=[])
        result = check_equivalence(
            xor_chain(16), xor_tree(16), n_jobs=4, tracer=tracer
        )
        tracer.close()
        events = tracer.events
        assert validate_events(events) == []
        unit_spans = [
            e
            for e in events
            if e["type"] == "span" and e["name"] == "sweep.unit"
        ]
        if result.stats["n_units"] > 1:
            assert len(unit_spans) == result.stats["n_units"]
            sweep = next(
                e
                for e in events
                if e["type"] == "span" and e["name"] == "cec.phase.sweep"
            )
            for span in unit_spans:
                assert span["parent"] == sweep["id"]
                assert isinstance(span["args"]["worker"], int)


class FailingSolver(Solver):
    """A solver whose ``solve`` dies after a fixed number of calls.

    The counter is class-level on purpose: the dispatcher builds a fresh
    solver per attempt, and the retries must keep failing for the unit to
    be recorded as lost.
    """

    calls = 0
    fail_after = 0

    def solve(self, *args, **kwargs):
        type(self).calls += 1
        if type(self).calls > type(self).fail_after:
            raise RuntimeError("injected mid-unit solver death")
        return super().solve(*args, **kwargs)


class TestPartialStatPreservation:
    def test_lost_unit_keeps_partial_statuses_and_queries(self, monkeypatch):
        solver, units = solver_and_units(n_units=2)
        (unit,) = units  # the 8-input pair partitions into one real unit
        assert len(unit.candidates) >= 2
        FailingSolver.calls = 0
        FailingSolver.fail_after = 3  # first candidate decided, then die
        monkeypatch.setattr(parallel, "Solver", FailingSolver)
        (result,) = sweep_units_parallel(
            solver, units, 2000, n_jobs=1, backoff_seconds=0.0
        )
        assert result.error is not None
        assert len(result.statuses) == len(unit.candidates)
        # The decided prefix survives; only the remainder is UNKNOWN.
        assert result.statuses[0] in (EQ, NEQ)
        assert UNKNOWN in result.statuses
        # Partial effort is preserved, not zeroed: the first attempt got
        # three queries in before dying (retries add theirs on top).
        assert result.sat_queries >= 3
        assert result.seconds > 0.0

    def test_immediate_death_degrades_to_all_unknown(self, monkeypatch):
        solver, units = solver_and_units(n_units=2)
        (unit,) = units
        FailingSolver.calls = 0
        FailingSolver.fail_after = 0
        monkeypatch.setattr(parallel, "Solver", FailingSolver)
        (result,) = sweep_units_parallel(
            solver, units, 2000, n_jobs=1, backoff_seconds=0.0
        )
        assert result.error is not None
        assert result.statuses == [UNKNOWN] * len(unit.candidates)
        assert result.sat_queries == 0

    def test_lost_units_surface_in_engine_stats_and_trace(self, monkeypatch):
        # Engine level: dying workers must show up as contained failures
        # (telemetry counters, sweep unknowns, lost-unit instants) while
        # the verdict stays identical to the serial run.
        plain = check_equivalence(xor_chain(16), xor_tree(16))
        FailingSolver.calls = 0
        FailingSolver.fail_after = 1  # die mid-candidate, retries too
        monkeypatch.setattr(parallel, "Solver", FailingSolver)
        tracer = Tracer(sink=[])
        faulty = check_equivalence(
            xor_chain(16), xor_tree(16), n_jobs=4, tracer=tracer
        )
        tracer.close()
        assert faulty.verdict is plain.verdict
        assert faulty.stats["worker_failures"] > 0
        assert faulty.stats["units_requeued"] > 0
        assert faulty.stats["sweep_unknown"] > 0
        lost = [
            e
            for e in tracer.events
            if e["type"] == "instant" and e["name"] == "sweep.unit.lost"
        ]
        assert len(lost) == faulty.stats["n_units"]
        assert validate_events(tracer.events) == []
