"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Mapping, Sequence

import pytest

from repro.netlist.build import CircuitBuilder
from repro.netlist.circuit import Circuit


def all_input_sequences(circuit: Circuit, length: int):
    """Every input sequence of the given length (small circuits only)."""
    names = list(circuit.inputs)
    single = [dict(zip(names, bits)) for bits in itertools.product([False, True], repeat=len(names))]
    return itertools.product(single, repeat=length)


def random_sequences(circuit: Circuit, count: int, length: int, seed: int = 0):
    rng = random.Random(seed)
    names = list(circuit.inputs)
    out = []
    for _ in range(count):
        out.append(
            [{n: rng.random() < 0.5 for n in names} for _ in range(length)]
        )
    return out


@pytest.fixture
def builder():
    return CircuitBuilder("test")
