"""The stable repro.api facade: schema, exit codes, deprecation shims.

Covers satellite guarantees of the API redesign:

* ``VerifyRequest`` / ``VerifyReport`` round-trip through their JSON
  dict forms (the manifest-row / result-store schemas);
* fingerprints are content-addressed (names and engine knobs don't
  matter, verdict-relevant options do);
* every result type emits exactly the canonical ``RESULT_KEYS`` set and
  satisfies the :class:`repro.api.VerificationResult` protocol;
* the exit-code contract (0 / 1 / 2, INCONCLUSIVE → 2);
* the deprecated ``cec_cache=`` spelling warns but still works.
"""

from __future__ import annotations

import json
import warnings

import pytest

import repro
from repro.api import (
    EXIT_EQUIVALENT,
    EXIT_NOT_EQUIVALENT,
    EXIT_UNKNOWN,
    RESULT_KEYS,
    REASON_INCONCLUSIVE,
    VerificationResult,
    VerifyReport,
    VerifyRequest,
    exit_code_for_verdict,
    verify_pair,
)
from repro.bench.pipeline import pipeline_circuit
from repro.cec.engine import check_equivalence
from repro.core.verify import SeqVerdict, check_sequential_equivalence
from repro.netlist.blif import write_blif


@pytest.fixture(scope="module")
def pair(tmp_path_factory):
    """BLIF paths of an equivalent (golden, retimed+resynthesised) pair.

    The revision is structurally different enough that the CEC engine
    must do real SAT work — budget and proof-cache behaviour is
    observable, unlike an identical or merely retimed copy.
    """
    from repro.retime.apply import retime_min_period
    from repro.synth.script import optimize_sequential_delay

    tmp = tmp_path_factory.mktemp("facade")
    golden = pipeline_circuit(stages=2, width=3, seed=1, name="g")
    revised, _, _ = retime_min_period(golden)
    revised = optimize_sequential_delay(revised, "medium", name="r")
    gp, rp = tmp / "g.blif", tmp / "r.blif"
    gp.write_text(write_blif(golden))
    rp.write_text(write_blif(revised))
    return str(gp), str(rp)


class TestRequestRoundTrip:
    def test_to_from_dict(self, pair):
        request = VerifyRequest(
            golden=pair[0],
            revised=pair[1],
            name="row",
            priority=3,
            event_rewrite=True,
            time_limit=5.0,
            metadata={"suite": "unit"},
        )
        data = json.loads(json.dumps(request.to_dict()))
        back = VerifyRequest.from_dict(data)
        assert back.name == "row"
        assert back.priority == 3
        assert back.event_rewrite is True
        assert back.time_limit == 5.0
        assert back.metadata == {"suite": "unit"}
        assert back.fingerprint() == request.fingerprint()

    def test_inline_circuits_round_trip(self):
        circuit = pipeline_circuit(stages=1, width=2, seed=0, name="inline")
        request = VerifyRequest(golden=circuit, revised=circuit)
        data = request.to_dict()
        assert "golden_blif" in data and "revised_blif" in data
        back = VerifyRequest.from_dict(data)
        assert back.fingerprint() == request.fingerprint()

    def test_unknown_keys_rejected(self, pair):
        with pytest.raises(ValueError, match="unknown"):
            VerifyRequest.from_dict(
                {"golden": pair[0], "revised": pair[1], "time_limt": 3}
            )

    def test_base_dir_resolves_relative_paths(self, pair, tmp_path):
        import os

        base = os.path.dirname(pair[0])
        request = VerifyRequest.from_dict(
            {"golden": "g.blif", "revised": "r.blif"}, base_dir=base
        )
        assert request.load()[0].name == "g"

    def test_default_name_derivation(self, pair):
        request = VerifyRequest(golden=pair[0], revised=pair[1])
        assert request.name == "g~r"


class TestFingerprint:
    def test_name_and_engine_knobs_do_not_change_it(self, pair):
        a = VerifyRequest(golden=pair[0], revised=pair[1], name="a", jobs=4)
        b = VerifyRequest(
            golden=pair[0], revised=pair[1], name="b", time_limit=1.0
        )
        assert a.fingerprint() == b.fingerprint()

    def test_verdict_relevant_options_change_it(self, pair):
        a = VerifyRequest(golden=pair[0], revised=pair[1])
        b = VerifyRequest(golden=pair[0], revised=pair[1], event_rewrite=True)
        assert a.fingerprint() != b.fingerprint()

    def test_different_circuits_change_it(self, pair):
        a = VerifyRequest(golden=pair[0], revised=pair[1])
        b = VerifyRequest(golden=pair[0], revised=pair[0])
        assert a.fingerprint() != b.fingerprint()


class TestResultProtocol:
    def test_seq_result_canonical_keys(self):
        circuit = pipeline_circuit(stages=1, width=2, seed=0)
        result = check_sequential_equivalence(circuit, circuit)
        assert isinstance(result, VerificationResult)
        assert tuple(result.as_dict().keys()) == RESULT_KEYS

    def test_cec_result_canonical_keys(self):
        from repro.bench.random_circuits import random_combinational

        circuit = random_combinational(n_inputs=3, n_gates=8, seed=0)
        result = check_equivalence(circuit, circuit)
        assert isinstance(result, VerificationResult)
        assert tuple(result.as_dict().keys()) == RESULT_KEYS

    def test_report_includes_canonical_keys(self, pair):
        report = verify_pair(pair[0], pair[1])
        data = report.as_dict()
        for key in RESULT_KEYS:
            assert key in data
        back = VerifyReport.from_dict(json.loads(json.dumps(data)))
        assert back.verdict == report.verdict
        assert back.stats == report.stats
        assert back.fingerprint == report.fingerprint


class TestExitCodeContract:
    def test_mapping(self):
        assert exit_code_for_verdict(SeqVerdict.EQUIVALENT) == EXIT_EQUIVALENT
        assert (
            exit_code_for_verdict(SeqVerdict.NOT_EQUIVALENT)
            == EXIT_NOT_EQUIVALENT
        )
        assert exit_code_for_verdict(SeqVerdict.UNKNOWN) == EXIT_UNKNOWN
        # The bugfix: a conservative EDBF mismatch is "could not decide",
        # not a refutation — it must exit 2, not 1.
        assert exit_code_for_verdict(SeqVerdict.INCONCLUSIVE) == EXIT_UNKNOWN
        assert exit_code_for_verdict("equivalent") == 0

    def test_inconclusive_report_reason(self):
        report = VerifyReport.from_result(
            _FakeResult(SeqVerdict.INCONCLUSIVE.value)
        )
        assert report.verdict == "inconclusive"
        assert report.reason == REASON_INCONCLUSIVE
        assert report.exit_code == EXIT_UNKNOWN
        assert not report.decided

    def test_verify_pair_exit_codes(self, pair):
        assert verify_pair(pair[0], pair[1]).exit_code == EXIT_EQUIVALENT
        budget_starved = verify_pair(pair[0], pair[1], time_limit=0.0)
        assert budget_starved.exit_code == EXIT_UNKNOWN
        assert budget_starved.reason is not None

    def test_cli_inconclusive_exits_2(self, tmp_path, monkeypatch, capsys):
        # Drive the real CLI while forcing an INCONCLUSIVE verdict at the
        # facade boundary: the printed verdict and exit code must follow
        # the documented contract.
        from repro import cli

        report = VerifyReport.from_result(
            _FakeResult(SeqVerdict.INCONCLUSIVE.value)
        )
        monkeypatch.setattr(
            "repro.api.check_sequential_equivalence",
            lambda *a, **k: _FakeResult(SeqVerdict.INCONCLUSIVE.value),
        )
        golden = tmp_path / "g.blif"
        golden.write_text(
            write_blif(pipeline_circuit(stages=1, width=2, seed=0))
        )
        rc = cli.main(["verify", str(golden), str(golden)])
        out = capsys.readouterr().out
        assert rc == 2
        assert "inconclusive" in out
        assert report.reason in out


class _FakeResult:
    """Minimal object satisfying the VerificationResult protocol."""

    def __init__(self, verdict: str):
        self.verdict = verdict
        self.reason = None
        self.failing_output = None

    @property
    def equivalent(self) -> bool:
        return self.verdict == "equivalent"

    def as_dict(self):
        return {
            "verdict": self.verdict,
            "method": "fake",
            "reason": self.reason,
            "counterexample": None,
            "failing_output": self.failing_output,
            "stats": {},
        }


class TestDeprecationShims:
    def test_cec_cache_kwarg_warns_and_forwards(self, pair):
        from repro.cec.cache import ProofCache
        from repro.netlist.blif import parse_blif_file

        golden = parse_blif_file(pair[0])
        revised = parse_blif_file(pair[1])
        cache = ProofCache()
        with pytest.warns(DeprecationWarning, match="cec_cache"):
            result = check_sequential_equivalence(
                golden, revised, cec_cache=cache
            )
        assert result.equivalent
        with pytest.warns(DeprecationWarning):
            warm = check_sequential_equivalence(
                golden, revised, cec_cache=cache
            )
        assert warm.stats.get("cec_cache_hits", 0) > 0

    def test_new_spelling_does_not_warn(self):
        circuit = pipeline_circuit(stages=1, width=2, seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = check_sequential_equivalence(circuit, circuit, cache=None)
        assert result.equivalent

    def test_request_cec_cache_kwarg_warns_and_maps(self, pair, tmp_path):
        cache_path = str(tmp_path / "proofs.json")
        with pytest.warns(DeprecationWarning, match="cec_cache"):
            request = VerifyRequest(
                golden=pair[0], revised=pair[1], cec_cache=cache_path
            )
        assert request.cache == cache_path

    def test_request_new_spelling_is_warning_clean(self, pair, tmp_path):
        # The satellite contract: constructing with the new spelling must
        # survive ``PYTHONWARNINGS=error::DeprecationWarning``.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            request = VerifyRequest(
                golden=pair[0],
                revised=pair[1],
                cache=str(tmp_path / "proofs.json"),
                engines=["sat"],
                dispatch_policy="heuristic",
            )
        assert request.engines == ["sat"]

    def test_request_explicit_cache_wins_over_shim(self, pair):
        with pytest.warns(DeprecationWarning):
            request = VerifyRequest(
                golden=pair[0],
                revised=pair[1],
                cache="keep.json",
                cec_cache="ignored.json",
            )
        assert request.cache == "keep.json"


class TestEngineDispatchKnobs:
    """Satellite 1: engines / dispatch_policy on the request and report."""

    def test_engines_string_normalised_to_list(self, pair):
        request = VerifyRequest(
            golden=pair[0], revised=pair[1], engines="sim, sat"
        )
        assert request.engines == ["sim", "sat"]

    def test_round_trip_preserves_dispatch_fields(self, pair, tmp_path):
        request = VerifyRequest(
            golden=pair[0],
            revised=pair[1],
            engines=["structural", "sat"],
            dispatch_policy="heuristic",
            dispatch_store=str(tmp_path / "outcomes.json"),
        )
        data = json.loads(json.dumps(request.to_dict()))
        back = VerifyRequest.from_dict(data)
        assert back.engines == ["structural", "sat"]
        assert back.dispatch_policy == "heuristic"
        assert back.dispatch_store == str(tmp_path / "outcomes.json")

    def test_dispatch_knobs_do_not_change_fingerprint(self, pair):
        base = VerifyRequest(golden=pair[0], revised=pair[1])
        tweaked = VerifyRequest(
            golden=pair[0],
            revised=pair[1],
            engines=["structural", "sim", "bdd", "sat"],
            dispatch_policy="heuristic",
            dispatch_store="outcomes.json",
        )
        assert base.fingerprint() == tweaked.fingerprint()

    def test_report_engine_used_breakdown(self, pair):
        report = verify_pair(pair[0], pair[1])
        assert report.engine_used  # some engine decided something
        assert all(
            isinstance(count, int) and count >= 0
            for count in report.engine_used.values()
        )
        data = json.loads(json.dumps(report.as_dict()))
        assert VerifyReport.from_dict(data).engine_used == report.engine_used

    def test_heuristic_policy_same_verdict(self, pair):
        default = verify_pair(pair[0], pair[1])
        heuristic = verify_pair(
            pair[0], pair[1], dispatch_policy="heuristic"
        )
        assert heuristic.verdict == default.verdict

    def test_sat_only_portfolio_through_facade(self, pair):
        report = verify_pair(pair[0], pair[1], engines=["sat"])
        assert report.exit_code == EXIT_EQUIVALENT
        assert set(report.engine_used) <= {"sat"}


class TestPackageSurface:
    def test_facade_reexported_from_repro(self):
        for name in (
            "VerifyRequest",
            "VerifyReport",
            "verify_pair",
            "verify_batch",
            "exit_code_for_verdict",
        ):
            assert hasattr(repro, name)
            assert name in repro.__all__
