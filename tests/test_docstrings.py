"""Documentation meta-test: every public item must carry a docstring.

Deliverable (e) of the reproduction: public modules, classes, functions
and methods across the library are documented.  This test walks the
package and fails on any undocumented public item, so the guarantee can't
rot.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports documented at their origin
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def all_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        out.append(info.name)
    return out


@pytest.mark.parametrize("module_name", all_modules())
def test_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"module {module_name} lacks a docstring"
    missing = []
    for name, obj in _public_members(module):
        if not inspect.getdoc(obj):
            missing.append(f"{module_name}.{name}")
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(meth)
                    or isinstance(meth, (staticmethod, classmethod, property))
                ):
                    continue
                target = (
                    meth.__func__
                    if isinstance(meth, (staticmethod, classmethod))
                    else (meth.fget if isinstance(meth, property) else meth)
                )
                if target is None or not inspect.getdoc(target):
                    missing.append(f"{module_name}.{name}.{meth_name}")
    assert not missing, f"undocumented public items: {missing}"
