"""VCD writer tests."""

from __future__ import annotations

import pytest

from repro.netlist.build import CircuitBuilder
from repro.sim.vcd import dump_counterexample, simulate_to_vcd, trace_to_vcd


class TestTraceToVcd:
    def test_header_and_vars(self):
        text = trace_to_vcd(["a", "b"], [{"a": True, "b": False}])
        assert "$enddefinitions" in text
        assert "$var wire 1" in text
        assert text.count("$var") == 2

    def test_only_changes_emitted(self):
        rows = [
            {"a": False},
            {"a": False},  # no change
            {"a": True},
        ]
        text = trace_to_vcd(["a"], rows)
        # initial 0, then one change to 1
        body = text.split("$enddefinitions $end")[1]
        assert body.count("0!") == 1
        assert body.count("1!") == 1

    def test_unknowns_are_x(self):
        text = trace_to_vcd(["a"], [{"a": None}])
        assert "x!" in text

    def test_many_signals_get_unique_ids(self):
        signals = [f"s{i}" for i in range(100)]
        text = trace_to_vcd(signals, [dict.fromkeys(signals, False)])
        ids = [
            line.split()[3]
            for line in text.splitlines()
            if line.startswith("$var")
        ]
        assert len(set(ids)) == 100


class TestSimulateToVcd:
    def test_full_dump(self, tmp_path, builder):
        (a,) = builder.inputs("a")
        q = builder.latch(builder.NOT(a), name="q")
        builder.output(q)
        path = tmp_path / "run.vcd"
        text = simulate_to_vcd(
            builder.circuit,
            [{"a": False}, {"a": True}, {"a": False}],
            {"q": False},
            path=path,
        )
        assert path.read_text() == text
        assert " a " in text and " q " in text

    def test_counterexample_dump(self, tmp_path):
        b1 = CircuitBuilder("g")
        x, y = b1.inputs("x", "y")
        b1.output(b1.latch(b1.AND(x, y)), name="o")
        b2 = CircuitBuilder("i")
        x, y = b2.inputs("x", "y")
        b2.output(b2.latch(b2.OR(x, y)), name="o")
        seq = [{"x": True, "y": False}, {"x": False, "y": False}]
        path = tmp_path / "cex.vcd"
        text = dump_counterexample(b1.circuit, b2.circuit, seq, path)
        assert "o__impl" in text
        assert path.exists()
