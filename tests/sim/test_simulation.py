"""Simulator tests: 2-valued, conservative 3-valued, exact 3-valued."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.bench.counterex import fig1_pair
from repro.bench.random_circuits import random_acyclic_sequential
from repro.netlist.build import CircuitBuilder
from repro.sim.exact3 import BOT, exact3_equivalent, exact3_outputs
from repro.sim.logic2 import simulate, simulate_parallel
from repro.sim.logic3 import X, simulate3


class TestLogic2:
    def test_latch_delays_by_one(self, builder):
        (a,) = builder.inputs("a")
        builder.output(builder.latch(a), name="o")
        tr = simulate(
            builder.circuit,
            [{"a": True}, {"a": False}, {"a": True}],
            None,
        )
        assert [t["o"] for t in tr.outputs] == [False, True, False]

    def test_enabled_latch_holds(self, builder):
        d, e = builder.inputs("d", "e")
        builder.output(builder.latch(d, enable=e), name="o")
        vecs = [
            {"d": 1, "e": 1},  # loads 1
            {"d": 0, "e": 0},  # holds
            {"d": 0, "e": 1},  # loads 0
            {"d": 1, "e": 0},  # holds
        ]
        tr = simulate(builder.circuit, [{k: bool(v) for k, v in t.items()} for t in vecs], None)
        assert [t["o"] for t in tr.outputs] == [False, True, True, False]

    def test_parallel_matches_scalar(self):
        c = random_acyclic_sequential(seed=5, enabled=True)
        rng = random.Random(0)
        vecs = [{i: rng.random() < 0.5 for i in c.inputs} for _ in range(6)]
        init = {l: rng.random() < 0.5 for l in c.latches}
        scalar = simulate(c, vecs, init)
        words = [
            {i: (1 if vec[i] else 0) for i in c.inputs} for vec in vecs
        ]
        par = simulate_parallel(
            c, words, {l: (1 if v else 0) for l, v in init.items()}, 1
        )
        for t in range(6):
            for o in c.outputs:
                assert bool(par[t][o]) == scalar.outputs[t][o]

    def test_missing_input_raises(self, builder):
        (a,) = builder.inputs("a")
        builder.output(builder.BUF(a), name="o")
        with pytest.raises(KeyError):
            simulate_parallel(builder.circuit, [{}], {}, 1)


class TestLogic3:
    def test_x_propagates_conservatively(self, builder):
        a, b = builder.inputs("a", "b")
        builder.output(builder.AND(a, b), name="o")
        out = simulate3(builder.circuit, [{"a": X, "b": False}])
        assert out[0]["o"] is False  # AND with 0 kills X
        out = simulate3(builder.circuit, [{"a": X, "b": True}])
        assert out[0]["o"] is X

    def test_uncorrelated_x(self):
        """The Fig. 1 phenomenon: q XOR q is X for a 3-valued simulator."""
        fig1a, _ = fig1_pair()
        out = simulate3(fig1a, [{"i": False}])
        assert out[0]["o"] is X

    def test_known_powerup_resolves(self):
        fig1a, _ = fig1_pair()
        out = simulate3(fig1a, [{"i": False}], initial_state={"q": True})
        assert out[0]["o"] is False

    def test_enabled_latch_x_enable(self, builder):
        d, e = builder.inputs("d", "e")
        builder.output(builder.latch(d, enable=e), name="o")
        # cycle 0: X enable, data 1, held X -> next state X
        out = simulate3(
            builder.circuit, [{"d": True, "e": X}, {"d": True, "e": False}]
        )
        assert out[1]["o"] is X


class TestExact3:
    def test_fig1_is_defined(self):
        """Exact semantics correlates the two uses of the same latch."""
        fig1a, fig1b = fig1_pair()
        out = exact3_outputs(fig1a, [{"i": False}])
        assert out[0]["o"] is False
        assert exact3_equivalent(
            fig1a, fig1b, [[{"i": False}], [{"i": True}, {"i": False}]]
        )

    def test_undefined_before_flush(self, builder):
        (a,) = builder.inputs("a")
        builder.output(builder.latch(a, name="q"), name="o")
        out = exact3_outputs(builder.circuit, [{"a": True}, {"a": False}])
        assert out[0]["o"] is BOT  # still power-up dependent
        assert out[1]["o"] is True

    def test_exact3_differs_from_sim3(self, builder):
        """Conservative X where the exact value is defined."""
        (a,) = builder.inputs("a")
        q = builder.latch(a, name="q")
        builder.output(builder.OR(q, builder.NOT(q)), name="o")
        assert simulate3(builder.circuit, [{"a": False}])[0]["o"] is X
        assert exact3_outputs(builder.circuit, [{"a": False}])[0]["o"] is True

    def test_sampling_path_for_large_circuits(self):
        c = random_acyclic_sequential(
            n_latches=20, n_gates=30, seed=9
        )  # > enumeration limit
        out = exact3_outputs(c, [{i: False for i in c.inputs}], samples=64)
        assert set(out[0]) == set(c.outputs)

    def test_equivalence_rejects_different(self, builder):
        b2 = CircuitBuilder("other")
        (a,) = builder.inputs("a")
        builder.output(builder.latch(a), name="o")
        (a2,) = b2.inputs("a")
        b2.output(b2.latch(b2.NOT(a2)), name="o")
        seqs = [[{"a": True}, {"a": True}]]
        assert not exact3_equivalent(builder.circuit, b2.circuit, seqs)

    def test_io_mismatch_raises(self, builder):
        (a,) = builder.inputs("a")
        builder.output(a, name="o")
        b2 = CircuitBuilder("b2")
        b2.inputs("z")
        b2.output("z", name="o")
        with pytest.raises(ValueError):
            exact3_equivalent(builder.circuit, b2.circuit, [])
