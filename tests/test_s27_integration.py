"""Integration tests on the real s27 ISCAS'89 netlist.

s27 is public domain and small enough for *every* engine to handle
exhaustively: the two input formats must agree, the full paper flow must
run, and the combinational reduction must agree with the BDD reachability
baseline and with exhaustive simulation.
"""

from __future__ import annotations

import itertools
import random
from pathlib import Path

import pytest

from repro.core.expose import choose_latches_to_expose, prepare_circuit
from repro.core.verify import SeqVerdict, check_sequential_equivalence
from repro.flows.flow import run_flow
from repro.netlist.bench_format import parse_bench_file
from repro.netlist.blif import parse_blif_file
from repro.netlist.graph import feedback_latches
from repro.netlist.validate import validate_circuit
from repro.retime.apply import retime_min_period
from repro.sim.exact3 import exact3_equivalent
from repro.sim.logic2 import simulate
from repro.synth.script import optimize_sequential_delay

DATA = Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def s27_bench():
    c = parse_bench_file(DATA / "s27.bench")
    validate_circuit(c)
    return c


@pytest.fixture(scope="module")
def s27_blif():
    c = parse_blif_file(DATA / "s27.blif")
    validate_circuit(c)
    return c


class TestFormatsAgree:
    def test_same_structure(self, s27_bench, s27_blif):
        assert set(s27_bench.inputs) == set(s27_blif.inputs)
        assert set(s27_bench.outputs) == set(s27_blif.outputs)
        assert set(s27_bench.latches) == set(s27_blif.latches)

    def test_same_behaviour(self, s27_bench, s27_blif):
        rng = random.Random(0)
        for _ in range(20):
            seq = [
                {i: rng.random() < 0.5 for i in s27_bench.inputs}
                for _ in range(8)
            ]
            init = {l: rng.random() < 0.5 for l in s27_bench.latches}
            t1 = simulate(s27_bench, seq, init)
            t2 = simulate(s27_blif, seq, init)
            assert t1.outputs == t2.outputs

    def test_sequentially_equivalent(self, s27_bench, s27_blif):
        result = check_sequential_equivalence(s27_bench, s27_blif)
        assert result.equivalent


class TestS27Structure:
    def test_has_feedback(self, s27_bench):
        assert feedback_latches(s27_bench)  # s27's FSM loops

    def test_exposure(self, s27_bench):
        exposed, remodel = choose_latches_to_expose(
            s27_bench, use_unateness=False
        )
        assert 1 <= len(exposed) <= 3
        prepared = prepare_circuit(s27_bench, use_unateness=False)
        assert not feedback_latches(prepared.circuit)


class TestS27Flow:
    def test_full_paper_flow(self, s27_bench):
        result = run_flow(s27_bench)
        assert result.verify_verdict is SeqVerdict.EQUIVALENT
        assert result.latches_a == 3
        assert result.delay["C"] <= result.delay["D"]

    def test_synth_and_retime_equivalent_by_all_oracles(self, s27_bench):
        prepared = prepare_circuit(s27_bench, use_unateness=False).circuit
        optimised = optimize_sequential_delay(prepared)
        retimed, _, _ = retime_min_period(optimised)
        # 1. the paper's reduction
        assert check_sequential_equivalence(prepared, retimed).equivalent
        # 2. unknown-past simulation oracle (exhaustive power-up, random seqs)
        rng = random.Random(1)
        seqs = [
            [{i: rng.random() < 0.5 for i in prepared.inputs} for _ in range(6)]
            for _ in range(30)
        ]
        assert exact3_equivalent(prepared, retimed, seqs, warmup=6)

    def test_reduction_agrees_with_reachability_baseline(self, s27_bench):
        from repro.seqver.reach import check_reset_equivalence

        prepared = prepare_circuit(s27_bench, use_unateness=False).circuit
        optimised = optimize_sequential_delay(prepared)
        ours = check_sequential_equivalence(prepared, optimised)
        base = check_reset_equivalence(prepared, optimised)
        assert ours.equivalent and base.equivalent
