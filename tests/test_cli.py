"""CLI tests (``python -m repro``)."""

from __future__ import annotations

import pytest

from repro.bench.counterex import fig14_conditional_update
from repro.bench.pipeline import pipeline_circuit
from repro.cli import main
from repro.netlist.blif import parse_blif_file, write_blif
from repro.netlist.validate import validate_circuit


@pytest.fixture
def blif_file(tmp_path):
    circuit = pipeline_circuit(stages=2, width=3, seed=5)
    path = tmp_path / "demo.blif"
    path.write_text(write_blif(circuit))
    return path


class TestCli:
    def test_stats(self, blif_file, capsys):
        assert main(["stats", str(blif_file)]) == 0
        out = capsys.readouterr().out
        assert "unit-delay depth" in out
        assert "mapped" in out

    def test_retime_roundtrip(self, blif_file, tmp_path, capsys):
        out_path = tmp_path / "rt.blif"
        assert main(["retime", str(blif_file), "-o", str(out_path)]) == 0
        retimed = parse_blif_file(out_path)
        validate_circuit(retimed)
        assert main(["verify", str(blif_file), str(out_path)]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_min_area_retime(self, blif_file, tmp_path):
        out_path = tmp_path / "ma.blif"
        assert main(
            ["retime", str(blif_file), "-o", str(out_path), "--min-area"]
        ) == 0
        assert main(["verify", str(blif_file), str(out_path)]) == 0

    def test_synth_and_verify(self, blif_file, tmp_path, capsys):
        out_path = tmp_path / "opt.blif"
        assert main(["synth", str(blif_file), "-o", str(out_path)]) == 0
        assert main(["verify", str(blif_file), str(out_path)]) == 0

    def test_verify_detects_difference(self, blif_file, tmp_path, capsys):
        other = pipeline_circuit(stages=2, width=3, seed=6)
        # Rename I/O to match the golden circuit's names.
        other_path = tmp_path / "other.blif"
        other_path.write_text(write_blif(other))
        rc = main(["verify", str(blif_file), str(other_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "not_equivalent" in out
        assert "counterexample" in out

    def test_expose_reports(self, tmp_path, capsys):
        circuit = fig14_conditional_update(3)
        path = tmp_path / "cond.blif"
        path.write_text(write_blif(circuit))
        assert main(["expose", str(path)]) == 0
        out = capsys.readouterr().out
        assert "to remodel (positive unate): 3" in out

    def test_expose_weighted_writes_prepared(self, tmp_path, capsys):
        circuit = fig14_conditional_update(2)
        path = tmp_path / "cond.blif"
        out_path = tmp_path / "prep.blif"
        path.write_text(write_blif(circuit))
        assert main(
            [
                "expose",
                str(path),
                "--weighted",
                "--no-unate",
                "-o",
                str(out_path),
            ]
        ) == 0
        prepared = parse_blif_file(out_path)
        validate_circuit(prepared)
        from repro.netlist.graph import feedback_latches

        assert not feedback_latches(prepared)


class TestWeightedExposure:
    def test_weighted_prefers_cheap_latches(self):
        """Two latches in a ring; the one with the big cone should be kept."""
        from repro.core.expose import choose_latches_to_expose
        from repro.netlist.build import CircuitBuilder

        b = CircuitBuilder("ring")
        ins = b.inputs(*[f"i{k}" for k in range(6)])
        b.circuit.add_latch("cheap", "d_cheap")
        b.circuit.add_latch("costly", "d_costly")
        # cheap's cone: one gate; costly's cone: a large tree.
        b.XOR("costly", ins[0], name="d_cheap")
        big = b.AND(*ins[:3])
        big2 = b.OR(*ins[3:])
        big3 = b.XOR(big, big2)
        big4 = b.AND(big3, ins[1])
        b.XOR("cheap", big4, name="d_costly")
        b.output("costly", name="o")
        exposed, _ = choose_latches_to_expose(
            b.circuit, use_unateness=False, strategy="weighted"
        )
        assert exposed == {"cheap"}

    def test_unknown_strategy_raises(self):
        from repro.core.expose import choose_latches_to_expose
        from repro.bench.pipeline import pipeline_circuit

        with pytest.raises(ValueError):
            choose_latches_to_expose(
                pipeline_circuit(seed=1), strategy="nope"
            )
