"""CLI tests (``python -m repro``)."""

from __future__ import annotations

import pytest

from repro.bench.counterex import fig14_conditional_update
from repro.bench.pipeline import pipeline_circuit
from repro.cli import main
from repro.netlist.blif import parse_blif_file, write_blif
from repro.netlist.validate import validate_circuit


@pytest.fixture
def blif_file(tmp_path):
    circuit = pipeline_circuit(stages=2, width=3, seed=5)
    path = tmp_path / "demo.blif"
    path.write_text(write_blif(circuit))
    return path


class TestCli:
    def test_stats(self, blif_file, capsys):
        assert main(["stats", str(blif_file)]) == 0
        out = capsys.readouterr().out
        assert "unit-delay depth" in out
        assert "mapped" in out

    def test_retime_roundtrip(self, blif_file, tmp_path, capsys):
        out_path = tmp_path / "rt.blif"
        assert main(["retime", str(blif_file), "-o", str(out_path)]) == 0
        retimed = parse_blif_file(out_path)
        validate_circuit(retimed)
        assert main(["verify", str(blif_file), str(out_path)]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_min_area_retime(self, blif_file, tmp_path):
        out_path = tmp_path / "ma.blif"
        assert main(
            ["retime", str(blif_file), "-o", str(out_path), "--min-area"]
        ) == 0
        assert main(["verify", str(blif_file), str(out_path)]) == 0

    def test_synth_and_verify(self, blif_file, tmp_path, capsys):
        out_path = tmp_path / "opt.blif"
        assert main(["synth", str(blif_file), "-o", str(out_path)]) == 0
        assert main(["verify", str(blif_file), str(out_path)]) == 0

    def test_verify_detects_difference(self, blif_file, tmp_path, capsys):
        other = pipeline_circuit(stages=2, width=3, seed=6)
        # Rename I/O to match the golden circuit's names.
        other_path = tmp_path / "other.blif"
        other_path.write_text(write_blif(other))
        rc = main(["verify", str(blif_file), str(other_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "not_equivalent" in out
        assert "counterexample" in out

    def test_expose_reports(self, tmp_path, capsys):
        circuit = fig14_conditional_update(3)
        path = tmp_path / "cond.blif"
        path.write_text(write_blif(circuit))
        assert main(["expose", str(path)]) == 0
        out = capsys.readouterr().out
        assert "to remodel (positive unate): 3" in out

    def test_expose_weighted_writes_prepared(self, tmp_path, capsys):
        circuit = fig14_conditional_update(2)
        path = tmp_path / "cond.blif"
        out_path = tmp_path / "prep.blif"
        path.write_text(write_blif(circuit))
        assert main(
            [
                "expose",
                str(path),
                "--weighted",
                "--no-unate",
                "-o",
                str(out_path),
            ]
        ) == 0
        prepared = parse_blif_file(out_path)
        validate_circuit(prepared)
        from repro.netlist.graph import feedback_latches

        assert not feedback_latches(prepared)


class TestWeightedExposure:
    def test_weighted_prefers_cheap_latches(self):
        """Two latches in a ring; the one with the big cone should be kept."""
        from repro.core.expose import choose_latches_to_expose
        from repro.netlist.build import CircuitBuilder

        b = CircuitBuilder("ring")
        ins = b.inputs(*[f"i{k}" for k in range(6)])
        b.circuit.add_latch("cheap", "d_cheap")
        b.circuit.add_latch("costly", "d_costly")
        # cheap's cone: one gate; costly's cone: a large tree.
        b.XOR("costly", ins[0], name="d_cheap")
        big = b.AND(*ins[:3])
        big2 = b.OR(*ins[3:])
        big3 = b.XOR(big, big2)
        big4 = b.AND(big3, ins[1])
        b.XOR("cheap", big4, name="d_costly")
        b.output("costly", name="o")
        exposed, _ = choose_latches_to_expose(
            b.circuit, use_unateness=False, strategy="weighted"
        )
        assert exposed == {"cheap"}

    def test_unknown_strategy_raises(self):
        from repro.core.expose import choose_latches_to_expose
        from repro.bench.pipeline import pipeline_circuit

        with pytest.raises(ValueError):
            choose_latches_to_expose(
                pipeline_circuit(seed=1), strategy="nope"
            )


def _minmax_pair(tmp_path):
    """A feedback-heavy pair that reaches the CEC sweep (EDBF path)."""
    from repro.bench.minmax import minmax_circuit
    from repro.synth.script import optimize_sequential_delay

    golden = minmax_circuit(4)
    revised = optimize_sequential_delay(golden)
    golden_path = tmp_path / "mm_g.blif"
    revised_path = tmp_path / "mm_r.blif"
    golden_path.write_text(write_blif(golden))
    revised_path.write_text(write_blif(revised))
    return str(golden_path), str(revised_path)


class TestFleetCli:
    """The telemetry-era commands: status, bench compare, new flags."""

    def test_verify_oblog_writes_feature_records(
        self, blif_file, tmp_path, capsys
    ):
        from repro.obs.oblog import read_obligation_log

        golden_path, revised_path = _minmax_pair(tmp_path)
        out = tmp_path / "ob.jsonl"
        assert main(
            ["verify", golden_path, revised_path, "--oblog", str(out)]
        ) == 0
        records = read_obligation_log(out)
        assert records
        assert all(r.engine is not None for r in records)
        assert "obligation record(s)" in capsys.readouterr().out

    def test_batch_telemetry_and_oblog(self, blif_file, tmp_path, capsys):
        import json

        from repro.obs.oblog import read_obligation_log
        from repro.obs.telemetry import read_snapshots, validate_snapshots

        golden_path, revised_path = _minmax_pair(tmp_path)
        manifest = tmp_path / "m.json"
        manifest.write_text(
            json.dumps(
                {
                    "version": 1,
                    "jobs": [
                        {
                            "name": "a",
                            "golden": golden_path,
                            "revised": revised_path,
                        }
                    ],
                }
            )
        )
        snap_path = tmp_path / "snap.jsonl"
        ob_path = tmp_path / "ob.jsonl"
        assert main(
            [
                "batch",
                str(manifest),
                "--in-process",
                "--telemetry",
                str(snap_path),
                "--telemetry-interval",
                "0.2",
                "--oblog",
                str(ob_path),
            ]
        ) == 0
        snapshots = read_snapshots(snap_path)
        assert snapshots and validate_snapshots(snapshots) == []
        assert snapshots[-1]["source"] == "batch"
        assert snapshots[-1]["jobs"]["done"] == 1
        assert read_obligation_log(ob_path)

    def test_status_against_live_server(self, blif_file, capsys):
        import asyncio
        import threading

        from repro.service import BatchRunner, TcpServer

        started = threading.Event()
        stop = None
        loop_holder = {}
        port_holder = {}

        def serve():
            async def run():
                nonlocal stop
                runner = BatchRunner(jobs=1, use_processes=False, retries=0)
                server = TcpServer(runner, port=0)
                await server.start()
                port_holder["port"] = server.port
                stop = asyncio.Event()
                loop_holder["loop"] = asyncio.get_running_loop()
                started.set()
                await stop.wait()
                await server.aclose()

            asyncio.run(run())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(10.0), "server did not start"
        try:
            rc = main(["status", f"127.0.0.1:{port_holder['port']}"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "repro fleet [serve]" in out
            assert "queue" in out
            rc = main(
                ["status", f"127.0.0.1:{port_holder['port']}", "--json"]
            )
            out = capsys.readouterr().out
            assert rc == 0
            assert '"type": "snapshot"' in out
        finally:
            loop_holder["loop"].call_soon_threadsafe(stop.set)
            thread.join(10.0)

    def test_status_connection_refused(self, capsys):
        assert main(["status", "127.0.0.1:1"]) == 2
        assert "connection failed" in capsys.readouterr().err

    def test_bench_compare_pass_and_fail(self, tmp_path, capsys):
        import json

        base = {
            "totals": {"serial": {"sat_queries": 100, "seconds": 1.0}},
            "verdict_divergences": [],
        }
        base_path = tmp_path / "base.json"
        base_path.write_text(json.dumps(base))
        assert main(
            ["bench", "compare", str(base_path), "--baseline", str(base_path)]
        ) == 0
        assert "PASS" in capsys.readouterr().out

        worse = json.loads(json.dumps(base))
        worse["totals"]["serial"]["sat_queries"] = 130  # +30%
        worse_path = tmp_path / "worse.json"
        worse_path.write_text(json.dumps(worse))
        json_out = tmp_path / "cmp.json"
        rc = main(
            [
                "bench",
                "compare",
                str(worse_path),
                "--baseline",
                str(base_path),
                "--json",
                str(json_out),
            ]
        )
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out
        verdict = json.loads(json_out.read_text())
        assert verdict["passed"] is False
        # A looser explicit threshold lets the same report through.
        assert main(
            [
                "bench",
                "compare",
                str(worse_path),
                "--baseline",
                str(base_path),
                "--threshold",
                "sat_queries=50",
            ]
        ) == 0

    def test_bench_compare_bad_inputs(self, tmp_path, capsys):
        assert main(
            ["bench", "compare", str(tmp_path / "missing.json")]
        ) == 2
        bad = tmp_path / "bad.json"
        bad.write_text('{"no_totals": 1}')
        assert main(["bench", "compare", str(bad), "--baseline", str(bad)]) == 2

    def test_serve_prom_port_requires_tcp(self, capsys):
        assert main(["serve", "--prom-port", "9999"]) == 2
        assert "--prom-port requires --tcp" in capsys.readouterr().err
