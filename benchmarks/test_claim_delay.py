"""Claim 8.1(1) — retiming + synthesis (C) beats combinational-only (D).

The paper observes delay reductions of up to ~50% with negligible area
penalty.  We sweep the minmax family and the pipeline generator and assert
the *shape*: C's mapped delay ≤ D's on every circuit, with strict
improvement somewhere in the sweep, and C's area within 15% of D's.
"""

from __future__ import annotations

import pytest

from repro.bench.minmax import minmax_circuit
from repro.bench.pipeline import pipeline_circuit
from repro.flows.flow import run_flow
from repro.flows.report import render_table


@pytest.mark.parametrize("k", [4, 8, 10])
def test_minmax_family_delay(benchmark, k):
    circuit = minmax_circuit(k)
    result = benchmark.pedantic(
        run_flow, args=(circuit,), kwargs={"verify": False}, rounds=1, iterations=1
    )
    assert result.delay["C"] <= result.delay["D"]
    area_ratio = result.normalised_area("C")
    assert area_ratio is not None and area_ratio <= 1.15


def test_delay_sweep_shape(benchmark, capsys):
    configs = [(2, 3, 1), (3, 4, 2), (2, 4, 3), (3, 3, 4)]

    def sweep():
        return [
            run_flow(
                pipeline_circuit(stages=s, width=w, seed=sd), verify=False
            )
            for s, w, sd in configs
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    improvements = []
    for result in results:
        rows.append(
            [
                result.name,
                result.delay.get("D"),
                result.delay.get("C"),
                result.normalised_area("C"),
            ]
        )
        assert result.delay["C"] <= result.delay["D"], result.name
        improvements.append(result.delay["D"] - result.delay["C"])
    assert any(i > 0 for i in improvements), "no circuit improved at all"
    with capsys.disabled():
        print()
        print(
            render_table(
                ["circuit", "D delay", "C delay", "C area"],
                rows,
                title="Claim 8.1(1): retime+synth vs combinational-only",
            )
        )
