"""Table 2 — latches exposed on industrial-style circuits.

Regenerates the paper's Table 2: the structural feedback analysis on the
Fig. 20-topology circuits must expose exactly the paper's counts (the
generators are parameterised to the same feedback regime), and the
positive-unateness refinement must never expose more.  The benchmarked
quantity is the analysis itself (graph construction + MFVS heuristic).
"""

from __future__ import annotations

import pytest

from repro.bench.industrial import TABLE2_CIRCUITS, build_table2_circuit
from repro.core.expose import choose_latches_to_expose
from repro.flows.table2 import format_table2, table2_row

_QUICK = [e[0] for e in TABLE2_CIRCUITS if e[1] <= 700]


@pytest.mark.parametrize("name", _QUICK)
def test_table2_analysis(benchmark, name):
    entry = next(e for e in TABLE2_CIRCUITS if e[0] == name)
    circuit = build_table2_circuit(name)

    exposed, _ = benchmark(
        choose_latches_to_expose, circuit, use_unateness=False
    )
    assert len(exposed) == entry[2], (name, len(exposed), entry[2])
    # Sec. 8.1(5): never more than ~50% needs exposing, as low as 2%.
    assert len(exposed) <= 0.62 * circuit.num_latches()


def test_table2_full(benchmark, full_tables, capsys):
    names = [e[0] for e in TABLE2_CIRCUITS] if full_tables else _QUICK
    rows = benchmark.pedantic(
        lambda: [table2_row(name) for name in names], rounds=1, iterations=1
    )
    for row in rows:
        assert row.exposed_structural == row.paper_exposed, row.name
        assert row.exposed_unate <= row.exposed_structural, row.name
    with capsys.disabled():
        print()
        print(format_table2(rows))
