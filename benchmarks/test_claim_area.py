"""Claim 8.1(2) — constrained min-area retiming recovers latches at D's delay.

The paper compares columns D and E: "for the same delay, retiming allows us
to reduce the area".  We assert E's latch count never exceeds D's and that
the latch-wall family shows a strict reduction.
"""

from __future__ import annotations

import pytest

from repro.bench.minmax import minmax_circuit
from repro.flows.flow import run_flow
from repro.flows.report import render_table
from repro.netlist.build import CircuitBuilder
from repro.retime.apply import retime_min_area
from repro.core.verify import check_sequential_equivalence


def latch_wall_circuit(width: int):
    """A register wall with mergeable fanout chains (area-recovery shape)."""
    b = CircuitBuilder(f"wall{width}")
    ins = b.input_bus("in", width)
    regs = [b.latch(x) for x in ins]
    layer = [b.NOT(r) for r in regs]
    regs2 = [b.latch(x) for x in layer]
    acc = regs2[0]
    for r in regs2[1:]:
        acc = b.AND(acc, r)
    b.output(acc, name="o")
    return b.circuit


@pytest.mark.parametrize("width", [4, 8, 12])
def test_min_area_recovers_latches(benchmark, width):
    circuit = latch_wall_circuit(width)
    base = circuit.num_latches()

    def run():
        return retime_min_area(circuit, period=None)

    retimed, period = benchmark(run)
    assert retimed is not None
    assert retimed.num_latches() < base  # strict recovery on this family
    assert check_sequential_equivalence(circuit, retimed).equivalent


def test_e_vs_d_on_minmax(benchmark, capsys):
    results = benchmark.pedantic(
        lambda: [run_flow(minmax_circuit(k), verify=False) for k in (4, 8)],
        rounds=1,
        iterations=1,
    )
    rows = []
    for k, result in zip((4, 8), results):
        rows.append(
            [
                f"minmax{k}",
                result.latches.get("D"),
                result.latches.get("E"),
                result.normalised_area("D"),
                result.normalised_area("E"),
            ]
        )
        assert result.latches["E"] <= result.latches["D"]
        assert result.delay["E"] <= result.delay["D"]
    with capsys.disabled():
        print()
        print(
            render_table(
                ["circuit", "D #L", "E #L", "D area", "E area"],
                rows,
                title="Claim 8.1(2): min-area retiming at D's delay",
            )
        )
