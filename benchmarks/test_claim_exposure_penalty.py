"""Claim 8.1(4) — the optimisation penalty of exposing latches is small.

The paper compares C vs F (min-period with/without exposure) and E vs G
(min-area at D's delay with/without exposure): "the penalty paid in terms
of reduced optimization capability was not significant in most of the
cases".  We assert C stays within a modest factor of F on both delay and
area across the sweep.
"""

from __future__ import annotations

import pytest

from repro.bench.iscas_like import build_table1_circuit
from repro.bench.minmax import minmax_circuit
from repro.flows.flow import run_flow
from repro.flows.report import render_table

_CIRCUITS = ["minmax10", "s400", "s641", "s953"]


@pytest.mark.parametrize("name", _CIRCUITS)
def test_exposure_penalty_small(benchmark, name):
    circuit = build_table1_circuit(name)
    result = benchmark.pedantic(
        run_flow, args=(circuit,), kwargs={"verify": False}, rounds=1, iterations=1
    )
    if "F" in result.delay:
        # Exposure may cost delay but by at most ~30% on this suite.
        assert result.delay["C"] <= max(result.delay["F"] * 1.3, result.delay["F"] + 2)
    if result.normalised_area("C") and result.normalised_area("F"):
        assert result.normalised_area("C") <= result.normalised_area("F") * 1.3


def test_penalty_table(benchmark, capsys):
    results = benchmark.pedantic(
        lambda: [
            run_flow(build_table1_circuit(name), verify=False)
            for name in _CIRCUITS
        ],
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, result in zip(_CIRCUITS, results):
        rows.append(
            [
                name,
                round(result.pct_exposed),
                result.delay.get("F"),
                result.delay.get("C"),
                result.normalised_area("F"),
                result.normalised_area("C"),
            ]
        )
    with capsys.disabled():
        print()
        print(
            render_table(
                ["circuit", "%exp", "F delay", "C delay", "F area", "C area"],
                rows,
                title="Claim 8.1(4): exposure penalty (C vs F)",
            )
        )
