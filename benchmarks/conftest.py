"""Shared fixtures for the benchmark harness.

Every benchmark prints the rows/series it regenerates, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's tables on stdout while pytest-benchmark records the
timing distributions.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-tables",
        action="store_true",
        default=False,
        help="run every Table 1/2 circuit (minutes) instead of the quick sets",
    )


@pytest.fixture(scope="session")
def full_tables(request):
    return request.config.getoption("--full-tables")
