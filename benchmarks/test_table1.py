"""Table 1 — sequential optimisation and verification results.

Regenerates the paper's Table 1 rows on the stand-in benchmark suite and
benchmarks the H-vs-J combinational verification step (the paper's "Time"
column).  The shape assertions encode Sec. 8.1's observations:

1. C (retime+synth) is never slower than D (combinational only);
2. E matches D's delay with no more latches than D (area recovery);
3. every verification returns EQUIVALENT;
4. the exposed-latch percentage matches the paper's % column.

Run with ``--full-tables`` for all 23 circuits (minutes); the default quick
set covers every circuit class in seconds.
"""

from __future__ import annotations

import pytest

from repro.bench.iscas_like import TABLE1_CIRCUITS
from repro.core.verify import SeqVerdict, check_sequential_equivalence
from repro.flows.flow import run_flow
from repro.flows.table1 import QUICK_SET, format_table1, table1_row

_PAPER_PCT = {name: pct for name, _, pct in TABLE1_CIRCUITS}

_collected = []


@pytest.mark.parametrize("name", QUICK_SET)
def test_table1_row(benchmark, name):
    """One Table 1 row; the benchmarked section is the verification."""
    from repro.bench.iscas_like import build_table1_circuit
    from repro.core.expose import prepare_circuit
    from repro.retime.apply import retime_min_period
    from repro.synth.script import optimize_sequential_delay

    circuit = build_table1_circuit(name)
    prep = prepare_circuit(circuit, use_unateness=False)
    b_circuit = prep.circuit
    c_circuit = optimize_sequential_delay(b_circuit)
    c_circuit, _, _ = retime_min_period(c_circuit)
    c_circuit = optimize_sequential_delay(c_circuit)

    result = benchmark(check_sequential_equivalence, b_circuit, c_circuit)
    assert result.verdict is SeqVerdict.EQUIVALENT

    pct = 100.0 * len(prep.exposed) / max(1, circuit.num_latches())
    assert abs(pct - _PAPER_PCT[name]) <= 6, (name, pct)


def test_table1_full_rows(benchmark, full_tables, capsys):
    """Regenerate the printed Table 1 (quick set by default)."""
    names = (
        [e[0] for e in TABLE1_CIRCUITS if e[1] <= 250]
        if full_tables
        else QUICK_SET
    )

    def build_rows():
        return [table1_row(name) for name in names]

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    better_or_equal = 0
    for name, row in zip(names, rows):
        assert row.verify_verdict is SeqVerdict.EQUIVALENT, name
        # Sec. 8.1(1) is "for most of the circuits": C must never be more
        # than one mapped level slower than D, and at least 80% of the
        # suite must be no slower at all.
        assert row.delay["C"] <= row.delay["D"] + 1, name
        if row.delay["C"] <= row.delay["D"]:
            better_or_equal += 1
    assert better_or_equal >= int(0.8 * len(rows)), better_or_equal
    with capsys.disabled():
        print()
        print(format_table1(rows))
    _collected.extend(rows)
