"""Claim 8.1(3) — combinational verification is fast; traversal is not.

The paper: "The verification times were quite reasonable... Note that, for
only few of these sequential circuits the state-space can be traversed, and
for fewer yet the state-space of the product machine can be traversed."

We benchmark the paper's reduction against the classic BDD product-machine
reachability baseline on a family of growing pipelines:

* the combinational reduction's time grows mildly with circuit size;
* the baseline's cost explodes with the state count (we cap it with a BDD
  node limit and record the crossover).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.pipeline import pipeline_circuit
from repro.core.verify import check_sequential_equivalence
from repro.flows.report import render_table
from repro.retime.apply import retime_min_period
from repro.seqver.reach import check_reset_equivalence
from repro.synth.script import optimize_sequential_delay


def _pair(stages, width, seed):
    circuit = pipeline_circuit(stages=stages, width=width, seed=seed)
    optimised = optimize_sequential_delay(circuit)
    retimed, _, _ = retime_min_period(optimised)
    return circuit, optimised, retimed


@pytest.mark.parametrize("width", [3, 5, 7])
def test_combinational_reduction_speed(benchmark, width):
    circuit, _, retimed = _pair(stages=3, width=width, seed=width)
    result = benchmark(check_sequential_equivalence, circuit, retimed)
    assert result.equivalent


def test_reduction_vs_traversal_crossover(benchmark, capsys):
    """Our check stays fast while the baseline blows past its node budget."""

    def sweep():
        rows = []
        baseline_died_at = None
        for width in (2, 3, 4, 6, 8):
            circuit, optimised, _ = _pair(stages=3, width=width, seed=width)
            t0 = time.perf_counter()
            ours = check_sequential_equivalence(circuit, optimised)
            ours_t = time.perf_counter() - t0
            assert ours.equivalent

            latches = circuit.num_latches()
            if baseline_died_at is None:
                t0 = time.perf_counter()
                try:
                    base = check_reset_equivalence(
                        circuit, optimised, node_limit=300_000
                    )
                    base_t = time.perf_counter() - t0
                    base_note = f"{base_t:.2f}s"
                    assert base.equivalent
                except MemoryError:
                    base_t = time.perf_counter() - t0
                    base_note = f">budget ({base_t:.2f}s)"
                    baseline_died_at = latches
            else:
                base_note = "skipped (already diverged)"
            rows.append(
                [f"pipe3x{width}", latches, f"{ours_t:.3f}s", base_note]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            render_table(
                ["circuit", "latches", "CBF reduction", "BDD traversal"],
                rows,
                title="Claim 8.1(3): verification time, reduction vs traversal",
            )
        )


def test_minmax_verification_under_a_minute(benchmark):
    """The paper's Table 1 point: most circuits verify in seconds."""
    from repro.bench.minmax import minmax_circuit
    from repro.core.expose import prepare_circuit

    circuit = minmax_circuit(10)
    prep = prepare_circuit(circuit, use_unateness=False)
    optimised = optimize_sequential_delay(prep.circuit)
    result = benchmark(
        check_sequential_equivalence, prep.circuit, optimised
    )
    assert result.equivalent
