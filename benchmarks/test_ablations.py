"""Ablation benches for the design choices DESIGN.md calls out.

* CEC with vs without SAT sweeping (the Kuehlmann-Krohm filter);
* exposure with vs without the positive-unateness refinement (the paper's
  "functional analysis would lead to reduced number of exposed latches");
* event-predicate canonicalisation on vs off (resynthesised enables);
* the min-area fanout-sharing cost model vs naive per-edge counting.
"""

from __future__ import annotations

import pytest

from repro.bench.counterex import fig14_conditional_update
from repro.bench.industrial import industrial_circuit
from repro.bench.random_circuits import random_combinational
from repro.cec.engine import check_equivalence
from repro.core.expose import choose_latches_to_expose
from repro.flows.report import render_table
from repro.synth.script import script_delay


class TestCecSweepAblation:
    @pytest.mark.parametrize("sweep", [True, False], ids=["sweep", "no-sweep"])
    def test_cec_sweep(self, benchmark, sweep):
        c1 = random_combinational(n_inputs=9, n_gates=80, seed=11)
        c2 = c1.copy("resynth")
        script_delay(c2)
        result = benchmark(check_equivalence, c1, c2, sweep=sweep)
        assert result.equivalent


class TestUnatenessAblation:
    def test_unateness_reduces_exposure(self, benchmark, capsys):
        """Fig. 14-style conditional-update latches: structural analysis
        exposes them all, the unate analysis exposes none."""

        def analyse():
            out = []
            for width in (4, 8):
                circuit = fig14_conditional_update(width)
                structural, _ = choose_latches_to_expose(
                    circuit, use_unateness=False
                )
                unate, remodel = choose_latches_to_expose(
                    circuit, use_unateness=True
                )
                out.append((width, structural, unate, remodel))
            return out

        rows = []
        for width, structural, unate, remodel in benchmark.pedantic(
            analyse, rounds=1, iterations=1
        ):
            rows.append([f"cond-update x{width}", len(structural), len(unate)])
            assert len(structural) == width
            assert len(unate) == 0
            assert len(remodel) == width
        with capsys.disabled():
            print()
            print(
                render_table(
                    ["circuit", "#exposed structural", "#exposed unate"],
                    rows,
                    title="Ablation: positive-unateness analysis (Sec. 6)",
                )
            )

    def test_unateness_analysis_cost(self, benchmark):
        circuit = industrial_circuit("abl", n_latches=120, n_exposed=40, seed=3)
        exposed, _ = benchmark(
            choose_latches_to_expose, circuit, use_unateness=True
        )
        assert len(exposed) <= 40


class TestPredicateCanonicalisationAblation:
    def test_resynthesised_enables_need_canonicalisation(self, benchmark):
        """Without semantic predicate merging, restructured enable cones
        produce different events and the EDBF check degrades to
        INCONCLUSIVE; with it (the default) the pair verifies."""
        from repro.core.edbf import compute_edbf
        from repro.core.events import EventContext
        from repro.netlist.build import CircuitBuilder

        def build(name, restructured):
            b = CircuitBuilder(name)
            a, c, d = b.inputs("a", "c", "d")
            if restructured:
                en = b.NOT(b.NAND(a, c))  # = a AND c, restructured
            else:
                en = b.AND(a, c)
            b.output(b.latch(d, enable=en), name="o")
            return b.circuit

        def compute_pair():
            ctx = EventContext()
            e1 = compute_edbf(build("c1", False), ctx)
            e2 = compute_edbf(build("c2", True), ctx)
            return e1, e2

        e1, e2 = benchmark(compute_pair)
        assert e1.outputs["o"] == e2.outputs["o"]  # canonicalised: same node


class TestMinAreaCostModel:
    def test_sharing_model_beats_naive_on_fanout(self, benchmark):
        """A register wall feeding multiple sinks: the sharing-aware LP must
        not inflate the latch count when retiming moves the wall."""
        from repro.netlist.build import CircuitBuilder
        from repro.retime.apply import retime_min_area

        b = CircuitBuilder("fan")
        (x,) = b.inputs("x")
        q = b.latch(x)
        sinks = [b.NOT(q) for _ in range(4)]
        acc = sinks[0]
        for s in sinks[1:]:
            acc = b.AND(acc, s)
        b.output(b.latch(acc), name="o")
        circuit = b.circuit

        retimed, _ = benchmark(retime_min_area, circuit, None)
        assert retimed is not None
        assert retimed.num_latches() <= circuit.num_latches()
