"""CEC refinement benchmark: SAT queries and wall time, refine on vs off.

Runs the sweep engine over a corpus of random-circuit pairs (resynthesised
equivalents, mutated near-misses, and unrelated pairs) under deliberately
narrow initial signatures — the regime where counterexample-guided
refinement matters — and writes ``BENCH_cec.json``:

* per-pair and aggregate ``sat_queries`` / wall time / refinement rounds,
  with refinement on and off, in serial and parallel (``n_jobs>1``) modes;
* a hard assertion that every configuration returns the same verdict on
  every pair (the acceptance criterion for the refinement loop).

Usage::

    PYTHONPATH=src python benchmarks/bench_cec.py [-o BENCH_cec.json]

Exit code 0 means all verdicts agreed; 1 means a divergence (the JSON is
still written for the post-mortem).
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List, Tuple

from repro.bench.mutations import sample_mutations
from repro.bench.random_circuits import random_combinational
from repro.cec.engine import check_equivalence
from repro.synth.script import script_delay

# One narrow 8-bit simulation round: plenty of spurious signature
# classes, which is exactly what refinement is for.
NARROW = dict(sim_rounds=1, sim_width=8)

MODES: List[Tuple[str, Dict]] = [
    ("refine_serial", dict(refine=True, n_jobs=1)),
    ("norefine_serial", dict(refine=False, n_jobs=1)),
    ("refine_parallel", dict(refine=True, n_jobs=4)),
    ("norefine_parallel", dict(refine=False, n_jobs=4)),
]


def corpus(n_random: int = 4, n_mutants: int = 3) -> List[Tuple[str, object, object]]:
    """(name, golden, revised) pairs: equivalent, mutated, and unrelated."""
    pairs = []
    for seed in range(n_random):
        c1 = random_combinational(n_inputs=9, n_gates=80, seed=seed)
        c2 = c1.copy("resynth")
        script_delay(c2)
        pairs.append((f"resynth_{seed}", c1, c2))
        other = random_combinational(
            n_inputs=9, n_gates=80, seed=seed + 101, name="other"
        )
        pairs.append((f"unrelated_{seed}", c1, other))
    base = random_combinational(n_inputs=9, n_gates=80, seed=77)
    for mutation, mutant in sample_mutations(base, n_mutants, seed=7):
        pairs.append((f"mutant_{mutation.kind}_{mutation.target}", base, mutant))
    return pairs


def run(pairs) -> Dict:
    rows = []
    totals = {name: {"sat_queries": 0, "seconds": 0.0} for name, _ in MODES}
    divergences = []
    for name, golden, revised in pairs:
        row = {"pair": name}
        verdicts = {}
        for mode, options in MODES:
            t0 = time.perf_counter()
            result = check_equivalence(golden, revised, **NARROW, **options)
            elapsed = time.perf_counter() - t0
            verdicts[mode] = result.verdict.value
            row[mode] = {
                "verdict": result.verdict.value,
                "sat_queries": int(result.stats["sat_queries"]),
                "seconds": round(elapsed, 4),
                "refine_rounds": int(result.stats["refine_rounds"]),
                "refine_patterns": int(result.stats["refine_patterns"]),
                "refine_saved": int(result.stats["refine_saved"]),
            }
            totals[mode]["sat_queries"] += int(result.stats["sat_queries"])
            totals[mode]["seconds"] += elapsed
        if len(set(verdicts.values())) != 1:
            divergences.append({"pair": name, "verdicts": verdicts})
        rows.append(row)
    for mode in totals:
        totals[mode]["seconds"] = round(totals[mode]["seconds"], 4)
    saved = (
        totals["norefine_serial"]["sat_queries"]
        - totals["refine_serial"]["sat_queries"]
    )
    return {
        "benchmark": "cec_refinement",
        "config": dict(NARROW),
        "pairs": rows,
        "totals": totals,
        "sat_queries_saved_by_refinement": saved,
        "verdict_divergences": divergences,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_cec.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    report = run(corpus())
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    totals = report["totals"]
    for mode, agg in totals.items():
        print(f"{mode:20s} sat_queries={agg['sat_queries']:6d} "
              f"seconds={agg['seconds']:.3f}")
    print(f"refinement saved {report['sat_queries_saved_by_refinement']} "
          f"SAT queries (serial)")
    if report["verdict_divergences"]:
        print(f"VERDICT DIVERGENCE on {len(report['verdict_divergences'])} "
              "pair(s) -- see JSON")
        return 1
    if report["sat_queries_saved_by_refinement"] <= 0:
        print("WARNING: refinement did not reduce SAT queries on this corpus")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
