"""CEC sweep benchmark: refine × preprocess × jobs matrix + sim throughput.

Runs the sweep engine over a corpus of random-circuit pairs (resynthesised
equivalents, mutated near-misses, and unrelated pairs) under deliberately
narrow initial signatures — the regime where counterexample-guided
refinement matters — and writes ``BENCH_cec.json``:

* per-pair and aggregate ``sat_queries`` / wall time / refinement rounds
  across the full mode matrix: refinement on/off × preprocessing on/off ×
  serial/parallel (``n_jobs>1``);
* a hard assertion that every configuration returns the same verdict on
  every pair (the acceptance criterion for refinement *and* for the
  pre-sweep AIG rewriting);
* preprocessing effect per pair (AND nodes before/after, nodes removed);
* simulation throughput (node-words per second) of the engine's
  signature hot path, old vs new: the pre-PR per-round scalar loop
  (one 64-bit ``simulate`` call plus a per-node concatenation pass per
  round) against the current single wide ``simulate_words`` call, on
  sweep-scale AIGs, plus the single-lane kernel-vs-scalar rate for the
  refinement-corpus regime.

Usage::

    PYTHONPATH=src python benchmarks/bench_cec.py [-o BENCH_cec.json]
                                                  [--dispatch-policy NAME]

``--dispatch-policy`` folds an engine-dispatch policy into every mode
(default ``cascade``, the historical ladder); running once per policy
and diffing the reports with ``repro bench compare`` is how policy
verdict-identity and SAT-query savings are gated in CI.

Exit code 0 means all verdicts agreed; 1 means a divergence (the JSON is
still written for the post-mortem).
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List, Tuple

from repro.aig import simkernel
from repro.bench.mutations import sample_mutations
from repro.bench.random_circuits import random_combinational
from repro.cec.engine import check_equivalence
from repro.cec.miter import build_miter
from repro.synth.script import script_delay

# One narrow 8-bit simulation round: plenty of spurious signature
# classes, which is exactly what refinement is for.
NARROW = dict(sim_rounds=1, sim_width=8)

#: Pairs that finish faster than this are re-timed best-of-N: below a
#: few milliseconds, interpreter warm-up and scheduler jitter dominate
#: the single-shot reading, which made small-pair ``seconds`` rows pure
#: noise for ``repro bench compare``.
REPEAT_THRESHOLD_SECONDS = 0.005

#: Repeat cap for the best-of-N loop (total work stays bounded even if
#: every pair is sub-threshold).
MAX_TIMING_REPEATS = 5

MODES: List[Tuple[str, Dict]] = [
    ("refine_serial", dict(refine=True, n_jobs=1, preprocess=True)),
    ("norefine_serial", dict(refine=False, n_jobs=1, preprocess=True)),
    ("refine_parallel", dict(refine=True, n_jobs=4, preprocess=True)),
    ("norefine_parallel", dict(refine=False, n_jobs=4, preprocess=True)),
    ("refine_serial_nopre", dict(refine=True, n_jobs=1, preprocess=False)),
    ("norefine_serial_nopre", dict(refine=False, n_jobs=1, preprocess=False)),
    ("refine_parallel_nopre", dict(refine=True, n_jobs=4, preprocess=False)),
    ("norefine_parallel_nopre", dict(refine=False, n_jobs=4, preprocess=False)),
]

#: Sizes (AND nodes) of the synthetic deep AIGs the throughput section
#: simulates.  The sweep corpus miters strash down to a few hundred
#: nodes — call-overhead territory — so throughput is measured on
#: sweep-scale subjects built directly.
SIM_SUBJECT_ANDS = (10_000, 30_000)

#: Signature corpus shapes measured: the engine default (4 rounds of 64
#: patterns) and a denser 16-round corpus.
SIM_SIGNATURE_ROUNDS = (4, 16)


def corpus(n_random: int = 4, n_mutants: int = 3) -> List[Tuple[str, object, object]]:
    """(name, golden, revised) pairs: equivalent, mutated, and unrelated."""
    pairs = []
    for seed in range(n_random):
        c1 = random_combinational(n_inputs=9, n_gates=80, seed=seed)
        c2 = c1.copy("resynth")
        script_delay(c2)
        pairs.append((f"resynth_{seed}", c1, c2))
        other = random_combinational(
            n_inputs=9, n_gates=80, seed=seed + 101, name="other"
        )
        pairs.append((f"unrelated_{seed}", c1, other))
    base = random_combinational(n_inputs=9, n_gates=80, seed=77)
    for mutation, mutant in sample_mutations(base, n_mutants, seed=7):
        pairs.append((f"mutant_{mutation.kind}_{mutation.target}", base, mutant))
    return pairs


def _deep_aig(n_pis: int, n_ands: int, seed: int):
    """A deep random AND network built directly on the AIG API.

    Random *circuits* strash down to a few hundred nodes, so the
    throughput subjects are built node by node: each AND samples its
    fanins (randomly complemented) from a sliding window of recent
    literals, which keeps the network deep and irreducible.
    """
    import random as _random

    from repro.aig.aig import AIG

    rng = _random.Random(seed)
    aig = AIG()
    lits = [aig.add_pi(f"i{k}") for k in range(n_pis)]
    while aig.num_ands() < n_ands:
        a, b = rng.sample(lits[-2000:], 2)
        lits.append(
            aig.and_(a ^ (rng.random() < 0.5), b ^ (rng.random() < 0.5))
        )
    return aig


def _old_signatures(aig, rounds: int, width: int, seed: int):
    """Replica of the pre-vectorisation signature hot path.

    One narrow scalar ``simulate`` call per round plus a per-node
    big-int concatenation pass — exactly what ``_initial_signatures``
    did before it packed all rounds into a single wide corpus.
    """
    import random as _random

    from repro.cec.engine import _round_seed

    signatures = [0] * aig.num_nodes()
    mask_total = 0
    for r in range(rounds):
        rng = _random.Random(_round_seed(seed, r))
        mask = (1 << width) - 1
        pi_words = {n: rng.getrandbits(width) for n in aig.pi_names}
        words = aig.simulate(pi_words, mask)
        for node in range(aig.num_nodes()):
            signatures[node] = (signatures[node] << width) | (
                words[node] & mask
            )
        mask_total = (mask_total << width) | mask
    return signatures, mask_total


def sim_throughput(seed: int = 5) -> Dict:
    """Signature hot path old vs new, plus the single-lane kernel rate."""
    import random as _random

    from repro.cec.engine import _initial_signatures

    rows = []
    worst_speedup = None
    for n_ands in SIM_SUBJECT_ANDS:
        aig = _deep_aig(48, n_ands, seed)
        aig.sim_schedule()  # schedule build is amortised; prebuild it
        for rounds in SIM_SIGNATURE_ROUNDS:
            t0 = time.perf_counter()
            old = _old_signatures(aig, rounds, 64, seed)
            t_old = time.perf_counter() - t0
            t0 = time.perf_counter()
            new = _initial_signatures(aig, rounds, 64, seed)
            t_new = time.perf_counter() - t0
            assert old == new, "old/new signature divergence"
            words = aig.num_nodes() * rounds
            speedup = round(t_old / t_new, 2)
            rows.append(
                {
                    "ands": n_ands,
                    "rounds": rounds,
                    "old_words_per_sec": round(words / t_old),
                    "new_words_per_sec": round(words / t_new),
                    "speedup": speedup,
                }
            )
            if worst_speedup is None or speedup < worst_speedup:
                worst_speedup = speedup

    # The refinement-corpus regime: one 64-pattern lane, where the
    # dispatch prefers the numpy kernel over the scalar path.
    kernel_row: Dict = {"kernel_available": simkernel.HAVE_NUMPY}
    aig = _deep_aig(48, SIM_SUBJECT_ANDS[-1], seed)
    rng = _random.Random(seed ^ 0xC0FFEE)
    pi_words = {name: rng.getrandbits(64) for name in aig.pi_names}
    aig.sim_schedule()
    t0 = time.perf_counter()
    scalar = aig.simulate_words(dict(pi_words), 64, use_kernel=False)
    t_scalar = time.perf_counter() - t0
    kernel_row["scalar_words_per_sec"] = round(aig.num_nodes() / t_scalar)
    if simkernel.HAVE_NUMPY:
        t0 = time.perf_counter()
        vector = aig.simulate_words(dict(pi_words), 64, use_kernel=True)
        t_kernel = time.perf_counter() - t0
        assert vector == scalar, "kernel/oracle divergence"
        kernel_row["kernel_words_per_sec"] = round(
            aig.num_nodes() / t_kernel
        )
        kernel_row["kernel_speedup"] = round(t_scalar / t_kernel, 2)
    return {
        "signature_path": rows,
        "hot_path_speedup": worst_speedup,
        "single_lane": kernel_row,
    }


def preprocess_effect(pairs) -> List[Dict]:
    """AND-node reduction of the pre-sweep rewriting on every miter."""
    from repro.aig.rewrite import preprocess_miter

    rows = []
    for name, golden, revised in pairs:
        miter = build_miter(golden, revised)
        before = miter.aig.num_ands()
        pre, removed = preprocess_miter(miter)
        rows.append(
            {
                "pair": name,
                "ands_before": before,
                "ands_after": pre.aig.num_ands(),
                "nodes_removed": removed,
            }
        )
    return rows


def _timed_check(golden, revised, options) -> Tuple[object, float, int]:
    """Time one mode on one pair, best-of-N for sub-threshold runs.

    Returns ``(result, best_seconds, repeats)``.  The verdict must be
    stable across repeats — a flapping verdict is a determinism bug, not
    timing noise, and raises immediately.
    """
    best = None
    result = None
    repeats = 0
    while True:
        t0 = time.perf_counter()
        res = check_equivalence(golden, revised, **NARROW, **options)
        elapsed = time.perf_counter() - t0
        repeats += 1
        if result is not None and res.verdict != result.verdict:
            raise AssertionError(
                f"verdict flapped across timing repeats: "
                f"{result.verdict.value} vs {res.verdict.value}"
            )
        result = res
        best = elapsed if best is None else min(best, elapsed)
        if best >= REPEAT_THRESHOLD_SECONDS or repeats >= MAX_TIMING_REPEATS:
            return result, best, repeats


def run(pairs, dispatch_policy: str = "cascade") -> Dict:
    rows = []
    totals = {
        name: {"sat_queries": 0, "core_retired": 0, "seconds": 0.0}
        for name, _ in MODES
    }
    divergences = []
    for name, golden, revised in pairs:
        row = {"pair": name}
        verdicts = {}
        for mode, options in MODES:
            options = dict(options, dispatch_policy=dispatch_policy)
            result, elapsed, repeats = _timed_check(golden, revised, options)
            verdicts[mode] = result.verdict.value
            row[mode] = {
                "verdict": result.verdict.value,
                "sat_queries": int(result.stats["sat_queries"]),
                "core_retired": int(result.stats["core_retired"]),
                "seconds": round(elapsed, 4),
                "repeats": repeats,
                "refine_rounds": int(result.stats["refine_rounds"]),
                "refine_patterns": int(result.stats["refine_patterns"]),
                "refine_saved": int(result.stats["refine_saved"]),
                "preprocess_removed": int(
                    result.stats["preprocess_removed"]
                ),
            }
            totals[mode]["sat_queries"] += int(result.stats["sat_queries"])
            totals[mode]["core_retired"] += int(result.stats["core_retired"])
            totals[mode]["seconds"] += elapsed
        if len(set(verdicts.values())) != 1:
            divergences.append({"pair": name, "verdicts": verdicts})
        rows.append(row)
    for mode in totals:
        totals[mode]["seconds"] = round(totals[mode]["seconds"], 4)
    saved = (
        totals["norefine_serial"]["sat_queries"]
        - totals["refine_serial"]["sat_queries"]
    )
    return {
        "benchmark": "cec_sweep",
        "config": dict(NARROW, dispatch_policy=dispatch_policy),
        "pairs": rows,
        "totals": totals,
        "sat_queries_saved_by_refinement": saved,
        "preprocess": preprocess_effect(pairs),
        "sim_throughput": sim_throughput(),
        "verdict_divergences": divergences,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_cec.json", help="output JSON path"
    )
    parser.add_argument(
        "--dispatch-policy",
        default="cascade",
        metavar="NAME",
        help="engine dispatch policy folded into every mode "
        "(default: cascade, the historical ladder)",
    )
    args = parser.parse_args(argv)
    report = run(corpus(), dispatch_policy=args.dispatch_policy)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    totals = report["totals"]
    for mode, agg in totals.items():
        print(f"{mode:20s} sat_queries={agg['sat_queries']:6d} "
              f"core_retired={agg['core_retired']:5d} "
              f"seconds={agg['seconds']:.3f}")
    print(f"refinement saved {report['sat_queries_saved_by_refinement']} "
          f"SAT queries (serial)")
    removed = sum(r["nodes_removed"] for r in report["preprocess"])
    print(f"preprocessing removed {removed} AND nodes across "
          f"{len(report['preprocess'])} miters")
    thr = report["sim_throughput"]
    for row in thr["signature_path"]:
        print(f"signatures ands={row['ands']:6d} rounds={row['rounds']:3d} "
              f"old={row['old_words_per_sec']:,} words/s "
              f"new={row['new_words_per_sec']:,} words/s "
              f"({row['speedup']}x)")
    lane = thr["single_lane"]
    if lane["kernel_available"]:
        print(f"single-lane corpus: scalar {lane['scalar_words_per_sec']:,} "
              f"words/s, kernel {lane['kernel_words_per_sec']:,} words/s "
              f"({lane['kernel_speedup']}x)")
    else:
        print(f"single-lane corpus: scalar "
              f"{lane['scalar_words_per_sec']:,} words/s "
              "(numpy kernel unavailable)")
    print(f"signature hot-path speedup (worst measured): "
          f"{thr['hot_path_speedup']}x")
    if removed <= 0:
        print("WARNING: preprocessing removed no AND nodes on this corpus")
    if report["verdict_divergences"]:
        print(f"VERDICT DIVERGENCE on {len(report['verdict_divergences'])} "
              "pair(s) -- see JSON")
        return 1
    if report["sat_queries_saved_by_refinement"] <= 0:
        print("WARNING: refinement did not reduce SAT queries on this corpus")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
