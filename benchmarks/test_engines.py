"""Substrate micro-benchmarks: BDD, SAT, CEC, CBF/EDBF, retiming, synthesis.

Not part of the paper's tables, but they document where the reduction's
time goes and guard against performance regressions in the substrates.
"""

from __future__ import annotations

import pytest

from repro.bench.minmax import minmax_circuit
from repro.bench.pipeline import pipeline_circuit
from repro.bench.random_circuits import random_combinational
from repro.bdd.bdd import BDD
from repro.bdd.circuit2bdd import output_bdds
from repro.cec.cache import ProofCache
from repro.cec.engine import check_equivalence
from repro.netlist.build import CircuitBuilder
from repro.core.cbf import compute_cbf
from repro.core.edbf import compute_edbf
from repro.core.eq2comb import cbf_to_circuit
from repro.retime.minperiod import min_period_retiming
from repro.retime.rgraph import build_retiming_graph
from repro.sat.solver import Solver
from repro.synth.script import script_delay


def test_bdd_circuit_build(benchmark):
    circuit = random_combinational(n_inputs=12, n_gates=120, seed=5)
    benchmark(output_bdds, circuit)


def test_bdd_ite_heavy(benchmark):
    def build():
        mgr = BDD([f"x{i}" for i in range(14)])
        acc = mgr.ZERO
        for i in range(13):
            acc = mgr.apply_xor(acc, mgr.apply_and(mgr.var(f"x{i}"), mgr.var(f"x{i+1}")))
        return mgr.num_nodes()

    benchmark(build)


def test_sat_pigeonhole(benchmark):
    def php():
        s = Solver()
        p, h = 7, 6
        v = lambda i, j: i * h + j + 1
        s.ensure_vars(p * h)
        for i in range(p):
            s.add_clause([v(i, j) for j in range(h)])
        for j in range(h):
            for i1 in range(p):
                for i2 in range(i1 + 1, p):
                    s.add_clause([-v(i1, j), -v(i2, j)])
        return s.solve()

    result = benchmark(php)
    assert not result.satisfiable


def test_cec_on_resynthesised(benchmark):
    c1 = random_combinational(n_inputs=10, n_gates=100, seed=3)
    c2 = c1.copy("resynth")
    script_delay(c2)
    result = benchmark(check_equivalence, c1, c2)
    assert result.equivalent


def _xor_chain_tree_pair(n):
    """Structurally distinct but equivalent parity circuits (real sweep work)."""
    chain = CircuitBuilder("chain")
    xs = chain.inputs(*[f"x{i}" for i in range(n)])
    acc = xs[0]
    for x in xs[1:]:
        acc = chain.XOR(acc, x)
    chain.output(acc, name="o")

    tree = CircuitBuilder("tree")
    xs = list(tree.inputs(*[f"x{i}" for i in range(n)]))
    while len(xs) > 1:
        nxt = [tree.XOR(xs[i], xs[i + 1]) for i in range(0, len(xs) - 1, 2)]
        if len(xs) % 2:
            nxt.append(xs[-1])
        xs = nxt
    tree.output(xs[0], name="o")
    return chain.circuit, tree.circuit


def test_cec_parallel_sweep(benchmark):
    c1, c2 = _xor_chain_tree_pair(32)
    serial = check_equivalence(c1, c2, n_jobs=1)
    result = benchmark(check_equivalence, c1, c2, n_jobs=4)
    assert result.verdict is serial.verdict
    assert result.stats["n_units"] >= 1


def test_cec_warm_proof_cache(benchmark):
    c1, c2 = _xor_chain_tree_pair(32)
    cache = ProofCache()
    cold = check_equivalence(c1, c2, cache=cache)
    result = benchmark(check_equivalence, c1, c2, cache=cache)
    assert result.verdict is cold.verdict
    assert result.stats["cache_hits"] > 0
    assert result.stats["sat_queries"] < cold.stats["sat_queries"]


@pytest.mark.parametrize("seed", range(6))
def test_cec_parallel_matches_serial_corpus(seed):
    """Acceptance check: n_jobs=4 verdicts identical to n_jobs=1."""
    c1 = random_combinational(n_inputs=9, n_gates=80, seed=seed)
    c2 = c1.copy("resynth")
    script_delay(c2)
    swapped = random_combinational(
        n_inputs=9, n_gates=80, seed=seed + 31, name="other"
    )
    for a, b in ((c1, c2), (c1, swapped)):
        serial = check_equivalence(a, b, n_jobs=1)
        parallel = check_equivalence(a, b, n_jobs=4)
        assert parallel.verdict is serial.verdict


def test_cbf_computation(benchmark):
    circuit = pipeline_circuit(stages=4, width=5, seed=2)
    cbf = benchmark(compute_cbf, circuit)
    assert cbf.depth() >= 1


def test_cbf_lowering(benchmark):
    circuit = pipeline_circuit(stages=4, width=5, seed=2)
    cbf = compute_cbf(circuit)
    comb = benchmark(cbf_to_circuit, cbf)
    assert comb.is_combinational()


def test_edbf_computation(benchmark):
    circuit = pipeline_circuit(stages=3, width=4, seed=2, enable=True)
    edbf = benchmark(compute_edbf, circuit)
    assert edbf.events_used()


def test_min_period_retiming_speed(benchmark):
    circuit = minmax_circuit(12)
    from repro.core.expose import prepare_circuit

    prepared = prepare_circuit(circuit, use_unateness=False).circuit
    graph = build_retiming_graph(prepared)
    period, r = benchmark(min_period_retiming, graph)
    assert period >= 1


def test_synthesis_script_speed(benchmark):
    def run():
        c = random_combinational(n_inputs=10, n_gates=120, seed=4)
        script_delay(c)
        return c

    result = benchmark(run)
    assert result.num_gates() > 0
