"""Conservative 3-valued (0/1/X) sequential simulation.

This is the classical simulator the paper contrasts with its exact 3-valued
semantics (Sec. 3.2, Fig. 1): each signal is 0, 1 or X, gates propagate X
conservatively (an AND with one 0 input is 0 even if others are X; otherwise
any X input makes the output X), and X instances are *not* correlated — so
``x XOR x`` simulates to X even though it is always 0.

Values are encoded as a pair of bit-parallel words ``(can0, can1)``: bit *i*
of ``can0``/``can1`` says the signal can be 0/1 in run *i*.  ``(1,0)`` = 0,
``(0,1)`` = 1, ``(1,1)`` = X.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.netlist.circuit import Circuit

__all__ = ["X", "simulate3"]


class _XType:
    """Singleton marker for the unknown value."""

    _instance: Optional["_XType"] = None

    def __new__(cls) -> "_XType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "X"


X = _XType()

TernaryValue = Union[bool, _XType]
_Pair = Tuple[int, int]  # (can_be_0, can_be_1) over one bit


def _to_pair(value: TernaryValue) -> _Pair:
    if value is X:
        return (1, 1)
    return (0, 1) if value else (1, 0)


def _from_pair(pair: _Pair) -> TernaryValue:
    can0, can1 = pair
    if can0 and can1:
        return X
    return bool(can1)


def _eval_sop_ternary(sop, pairs: Sequence[_Pair]) -> _Pair:
    """Ternary evaluation of an SOP cover.

    A cube is 1 if all its literals are definitely satisfied; 0 if some
    literal is definitely violated; else X.  The OR of cubes is 1 if some
    cube is 1, 0 if all are 0, else X.
    """
    any_x = False
    for cube in sop.cubes:
        cube_val: TernaryValue = True
        for i, ch in enumerate(cube):
            if ch == "-":
                continue
            can0, can1 = pairs[i]
            if can0 and can1:
                if cube_val is not False:
                    cube_val = X
            elif ch == "1" and can0:
                cube_val = False
                break
            elif ch == "0" and can1:
                cube_val = False
                break
        if cube_val is True:
            return (0, 1)
        if cube_val is X:
            any_x = True
    return (1, 1) if any_x else (1, 0)


def simulate3(
    circuit: Circuit,
    input_vectors: Sequence[Mapping[str, TernaryValue]],
    initial_state: Optional[Mapping[str, TernaryValue]] = None,
) -> List[Dict[str, TernaryValue]]:
    """Conservative 3-valued simulation; unknown power-up by default.

    Returns the per-cycle ternary output values.  A load-enabled latch with
    an X enable conservatively goes to X unless data and held value agree
    definitely.
    """
    if initial_state is None:
        initial_state = {l: X for l in circuit.latches}
    topo = circuit.topo_gates()
    state: Dict[str, _Pair] = {
        l: _to_pair(initial_state.get(l, X)) for l in circuit.latches
    }
    results: List[Dict[str, TernaryValue]] = []
    for vec in input_vectors:
        values: Dict[str, _Pair] = dict(state)
        for pi in circuit.inputs:
            values[pi] = _to_pair(vec[pi])
        for gate in topo:
            values[gate.output] = _eval_sop_ternary(
                gate.sop, [values[s] for s in gate.inputs]
            )
        results.append({o: _from_pair(values[o]) for o in circuit.outputs})
        next_state: Dict[str, _Pair] = {}
        for latch in circuit.latches.values():
            data = values[latch.data]
            if latch.enable is None:
                next_state[latch.output] = data
            else:
                en = values[latch.enable]
                held = state[latch.output]
                if en == (0, 1):  # definitely enabled
                    next_state[latch.output] = data
                elif en == (1, 0):  # definitely disabled
                    next_state[latch.output] = held
                else:  # X enable: union of both possibilities
                    next_state[latch.output] = (
                        data[0] | held[0],
                        data[1] | held[1],
                    )
        state = next_state
    return results
