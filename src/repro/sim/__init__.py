"""Sequential simulation substrate.

* :mod:`repro.sim.logic2` — bit-parallel 2-valued simulation;
* :mod:`repro.sim.logic3` — conservative 3-valued (X) simulation;
* :mod:`repro.sim.exact3` — exact 3-valued semantics (paper Def. 1) via
  enumeration or sampling of power-up states.
"""

from repro.sim.logic2 import simulate, simulate_parallel, SimTrace
from repro.sim.logic3 import simulate3, X
from repro.sim.exact3 import exact3_outputs, exact3_equivalent, BOT

__all__ = [
    "simulate",
    "simulate_parallel",
    "SimTrace",
    "simulate3",
    "X",
    "exact3_outputs",
    "exact3_equivalent",
    "BOT",
]
