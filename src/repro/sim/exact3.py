"""Exact 3-valued semantics (paper Def. 1).

Under the paper's notion, a circuit's output on an input sequence π is a
Boolean value *o* if every power-up state of the latches yields *o*, and ⊥
otherwise.  Unlike conservative 3-valued simulation, distinct occurrences of
unknown power-up values are correlated — so Fig. 1's ``q XOR q`` is a defined
0, not X.

For circuits with few latches we enumerate all ``2^|L|`` power-up states
(bit-parallel, so cost is ~one simulation); for larger circuits we sample a
configurable number of random power-up states, which is sound for
*disproving* definedness/equality and heuristic for confirming it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.netlist.circuit import Circuit
from repro.sim.logic2 import simulate_parallel

__all__ = ["BOT", "exact3_outputs", "exact3_equivalent"]


class _BotType:
    """Singleton marker for the undefined output value ⊥."""

    _instance: Optional["_BotType"] = None

    def __new__(cls) -> "_BotType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


BOT = _BotType()

ExactValue = Union[bool, _BotType]

_ENUM_LIMIT = 16  # enumerate exactly up to this many latches


def _powerup_words(
    circuit: Circuit, rng: random.Random, samples: int
) -> Tuple[Dict[str, int], int]:
    """Per-latch power-up words; returns (words, width)."""
    latches = list(circuit.latches)
    n = len(latches)
    if n <= _ENUM_LIMIT:
        width = 1 << n
        words = {}
        for i, latch in enumerate(latches):
            # Bit p of the word = bit i of the state index p.
            word = 0
            for p in range(width):
                if (p >> i) & 1:
                    word |= 1 << p
            words[latch] = word
        return words, width
    width = samples
    words = {l: rng.getrandbits(width) for l in latches}
    # Always include the all-0 and all-1 power-up states.
    for l in latches:
        words[l] &= ~1
        words[l] |= 1 << (width - 1)
    return words, width


def exact3_outputs(
    circuit: Circuit,
    input_vectors: Sequence[Mapping[str, bool]],
    samples: int = 256,
    seed: int = 0,
) -> List[Dict[str, ExactValue]]:
    """Per-cycle output values under exact 3-valued semantics.

    Exact when ``|latches| <= 16`` (full enumeration); otherwise a sampled
    approximation: reported Booleans may in truth be ⊥, but reported ⊥ are
    definitely ⊥.
    """
    rng = random.Random(seed)
    words, width = _powerup_words(circuit, rng, samples)
    mask = (1 << width) - 1
    input_words = [
        {pi: (mask if vec[pi] else 0) for pi in circuit.inputs}
        for vec in input_vectors
    ]
    if not circuit.latches:
        width = 1
        mask = 1
        input_words = [
            {pi: (1 if vec[pi] else 0) for pi in circuit.inputs}
            for vec in input_vectors
        ]
        words = {}
    raw = simulate_parallel(circuit, input_words, words, width)
    result: List[Dict[str, ExactValue]] = []
    for cycle in raw:
        row: Dict[str, ExactValue] = {}
        for out, word in cycle.items():
            word &= mask
            if word == 0:
                row[out] = False
            elif word == mask:
                row[out] = True
            else:
                row[out] = BOT
        result.append(row)
    return result


def exact3_equivalent(
    c1: Circuit,
    c2: Circuit,
    input_sequences: Sequence[Sequence[Mapping[str, bool]]],
    samples: int = 256,
    seed: int = 0,
    warmup: int = 0,
    warmup_trials: int = 4,
) -> bool:
    """Check Def. 1 equivalence over the given input sequences.

    Both circuits must share input/output names.  This is a *testing* oracle
    (complete only if the sequences and power-up enumeration are exhaustive);
    the real decision procedure is the CBF/EDBF reduction in
    :mod:`repro.core`.

    ``warmup > 0`` switches to the *unknown-past* semantics the paper's CBF
    construction encodes: the circuits are compared only after a shared,
    concrete prefix of ``warmup`` random input vectors (``warmup_trials``
    different prefixes are tried), with power-up still quantified.  Plain
    Def. 1 (``warmup = 0``) additionally distinguishes circuits by their
    transient power-up behaviour, which retiming with latch-chain sharing
    does not preserve — see EXPERIMENTS.md for the discussion.
    """
    if set(c1.inputs) != set(c2.inputs) or set(c1.outputs) != set(c2.outputs):
        raise ValueError("circuits must share input/output names")
    rng = random.Random((seed << 1) ^ 0x5EED)
    if warmup > 0:
        prefixes = [
            [
                {pi: rng.random() < 0.5 for pi in sorted(c1.inputs)}
                for _ in range(warmup)
            ]
            for _ in range(warmup_trials)
        ]
    else:
        prefixes = [[]]
    for pi_seq in input_sequences:
        for prefix in prefixes:
            full = list(prefix) + list(pi_seq)
            o1 = exact3_outputs(c1, full, samples=samples, seed=seed)
            o2 = exact3_outputs(c2, full, samples=samples, seed=seed)
            for row1, row2 in zip(o1[len(prefix) :], o2[len(prefix) :]):
                for out in c1.outputs:
                    if row1[out] is not row2[out] and row1[out] != row2[out]:
                        return False
    return True
