"""Two-valued sequential simulation.

Two entry points:

* :func:`simulate` — one run: a power-up state, a list of input vectors,
  returns per-cycle output values;
* :func:`simulate_parallel` — bit-parallel over many independent runs at
  once (each bit position of a Python int is one run), used heavily by the
  equivalence-checking and property-test machinery.

Load-enabled latch semantics: at each clock edge the latch loads its data
value if the enable evaluated to 1 *in that cycle*, else it holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.netlist.circuit import Circuit, Gate

__all__ = ["SimTrace", "simulate", "simulate_parallel", "evaluate_combinational"]


@dataclass
class SimTrace:
    """Result of a sequential simulation run."""

    outputs: List[Dict[str, bool]]
    states: List[Dict[str, bool]]  # latch values *entering* each cycle


def evaluate_combinational(
    circuit: Circuit,
    values: Dict[str, int],
    mask: int,
    topo: Optional[Sequence[Gate]] = None,
) -> Dict[str, int]:
    """Evaluate all gates bit-parallel given PI/latch values in ``values``."""
    if topo is None:
        topo = circuit.topo_gates()
    for gate in topo:
        words = [values[s] for s in gate.inputs]
        values[gate.output] = gate.sop.eval_parallel(words, mask)
    return values


def simulate_parallel(
    circuit: Circuit,
    input_words: Sequence[Mapping[str, int]],
    initial_state: Mapping[str, int],
    width: int,
) -> List[Dict[str, int]]:
    """Bit-parallel sequential simulation.

    ``input_words[t][pi]`` is the word of values for input ``pi`` at cycle
    ``t``; ``initial_state[latch]`` the power-up word per latch.  Returns the
    list of per-cycle output-word dictionaries.
    """
    mask = (1 << width) - 1
    topo = circuit.topo_gates()
    state: Dict[str, int] = {l: initial_state[l] & mask for l in circuit.latches}
    out: List[Dict[str, int]] = []
    for t, vec in enumerate(input_words):
        values: Dict[str, int] = dict(state)
        for pi in circuit.inputs:
            try:
                values[pi] = vec[pi] & mask
            except KeyError:
                raise KeyError(f"missing value for input {pi!r} at cycle {t}")
        evaluate_combinational(circuit, values, mask, topo)
        out.append({o: values[o] & mask for o in circuit.outputs})
        next_state: Dict[str, int] = {}
        for latch in circuit.latches.values():
            data = values[latch.data]
            if latch.enable is None:
                next_state[latch.output] = data & mask
            else:
                en = values[latch.enable]
                next_state[latch.output] = (
                    (data & en) | (state[latch.output] & ~en)
                ) & mask
        state = next_state
    return out


def simulate(
    circuit: Circuit,
    input_vectors: Sequence[Mapping[str, bool]],
    initial_state: Optional[Mapping[str, bool]] = None,
) -> SimTrace:
    """Single-run sequential simulation with Boolean values."""
    if initial_state is None:
        initial_state = {l: False for l in circuit.latches}
    mask = 1
    topo = circuit.topo_gates()
    state: Dict[str, int] = {
        l: int(bool(initial_state[l])) for l in circuit.latches
    }
    outputs: List[Dict[str, bool]] = []
    states: List[Dict[str, bool]] = []
    for t, vec in enumerate(input_vectors):
        states.append({l: bool(v) for l, v in state.items()})
        values: Dict[str, int] = dict(state)
        for pi in circuit.inputs:
            values[pi] = int(bool(vec[pi]))
        evaluate_combinational(circuit, values, mask, topo)
        outputs.append({o: bool(values[o]) for o in circuit.outputs})
        next_state: Dict[str, int] = {}
        for latch in circuit.latches.values():
            if latch.enable is None:
                next_state[latch.output] = values[latch.data]
            else:
                if values[latch.enable]:
                    next_state[latch.output] = values[latch.data]
                else:
                    next_state[latch.output] = state[latch.output]
        state = next_state
    return SimTrace(outputs, states)
