"""The :class:`Circuit` data model.

A sequential circuit (paper Sec. 3.1) is ``C = (I, O, G, L)``: inputs,
outputs, combinational gates, and edge-triggered latches driven by a single
clock.  Each latch ``l = (x, e)`` pairs its output signal ``x`` with a
load-enable signal ``e``; a *regular* latch has ``e = None`` (always loads).
The latch *class* (à la Legl et al. [9]) is its enable signal.

Signals are plain strings.  Every signal is driven by exactly one of a
primary input, a gate, or a latch.  Gates carry their function as an on-set
SOP cover (:class:`repro.netlist.cube.Sop`) over their ordered fanin list,
mirroring BLIF ``.names`` semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.netlist.cube import Sop

__all__ = ["Gate", "Latch", "Circuit"]


@dataclass(frozen=True)
class Gate:
    """A combinational gate: ``output = sop(inputs)``."""

    output: str
    inputs: Tuple[str, ...]
    sop: Sop

    def __post_init__(self) -> None:
        if self.sop.ninputs != len(self.inputs):
            raise ValueError(
                f"gate {self.output}: cover arity {self.sop.ninputs} != "
                f"{len(self.inputs)} fanins"
            )

    @property
    def num_literals(self) -> int:
        """Total SOP literal count (the SIS area proxy)."""
        return self.sop.num_literals

    def with_inputs(self, inputs: Sequence[str]) -> "Gate":
        """A copy of the gate with a new fanin tuple."""
        return Gate(self.output, tuple(inputs), self.sop)

    def __str__(self) -> str:
        return f"Gate({self.output} = f({', '.join(self.inputs)}))"


@dataclass(frozen=True)
class Latch:
    """An edge-triggered latch, optionally load-enabled.

    ``output`` holds ``data`` sampled at the previous active clock edge; when
    ``enable`` is present and low, the latch retains its previous value.
    There is no initial value: following the paper, latches power up
    nondeterministically (exact 3-valued semantics, Sec. 3.2).
    """

    output: str
    data: str
    enable: Optional[str] = None

    @property
    def is_regular(self) -> bool:
        """True when the latch has no load enable."""
        return self.enable is None

    @property
    def latch_class(self) -> Optional[str]:
        """The latch class ``cl = (e)`` used by class-aware retiming."""
        return self.enable

    def __str__(self) -> str:
        en = f", en={self.enable}" if self.enable else ""
        return f"Latch({self.output} <- {self.data}{en})"


class Circuit:
    """A sequential circuit: inputs, outputs, gates, latches.

    The class maintains the single-driver invariant and provides structural
    queries (drivers, fanouts, topological order) used throughout the
    library.  Mutation is in-place; use :meth:`copy` for a detached clone.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: Dict[str, Gate] = {}
        self.latches: Dict[str, Latch] = {}
        self._input_set: Set[str] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input; returns its name."""
        if self.driver_kind(name) is not None:
            raise ValueError(f"signal {name!r} already driven")
        self.inputs.append(name)
        self._input_set.add(name)
        return name

    def add_output(self, name: str) -> str:
        """Append a primary output; returns its name."""
        self.outputs.append(name)
        return name

    def add_gate(self, output: str, inputs: Sequence[str], sop: Sop) -> Gate:
        """Add a gate driving ``output``; enforces single drivers."""
        if self.driver_kind(output) is not None:
            raise ValueError(f"signal {output!r} already driven")
        gate = Gate(output, tuple(inputs), sop)
        self.gates[output] = gate
        return gate

    def add_latch(
        self, output: str, data: str, enable: Optional[str] = None
    ) -> Latch:
        """Add a latch driving ``output``; enforces single drivers."""
        if self.driver_kind(output) is not None:
            raise ValueError(f"signal {output!r} already driven")
        latch = Latch(output, data, enable)
        self.latches[output] = latch
        return latch

    def remove_gate(self, output: str) -> None:
        """Delete the gate driving ``output``."""
        del self.gates[output]

    def remove_latch(self, output: str) -> None:
        """Delete the latch driving ``output``."""
        del self.latches[output]

    def remove_input(self, name: str) -> None:
        """Delete a primary input declaration."""
        self.inputs.remove(name)
        self._input_set.discard(name)

    def remove_output(self, name: str) -> None:
        """Delete one primary output occurrence."""
        self.outputs.remove(name)

    def replace_gate(self, gate: Gate) -> None:
        """Replace the gate driving ``gate.output`` (which must exist)."""
        if gate.output not in self.gates:
            raise KeyError(gate.output)
        self.gates[gate.output] = gate

    def replace_latch(self, latch: Latch) -> None:
        """Replace the latch driving ``latch.output``."""
        if latch.output not in self.latches:
            raise KeyError(latch.output)
        self.latches[latch.output] = latch

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_input(self, signal: str) -> bool:
        """True if ``signal`` is a primary input."""
        return signal in self._input_set

    def driver_kind(self, signal: str) -> Optional[str]:
        """``'input' | 'gate' | 'latch' | None`` for an undriven signal."""
        if signal in self._input_set:
            return "input"
        if signal in self.gates:
            return "gate"
        if signal in self.latches:
            return "latch"
        return None

    def signals(self) -> Iterator[str]:
        """All driven signals (inputs, gate outputs, latch outputs)."""
        yield from self.inputs
        yield from self.gates
        yield from self.latches

    def fanin_signals(self, signal: str) -> Tuple[str, ...]:
        """Immediate combinational/sequential fanins of a driven signal."""
        kind = self.driver_kind(signal)
        if kind == "gate":
            return self.gates[signal].inputs
        if kind == "latch":
            latch = self.latches[signal]
            if latch.enable is not None:
                return (latch.data, latch.enable)
            return (latch.data,)
        return ()

    def fanout_map(self) -> Dict[str, List[str]]:
        """Map each signal to the driven signals that read it."""
        fanouts: Dict[str, List[str]] = {s: [] for s in self.signals()}
        for gate in self.gates.values():
            for src in gate.inputs:
                fanouts.setdefault(src, []).append(gate.output)
        for latch in self.latches.values():
            fanouts.setdefault(latch.data, []).append(latch.output)
            if latch.enable is not None:
                fanouts.setdefault(latch.enable, []).append(latch.output)
        return fanouts

    def topo_gates(self) -> List[Gate]:
        """Gates in topological order (latch outputs and PIs are sources).

        Raises :class:`ValueError` on a combinational cycle.
        """
        order: List[Gate] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done
        stack: List[Tuple[str, int]] = []
        for root in list(self.gates):
            if state.get(root) == 1:
                continue
            stack.append((root, 0))
            while stack:
                signal, phase = stack.pop()
                if phase == 0:
                    if state.get(signal) == 1:
                        continue
                    if state.get(signal) == 0:
                        raise ValueError(
                            f"combinational cycle through {signal!r}"
                        )
                    state[signal] = 0
                    stack.append((signal, 1))
                    for src in self.gates[signal].inputs:
                        if src in self.gates and state.get(src) != 1:
                            if state.get(src) == 0:
                                raise ValueError(
                                    f"combinational cycle through {src!r}"
                                )
                            stack.append((src, 0))
                else:
                    if state.get(signal) != 1:
                        state[signal] = 1
                        order.append(self.gates[signal])
        return order

    def num_gates(self) -> int:
        """Number of gates."""
        return len(self.gates)

    def num_latches(self) -> int:
        """Number of latches."""
        return len(self.latches)

    def num_literals(self) -> int:
        """Total SOP literal count across all gates."""
        return sum(g.num_literals for g in self.gates.values())

    def latch_classes(self) -> Dict[Optional[str], List[Latch]]:
        """Group latches by class (enable signal); ``None`` = regular."""
        classes: Dict[Optional[str], List[Latch]] = {}
        for latch in self.latches.values():
            classes.setdefault(latch.latch_class, []).append(latch)
        return classes

    def is_combinational(self) -> bool:
        """True when the circuit has no latches."""
        return not self.latches

    def stats(self) -> Dict[str, int]:
        """Summary counts: inputs/outputs/gates/latches/literals."""
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": self.num_gates(),
            "latches": self.num_latches(),
            "literals": self.num_literals(),
        }

    # ------------------------------------------------------------------
    # copying / renaming
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Circuit":
        """A detached shallow copy (gates/latches are immutable)."""
        clone = Circuit(name or self.name)
        clone.inputs = list(self.inputs)
        clone.outputs = list(self.outputs)
        clone.gates = dict(self.gates)
        clone.latches = dict(self.latches)
        clone._input_set = set(self._input_set)
        return clone

    def renamed(self, mapping: Dict[str, str], name: Optional[str] = None) -> "Circuit":
        """A copy with signals renamed per ``mapping`` (identity if absent)."""

        def ren(s: str) -> str:
            return mapping.get(s, s)

        clone = Circuit(name or self.name)
        clone.inputs = [ren(s) for s in self.inputs]
        clone._input_set = set(clone.inputs)
        clone.outputs = [ren(s) for s in self.outputs]
        for gate in self.gates.values():
            clone.gates[ren(gate.output)] = Gate(
                ren(gate.output), tuple(ren(s) for s in gate.inputs), gate.sop
            )
        for latch in self.latches.values():
            clone.latches[ren(latch.output)] = Latch(
                ren(latch.output),
                ren(latch.data),
                ren(latch.enable) if latch.enable is not None else None,
            )
        return clone

    def with_prefix(self, prefix: str, keep: Iterable[str] = ()) -> "Circuit":
        """A copy with every signal (except ``keep``) prefixed."""
        keep_set = set(keep)
        mapping = {
            s: prefix + s for s in self.signals() if s not in keep_set
        }
        return self.renamed(mapping)

    def fresh_signal(self, base: str) -> str:
        """A signal name not yet driven in this circuit."""
        if self.driver_kind(base) is None:
            return base
        i = 0
        while True:
            candidate = f"{base}_{i}"
            if self.driver_kind(candidate) is None:
                return candidate
            i += 1

    def __str__(self) -> str:
        s = self.stats()
        return (
            f"Circuit({self.name}: {s['inputs']} in, {s['outputs']} out, "
            f"{s['gates']} gates, {s['latches']} latches)"
        )

    __repr__ = __str__
