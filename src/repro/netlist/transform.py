"""Structural circuit transformations.

The key operations here implement pieces of the paper's flow:

* :func:`expose_latches` — make latch positions observable (Fig. 15): the
  latch output becomes a pseudo primary input and its data (and enable)
  become pseudo primary outputs, breaking feedback paths;
* :func:`combinational_core` — cut every latch: latch outputs become PIs,
  latch data/enable nets become POs.  Synthesis operates on this core and
  :func:`rebuild_from_core` stitches the latches back;
* :func:`miter` — the standard combinational miter for CEC;
* :func:`strip_dangling` — remove logic that feeds nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.netlist.circuit import Circuit, Gate, Latch
from repro.netlist.cube import Sop
from repro.netlist.graph import transitive_fanin

__all__ = [
    "expose_latches",
    "ExposedCircuit",
    "CombCore",
    "combinational_core",
    "rebuild_from_core",
    "miter",
    "strip_dangling",
    "cone_of_influence",
]

EXPOSED_IN_PREFIX = "__exposed_in__"
EXPOSED_OUT_PREFIX = "__exposed_out__"
CORE_DATA_PREFIX = "__ns__"
CORE_EN_PREFIX = "__en__"


@dataclass
class ExposedCircuit:
    """Result of :func:`expose_latches`.

    ``circuit`` is the modified circuit; ``exposed`` maps each exposed latch
    output to the pair ``(pseudo_input, pseudo_output)`` that replaced it.
    The original latch is *kept* (driven by its original data/enable and now
    dangling unless it was a primary output) only conceptually — structurally
    the latch is removed and replaced by the pseudo ports, which is exactly
    the verification view: the latch location is frozen and its boundary is
    observable.
    """

    circuit: Circuit
    exposed: Dict[str, Tuple[str, str]]


def expose_latches(circuit: Circuit, latches: Iterable[str]) -> ExposedCircuit:
    """Expose the given latches (paper Fig. 15).

    Each exposed latch ``x`` (data ``d``, enable ``e``) is removed; a fresh
    primary input ``__exposed_in__x`` replaces reads of ``x`` and a fresh
    primary output ``__exposed_out__x`` observes ``d`` (and ``__exposed_out__
    x__en`` observes ``e`` when load-enabled).  The transformation breaks all
    feedback cycles through these latches while preserving equivalence
    checkability: two circuits with identically-exposed latches are
    sequentially equivalent iff the exposed versions are (latch-for-latch).
    """
    result = circuit.copy(circuit.name + "_exposed")
    exposed: Dict[str, Tuple[str, str]] = {}
    for name in latches:
        latch = result.latches.get(name)
        if latch is None:
            raise KeyError(f"no latch {name!r} in circuit")
        result.remove_latch(name)
        pseudo_in = EXPOSED_IN_PREFIX + name
        pseudo_out = EXPOSED_OUT_PREFIX + name
        # Reads of the latch output now come from the pseudo input.
        result.add_input(pseudo_in)
        _redirect_reads(result, name, pseudo_in)
        # The next-state net becomes observable.
        buf = result.fresh_signal(pseudo_out)
        result.add_gate(buf, (latch.data,), Sop.and_all(1))
        result.add_output(buf)
        if latch.enable is not None:
            en_buf = result.fresh_signal(pseudo_out + "__en")
            result.add_gate(en_buf, (latch.enable,), Sop.and_all(1))
            result.add_output(en_buf)
        exposed[name] = (pseudo_in, buf)
    return ExposedCircuit(result, exposed)


def _redirect_reads(circuit: Circuit, old: str, new: str) -> None:
    """Rewire every reader of ``old`` to read ``new`` instead."""
    for gate in list(circuit.gates.values()):
        if old in gate.inputs:
            circuit.replace_gate(
                gate.with_inputs(tuple(new if s == old else s for s in gate.inputs))
            )
    for latch in list(circuit.latches.values()):
        data = new if latch.data == old else latch.data
        enable = latch.enable
        if enable == old:
            enable = new
        if data != latch.data or enable != latch.enable:
            circuit.replace_latch(Latch(latch.output, data, enable))
    circuit.outputs = [new if s == old else s for s in circuit.outputs]


@dataclass
class CombCore:
    """The combinational core of a sequential circuit.

    ``circuit`` is purely combinational; for every latch ``x`` of the parent
    the core has a PI named ``x`` (the previous-state value) and POs
    observing its next-state/data net and, for enabled latches, its enable
    net.  ``latches`` remembers the original latch records; ``ns_name`` /
    ``en_name`` record the boundary PO names (fresh-named to survive
    repeated core extraction).
    """

    circuit: Circuit
    latches: Dict[str, Latch]
    ns_name: Dict[str, str]
    en_name: Dict[str, str]

    @property
    def state_inputs(self) -> List[str]:
        """The latch-output names (present-state PIs of the core)."""
        return list(self.latches)

    def next_state_output(self, latch_output: str) -> str:
        """The core PO observing a latch's next-state net."""
        return self.ns_name[latch_output]

    def enable_output(self, latch_output: str) -> Optional[str]:
        """The core PO observing a latch's enable (None if regular)."""
        return self.en_name.get(latch_output)


def combinational_core(circuit: Circuit) -> CombCore:
    """Cut all latches, yielding a pure combinational circuit."""
    core = Circuit(circuit.name + "_core")
    core.inputs = list(circuit.inputs)
    core._input_set = set(core.inputs)
    for latch in circuit.latches.values():
        core.add_input(latch.output)
    core.gates = dict(circuit.gates)
    core.outputs = list(circuit.outputs)
    ns_name: Dict[str, str] = {}
    en_name: Dict[str, str] = {}
    for latch in circuit.latches.values():
        ns = core.fresh_signal(CORE_DATA_PREFIX + latch.output)
        core.add_gate(ns, (latch.data,), Sop.and_all(1))
        core.add_output(ns)
        ns_name[latch.output] = ns
        if latch.enable is not None:
            en = core.fresh_signal(CORE_EN_PREFIX + latch.output)
            core.add_gate(en, (latch.enable,), Sop.and_all(1))
            core.add_output(en)
            en_name[latch.output] = en
    return CombCore(core, dict(circuit.latches), ns_name, en_name)


def rebuild_from_core(core: CombCore, name: Optional[str] = None) -> Circuit:
    """Reattach the latches of a (possibly re-synthesised) core."""
    comb = core.circuit
    result = Circuit(name or comb.name.replace("_core", ""))
    latch_outputs = set(core.latches)
    result.inputs = [s for s in comb.inputs if s not in latch_outputs]
    result._input_set = set(result.inputs)
    result.gates = dict(comb.gates)
    for latch_out, latch in core.latches.items():
        ns = core.next_state_output(latch_out)
        en = core.enable_output(latch_out)
        if ns not in comb.gates and ns not in comb.inputs:
            raise ValueError(f"core lost next-state net {ns!r}")
        result.latches[latch_out] = Latch(latch_out, ns, en)
    boundary = set(core.ns_name.values()) | set(core.en_name.values())
    result.outputs = [s for s in comb.outputs if s not in boundary]
    return result


def miter(c1: Circuit, c2: Circuit, name: str = "miter") -> Circuit:
    """Build a combinational miter: output 1 iff some output pair differs.

    Both circuits must be combinational, with identical input and output
    name sets (output order may differ).
    """
    if c1.latches or c2.latches:
        raise ValueError("miter requires combinational circuits")
    if set(c1.inputs) != set(c2.inputs):
        raise ValueError(
            "input mismatch: "
            f"{sorted(set(c1.inputs) ^ set(c2.inputs))}"
        )
    if set(c1.outputs) != set(c2.outputs):
        raise ValueError(
            "output mismatch: "
            f"{sorted(set(c1.outputs) ^ set(c2.outputs))}"
        )
    keep = set(c1.inputs)
    a = c1.with_prefix("m1_", keep=keep)
    b = c2.with_prefix("m2_", keep=keep)
    m = Circuit(name)
    m.inputs = list(c1.inputs)
    m._input_set = set(m.inputs)
    m.gates = dict(a.gates)
    for gate in b.gates.values():
        m.gates[gate.output] = gate
    xors = []
    for i, out in enumerate(sorted(set(c1.outputs))):
        sig_a = "m1_" + out if ("m1_" + out) in m.gates else out
        sig_b = "m2_" + out if ("m2_" + out) in m.gates else out
        x = f"__miter_x{i}"
        m.add_gate(x, (sig_a, sig_b), Sop.xor2())
        xors.append(x)
    if not xors:
        m.add_gate("__miter_out", (), Sop.const0(0))
    elif len(xors) == 1:
        m.add_gate("__miter_out", (xors[0],), Sop.and_all(1))
    else:
        m.add_gate("__miter_out", tuple(xors), Sop.or_all(len(xors)))
    m.add_output("__miter_out")
    return m


def cone_of_influence(circuit: Circuit, outputs: Optional[Sequence[str]] = None) -> Set[str]:
    """Signals that (transitively, through latches) affect the outputs."""
    roots = list(outputs) if outputs is not None else list(circuit.outputs)
    return transitive_fanin(circuit, roots)


def strip_dangling(circuit: Circuit) -> Circuit:
    """Remove gates and latches outside the cone of influence of the POs."""
    keep = cone_of_influence(circuit)
    result = circuit.copy()
    for out in list(result.gates):
        if out not in keep:
            result.remove_gate(out)
    for out in list(result.latches):
        if out not in keep:
            result.remove_latch(out)
    return result
