"""Structural graph analyses over circuits.

Provides the directed-graph views used by the paper:

* the *signal graph* (Sec. 7.1): one node per gate/latch/PI/PO, an edge per
  fanout relation — cyclic in general because of latch feedback;
* the *latch dependency graph*: latch → latch edges whenever a combinational
  path connects them (through gates only), used by the exposure heuristic;
* feedback classification: self-loop latches, latches inside non-trivial
  strongly connected components, acyclicity tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.netlist.circuit import Circuit

__all__ = [
    "signal_graph",
    "latch_dependency_graph",
    "latch_sccs",
    "self_loop_latches",
    "feedback_latches",
    "is_acyclic_sequential",
    "has_combinational_cycle",
    "transitive_fanin",
    "transitive_fanout",
    "combinational_fanin_cone",
]


def signal_graph(circuit: Circuit) -> "nx.DiGraph":
    """The full signal-level dependency graph (latches included)."""
    g = nx.DiGraph()
    g.add_nodes_from(circuit.signals())
    for gate in circuit.gates.values():
        for src in gate.inputs:
            g.add_edge(src, gate.output)
    for latch in circuit.latches.values():
        g.add_edge(latch.data, latch.output)
        if latch.enable is not None:
            g.add_edge(latch.enable, latch.output)
    return g


def has_combinational_cycle(circuit: Circuit) -> bool:
    """True if gates (excluding latches) form a cycle — an invalid circuit."""
    try:
        circuit.topo_gates()
    except ValueError:
        return True
    return False


def _gate_fanout_map(circuit: Circuit) -> Dict[str, List[str]]:
    fanouts: Dict[str, List[str]] = {}
    for gate in circuit.gates.values():
        for src in gate.inputs:
            fanouts.setdefault(src, []).append(gate.output)
    return fanouts


def _combinational_reach_from(
    circuit: Circuit,
    sources: Set[str],
    fanouts: Optional[Dict[str, List[str]]] = None,
) -> Set[str]:
    """Signals reachable from ``sources`` through gates only."""
    if fanouts is None:
        fanouts = _gate_fanout_map(circuit)
    reached: Set[str] = set()
    stack = list(sources)
    while stack:
        sig = stack.pop()
        for out in fanouts.get(sig, ()):
            if out not in reached:
                reached.add(out)
                stack.append(out)
    return reached


def latch_dependency_graph(circuit: Circuit) -> "nx.DiGraph":
    """Latch → latch edges through combinational logic.

    Edge ``p → q`` exists iff latch ``q``'s data or enable input depends
    combinationally on latch ``p``'s output (possibly directly).

    Implemented as one reverse pass: for every gate (in topological order)
    the set of latches in its combinational fanin is the union over its
    fanins' sets, so the whole graph costs one sweep plus set unions.
    """
    g = nx.DiGraph()
    g.add_nodes_from(circuit.latches)
    # Latch sources feeding each signal, propagated through gates.
    latch_ids = {name: i for i, name in enumerate(circuit.latches)}
    sources: Dict[str, int] = {}  # signal -> bitmask of latch ids
    for name, idx in latch_ids.items():
        sources[name] = 1 << idx
    for gate in circuit.topo_gates():
        mask = 0
        for s in gate.inputs:
            mask |= sources.get(s, 0)
        sources[gate.output] = mask
    names = list(circuit.latches)
    for latch in circuit.latches.values():
        mask = sources.get(latch.data, 0)
        if latch.enable is not None:
            mask |= sources.get(latch.enable, 0)
        while mask:
            low = mask & -mask
            g.add_edge(names[low.bit_length() - 1], latch.output)
            mask ^= low
    return g


def latch_sccs(circuit: Circuit) -> List[FrozenSet[str]]:
    """Non-trivial SCCs of the latch dependency graph (incl. self-loops)."""
    g = latch_dependency_graph(circuit)
    sccs = []
    for comp in nx.strongly_connected_components(g):
        comp = frozenset(comp)
        if len(comp) > 1:
            sccs.append(comp)
        else:
            (node,) = comp
            if g.has_edge(node, node):
                sccs.append(comp)
    return sccs


def self_loop_latches(circuit: Circuit) -> Set[str]:
    """Latches whose next-state cone reads their own output."""
    g = latch_dependency_graph(circuit)
    return {n for n in g.nodes if g.has_edge(n, n)}


def feedback_latches(circuit: Circuit) -> Set[str]:
    """All latches on some latch-level cycle."""
    out: Set[str] = set()
    for comp in latch_sccs(circuit):
        out |= comp
    return out


def is_acyclic_sequential(circuit: Circuit) -> bool:
    """True for the paper's 'acyclic sequential circuit' class (Sec. 5)."""
    return not feedback_latches(circuit)


def transitive_fanin(circuit: Circuit, roots: Iterable[str]) -> Set[str]:
    """All signals in the (sequential) transitive fanin of ``roots``."""
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        sig = stack.pop()
        if sig in seen:
            continue
        seen.add(sig)
        stack.extend(circuit.fanin_signals(sig))
    return seen


def transitive_fanout(circuit: Circuit, roots: Iterable[str]) -> Set[str]:
    """All signals in the (sequential) transitive fanout of ``roots``."""
    fanouts = circuit.fanout_map()
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        sig = stack.pop()
        if sig in seen:
            continue
        seen.add(sig)
        stack.extend(fanouts.get(sig, ()))
    return seen


def combinational_fanin_cone(circuit: Circuit, roots: Iterable[str]) -> Set[str]:
    """Signals in the fanin cone of ``roots`` stopping at latches and PIs."""
    seen: Set[str] = set()
    stack = list(roots)
    while stack:
        sig = stack.pop()
        if sig in seen:
            continue
        seen.add(sig)
        if sig in circuit.gates:
            stack.extend(circuit.gates[sig].inputs)
    return seen
