"""BLIF reader and writer.

Supports the classic Berkeley Logic Interchange Format subset used by SIS:
``.model``, ``.inputs``, ``.outputs``, ``.names`` (on-set and off-set
covers), ``.latch``, ``.end``, line continuation with ``\\`` and ``#``
comments.

Load-enabled latches are not expressible in classic BLIF; we use the
extension directive::

    .enable <latch-output> <enable-signal>

which attaches an enable to a previously declared latch.  The writer emits
the same directive, so round-trips preserve enables.  Latch init values are
parsed and ignored (the paper's semantics is unknown power-up state).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.netlist.circuit import Circuit, Latch
from repro.netlist.cube import Sop

__all__ = ["parse_blif", "parse_blif_file", "write_blif", "BlifError"]


class BlifError(Exception):
    """Raised on malformed BLIF input."""


def _logical_lines(text: str) -> List[str]:
    """Join continuations, strip comments, drop blanks."""
    lines: List[str] = []
    pending = ""
    for raw in text.splitlines():
        hash_pos = raw.find("#")
        if hash_pos >= 0:
            raw = raw[:hash_pos]
        raw = raw.rstrip()
        if raw.endswith("\\"):
            pending += raw[:-1] + " "
            continue
        line = (pending + raw).strip()
        pending = ""
        if line:
            lines.append(line)
    if pending.strip():
        lines.append(pending.strip())
    return lines


def parse_blif(text: str) -> Circuit:
    """Parse a single-model BLIF description into a :class:`Circuit`."""
    lines = _logical_lines(text)
    circuit = Circuit()
    outputs: List[str] = []
    # (output, inputs, rows) accumulated per .names block
    names_blocks: List[Tuple[str, Tuple[str, ...], List[Tuple[str, str]]]] = []
    current: Optional[Tuple[str, Tuple[str, ...], List[Tuple[str, str]]]] = None
    pending_enables: List[Tuple[str, str]] = []
    saw_end = False

    def flush_current() -> None:
        nonlocal current
        if current is not None:
            names_blocks.append(current)
            current = None

    for line in lines:
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".model":
                flush_current()
                circuit.name = parts[1] if len(parts) > 1 else "model"
            elif directive == ".inputs":
                flush_current()
                for sig in parts[1:]:
                    circuit.add_input(sig)
            elif directive == ".outputs":
                flush_current()
                outputs.extend(parts[1:])
            elif directive == ".names":
                flush_current()
                if len(parts) < 2:
                    raise BlifError(".names needs at least an output")
                *ins, out = parts[1:]
                current = (out, tuple(ins), [])
            elif directive == ".latch":
                flush_current()
                if len(parts) < 3:
                    raise BlifError(".latch needs input and output")
                data, out = parts[1], parts[2]
                # Optional: [<type> [<control>]] [<init-val>] — ignored.
                circuit.add_latch(out, data)
            elif directive == ".enable":
                flush_current()
                if len(parts) != 3:
                    raise BlifError(".enable needs latch output and enable signal")
                pending_enables.append((parts[1], parts[2]))
            elif directive == ".end":
                flush_current()
                saw_end = True
            elif directive in (".exdc", ".clock", ".wire_load_slope", ".gate"):
                flush_current()  # tolerated, ignored
            else:
                raise BlifError(f"unsupported directive {directive!r}")
        else:
            if current is None:
                raise BlifError(f"cover row outside .names block: {line!r}")
            parts = line.split()
            out, ins, rows = current
            if len(ins) == 0:
                if len(parts) != 1:
                    raise BlifError(f"bad constant row {line!r}")
                rows.append(("", parts[0]))
            else:
                if len(parts) != 2:
                    raise BlifError(f"bad cover row {line!r}")
                rows.append((parts[0], parts[1]))
    flush_current()

    for out, ins, rows in names_blocks:
        circuit.add_gate(out, ins, _rows_to_sop(len(ins), rows))

    for latch_out, enable in pending_enables:
        latch = circuit.latches.get(latch_out)
        if latch is None:
            raise BlifError(f".enable references unknown latch {latch_out!r}")
        circuit.replace_latch(Latch(latch.output, latch.data, enable))

    for out in outputs:
        circuit.add_output(out)
    if not saw_end and not lines:
        raise BlifError("empty BLIF input")
    return circuit


def _rows_to_sop(ninputs: int, rows: List[Tuple[str, str]]) -> Sop:
    """Convert .names rows to an on-set cover."""
    if not rows:
        return Sop.const0(ninputs)
    out_values = {value for _, value in rows}
    if out_values == {"1"}:
        cubes = []
        for pattern, _ in rows:
            if len(pattern) != ninputs:
                raise BlifError(f"cube {pattern!r} arity mismatch")
            cubes.append(pattern)
        return Sop(ninputs, tuple(cubes))
    if out_values == {"0"}:
        # Off-set cover: complement to get the on-set.
        cubes = []
        for pattern, _ in rows:
            if len(pattern) != ninputs:
                raise BlifError(f"cube {pattern!r} arity mismatch")
            cubes.append(pattern)
        return Sop(ninputs, tuple(cubes)).complement()
    raise BlifError("mixed on-set/off-set .names block")


def parse_blif_file(path: Union[str, Path]) -> Circuit:
    """Parse a BLIF file from disk."""
    return parse_blif(Path(path).read_text())


def write_blif(circuit: Circuit) -> str:
    """Serialise a circuit to BLIF text (with ``.enable`` extension)."""
    out: List[str] = [f".model {circuit.name}"]
    if circuit.inputs:
        out.append(".inputs " + " ".join(circuit.inputs))
    if circuit.outputs:
        out.append(".outputs " + " ".join(circuit.outputs))
    for latch in circuit.latches.values():
        out.append(f".latch {latch.data} {latch.output} 3")
        if latch.enable is not None:
            out.append(f".enable {latch.output} {latch.enable}")
    for gate in circuit.gates.values():
        out.append(".names " + " ".join(gate.inputs + (gate.output,)))
        if not gate.sop.cubes:
            # constant 0: an empty block means const 0 in our reader too,
            # but emit an explicit off-set row for SIS compatibility when
            # the gate has no fanins.
            if not gate.inputs:
                out.append("0")
        else:
            for cube in gate.sop.cubes:
                out.append(f"{cube} 1" if gate.inputs else "1")
    out.append(".end")
    return "\n".join(out) + "\n"
