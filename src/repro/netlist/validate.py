"""Structural well-formedness checks for circuits."""

from __future__ import annotations

from typing import List

from repro.netlist.circuit import Circuit

__all__ = ["CircuitError", "validate_circuit"]


class CircuitError(Exception):
    """Raised when a circuit violates a structural invariant."""


def validate_circuit(circuit: Circuit) -> None:
    """Check the circuit's structural invariants; raise on violation.

    Invariants checked:

    * every gate/latch fanin and every primary output is a driven signal;
    * no signal has two drivers (by construction, but re-checked);
    * no combinational cycles (latches are the only legal cycle breakers);
    * gate cover arity matches its fanin count (by construction).
    """
    problems: List[str] = []

    seen = set()
    for sig in circuit.inputs:
        if sig in seen:
            problems.append(f"duplicate driver for input {sig!r}")
        seen.add(sig)
    for sig in circuit.gates:
        if sig in seen:
            problems.append(f"duplicate driver for gate output {sig!r}")
        seen.add(sig)
    for sig in circuit.latches:
        if sig in seen:
            problems.append(f"duplicate driver for latch output {sig!r}")
        seen.add(sig)

    for gate in circuit.gates.values():
        for src in gate.inputs:
            if src not in seen:
                problems.append(f"gate {gate.output!r} reads undriven {src!r}")
    for latch in circuit.latches.values():
        if latch.data not in seen:
            problems.append(f"latch {latch.output!r} reads undriven {latch.data!r}")
        if latch.enable is not None and latch.enable not in seen:
            problems.append(
                f"latch {latch.output!r} enable {latch.enable!r} undriven"
            )
    for out in circuit.outputs:
        if out not in seen:
            problems.append(f"primary output {out!r} is undriven")

    if not problems:
        try:
            circuit.topo_gates()
        except ValueError as exc:
            problems.append(str(exc))

    if problems:
        raise CircuitError(
            f"circuit {circuit.name!r} invalid: " + "; ".join(problems)
        )
