"""Convenience builder for constructing circuits gate-by-gate.

:class:`CircuitBuilder` wraps a :class:`~repro.netlist.circuit.Circuit` and
offers named-gate constructors (``AND``, ``OR``, ``NOT``, ``XOR``, ``MUX``,
...), automatic fresh signal naming, and latch helpers.  All constructors
return the output signal name so calls compose naturally::

    b = CircuitBuilder("toy")
    a, c = b.inputs("a", "c")
    q = b.latch(b.AND(a, c))
    b.output(b.XOR(q, a))
    circuit = b.circuit
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.cube import Sop

__all__ = ["CircuitBuilder"]


class CircuitBuilder:
    """Fluent construction API over :class:`Circuit`."""

    def __init__(self, name: str = "circuit", circuit: Optional[Circuit] = None) -> None:
        self.circuit = circuit if circuit is not None else Circuit(name)
        self._counter = 0

    # ------------------------------------------------------------------
    # ports
    # ------------------------------------------------------------------
    def input(self, name: str) -> str:
        """Declare one primary input."""
        return self.circuit.add_input(name)

    def inputs(self, *names: str) -> Tuple[str, ...]:
        """Declare several primary inputs; returns their names."""
        return tuple(self.circuit.add_input(n) for n in names)

    def input_bus(self, base: str, width: int) -> List[str]:
        """Declare ``width`` inputs named ``base0..``."""
        return [self.circuit.add_input(f"{base}{i}") for i in range(width)]

    def output(self, signal: str, name: Optional[str] = None) -> str:
        """Mark ``signal`` as a primary output (optionally via a buffer)."""
        if name is None or name == signal:
            self.circuit.add_output(signal)
            return signal
        self.gate(Sop.and_all(1), [signal], name=name)
        self.circuit.add_output(name)
        return name

    # ------------------------------------------------------------------
    # names
    # ------------------------------------------------------------------
    def fresh(self, base: str = "n") -> str:
        """A fresh internal signal name."""
        while True:
            self._counter += 1
            candidate = f"{base}{self._counter}"
            if self.circuit.driver_kind(candidate) is None:
                return candidate

    # ------------------------------------------------------------------
    # gates
    # ------------------------------------------------------------------
    def gate(self, sop: Sop, fanins: Sequence[str], name: Optional[str] = None) -> str:
        """Add a gate with the given cover; returns its output name."""
        out = name if name is not None else self.fresh()
        self.circuit.add_gate(out, tuple(fanins), sop)
        return out

    def CONST0(self, name: Optional[str] = None) -> str:
        """Constant-0 gate."""
        return self.gate(Sop.const0(0), (), name=name)

    def CONST1(self, name: Optional[str] = None) -> str:
        """Constant-1 gate."""
        return self.gate(Sop.const1(0), (), name=name)

    def BUF(self, a: str, name: Optional[str] = None) -> str:
        """Identity buffer."""
        return self.gate(Sop.and_all(1), [a], name=name)

    def NOT(self, a: str, name: Optional[str] = None) -> str:
        """Inverter."""
        return self.gate(Sop.and_all(1, [False]), [a], name=name)

    def AND(self, *fanins: str, name: Optional[str] = None) -> str:
        """Conjunction of the fanins."""
        if not fanins:
            return self.CONST1(name)
        if len(fanins) == 1:
            return self.BUF(fanins[0], name)
        return self.gate(Sop.and_all(len(fanins)), fanins, name=name)

    def OR(self, *fanins: str, name: Optional[str] = None) -> str:
        """Disjunction of the fanins."""
        if not fanins:
            return self.CONST0(name)
        if len(fanins) == 1:
            return self.BUF(fanins[0], name)
        return self.gate(Sop.or_all(len(fanins)), fanins, name=name)

    def NAND(self, *fanins: str, name: Optional[str] = None) -> str:
        """Complemented conjunction."""
        if not fanins:
            return self.CONST0(name)
        # NAND cover: OR of complemented literals.
        return self.gate(
            Sop.or_all(len(fanins), [False] * len(fanins)), fanins, name=name
        )

    def NOR(self, *fanins: str, name: Optional[str] = None) -> str:
        """Complemented disjunction."""
        if not fanins:
            return self.CONST1(name)
        return self.gate(
            Sop.and_all(len(fanins), [False] * len(fanins)), fanins, name=name
        )

    def XOR(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Two-input exclusive-or."""
        return self.gate(Sop.xor2(), [a, b], name=name)

    def XNOR(self, a: str, b: str, name: Optional[str] = None) -> str:
        """Two-input complemented exclusive-or."""
        return self.gate(Sop.xnor2(), [a, b], name=name)

    def MUX(self, sel: str, a: str, b: str, name: Optional[str] = None) -> str:
        """``sel ? a : b``."""
        return self.gate(Sop.mux(), [sel, a, b], name=name)

    def ANDN(self, a: str, b: str, name: Optional[str] = None) -> str:
        """``a AND NOT b``."""
        return self.gate(Sop(2, ("10",)), [a, b], name=name)

    def IMPLIES(self, a: str, b: str, name: Optional[str] = None) -> str:
        """``NOT a OR b``."""
        return self.gate(Sop(2, ("0-", "-1")), [a, b], name=name)

    def xor_tree(self, fanins: Sequence[str], name: Optional[str] = None) -> str:
        """Balanced XOR over arbitrarily many fanins."""
        level = list(fanins)
        if not level:
            return self.CONST0(name)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                last_pair = len(level) <= 2
                nxt.append(
                    self.XOR(level[i], level[i + 1], name=name if last_pair else None)
                )
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        if name is not None and level[0] != name:
            return self.BUF(level[0], name)
        return level[0]

    # ------------------------------------------------------------------
    # latches
    # ------------------------------------------------------------------
    def latch(
        self, data: str, enable: Optional[str] = None, name: Optional[str] = None
    ) -> str:
        """Add a latch on ``data`` (optionally load-enabled)."""
        out = name if name is not None else self.fresh("q")
        self.circuit.add_latch(out, data, enable)
        return out

    def latch_chain(
        self, data: str, depth: int, enable: Optional[str] = None, base: str = "q"
    ) -> List[str]:
        """A chain of ``depth`` latches; returns all stage outputs."""
        outs = []
        current = data
        for _ in range(depth):
            current = self.latch(current, enable, name=self.fresh(base))
            outs.append(current)
        return outs
