"""Cube and sum-of-products (SOP) covers with BLIF ``.names`` semantics.

A *cube* over ``n`` positional inputs is a string of length ``n`` over the
alphabet ``{'0', '1', '-'}``.  A :class:`Sop` is an on-set cover: the function
is 1 exactly when some cube matches the input assignment.  The empty cover is
constant 0; a cover containing the all-don't-care cube is constant 1 (for
``n == 0`` the all-don't-care cube is the empty string).

This module provides the cube algebra used throughout the synthesis and
verification code: evaluation (bit-parallel), cofactors, containment,
complementation, tautology checking, a light-weight two-level minimiser, and
the literal-set view used by algebraic division.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Sop",
    "cube_and",
    "cube_contains",
    "cube_distance",
    "cube_literals",
    "cube_from_literals",
]


def _check_cube(cube: str, ninputs: int) -> None:
    if len(cube) != ninputs:
        raise ValueError(f"cube {cube!r} has length {len(cube)}, expected {ninputs}")
    for ch in cube:
        if ch not in "01-":
            raise ValueError(f"invalid cube character {ch!r} in {cube!r}")


def cube_and(a: str, b: str) -> Optional[str]:
    """Intersection of two cubes; ``None`` if they are disjoint."""
    out = []
    for ca, cb in zip(a, b):
        if ca == "-":
            out.append(cb)
        elif cb == "-" or ca == cb:
            out.append(ca)
        else:
            return None
    return "".join(out)


def cube_contains(big: str, small: str) -> bool:
    """True if cube ``big`` contains cube ``small`` (as point sets)."""
    for cb, cs in zip(big, small):
        if cb != "-" and cb != cs:
            return False
    return True


def cube_distance(a: str, b: str) -> int:
    """Number of positions where the cubes conflict (0/1 vs 1/0)."""
    return sum(1 for ca, cb in zip(a, b) if ca != "-" and cb != "-" and ca != cb)


def cube_literals(cube: str) -> FrozenSet[int]:
    """Literal-set view of a cube for algebraic operations.

    Literal encoding: positive literal of input ``i`` is ``2*i + 1``, negative
    literal is ``2*i``.  Don't-care positions contribute nothing.
    """
    lits = set()
    for i, ch in enumerate(cube):
        if ch == "1":
            lits.add(2 * i + 1)
        elif ch == "0":
            lits.add(2 * i)
    return frozenset(lits)


def cube_from_literals(lits: Iterable[int], ninputs: int) -> str:
    """Inverse of :func:`cube_literals`."""
    chars = ["-"] * ninputs
    for lit in lits:
        i, phase = divmod(lit, 2)
        if i >= ninputs:
            raise ValueError(f"literal {lit} out of range for {ninputs} inputs")
        want = "1" if phase else "0"
        if chars[i] != "-" and chars[i] != want:
            raise ValueError("contradictory literals for the same input")
        chars[i] = want
    return "".join(chars)


@dataclass(frozen=True)
class Sop:
    """An on-set sum-of-products cover over ``ninputs`` positional inputs."""

    ninputs: int
    cubes: Tuple[str, ...]

    def __post_init__(self) -> None:
        for cube in self.cubes:
            _check_cube(cube, self.ninputs)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def const0(ninputs: int = 0) -> "Sop":
        """The constant-0 cover (empty on-set)."""
        return Sop(ninputs, ())

    @staticmethod
    def const1(ninputs: int = 0) -> "Sop":
        """The constant-1 cover (one all-don't-care cube)."""
        return Sop(ninputs, ("-" * ninputs,))

    @staticmethod
    def literal(ninputs: int, index: int, phase: bool = True) -> "Sop":
        """The single-literal function ``x_index`` (or its complement)."""
        if not 0 <= index < ninputs:
            raise ValueError(f"literal index {index} out of range")
        chars = ["-"] * ninputs
        chars[index] = "1" if phase else "0"
        return Sop(ninputs, ("".join(chars),))

    @staticmethod
    def and_all(ninputs: int, phases: Optional[Sequence[bool]] = None) -> "Sop":
        """AND of all inputs, each optionally complemented."""
        if phases is None:
            phases = [True] * ninputs
        cube = "".join("1" if p else "0" for p in phases)
        return Sop(ninputs, (cube,))

    @staticmethod
    def or_all(ninputs: int, phases: Optional[Sequence[bool]] = None) -> "Sop":
        """OR of all inputs, each optionally complemented."""
        if phases is None:
            phases = [True] * ninputs
        cubes = []
        for i, p in enumerate(phases):
            chars = ["-"] * ninputs
            chars[i] = "1" if p else "0"
            cubes.append("".join(chars))
        return Sop(ninputs, tuple(cubes))

    @staticmethod
    def xor2() -> "Sop":
        """Two-input exclusive-or cover."""
        return Sop(2, ("10", "01"))

    @staticmethod
    def xnor2() -> "Sop":
        """Two-input complemented exclusive-or cover."""
        return Sop(2, ("11", "00"))

    @staticmethod
    def mux() -> "Sop":
        """2:1 multiplexer over inputs ``(sel, a, b)``: sel ? a : b."""
        return Sop(3, ("11-", "0-1"))

    @staticmethod
    def from_truth_table(ninputs: int, bits: int) -> "Sop":
        """Build a (minterm-canonical) cover from a truth-table integer.

        Bit ``m`` of ``bits`` is the function value on the minterm whose
        input ``i`` equals bit ``i`` of ``m`` (input 0 is the LSB).
        """
        cubes = []
        for m in range(1 << ninputs):
            if (bits >> m) & 1:
                cube = "".join("1" if (m >> i) & 1 else "0" for i in range(ninputs))
                cubes.append(cube)
        return Sop(ninputs, tuple(cubes))

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_cubes(self) -> int:
        """Number of cubes in the cover."""
        return len(self.cubes)

    @property
    def num_literals(self) -> int:
        """Total literal count (the SIS cost measure)."""
        return sum(1 for cube in self.cubes for ch in cube if ch != "-")

    def is_const0(self) -> bool:
        """Syntactic (and semantic) zero test: empty cover."""
        return not self.cubes

    def is_const1_syntactic(self) -> bool:
        """True if some cube is the universal cube (sufficient, not necessary)."""
        return any(all(ch == "-" for ch in cube) for cube in self.cubes)

    def support(self) -> FrozenSet[int]:
        """Indices of inputs that appear in some cube (syntactic support)."""
        return frozenset(
            i for cube in self.cubes for i, ch in enumerate(cube) if ch != "-"
        )

    def uses_input(self, index: int) -> bool:
        """True if some cube constrains input ``index``."""
        return any(cube[index] != "-" for cube in self.cubes)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def eval_bool(self, assignment: Sequence[bool]) -> bool:
        """Evaluate on a single Boolean assignment."""
        if len(assignment) != self.ninputs:
            raise ValueError("assignment length mismatch")
        for cube in self.cubes:
            ok = True
            for ch, val in zip(cube, assignment):
                if ch == "1" and not val:
                    ok = False
                    break
                if ch == "0" and val:
                    ok = False
                    break
            if ok:
                return True
        return False

    def eval_parallel(self, words: Sequence[int], mask: int) -> int:
        """Bit-parallel evaluation.

        ``words[i]`` holds one bit per pattern for input ``i``; ``mask`` is an
        all-ones integer covering the pattern width.  Returns the output word.
        """
        result = 0
        for cube in self.cubes:
            term = mask
            for i, ch in enumerate(cube):
                if ch == "1":
                    term &= words[i]
                elif ch == "0":
                    term &= ~words[i]
                if not term:
                    break
            result |= term & mask
            if result == mask:
                break
        return result & mask

    def truth_table(self) -> int:
        """Truth table as an integer (only sensible for small ``ninputs``)."""
        if self.ninputs > 20:
            raise ValueError("truth table too large")
        bits = 0
        for m in range(1 << self.ninputs):
            assignment = [(m >> i) & 1 == 1 for i in range(self.ninputs)]
            if self.eval_bool(assignment):
                bits |= 1 << m
        return bits

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def cofactor(self, index: int, phase: bool) -> "Sop":
        """Shannon cofactor with respect to input ``index`` (same arity)."""
        want = "1" if phase else "0"
        other = "0" if phase else "1"
        cubes = []
        for cube in self.cubes:
            ch = cube[index]
            if ch == other:
                continue
            cubes.append(cube[:index] + "-" + cube[index + 1 :])
        return Sop(self.ninputs, tuple(cubes))

    def restrict(self, assignment: Dict[int, bool]) -> "Sop":
        """Cofactor against several inputs at once."""
        result = self
        for index, phase in assignment.items():
            result = result.cofactor(index, phase)
        return result

    def remove_input(self, index: int) -> "Sop":
        """Drop a (non-support) input column, renumbering later inputs."""
        if self.uses_input(index):
            raise ValueError(f"input {index} is in the support; cofactor first")
        cubes = tuple(cube[:index] + cube[index + 1 :] for cube in self.cubes)
        return Sop(self.ninputs - 1, cubes)

    def permute(self, new_of_old: Sequence[int], new_ninputs: int) -> "Sop":
        """Re-map input positions: old input ``i`` becomes ``new_of_old[i]``."""
        cubes = []
        for cube in self.cubes:
            chars = ["-"] * new_ninputs
            for i, ch in enumerate(cube):
                if ch != "-":
                    j = new_of_old[i]
                    if chars[j] != "-" and chars[j] != ch:
                        raise ValueError("permutation merges conflicting literals")
                    chars[j] = ch
            cubes.append("".join(chars))
        return Sop(new_ninputs, tuple(cubes))

    def negate_input(self, index: int) -> "Sop":
        """Complement the polarity of one input."""
        flip = {"0": "1", "1": "0", "-": "-"}
        cubes = tuple(
            cube[:index] + flip[cube[index]] + cube[index + 1 :] for cube in self.cubes
        )
        return Sop(self.ninputs, cubes)

    # ------------------------------------------------------------------
    # Boolean operations (same arity)
    # ------------------------------------------------------------------
    def or_(self, other: "Sop") -> "Sop":
        """Disjunction of two same-arity covers (cube union)."""
        self._check_same_arity(other)
        return Sop(self.ninputs, self.cubes + other.cubes)

    def and_(self, other: "Sop") -> "Sop":
        """Conjunction of two same-arity covers (pairwise cube products)."""
        self._check_same_arity(other)
        cubes = []
        for a in self.cubes:
            for b in other.cubes:
                c = cube_and(a, b)
                if c is not None:
                    cubes.append(c)
        return Sop(self.ninputs, tuple(cubes))

    def complement(self) -> "Sop":
        """Exact complement via recursive Shannon expansion."""
        return _complement(self)

    def xor(self, other: "Sop") -> "Sop":
        """Exclusive-or of two same-arity covers."""
        self._check_same_arity(other)
        return self.and_(other.complement()).or_(other.and_(self.complement()))

    # ------------------------------------------------------------------
    # semantic queries
    # ------------------------------------------------------------------
    def is_tautology(self) -> bool:
        """Semantic constant-1 test (unate-reduction recursion)."""
        return _tautology(self)

    def implies(self, other: "Sop") -> bool:
        """True if this function is contained in ``other``."""
        self._check_same_arity(other)
        return self.and_(other.complement()).is_const0_semantic()

    def is_const0_semantic(self) -> bool:
        """Semantic zero test (every cube covers at least one minterm)."""
        return not self.cubes

    def equivalent(self, other: "Sop") -> bool:
        """Semantic equality of two same-arity covers."""
        self._check_same_arity(other)
        return self.implies(other) and other.implies(self)

    # ------------------------------------------------------------------
    # minimisation
    # ------------------------------------------------------------------
    def scc_minimal(self) -> "Sop":
        """Remove single-cube-contained cubes (keeps semantics)."""
        kept: List[str] = []
        for cube in sorted(set(self.cubes), key=lambda c: (c.count("-"), c)):
            if not any(cube_contains(k, cube) for k in kept):
                kept.append(cube)
        # A later (larger) cube may swallow an earlier one; second pass.
        final: List[str] = []
        for i, cube in enumerate(kept):
            if not any(j != i and cube_contains(other, cube) for j, other in enumerate(kept)):
                final.append(cube)
        return Sop(self.ninputs, tuple(final))

    def minimized(self) -> "Sop":
        """Light-weight two-level minimisation (espresso-lite).

        Iterates distance-1 cube merging, literal expansion against the cover,
        and redundant-cube removal until a fixpoint.  Not guaranteed minimum,
        but semantics-preserving and effective in practice.
        """
        return _minimize(self)

    # ------------------------------------------------------------------
    def _check_same_arity(self, other: "Sop") -> None:
        if self.ninputs != other.ninputs:
            raise ValueError("arity mismatch between covers")

    def __str__(self) -> str:
        if not self.cubes:
            return f"<Sop/{self.ninputs} const0>"
        return f"<Sop/{self.ninputs} {' + '.join(self.cubes)}>"


def _select_binate_input(sop: Sop) -> Optional[int]:
    """Pick the most binate input, or ``None`` if the cover is unate."""
    best = None
    best_score = -1
    for i in range(sop.ninputs):
        pos = sum(1 for cube in sop.cubes if cube[i] == "1")
        neg = sum(1 for cube in sop.cubes if cube[i] == "0")
        if pos and neg:
            score = pos + neg
            if score > best_score:
                best_score = score
                best = i
    return best


def _tautology(sop: Sop) -> bool:
    if sop.is_const1_syntactic():
        return True
    if not sop.cubes:
        return sop.ninputs == 0 and False
    binate = _select_binate_input(sop)
    if binate is None:
        # Unate cover: tautology iff it contains the universal cube
        # (classic unate-reduction result).
        return sop.is_const1_syntactic()
    return _tautology(sop.cofactor(binate, True)) and _tautology(
        sop.cofactor(binate, False)
    )


def _complement(sop: Sop) -> Sop:
    if not sop.cubes:
        return Sop.const1(sop.ninputs)
    if sop.is_const1_syntactic():
        return Sop.const0(sop.ninputs)
    if len(sop.cubes) == 1:
        # De Morgan on a single cube.
        cube = sop.cubes[0]
        cubes = []
        for i, ch in enumerate(cube):
            if ch == "-":
                continue
            chars = ["-"] * sop.ninputs
            chars[i] = "0" if ch == "1" else "1"
            cubes.append("".join(chars))
        return Sop(sop.ninputs, tuple(cubes))
    index = _select_binate_input(sop)
    if index is None:
        # Unate: pick any support input to split on.
        support = sop.support()
        if not support:
            return Sop.const0(sop.ninputs)
        index = min(support)
    pos = _complement(sop.cofactor(index, True))
    neg = _complement(sop.cofactor(index, False))
    lit_pos = Sop.literal(sop.ninputs, index, True)
    lit_neg = Sop.literal(sop.ninputs, index, False)
    return lit_pos.and_(pos).or_(lit_neg.and_(neg)).scc_minimal()


def _cube_redundant(sop: Sop, skip: int) -> bool:
    """Is cube ``skip`` contained in the rest of the cover?"""
    cube = sop.cubes[skip]
    rest = [c for i, c in enumerate(sop.cubes) if i != skip]
    # Cube is redundant iff cofactoring the rest against it is a tautology.
    assignment = {i: ch == "1" for i, ch in enumerate(cube) if ch != "-"}
    reduced = Sop(sop.ninputs, tuple(rest)).restrict(assignment)
    return _tautology(reduced)


def _try_expand_cube(sop: Sop, index: int) -> Optional[str]:
    """Try removing literals from cube ``index`` while staying in the cover."""
    cube = sop.cubes[index]
    changed = False
    for pos in range(len(cube)):
        if cube[pos] == "-":
            continue
        candidate = cube[:pos] + "-" + cube[pos + 1 :]
        # The expansion is valid iff the candidate is contained in the cover.
        assignment = {i: ch == "1" for i, ch in enumerate(candidate) if ch != "-"}
        if _tautology(sop.restrict(assignment)):
            cube = candidate
            changed = True
    return cube if changed else None


def _minimize(sop: Sop) -> Sop:
    current = sop.scc_minimal()
    for _ in range(8):  # fixpoint with a hard bound
        changed = False
        # 1. distance-1 merges: a cube pair differing in one opposed literal.
        cubes = list(current.cubes)
        merged: List[str] = []
        used = [False] * len(cubes)
        for i in range(len(cubes)):
            if used[i]:
                continue
            for j in range(i + 1, len(cubes)):
                if used[j]:
                    continue
                if cube_distance(cubes[i], cubes[j]) == 1:
                    a, b = cubes[i], cubes[j]
                    if all(
                        ca == cb or (ca != "-" and cb != "-" and ca != cb)
                        for ca, cb in zip(a, b)
                    ):
                        # identical except the single conflicting position
                        pos = next(
                            k
                            for k, (ca, cb) in enumerate(zip(a, b))
                            if ca != "-" and cb != "-" and ca != cb
                        )
                        merged.append(a[:pos] + "-" + a[pos + 1 :])
                        used[i] = used[j] = True
                        changed = True
                        break
            if not used[i]:
                merged.append(cubes[i])
                used[i] = True
        current = Sop(current.ninputs, tuple(merged)).scc_minimal()
        # 2. literal expansion
        expanded: List[str] = []
        for i in range(len(current.cubes)):
            bigger = _try_expand_cube(current, i)
            if bigger is not None:
                expanded.append(bigger)
                changed = True
            else:
                expanded.append(current.cubes[i])
        current = Sop(current.ninputs, tuple(expanded)).scc_minimal()
        # 3. redundant-cube removal
        i = 0
        while i < len(current.cubes):
            if len(current.cubes) > 1 and _cube_redundant(current, i):
                current = Sop(
                    current.ninputs,
                    tuple(c for j, c in enumerate(current.cubes) if j != i),
                )
                changed = True
            else:
                i += 1
        if not changed:
            break
    return current
