"""Circuit data model and structural utilities.

This subpackage provides the netlist substrate used by every other part of
the library:

* :mod:`repro.netlist.cube` — cube/SOP covers with BLIF ``.names`` semantics;
* :mod:`repro.netlist.circuit` — :class:`Circuit`, :class:`Gate`,
  :class:`Latch` (edge-triggered, optionally load-enabled);
* :mod:`repro.netlist.build` — :class:`CircuitBuilder` convenience API;
* :mod:`repro.netlist.blif` — BLIF reader/writer;
* :mod:`repro.netlist.graph` — dependency graphs and feedback analysis;
* :mod:`repro.netlist.transform` — structural edits (exposure, miters, cores);
* :mod:`repro.netlist.validate` — structural well-formedness checks.
"""

from repro.netlist.cube import Sop
from repro.netlist.circuit import Circuit, Gate, Latch
from repro.netlist.build import CircuitBuilder
from repro.netlist.blif import parse_blif, parse_blif_file, write_blif
from repro.netlist.validate import validate_circuit, CircuitError

__all__ = [
    "Sop",
    "Circuit",
    "Gate",
    "Latch",
    "CircuitBuilder",
    "parse_blif",
    "parse_blif_file",
    "write_blif",
    "validate_circuit",
    "CircuitError",
]
