"""ISCAS'89 ``.bench`` format reader and writer.

The s-series circuits the paper evaluates are distributed in the bench
format::

    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G11 = NOT(G5)
    G14 = NAND(G0, G10)
    G17 = AND(G11, G14)

Supported functions: AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF/BUFF, DFF,
and the non-standard ``DFFE(data, enable)`` extension for load-enabled
latches (mirroring the BLIF ``.enable`` extension).  Comments start with
``#``.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.netlist.circuit import Circuit
from repro.netlist.cube import Sop

__all__ = ["parse_bench", "parse_bench_file", "write_bench", "BenchError"]


class BenchError(Exception):
    """Raised on malformed .bench input."""


_LINE = re.compile(
    r"^\s*(?:(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)|"
    r"([A-Za-z0-9_.\[\]$-]+)\s*=\s*([A-Za-z]+)\s*\(([^)]*)\))\s*$"
)


def _sop_for(function: str, arity: int) -> Sop:
    fn = function.upper()
    if fn == "AND":
        return Sop.and_all(arity)
    if fn == "NAND":
        return Sop.or_all(arity, [False] * arity)
    if fn == "OR":
        return Sop.or_all(arity)
    if fn == "NOR":
        return Sop.and_all(arity, [False] * arity)
    if fn == "NOT":
        if arity != 1:
            raise BenchError("NOT takes one operand")
        return Sop.and_all(1, [False])
    if fn in ("BUF", "BUFF"):
        if arity != 1:
            raise BenchError("BUF takes one operand")
        return Sop.and_all(1)
    if fn in ("XOR", "XNOR"):
        # Parity over all operands (bench files use 2-input mostly, but
        # multi-input parity appears in some derivatives).
        bits = 0
        for m in range(1 << arity):
            ones = bin(m).count("1")
            value = ones % 2 == 1
            if fn == "XNOR":
                value = not value
            if value:
                bits |= 1 << m
        return Sop.from_truth_table(arity, bits)
    raise BenchError(f"unsupported function {function!r}")


def parse_bench(text: str) -> Circuit:
    """Parse a .bench description into a :class:`Circuit`."""
    circuit = Circuit("bench")
    outputs: List[str] = []
    pending_gates: List[Tuple[str, str, List[str]]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _LINE.match(line)
        if m is None:
            raise BenchError(f"line {lineno}: cannot parse {raw!r}")
        if m.group(1):
            port, name = m.group(1), m.group(2)
            if port == "INPUT":
                circuit.add_input(name)
            else:
                outputs.append(name)
            continue
        target, function, operand_text = m.group(3), m.group(4), m.group(5)
        operands = [
            op.strip() for op in operand_text.split(",") if op.strip()
        ]
        pending_gates.append((target, function, operands))

    for target, function, operands in pending_gates:
        fn = function.upper()
        if fn == "DFF":
            if len(operands) != 1:
                raise BenchError(f"{target}: DFF takes one operand")
            circuit.add_latch(target, operands[0])
        elif fn == "DFFE":
            if len(operands) != 2:
                raise BenchError(f"{target}: DFFE takes (data, enable)")
            circuit.add_latch(target, operands[0], operands[1])
        else:
            circuit.add_gate(target, tuple(operands), _sop_for(fn, len(operands)))
    for out in outputs:
        circuit.add_output(out)
    return circuit


def parse_bench_file(path: Union[str, Path]) -> Circuit:
    """Parse a .bench file; the model name is the stem."""
    circuit = parse_bench(Path(path).read_text())
    circuit.name = Path(path).stem
    return circuit


_WRITEABLE = {
    ("and",): "AND",
    ("or",): "OR",
    ("nand",): "NAND",
    ("nor",): "NOR",
    ("not",): "NOT",
    ("buf",): "BUFF",
}


def _classify_gate(sop: Sop) -> str:
    n = sop.ninputs
    if n == 0:
        raise BenchError("bench format has no constant cells; sweep first")
    if sop == Sop.and_all(n):
        return "AND" if n > 1 else "BUFF"
    if sop == Sop.or_all(n):
        return "OR" if n > 1 else "BUFF"
    if sop == Sop.or_all(n, [False] * n):
        return "NAND" if n > 1 else "NOT"
    if sop == Sop.and_all(n, [False] * n):
        return "NOR" if n > 1 else "NOT"
    if n <= 8:
        bits = sop.truth_table()
        xor_bits = 0
        for m in range(1 << n):
            if bin(m).count("1") % 2 == 1:
                xor_bits |= 1 << m
        if bits == xor_bits:
            return "XOR"
        if bits == (~xor_bits & ((1 << (1 << n)) - 1)):
            return "XNOR"
    raise BenchError(
        f"gate cover {sop} is not expressible as a single bench function; "
        "tech-decompose first"
    )


def write_bench(circuit: Circuit) -> str:
    """Serialise a circuit to .bench (gates must be simple functions)."""
    lines: List[str] = [f"# {circuit.name}"]
    for pi in circuit.inputs:
        lines.append(f"INPUT({pi})")
    for po in circuit.outputs:
        lines.append(f"OUTPUT({po})")
    for latch in circuit.latches.values():
        if latch.enable is None:
            lines.append(f"{latch.output} = DFF({latch.data})")
        else:
            lines.append(
                f"{latch.output} = DFFE({latch.data}, {latch.enable})"
            )
    for gate in circuit.gates.values():
        fn = _classify_gate(gate.sop)
        lines.append(f"{gate.output} = {fn}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"
