"""Symbolic reachability over a sequential circuit (BDD-based).

Implements the classic implicit state enumeration [13, 14]: next-state
functions become BDDs over (state, input) variables; the image of a state
set is computed by constraining the transition relation and quantifying
state and input variables.  Load-enabled latches use their effective
next-state function ``e·d + ē·x``.

:func:`check_reset_equivalence` traverses the product machine from a given
initial state and checks the inequality output stays 0 — the baseline the
paper compares against (only applicable when a reset state exists; the
benchmark uses the all-zero state for both machines, which is valid for
comparing *costs* and for circuits whose equivalence is state-wise).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.bdd.bdd import BDD
from repro.bdd.circuit2bdd import circuit_bdds
from repro.netlist.circuit import Circuit
from repro.seqver.product import product_machine

__all__ = ["reachable_states", "check_reset_equivalence", "ReachResult"]


@dataclass
class ReachResult:
    equivalent: bool
    iterations: int
    reachable_count: Optional[int]
    time_seconds: float
    bdd_nodes: int


def _next_state_bdds(
    circuit: Circuit, manager: BDD
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """(next-state BDD per latch, output BDD per PO)."""
    nodes = circuit_bdds(circuit, manager)
    next_state: Dict[str, int] = {}
    for latch in circuit.latches.values():
        f = nodes[latch.data]
        if latch.enable is not None:
            x = manager.add_var(latch.output)
            f = manager.ite(nodes[latch.enable], f, x)
        next_state[latch.output] = f
    outputs = {o: nodes[o] for o in circuit.outputs}
    return next_state, outputs


def reachable_states(
    circuit: Circuit,
    initial: Optional[Mapping[str, bool]] = None,
    max_iterations: int = 10000,
    node_limit: int = 2_000_000,
) -> Tuple[BDD, int, int]:
    """Fixed-point reachability; returns (manager, reached BDD, iterations).

    ``initial`` defaults to the all-zero state.  Raises ``MemoryError`` when
    the BDD grows past ``node_limit`` (the blow-up the paper's approach
    avoids).
    """
    manager = BDD()
    next_state, _ = _next_state_bdds(circuit, manager)
    latch_names = list(circuit.latches)
    # Primed variables for image computation.
    primed = {l: manager.add_var("__p_" + l) for l in latch_names}
    if initial is None:
        initial = {l: False for l in latch_names}
    init = manager.ONE
    for l in latch_names:
        v = manager.var(l)
        init = manager.apply_and(
            init, v if initial.get(l, False) else manager.apply_not(v)
        )
    # Transition relation.
    trans = manager.ONE
    for l in latch_names:
        trans = manager.apply_and(
            trans, manager.apply_xnor(primed[l], next_state[l])
        )
        if manager.num_nodes() > node_limit:
            raise MemoryError("transition relation exceeded the node limit")
    quantify_out = list(circuit.inputs) + latch_names
    reached = init
    frontier = init
    iterations = 0
    while frontier != manager.ZERO and iterations < max_iterations:
        iterations += 1
        img_primed = manager.exists(
            manager.apply_and(trans, frontier), quantify_out
        )
        # Rename primed -> unprimed.
        img = img_primed
        for l in latch_names:
            img = manager.compose(img, "__p_" + l, manager.var(l))
        new_reached = manager.apply_or(reached, img)
        if manager.num_nodes() > node_limit:
            raise MemoryError("reachable-set BDD exceeded the node limit")
        frontier = manager.apply_and(img, manager.apply_not(reached))
        reached = new_reached
    return manager, reached, iterations


def check_reset_equivalence(
    c1: Circuit,
    c2: Circuit,
    initial: Optional[Mapping[str, bool]] = None,
    node_limit: int = 2_000_000,
) -> ReachResult:
    """Product-machine traversal equivalence check from a reset state."""
    t0 = time.perf_counter()
    product = product_machine(c1, c2)
    if initial is None:
        initial = {l: False for l in product.latches}
    manager, reached, iterations = reachable_states(
        product, initial, node_limit=node_limit
    )
    # Outputs must agree in every reachable state for every input.
    nodes = circuit_bdds(product, manager)
    neq = nodes["__neq"]
    bad = manager.apply_and(reached, neq)
    equivalent = bad == manager.ZERO
    count: Optional[int] = None
    try:
        count = manager.sat_count(reached) >> (
            len(manager.var_names) - len(product.latches)
        )
    except (ValueError, OverflowError):  # pragma: no cover
        count = None
    return ReachResult(
        equivalent,
        iterations,
        count,
        time.perf_counter() - t0,
        manager.num_nodes(),
    )
