"""Product machine construction."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.cube import Sop

__all__ = ["product_machine"]


def product_machine(c1: Circuit, c2: Circuit, name: str = "product") -> Circuit:
    """Compose two sequential machines over shared inputs.

    The product has one output ``__neq`` that is 1 whenever some output
    pair differs.  Internal signals are prefixed ``p1_`` / ``p2_``.
    """
    if set(c1.inputs) != set(c2.inputs):
        raise ValueError("input sets differ")
    if set(c1.outputs) != set(c2.outputs):
        raise ValueError("output sets differ")
    keep = set(c1.inputs)
    a = c1.with_prefix("p1_", keep=keep)
    b = c2.with_prefix("p2_", keep=keep)
    m = Circuit(name)
    m.inputs = list(c1.inputs)
    m._input_set = set(m.inputs)
    m.gates = dict(a.gates)
    m.gates.update(b.gates)
    m.latches = dict(a.latches)
    m.latches.update(b.latches)
    xors: List[str] = []
    for i, out in enumerate(sorted(set(c1.outputs))):
        s1 = "p1_" + out if ("p1_" + out) in m.gates or ("p1_" + out) in m.latches else out
        s2 = "p2_" + out if ("p2_" + out) in m.gates or ("p2_" + out) in m.latches else out
        x = f"__pm_x{i}"
        m.add_gate(x, (s1, s2), Sop.xor2())
        xors.append(x)
    if not xors:
        m.add_gate("__neq", (), Sop.const0(0))
    elif len(xors) == 1:
        m.add_gate("__neq", (xors[0],), Sop.and_all(1))
    else:
        m.add_gate("__neq", tuple(xors), Sop.or_all(len(xors)))
    m.add_output("__neq")
    return m
