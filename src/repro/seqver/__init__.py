"""Baseline sequential verification by symbolic state-space traversal.

This is the *comparison point* of the paper's Sec. 8.1(3): classic
product-machine reachability with BDDs [13, 14].  It is exponentially more
expensive than the paper's combinational reduction on the circuits the
flow produces, which the verification-time benchmark demonstrates.
"""

from repro.seqver.product import product_machine
from repro.seqver.reach import reachable_states, check_reset_equivalence

__all__ = ["product_machine", "reachable_states", "check_reset_equivalence"]
