"""Variable-order improvement for circuit BDDs.

The manager in :mod:`repro.bdd.bdd` uses a static order fixed at variable
creation.  This module provides order *selection*: build the same functions
under several candidate orders and keep the smallest result —

* the fanin-DFS order (the classic netlist heuristic),
* its reverse,
* a breadth-first (level-interleaved) order,
* optionally caller-supplied orders,

plus :func:`transfer`, which rebuilds BDD nodes under a different manager
(used by the search and useful on its own for isolating sub-problems).

A full dynamic sifting implementation is intentionally out of scope: the
paper's flow only needs BDDs for next-state cones and small predicates,
where static-order selection already keeps sizes tame.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bdd.bdd import BDD
from repro.bdd.order import dfs_variable_order
from repro.netlist.circuit import Circuit

__all__ = ["transfer", "bfs_variable_order", "choose_best_order", "build_with_best_order"]


def transfer(source: BDD, roots: Sequence[int], target: BDD) -> List[int]:
    """Rebuild nodes of ``source`` inside ``target`` (by variable name).

    Variables are created in ``target`` on demand (so pre-declare them to
    control the order).  Returns the corresponding root nodes.
    """
    cache: Dict[int, int] = {
        source.ZERO: target.ZERO,
        source.ONE: target.ONE,
    }
    # Iterative post-order over source nodes.
    for root in roots:
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in cache:
                continue
            low = source.node_low(node)
            high = source.node_high(node)
            if expanded:
                name = source.name_of_level(source.node_level(node))
                var = target.add_var(name)
                cache[node] = target.ite(var, cache[high], cache[low])
            else:
                stack.append((node, True))
                for child in (low, high):
                    if child not in cache:
                        stack.append((child, False))
    return [cache[r] for r in roots]


def bfs_variable_order(
    circuit: Circuit, roots: Optional[Sequence[str]] = None
) -> List[str]:
    """Breadth-first (level-interleaving) leaf order from the outputs."""
    if roots is None:
        roots = list(circuit.outputs)
        for latch in circuit.latches.values():
            roots.append(latch.data)
            if latch.enable is not None:
                roots.append(latch.enable)
    leaves = set(circuit.inputs) | set(circuit.latches)
    order: List[str] = []
    seen: set = set()
    queue = deque(roots)
    while queue:
        sig = queue.popleft()
        if sig in seen:
            continue
        seen.add(sig)
        if sig in leaves and sig not in order:
            order.append(sig)
        if sig in circuit.gates:
            queue.extend(circuit.gates[sig].inputs)
    for leaf in list(circuit.inputs) + list(circuit.latches):
        if leaf not in order:
            order.append(leaf)
    return order


def choose_best_order(
    circuit: Circuit,
    extra_orders: Iterable[Sequence[str]] = (),
    metrics=None,
) -> Tuple[List[str], int]:
    """Try candidate leaf orders; return (best order, its node count).

    With a :class:`repro.obs.metrics.MetricsRegistry` attached, every
    candidate build counts as a ``bdd.reorder.attempts`` event with its
    node cost observed in ``bdd.reorder.nodes``, and the winning size
    lands in the ``bdd.reorder.best_nodes`` gauge — the reorder-event
    visibility the hotspot report surfaces.
    """
    from repro.bdd.circuit2bdd import circuit_bdds

    dfs = dfs_variable_order(circuit)
    candidates: List[List[str]] = [
        dfs,
        list(reversed(dfs)),
        bfs_variable_order(circuit),
    ]
    for extra in extra_orders:
        candidates.append(list(extra))
    best_order: Optional[List[str]] = None
    best_size = -1
    for order in candidates:
        manager = BDD()
        circuit_bdds(circuit, manager, order=order)
        size = manager.num_nodes()
        if metrics is not None:
            metrics.inc("bdd.reorder.attempts")
            metrics.observe("bdd.reorder.nodes", size)
        if best_order is None or size < best_size:
            best_order, best_size = order, size
    assert best_order is not None
    if metrics is not None:
        metrics.set_gauge("bdd.reorder.best_nodes", best_size)
    return best_order, best_size


def build_with_best_order(circuit: Circuit) -> Tuple[BDD, Dict[str, int]]:
    """Build all signal BDDs under the best candidate order."""
    from repro.bdd.circuit2bdd import circuit_bdds

    order, _ = choose_best_order(circuit)
    manager = BDD()
    nodes = circuit_bdds(circuit, manager, order=order)
    return manager, nodes
