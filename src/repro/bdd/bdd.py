"""A reduced ordered BDD manager.

Nodes are integers.  ``ZERO = 0`` and ``ONE = 1`` are the terminals; every
other node ``n`` has a level (variable), a low child (else) and a high child
(then), stored in parallel lists.  Reduction invariants: no node has
``low == high``, and ``(level, low, high)`` triples are unique.

The manager is deliberately simple — no complement edges, no garbage
collection, no dynamic reordering by default — which keeps every operation
easy to audit.  Performance is adequate for the circuit sizes used in the
paper's flow (levels are created on demand; ``ite`` is memoised).

Construction can be bounded: a manager built with ``node_limit=N`` (or
capped later via :meth:`BDD.set_node_limit`) raises
:class:`~repro.runtime.errors.BddBlowupError` from ``_mk`` once N nodes
exist, so a caller can attempt a BDD proof and fall back to SAT instead of
letting a bad variable order consume the machine.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.runtime.errors import BddBlowupError

__all__ = ["BDD"]


class BDD:
    """A BDD manager over named variables."""

    ZERO = 0
    ONE = 1

    def __init__(
        self,
        variables: Iterable[str] = (),
        node_limit: Optional[int] = None,
    ) -> None:
        # Parallel node arrays; entries 0/1 are terminal placeholders.
        self._level: List[int] = [-1, -1]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._var_names: List[str] = []
        self._var_index: Dict[str, int] = {}
        self._node_limit = node_limit
        # Optional repro.obs.metrics.MetricsRegistry (see attach_metrics).
        self.metrics = None
        for name in variables:
            self.add_var(name)

    def set_node_limit(self, node_limit: Optional[int]) -> None:
        """Cap (or uncap, with None) total node allocation."""
        self._node_limit = node_limit

    def attach_metrics(self, registry) -> None:
        """Attach a :class:`repro.obs.metrics.MetricsRegistry`.

        Blow-ups feed the ``bdd.blowups`` counter as they happen; node
        growth is sampled by :meth:`flush_metrics` (nodes are never freed,
        so the current count *is* the peak).
        """
        self.metrics = registry

    def flush_metrics(self) -> None:
        """Record the manager's node growth into the attached registry."""
        if self.metrics is not None:
            nodes = self.num_nodes()
            self.metrics.max_gauge("bdd.peak_nodes", nodes)
            self.metrics.observe("bdd.nodes_built", nodes)

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def add_var(self, name: str) -> int:
        """Declare a variable (idempotent); returns its node."""
        if name not in self._var_index:
            self._var_index[name] = len(self._var_names)
            self._var_names.append(name)
        return self.var(name)

    def var(self, name: str) -> int:
        """The node for variable ``name`` (declares it if new)."""
        if name not in self._var_index:
            return self.add_var(name)
        level = self._var_index[name]
        return self._mk(level, self.ZERO, self.ONE)

    def nvar(self, name: str) -> int:
        """The node for the complement of variable ``name``."""
        if name not in self._var_index:
            self.add_var(name)
        level = self._var_index[name]
        return self._mk(level, self.ONE, self.ZERO)

    @property
    def var_names(self) -> List[str]:
        """Declared variable names in level order."""
        return list(self._var_names)

    def level_of(self, name: str) -> int:
        """The level (order position) of a variable."""
        return self._var_index[name]

    def name_of_level(self, level: int) -> str:
        """The variable name at a level."""
        return self._var_names[level]

    def num_nodes(self) -> int:
        """Total nodes allocated (including terminals)."""
        return len(self._level)

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            if (
                self._node_limit is not None
                and len(self._level) >= self._node_limit
            ):
                if self.metrics is not None:
                    self.metrics.inc("bdd.blowups")
                    self.metrics.max_gauge("bdd.peak_nodes", len(self._level))
                raise BddBlowupError(len(self._level), self._node_limit)
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def node_level(self, f: int) -> int:
        """The variable level of a non-terminal node."""
        return self._level[f]

    def node_low(self, f: int) -> int:
        """The else-child of a node."""
        return self._low[f]

    def node_high(self, f: int) -> int:
        """The then-child of a node."""
        return self._high[f]

    def is_terminal(self, f: int) -> bool:
        """True for the 0/1 terminal nodes."""
        return f <= 1

    # ------------------------------------------------------------------
    # core algorithm: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """``f ? g : h`` — the universal ternary operator, iterative."""
        # Terminal shortcuts that need no recursion.
        stack: List[Tuple] = [("call", f, g, h, None)]
        results: List[int] = []
        # Manual recursion to avoid Python depth limits on deep BDDs.
        # Frames: ("call", f, g, h) computes ite and pushes the result;
        #         ("combine", level, key) pops two results and makes a node.
        while stack:
            frame = stack.pop()
            if frame[0] == "call":
                _, f, g, h, _ = frame
                shortcut = self._ite_terminal(f, g, h)
                if shortcut is not None:
                    results.append(shortcut)
                    continue
                f, g, h = self._ite_normalize(f, g, h)
                shortcut = self._ite_terminal(f, g, h)
                if shortcut is not None:
                    results.append(shortcut)
                    continue
                key = (f, g, h)
                cached = self._ite_cache.get(key)
                if cached is not None:
                    results.append(cached)
                    continue
                level = min(
                    lv
                    for lv in (
                        self._level[f] if f > 1 else None,
                        self._level[g] if g > 1 else None,
                        self._level[h] if h > 1 else None,
                    )
                    if lv is not None
                )
                f0, f1 = self._cofactors_at(f, level)
                g0, g1 = self._cofactors_at(g, level)
                h0, h1 = self._cofactors_at(h, level)
                stack.append(("combine", level, key))
                stack.append(("call", f1, g1, h1, None))
                stack.append(("call", f0, g0, h0, None))
            else:
                _, level, key = frame
                low = results.pop(-2)
                high = results.pop()
                node = self._mk(level, low, high)
                self._ite_cache[key] = node
                results.append(node)
        assert len(results) == 1
        return results[0]

    def _ite_terminal(self, f: int, g: int, h: int) -> Optional[int]:
        if f == self.ONE:
            return g
        if f == self.ZERO:
            return h
        if g == h:
            return g
        if g == self.ONE and h == self.ZERO:
            return f
        return None

    def _ite_normalize(self, f: int, g: int, h: int) -> Tuple[int, int, int]:
        """Standard-triple normalisation (partial, without complement edges)."""
        if f == g:
            g = self.ONE
        elif f == h:
            h = self.ZERO
        return f, g, h

    def _cofactors_at(self, f: int, level: int) -> Tuple[int, int]:
        if f > 1 and self._level[f] == level:
            return self._low[f], self._high[f]
        return f, f

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------
    def apply_not(self, f: int) -> int:
        """Complement of ``f``."""
        return self.ite(f, self.ZERO, self.ONE)

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction of two nodes."""
        return self.ite(f, g, self.ZERO)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction of two nodes."""
        return self.ite(f, self.ONE, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive-or of two nodes."""
        return self.ite(f, self.apply_not(g), g)

    def apply_xnor(self, f: int, g: int) -> int:
        """Complemented exclusive-or of two nodes."""
        return self.ite(f, g, self.apply_not(g))

    def apply_implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.ite(f, g, self.ONE)

    def and_all(self, nodes: Iterable[int]) -> int:
        """Conjunction over many nodes (short-circuits on 0)."""
        acc = self.ONE
        for n in nodes:
            acc = self.apply_and(acc, n)
            if acc == self.ZERO:
                break
        return acc

    def or_all(self, nodes: Iterable[int]) -> int:
        """Disjunction over many nodes (short-circuits on 1)."""
        acc = self.ZERO
        for n in nodes:
            acc = self.apply_or(acc, n)
            if acc == self.ONE:
                break
        return acc

    # ------------------------------------------------------------------
    # cofactors / composition / quantification
    # ------------------------------------------------------------------
    def cofactor(self, f: int, name: str, phase: bool) -> int:
        """Shannon cofactor against variable ``name``."""
        level = self._var_index[name]
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1 or self._level[node] > level:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            if self._level[node] == level:
                result = self._high[node] if phase else self._low[node]
            else:
                result = self._mk(
                    self._level[node],
                    walk(self._low[node]),
                    walk(self._high[node]),
                )
            cache[node] = result
            return result

        return self._walk_iterative(f, walk)

    def _walk_iterative(self, root: int, walk) -> int:
        """Run a recursive walker with a raised recursion limit."""
        import sys

        old = sys.getrecursionlimit()
        needed = len(self._var_names) * 4 + 10000
        if old < needed:
            sys.setrecursionlimit(needed)
        try:
            return walk(root)
        finally:
            sys.setrecursionlimit(old)

    def restrict(self, f: int, assignment: Dict[str, bool]) -> int:
        """Cofactor against several variables at once."""
        for name, phase in assignment.items():
            f = self.cofactor(f, name, phase)
        return f

    def compose(self, f: int, name: str, g: int) -> int:
        """Substitute BDD ``g`` for variable ``name`` in ``f``."""
        level = self._var_index[name]
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1 or self._level[node] > level:
                return node
            hit = cache.get(node)
            if hit is not None:
                return hit
            if self._level[node] == level:
                result = self.ite(g, self._high[node], self._low[node])
            else:
                low = walk(self._low[node])
                high = walk(self._high[node])
                var_node = self._mk(self._level[node], self.ZERO, self.ONE)
                result = self.ite(var_node, high, low)
            cache[node] = result
            return result

        return self._walk_iterative(f, walk)

    def compose_many(self, f: int, substitution: Dict[str, int]) -> int:
        """Simultaneous composition (applied bottom-up level by level)."""
        # Apply from the deepest level upward so earlier substitutions do not
        # disturb later ones; since substituted functions may mention any
        # variables, sequential composition deepest-first is correct for
        # acyclic substitutions (our use: signal cones over leaf variables).
        order = sorted(
            substitution, key=lambda n: self._var_index[n], reverse=True
        )
        for name in order:
            f = self.compose(f, name, substitution[name])
        return f

    def exists(self, f: int, names: Iterable[str]) -> int:
        """Existential quantification over the named variables."""
        for name in names:
            f = self.apply_or(
                self.cofactor(f, name, False), self.cofactor(f, name, True)
            )
        return f

    def forall(self, f: int, names: Iterable[str]) -> int:
        """Universal quantification over the named variables."""
        for name in names:
            f = self.apply_and(
                self.cofactor(f, name, False), self.cofactor(f, name, True)
            )
        return f

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def support(self, f: int) -> FrozenSet[str]:
        """The set of variable names ``f`` depends on."""
        seen: Set[int] = set()
        levels: Set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            levels.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return frozenset(self._var_names[lv] for lv in levels)

    def eval(self, f: int, assignment: Dict[str, bool]) -> bool:
        """Evaluate ``f`` under a complete variable assignment."""
        node = f
        while node > 1:
            name = self._var_names[self._level[node]]
            node = self._high[node] if assignment[name] else self._low[node]
        return node == self.ONE

    def implies(self, f: int, g: int) -> bool:
        """True if ``f <= g`` as functions."""
        return self.apply_and(f, self.apply_not(g)) == self.ZERO

    def equiv(self, f: int, g: int) -> bool:
        """True if the nodes denote the same function (canonical ids)."""
        return f == g

    def is_positive_unate(self, f: int, name: str) -> bool:
        """True if ``f`` is positive unate in ``name``: f|x=0 ≤ f|x=1."""
        return self.implies(
            self.cofactor(f, name, False), self.cofactor(f, name, True)
        )

    def is_negative_unate(self, f: int, name: str) -> bool:
        """True if ``f`` is negative unate in ``name``."""
        return self.implies(
            self.cofactor(f, name, True), self.cofactor(f, name, False)
        )

    def sat_count(self, f: int, nvars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``nvars`` variables.

        ``nvars`` defaults to (and must be at least) the number of declared
        variables.
        """
        total_vars = len(self._var_names)
        if nvars is None:
            nvars = total_vars
        if nvars < total_vars:
            raise ValueError("nvars smaller than the declared variable count")
        if f == self.ZERO:
            return 0
        if f == self.ONE:
            return 1 << nvars
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            # Counts assignments over variables strictly below node's level.
            if node == self.ZERO:
                return 0
            if node == self.ONE:
                return 1
            hit = cache.get(node)
            if hit is not None:
                return hit
            level = self._level[node]
            lo, hi = self._low[node], self._high[node]
            lo_count = walk(lo) << self._gap(lo, level)
            hi_count = walk(hi) << self._gap(hi, level)
            result = lo_count + hi_count
            cache[node] = result
            return result

        return (walk(f) << self._level[f]) << (nvars - total_vars)

    def _gap(self, child: int, parent_level: int) -> int:
        child_level = (
            self._level[child] if child > 1 else len(self._var_names)
        )
        return child_level - parent_level - 1

    def pick_minterm(self, f: int) -> Optional[Dict[str, bool]]:
        """One satisfying assignment over the support; ``None`` if f = 0."""
        if f == self.ZERO:
            return None
        assignment: Dict[str, bool] = {}
        node = f
        while node > 1:
            name = self._var_names[self._level[node]]
            if self._high[node] != self.ZERO:
                assignment[name] = True
                node = self._high[node]
            else:
                assignment[name] = False
                node = self._low[node]
        return assignment

    def iter_minterms(self, f: int, over: Sequence[str]) -> Iterable[Dict[str, bool]]:
        """Iterate all satisfying assignments over the given variables."""
        over_levels = sorted(self._var_index[name] for name in over)
        names = [self._var_names[lv] for lv in over_levels]

        def rec(node: int, idx: int, partial: Dict[str, bool]):
            if idx == len(names):
                if node == self.ONE:
                    yield dict(partial)
                return
            if node == self.ZERO:
                return
            name = names[idx]
            level = over_levels[idx]
            if node > 1 and self._level[node] == level:
                lo, hi = self._low[node], self._high[node]
            else:
                lo = hi = node
            partial[name] = False
            yield from rec(lo, idx + 1, partial)
            partial[name] = True
            yield from rec(hi, idx + 1, partial)
            del partial[name]

        yield from rec(f, 0, {})

    # ------------------------------------------------------------------
    # SOP extraction (Minato-Morreale irredundant SOP)
    # ------------------------------------------------------------------
    def isop(self, f: int) -> List[Dict[str, bool]]:
        """An irredundant SOP cover of ``f`` as literal dictionaries."""
        cover, _ = self._isop(f, f, {})
        return cover

    def _isop(self, lower: int, upper: int, cache: Dict) -> Tuple[List[Dict[str, bool]], int]:
        """Minato-Morreale ISOP over the interval [lower, upper]."""
        if lower == self.ZERO:
            return [], self.ZERO
        if upper == self.ONE:
            return [{}], self.ONE
        key = (lower, upper)
        hit = cache.get(key)
        if hit is not None:
            return hit
        level = min(
            lv
            for lv in (
                self._level[lower] if lower > 1 else None,
                self._level[upper] if upper > 1 else None,
            )
            if lv is not None
        )
        name = self._var_names[level]
        l0, l1 = self._cofactors_at(lower, level)
        u0, u1 = self._cofactors_at(upper, level)
        # Cubes that must contain literal ~x.
        cover0, bdd0 = self._isop(self.apply_and(l0, self.apply_not(u1)), u0, cache)
        # Cubes that must contain literal x.
        cover1, bdd1 = self._isop(self.apply_and(l1, self.apply_not(u0)), u1, cache)
        # Remainder handled without a literal on x.
        rem0 = self.apply_and(l0, self.apply_not(bdd0))
        rem1 = self.apply_and(l1, self.apply_not(bdd1))
        lower_star = self.apply_or(rem0, rem1)
        upper_star = self.apply_and(u0, u1)
        cover_star, bdd_star = self._isop(lower_star, upper_star, cache)
        cover = (
            [dict(c, **{name: False}) for c in cover0]
            + [dict(c, **{name: True}) for c in cover1]
            + cover_star
        )
        var_node = self._mk(level, self.ZERO, self.ONE)
        result_bdd = self.or_all(
            [
                self.apply_and(self.apply_not(var_node), bdd0),
                self.apply_and(var_node, bdd1),
                bdd_star,
            ]
        )
        cache[key] = (cover, result_bdd)
        return cover, result_bdd

    # ------------------------------------------------------------------
    # helpers for building from other representations
    # ------------------------------------------------------------------
    def from_sop(self, sop, fanin_nodes: Sequence[int]) -> int:
        """Build the BDD of an :class:`~repro.netlist.cube.Sop` cover."""
        acc = self.ZERO
        for cube in sop.cubes:
            term = self.ONE
            for i, ch in enumerate(cube):
                if ch == "1":
                    term = self.apply_and(term, fanin_nodes[i])
                elif ch == "0":
                    term = self.apply_and(term, self.apply_not(fanin_nodes[i]))
                if term == self.ZERO:
                    break
            acc = self.apply_or(acc, term)
            if acc == self.ONE:
                break
        return acc

    def clear_caches(self) -> None:
        """Drop the ite memo table (frees memory between phases)."""
        self._ite_cache.clear()
