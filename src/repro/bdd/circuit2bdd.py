"""Building BDDs for the signals of a circuit.

The leaf variables are the primary inputs plus latch outputs (the
combinational cut).  :func:`circuit_bdds` returns a node for every signal;
:func:`output_bdds` just the primary outputs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.bdd.bdd import BDD
from repro.bdd.order import dfs_variable_order
from repro.netlist.circuit import Circuit

__all__ = ["circuit_bdds", "output_bdds"]


def circuit_bdds(
    circuit: Circuit,
    manager: Optional[BDD] = None,
    order: Optional[Sequence[str]] = None,
) -> Dict[str, int]:
    """BDD node for every signal of the circuit.

    Latch outputs are treated as free variables (the combinational view).
    A shared ``manager`` may be supplied to combine several circuits in one
    variable space; variables are created for any leaf not yet declared.
    """
    if manager is None:
        manager = BDD()
    if order is None:
        order = dfs_variable_order(circuit)
    nodes: Dict[str, int] = {}
    for leaf in order:
        nodes[leaf] = manager.add_var(leaf)
    for pi in circuit.inputs:
        if pi not in nodes:
            nodes[pi] = manager.add_var(pi)
    for latch in circuit.latches:
        if latch not in nodes:
            nodes[latch] = manager.add_var(latch)
    for gate in circuit.topo_gates():
        fanins = [nodes[s] for s in gate.inputs]
        nodes[gate.output] = manager.from_sop(gate.sop, fanins)
    return nodes


def output_bdds(
    circuit: Circuit,
    manager: Optional[BDD] = None,
    order: Optional[Sequence[str]] = None,
) -> Dict[str, int]:
    """BDD node for each primary output."""
    if manager is None:
        manager = BDD()
    nodes = circuit_bdds(circuit, manager, order)
    return {o: nodes[o] for o in circuit.outputs}
