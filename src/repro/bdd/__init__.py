"""Reduced Ordered Binary Decision Diagram package (from scratch).

* :mod:`repro.bdd.bdd` — the :class:`BDD` manager: hash-consed nodes, ``ite``
  with memoisation, cofactors, composition, quantification, support,
  satisfiability helpers, unateness tests;
* :mod:`repro.bdd.order` — static variable-ordering heuristics;
* :mod:`repro.bdd.circuit2bdd` — building signal BDDs of a combinational
  circuit;
* :mod:`repro.bdd.synth` — lowering a BDD back to a gate network (ISOP and
  Shannon-multiplexer strategies) — used by the feedback remodelling step.
"""

from repro.bdd.bdd import BDD
from repro.bdd.circuit2bdd import circuit_bdds, output_bdds
from repro.bdd.order import dfs_variable_order
from repro.bdd.synth import bdd_to_gates, sop_from_bdd

__all__ = [
    "BDD",
    "circuit_bdds",
    "output_bdds",
    "dfs_variable_order",
    "bdd_to_gates",
    "sop_from_bdd",
]
