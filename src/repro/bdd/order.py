"""Static variable-ordering heuristics for circuit BDDs.

The classic depth-first fanin heuristic: walk the combinational fanin of
each output depth-first and append primary inputs in first-visit order.
Inputs never reached are appended at the end in declaration order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.netlist.circuit import Circuit

__all__ = ["dfs_variable_order"]


def dfs_variable_order(
    circuit: Circuit,
    leaves: Optional[Sequence[str]] = None,
    roots: Optional[Sequence[str]] = None,
) -> List[str]:
    """Order the ``leaves`` (default: PIs + latch outputs) by DFS from roots.

    ``roots`` defaults to the primary outputs plus latch data/enable nets so
    the order covers next-state logic as well.
    """
    if leaves is None:
        leaf_list = list(circuit.inputs) + list(circuit.latches)
    else:
        leaf_list = list(leaves)
    leaf_set: Set[str] = set(leaf_list)
    if roots is None:
        roots = list(circuit.outputs)
        for latch in circuit.latches.values():
            roots.append(latch.data)
            if latch.enable is not None:
                roots.append(latch.enable)

    order: List[str] = []
    placed: Set[str] = set()
    visited: Set[str] = set()
    for root in roots:
        stack = [root]
        while stack:
            sig = stack.pop()
            if sig in visited:
                continue
            visited.add(sig)
            if sig in leaf_set and sig not in placed:
                placed.add(sig)
                order.append(sig)
            if sig in circuit.gates:
                # Reverse so the first fanin is explored first.
                stack.extend(reversed(circuit.gates[sig].inputs))
    for leaf in leaf_list:
        if leaf not in placed:
            order.append(leaf)
            placed.add(leaf)
    return order
