"""Lowering BDDs back into gate networks.

Used by the feedback-remodelling step (paper Sec. 6): after decomposing a
latch's next-state function into enable/data parts as BDDs, those parts must
become actual logic in the circuit.  Two strategies:

* :func:`sop_from_bdd` — extract an irredundant SOP (Minato-Morreale) and
  emit a single :class:`~repro.netlist.cube.Sop` gate;
* :func:`bdd_to_gates` — a Shannon multiplexer tree (one MUX per BDD node),
  better for functions whose SOP blows up.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.bdd import BDD
from repro.netlist.circuit import Circuit
from repro.netlist.cube import Sop

__all__ = ["sop_from_bdd", "bdd_to_gates"]

_SOP_CUBE_LIMIT = 256


def sop_from_bdd(
    manager: BDD, f: int, fanins: Sequence[str]
) -> Optional[Tuple[Sop, Tuple[str, ...]]]:
    """Extract ``f`` as a single SOP over the given fanin signals.

    Returns ``None`` if the ISOP exceeds the cube limit (caller should fall
    back to :func:`bdd_to_gates`).  ``fanins`` must cover the support of
    ``f``; unused fanins are dropped from the returned tuple.
    """
    support = manager.support(f)
    used = [s for s in fanins if s in support]
    missing = support - set(fanins)
    if missing:
        raise ValueError(f"fanins missing support variables: {sorted(missing)}")
    cover = manager.isop(f)
    if len(cover) > _SOP_CUBE_LIMIT:
        return None
    index = {s: i for i, s in enumerate(used)}
    cubes: List[str] = []
    for cube_dict in cover:
        chars = ["-"] * len(used)
        for name, phase in cube_dict.items():
            chars[index[name]] = "1" if phase else "0"
        cubes.append("".join(chars))
    if not cover:
        return Sop.const0(len(used)), tuple(used)
    return Sop(len(used), tuple(cubes)), tuple(used)


def bdd_to_gates(
    manager: BDD,
    f: int,
    circuit: Circuit,
    name_base: str,
) -> str:
    """Materialise ``f`` as a MUX tree inside ``circuit``.

    BDD variable names must be driven signals of ``circuit`` (or PIs).
    Returns the signal holding the function value.  Shared BDD nodes become
    shared gates.
    """
    if f == manager.ZERO:
        const = circuit.fresh_signal(name_base + "_const0")
        circuit.add_gate(const, (), Sop.const0(0))
        return const
    if f == manager.ONE:
        const = circuit.fresh_signal(name_base + "_const1")
        circuit.add_gate(const, (), Sop.const1(0))
        return const

    memo: Dict[int, str] = {}
    const0: Optional[str] = None
    const1: Optional[str] = None

    def signal_for(node: int) -> str:
        nonlocal const0, const1
        if node == manager.ZERO:
            if const0 is None:
                const0 = circuit.fresh_signal(name_base + "_c0")
                circuit.add_gate(const0, (), Sop.const0(0))
            return const0
        if node == manager.ONE:
            if const1 is None:
                const1 = circuit.fresh_signal(name_base + "_c1")
                circuit.add_gate(const1, (), Sop.const1(0))
            return const1
        hit = memo.get(node)
        if hit is not None:
            return hit
        var = manager.name_of_level(manager.node_level(node))
        lo = manager.node_low(node)
        hi = manager.node_high(node)
        out = circuit.fresh_signal(f"{name_base}_n{node}")
        if lo == manager.ZERO and hi == manager.ONE:
            circuit.add_gate(out, (var,), Sop.and_all(1))
        elif lo == manager.ONE and hi == manager.ZERO:
            circuit.add_gate(out, (var,), Sop.and_all(1, [False]))
        else:
            lo_sig = signal_for(lo)
            hi_sig = signal_for(hi)
            circuit.add_gate(out, (var, hi_sig, lo_sig), Sop.mux())
        memo[node] = out
        return out

    return signal_for(f)
