"""Technology mapping onto the paper's library.

The paper uses a reduced library of inverters, 2-input NANDs and 2-input
NORs, the unit delay model, and a fanout limit of four (Sec. 7.3).  The
mapper:

1. tech-decomposes the network to INV/AND2/OR2;
2. converts AND2 → NAND2+INV and OR2 → NOR2+INV, then cancels INV pairs;
3. enforces the fanout limit with buffer trees built from inverter pairs;
4. reports area (cell-area units: INV 1, NAND2/NOR2 2) and delay (levels).

The mapped circuit is a normal :class:`Circuit` whose gates are only INV,
NAND2 and NOR2 cells (plus fanout-free constant cells when required).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netlist.circuit import Circuit, Gate, Latch
from repro.netlist.cube import Sop
from repro.synth.decomp import tech_decomp
from repro.synth.network import fanout_counts, is_buffer, is_inverter
from repro.synth.sweep import sweep

__all__ = ["tech_map", "MappedStats", "mapped_stats"]

_NAND2 = Sop.or_all(2, [False, False])
_NOR2 = Sop.and_all(2, [False, False])
_AND2 = Sop.and_all(2)
_OR2 = Sop.or_all(2)
_INV = Sop.and_all(1, [False])

_AREA = {"inv": 1.0, "nand2": 2.0, "nor2": 2.0, "buf": 1.0, "const": 0.0}


@dataclass
class MappedStats:
    """Area/delay report of a mapped circuit (the ``map`` command analog)."""

    area: float
    delay: int
    cells: Dict[str, int]
    latches: int

    def __str__(self) -> str:
        cell_str = ", ".join(f"{k}:{v}" for k, v in sorted(self.cells.items()))
        return (
            f"area={self.area:.1f} delay={self.delay} latches={self.latches} "
            f"[{cell_str}]"
        )


def _cell_kind(gate: Gate) -> Optional[str]:
    if not gate.inputs:
        return "const"
    if is_inverter(gate):
        return "inv"
    if is_buffer(gate):
        return "buf"
    if gate.sop == _NAND2:
        return "nand2"
    if gate.sop == _NOR2:
        return "nor2"
    return None


def tech_map(circuit: Circuit, fanout_limit: int = 4) -> Circuit:
    """Map to {INV, NAND2, NOR2} with a fanout limit; returns a new circuit."""
    work = circuit.copy(circuit.name + "_mapped")
    tech_decomp_seq(work)
    _to_nand_nor(work)
    _cancel_inverter_pairs(work)
    _remove_dead(work)
    if fanout_limit > 0:
        _limit_fanout(work, fanout_limit)
    return work


def _remove_dead(circuit: Circuit) -> None:
    """Drop gates that feed nothing (library-form preserving cleanup)."""
    while True:
        counts = fanout_counts(circuit)
        protected = set(circuit.outputs)
        for latch in circuit.latches.values():
            protected.add(latch.data)
            if latch.enable is not None:
                protected.add(latch.enable)
        dead = [
            name
            for name in circuit.gates
            if counts.get(name, 0) == 0 and name not in protected
        ]
        if not dead:
            return
        for name in dead:
            circuit.remove_gate(name)


def tech_decomp_seq(circuit: Circuit) -> Circuit:
    """tech_decomp that tolerates latches (operates between cut points)."""
    if not circuit.latches:
        return tech_decomp(circuit)
    from repro.netlist.transform import combinational_core, rebuild_from_core

    core = combinational_core(circuit)
    tech_decomp(core.circuit)
    rebuilt = rebuild_from_core(core, circuit.name)
    circuit.inputs = rebuilt.inputs
    circuit._input_set = set(rebuilt.inputs)
    circuit.outputs = rebuilt.outputs
    circuit.gates = rebuilt.gates
    circuit.latches = rebuilt.latches
    return circuit


def _to_nand_nor(circuit: Circuit) -> None:
    """Convert AND2/OR2 cells to NAND2/NOR2 + INV."""
    for name in list(circuit.gates):
        gate = circuit.gates[name]
        if gate.sop == _AND2:
            inner = circuit.fresh_signal(f"__map_na_{name}")
            circuit.remove_gate(name)
            circuit.add_gate(inner, gate.inputs, _NAND2)
            circuit.add_gate(name, (inner,), _INV)
        elif gate.sop == _OR2:
            inner = circuit.fresh_signal(f"__map_no_{name}")
            circuit.remove_gate(name)
            circuit.add_gate(inner, gate.inputs, _NOR2)
            circuit.add_gate(name, (inner,), _INV)
        elif len(gate.inputs) == 2 and gate.sop == Sop.xor2():
            # XOR2 cells may survive primitive-size skipping in tech_decomp:
            # a·b̄ + ā·b = NAND(NAND(a, NAND(a,b)), NAND(b, NAND(a,b))).
            a, b = gate.inputs
            nab = circuit.fresh_signal(f"__map_x0_{name}")
            circuit.add_gate(nab, (a, b), _NAND2)
            l = circuit.fresh_signal(f"__map_x1_{name}")
            circuit.add_gate(l, (a, nab), _NAND2)
            r = circuit.fresh_signal(f"__map_x2_{name}")
            circuit.add_gate(r, (b, nab), _NAND2)
            circuit.remove_gate(name)
            circuit.add_gate(name, (l, r), _NAND2)
        elif _cell_kind(gate) is None:
            # Remaining small cells (e.g. 2-input with inverted literals):
            # fall back to cube-level NAND/NOR construction via De Morgan.
            _map_small(circuit, name)


def _map_small(circuit: Circuit, name: str) -> None:
    """Map an arbitrary ≤2-input cover using INV/NAND2/NOR2 cells."""
    gate = circuit.gates[name]
    circuit.remove_gate(name)
    inv_of: Dict[str, str] = {}

    def inv(sig: str) -> str:
        if sig not in inv_of:
            node = circuit.fresh_signal(f"__map_i_{name}")
            circuit.add_gate(node, (sig,), _INV)
            inv_of[sig] = node
        return inv_of[sig]

    cube_sigs: List[str] = []
    for cube in gate.sop.cubes:
        lits: List[str] = []
        for i, ch in enumerate(cube):
            if ch == "1":
                lits.append(gate.inputs[i])
            elif ch == "0":
                lits.append(inv(gate.inputs[i]))
        if not lits:
            node = circuit.fresh_signal(f"__map_c1_{name}")
            circuit.add_gate(node, (), Sop.const1(0))
            lits = [node]
        if len(lits) == 1:
            cube_sigs.append(lits[0])
        else:
            nand = circuit.fresh_signal(f"__map_a_{name}")
            circuit.add_gate(nand, tuple(lits), _NAND2)
            cube_sigs.append(inv(nand))
    if not cube_sigs:
        circuit.add_gate(name, (), Sop.const0(0))
        return
    if len(cube_sigs) == 1:
        circuit.add_gate(name, (cube_sigs[0],), Sop.and_all(1))
        return
    acc = cube_sigs[0]
    for nxt in cube_sigs[1:-1]:
        nor = circuit.fresh_signal(f"__map_o_{name}")
        circuit.add_gate(nor, (acc, nxt), _NOR2)
        acc = inv(nor)
    nor = circuit.fresh_signal(f"__map_of_{name}")
    circuit.add_gate(nor, (acc, cube_sigs[-1]), _NOR2)
    circuit.add_gate(name, (nor,), _INV)


def _cancel_inverter_pairs(circuit: Circuit) -> None:
    """Rewire readers of INV(INV(x)) to x (sweep drops the dead cells)."""
    for name in list(circuit.gates):
        gate = circuit.gates.get(name)
        if gate is None or not is_inverter(gate):
            continue
        src_gate = circuit.gates.get(gate.inputs[0])
        if src_gate is None or not is_inverter(src_gate):
            continue
        original = src_gate.inputs[0]
        for reader in list(circuit.gates.values()):
            if name in reader.inputs:
                circuit.replace_gate(
                    reader.with_inputs(
                        tuple(original if s == name else s for s in reader.inputs)
                    )
                )
    _remove_dead(circuit)


def _limit_fanout(circuit: Circuit, limit: int) -> None:
    """Insert buffer cells so no signal drives more than ``limit`` pins."""
    changed = True
    guard = 0
    while changed and guard < 32:
        guard += 1
        changed = False
        counts = fanout_counts(circuit)
        for sig in list(circuit.signals()):
            load = counts.get(sig, 0)
            if load <= limit:
                continue
            readers: List[Tuple[str, int]] = []
            for gate in circuit.gates.values():
                for pin, s in enumerate(gate.inputs):
                    if s == sig:
                        readers.append((gate.output, pin))
            # Leave `limit - 1` readers on the signal, move the rest to a
            # buffer; iterating spreads load into a buffer tree.
            movable = readers[limit - 1 :]
            if not movable:
                continue
            buf = circuit.fresh_signal(f"__fob_{sig}")
            circuit.add_gate(buf, (sig,), Sop.and_all(1))
            for gate_name, pin in movable:
                gate = circuit.gates[gate_name]
                new_inputs = list(gate.inputs)
                new_inputs[pin] = buf
                circuit.replace_gate(gate.with_inputs(tuple(new_inputs)))
            changed = True


def mapped_stats(circuit: Circuit) -> MappedStats:
    """Area/delay report; raises if a gate is not a library cell."""
    from repro.synth.depth import circuit_depth

    cells: Dict[str, int] = {}
    area = 0.0
    for gate in circuit.gates.values():
        kind = _cell_kind(gate)
        if kind is None:
            raise ValueError(
                f"gate {gate.output!r} is not a library cell: {gate.sop}"
            )
        cells[kind] = cells.get(kind, 0) + 1
        area += _AREA[kind]
    # Mapped delay counts INV/NAND/NOR levels; buffers count as cells with
    # delay 1 too (they are real drivers), constants 0.
    delay = _mapped_depth(circuit)
    return MappedStats(area, delay, cells, circuit.num_latches())


def _mapped_depth(circuit: Circuit) -> int:
    level: Dict[str, int] = {pi: 0 for pi in circuit.inputs}
    for latch in circuit.latches:
        level[latch] = 0
    observed = 0
    for gate in circuit.topo_gates():
        d = 0 if not gate.inputs else 1
        level[gate.output] = max(
            (level[s] for s in gate.inputs), default=0
        ) + d
    for out in circuit.outputs:
        observed = max(observed, level.get(out, 0))
    for latch in circuit.latches.values():
        observed = max(observed, level.get(latch.data, 0))
        if latch.enable is not None:
            observed = max(observed, level.get(latch.enable, 0))
    return observed
