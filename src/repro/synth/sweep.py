"""``sweep`` — network cleanup.

Mirrors SIS's sweep: iteratively

* fold constant gates into their readers;
* bypass buffers (readers read the buffer's fanin directly);
* collapse single-input gates (inverters merge into reader covers);
* merge aliased fanin positions created by buffer bypassing;
* drop gates that feed nothing (not read by a gate, latch, or PO).

Semantics-preserving per primary output / latch boundary.  A per-round
reader index keeps each round linear in the netlist size (the helpers
re-verify membership before rewriting, so mild staleness is harmless).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.netlist.circuit import Circuit, Gate, Latch
from repro.netlist.cube import Sop
from repro.synth.network import fanout_counts, is_buffer, is_inverter

__all__ = ["sweep"]


def _reader_index(circuit: Circuit) -> Dict[str, List[str]]:
    """Gate readers per signal (latch/PO readers handled separately)."""
    readers: Dict[str, List[str]] = {}
    for gate in circuit.gates.values():
        for src in set(gate.inputs):
            readers.setdefault(src, []).append(gate.output)
    return readers


def _fold_constant(
    circuit: Circuit, name: str, value: bool, readers: Dict[str, List[str]]
) -> None:
    """Substitute a constant gate's value into gate readers."""
    for reader_name in readers.get(name, ()):
        gate = circuit.gates.get(reader_name)
        if gate is None or name not in gate.inputs:
            continue
        sop = gate.sop
        inputs = list(gate.inputs)
        while name in inputs:
            pos = inputs.index(name)
            sop = sop.cofactor(pos, value).remove_input(pos)
            inputs.pop(pos)
        circuit.replace_gate(Gate(gate.output, tuple(inputs), sop))


def _invert_into(
    circuit: Circuit, inv_out: str, src: str, readers: Dict[str, List[str]]
) -> None:
    """Rewrite gate readers of an inverter to read ``src`` complemented."""
    for reader_name in readers.get(inv_out, ()):
        gate = circuit.gates.get(reader_name)
        if gate is None or inv_out not in gate.inputs:
            continue
        if src in gate.inputs:
            # Retargeting would alias two positions with opposite phases
            # in one column; leave this reader to a later dedupe round.
            continue
        sop = gate.sop
        inputs = list(gate.inputs)
        for pos, s in enumerate(inputs):
            if s == inv_out:
                sop = sop.negate_input(pos)
                inputs[pos] = src
        circuit.replace_gate(Gate(gate.output, tuple(inputs), sop))
        readers.setdefault(src, []).append(gate.output)


def _dedupe_inputs(gate: Gate) -> Gate:
    """Merge duplicate fanin columns (buffer bypass can alias positions).

    Cubes demanding both phases of one signal are contradictions and drop.
    """
    merged: List[str] = []
    for s in gate.inputs:
        if s not in merged:
            merged.append(s)
    index = {s: i for i, s in enumerate(merged)}
    cubes = []
    for cube in gate.sop.cubes:
        chars = ["-"] * len(merged)
        ok = True
        for pos, ch in enumerate(cube):
            if ch == "-":
                continue
            j = index[gate.inputs[pos]]
            if chars[j] != "-" and chars[j] != ch:
                ok = False
                break
            chars[j] = ch
        if ok:
            cubes.append("".join(chars))
    return Gate(gate.output, tuple(merged), Sop(len(merged), tuple(cubes)))


def _bypass_buffer(
    circuit: Circuit,
    buf: str,
    src: str,
    protected: Set[str],
    readers: Dict[str, List[str]],
) -> None:
    """Rewire gate (and, when safe, latch) readers of a buffer to its source.

    Returns True if anything was rewired.
    """
    touched = False
    for reader_name in readers.get(buf, ()):
        gate = circuit.gates.get(reader_name)
        if gate is None or buf not in gate.inputs:
            continue
        circuit.replace_gate(
            gate.with_inputs(tuple(src if s == buf else s for s in gate.inputs))
        )
        readers.setdefault(src, []).append(gate.output)
        touched = True
    if buf not in protected:
        for latch in list(circuit.latches.values()):
            data = src if latch.data == buf else latch.data
            enable = latch.enable
            if enable == buf:
                enable = src
            if data != latch.data or enable != latch.enable:
                circuit.replace_latch(Latch(latch.output, data, enable))
                touched = True
    return touched


def sweep(circuit: Circuit, max_rounds: int = 50) -> Circuit:
    """Run sweep in place; returns the same circuit for chaining."""
    for _ in range(max_rounds):
        changed = False
        counts = fanout_counts(circuit)
        readers = _reader_index(circuit)
        protected: Set[str] = set(circuit.outputs)
        for latch in circuit.latches.values():
            protected.add(latch.data)
            if latch.enable is not None:
                protected.add(latch.enable)
        for name in list(circuit.gates):
            gate = circuit.gates.get(name)
            if gate is None:
                continue
            # Dead gate removal.
            if counts.get(name, 0) == 0 and name not in protected:
                circuit.remove_gate(name)
                changed = True
                continue
            # Aliased fanin positions (from buffer bypassing) are merged.
            if len(set(gate.inputs)) != len(gate.inputs):
                gate = _dedupe_inputs(gate)
                circuit.replace_gate(gate)
                changed = True
            # Constant folding into readers.
            if gate.sop.is_const0() or gate.sop.is_const1_syntactic():
                value = gate.sop.is_const1_syntactic()
                if any(
                    name in circuit.gates.get(r, gate).inputs
                    for r in readers.get(name, ())
                    if r in circuit.gates
                ):
                    _fold_constant(circuit, name, value, readers)
                    changed = True
                # The constant gate itself stays while a PO/latch reads it.
                continue
            # Gates ignoring all inputs are constants in disguise.
            if gate.inputs and not gate.sop.support():
                value = bool(gate.sop.cubes)
                circuit.replace_gate(
                    Gate(name, (), Sop.const1(0) if value else Sop.const0(0))
                )
                changed = True
                continue
            # Drop unused fanin columns.
            support = gate.sop.support()
            if len(support) < len(gate.inputs):
                keep = sorted(support)
                sop = gate.sop
                for pos in range(len(gate.inputs) - 1, -1, -1):
                    if pos not in support:
                        sop = sop.remove_input(pos)
                circuit.replace_gate(
                    Gate(name, tuple(gate.inputs[i] for i in keep), sop)
                )
                changed = True
                continue
            # Buffer bypass.
            if is_buffer(gate):
                src = gate.inputs[0]
                if _bypass_buffer(circuit, name, src, protected, readers):
                    changed = True
                continue
            # Inverter merging into readers.
            if is_inverter(gate):
                if any(
                    r in circuit.gates and name in circuit.gates[r].inputs
                    for r in readers.get(name, ())
                ):
                    _invert_into(circuit, name, gate.inputs[0], readers)
                    changed = True
                continue
        if not changed:
            break
    return circuit
