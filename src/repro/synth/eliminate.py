"""``eliminate`` — collapse low-value nodes into their fanouts.

The *value* of a node (SIS definition) is the literal saving it provides:

    value(n) = (fanouts(n) − 1) · literals(n) − fanouts(n)

(approximately: how many literals the network would gain if the node were
collapsed everywhere).  ``eliminate(threshold)`` collapses every node whose
value is at most the threshold, like SIS's ``eliminate -l <limit> <thresh>``.

Nodes read by latches or primary outputs are never removed (their function
must survive at their own name), but they may still absorb collapsed
fanins.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.netlist.circuit import Circuit
from repro.synth.network import collapse_into, fanout_counts
from repro.synth.sweep import sweep

__all__ = ["eliminate", "node_value"]


def node_value(circuit: Circuit, name: str, counts: Dict[str, int]) -> int:
    """The SIS node value: (fanouts-1)*literals - fanouts."""
    gate = circuit.gates[name]
    n_fanout = counts.get(name, 0)
    lits = gate.num_literals
    return (n_fanout - 1) * lits - n_fanout


def eliminate(
    circuit: Circuit,
    threshold: int = 0,
    max_literals: int = 100,
    max_rounds: int = 10,
) -> Circuit:
    """Collapse nodes with value ≤ threshold (in place)."""
    for _ in range(max_rounds):
        counts = fanout_counts(circuit)
        protected: Set[str] = set(circuit.outputs)
        for latch in circuit.latches.values():
            protected.add(latch.data)
            if latch.enable is not None:
                protected.add(latch.enable)
        candidates = []
        for name in circuit.gates:
            gate = circuit.gates[name]
            if not gate.inputs:
                continue  # constants are sweep's job
            if gate.num_literals > max_literals:
                continue
            read_by_gates = any(
                name in g.inputs for g in circuit.gates.values()
            )
            if not read_by_gates:
                continue
            value = node_value(circuit, name, counts)
            if value <= threshold:
                candidates.append((value, name))
        if not candidates:
            break
        candidates.sort()
        changed = False
        done: Set[str] = set()
        for _, name in candidates:
            if name in done or name not in circuit.gates:
                continue
            # Collapsing a node changes its readers' structure; re-collapse
            # conservatively one node per affected region per round.
            if collapse_into(circuit, name, max_result_literals=max_literals):
                changed = True
            done.add(name)
        sweep(circuit)
        if not changed:
            break
    return circuit
