"""``simplify`` — per-node two-level minimisation.

Runs the espresso-lite minimiser of :meth:`repro.netlist.cube.Sop.minimized`
on every gate cover and drops fanins that fall out of the support.  A
``-l``-style guard skips nodes whose cover is already tiny.
"""

from __future__ import annotations

from repro.netlist.circuit import Circuit, Gate

__all__ = ["simplify_network"]


def simplify_network(
    circuit: Circuit,
    min_literals: int = 2,
    max_cubes: int = 32,
    max_literals: int = 120,
) -> Circuit:
    """Minimise every node cover in place; returns the circuit.

    Nodes larger than the guards are only SCC-reduced (full minimisation of
    very wide covers is where two-level minimisers spend unbounded time).
    """
    for name in list(circuit.gates):
        gate = circuit.gates[name]
        if gate.num_literals <= min_literals:
            continue
        if len(gate.sop.cubes) > max_cubes or gate.num_literals > max_literals:
            reduced = gate.sop.scc_minimal()
        else:
            reduced = gate.sop.minimized()
        if reduced.num_literals < gate.sop.num_literals or len(
            reduced.cubes
        ) < len(gate.sop.cubes):
            circuit.replace_gate(Gate(name, gate.inputs, reduced))
    return circuit
