"""``decomp`` and ``tech_decomp`` — node decomposition.

* :func:`algebraic_decomp` (SIS ``decomp -q``): factor each large node by
  repeatedly extracting one of its own kernels into a new node (quick
  single-node factoring — no sharing across nodes; ``fx`` does sharing).
* :func:`tech_decomp` (SIS ``tech_decomp -o 2``): rewrite every node into a
  network of 1- and 2-input primitives (AND2/OR2/INV), the form the mapper
  and ``reduce_depth`` operate on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.netlist.circuit import Circuit, Gate
from repro.netlist.cube import Sop, cube_from_literals, cube_literals
from repro.synth.division import kernels, weak_divide
from repro.synth.network import require_combinational

__all__ = ["algebraic_decomp", "tech_decomp"]


def algebraic_decomp(
    circuit: Circuit, min_cubes: int = 3, max_passes: int = 20
) -> Circuit:
    """Quick algebraic factoring of each node (in place)."""
    require_combinational(circuit, "algebraic_decomp")
    fresh = [0]
    for _ in range(max_passes):
        changed = False
        for name in list(circuit.gates):
            gate = circuit.gates.get(name)
            if gate is None or len(gate.sop.cubes) < min_cubes:
                continue
            if _decompose_once(circuit, gate, fresh):
                changed = True
        if not changed:
            break
    return circuit


def _decompose_once(circuit: Circuit, gate: Gate, fresh: List[int]) -> bool:
    cover = [cube_literals(c) for c in gate.sop.cubes]
    ks = kernels(cover)
    best: Optional[Tuple[int, List[FrozenSet[int]]]] = None
    for cokernel, kernel in ks:
        if len(kernel) < 2:
            continue
        if len(kernel) == len(cover) and not cokernel:
            continue  # the node itself
        q, r = weak_divide(cover, kernel)
        if not q:
            continue
        div_lits = sum(len(c) for c in kernel)
        saving = len(q) * div_lits - len(q) - div_lits
        if saving > 0 and (best is None or saving > best[0]):
            best = (saving, kernel)
    if best is None:
        return False
    _, kernel = best
    q, r = weak_divide(cover, kernel)
    fresh[0] += 1
    new_name = circuit.fresh_signal(f"__dc{fresh[0]}")
    # Kernel node over the gate's fanins.
    support = sorted({lit >> 1 for cube in kernel for lit in cube})
    local = {v: i for i, v in enumerate(support)}
    k_fanins = tuple(gate.inputs[v] for v in support)
    k_cubes = tuple(
        cube_from_literals(
            {2 * local[lit >> 1] + (lit & 1) for lit in cube}, len(k_fanins)
        )
        for cube in kernel
    )
    circuit.add_gate(new_name, k_fanins, Sop(len(k_fanins), k_cubes))
    # Rewritten node: q * new + r over (old fanins + new node).
    names = list(gate.inputs) + [new_name]
    new_lit = 2 * len(gate.inputs) + 1
    new_cover = [frozenset(c | {new_lit}) for c in q] + list(r)
    used = sorted({lit >> 1 for cube in new_cover for lit in cube})
    local2 = {v: i for i, v in enumerate(used)}
    fanins = tuple(names[v] for v in used)
    cubes = tuple(
        cube_from_literals(
            {2 * local2[lit >> 1] + (lit & 1) for lit in cube}, len(fanins)
        )
        for cube in new_cover
    )
    circuit.replace_gate(Gate(gate.output, fanins, Sop(len(fanins), cubes)))
    return True


# ----------------------------------------------------------------------
def tech_decomp(circuit: Circuit) -> Circuit:
    """Decompose every node into INV / AND2 / OR2 primitives (in place).

    Node structure: each cube becomes a balanced AND2 tree over (possibly
    inverted) fanin signals; the cube outputs feed a balanced OR2 tree.
    Inverters are shared per signal.
    """
    require_combinational(circuit, "tech_decomp")
    fresh = [0]
    inv_cache: Dict[str, str] = {}
    # The name of the gate currently being rebuilt: freed by remove_gate but
    # reserved for the tree root, so fresh names must not take it.
    reserved: List[str] = [""]

    def freshname(base: str) -> str:
        while True:
            fresh[0] += 1
            candidate = circuit.fresh_signal(f"__td{fresh[0]}_{base}")
            if candidate != reserved[0]:
                return candidate

    def inverter(sig: str) -> str:
        inv = inv_cache.get(sig)
        if inv is None:
            inv = freshname("n")
            circuit.add_gate(inv, (sig,), Sop.and_all(1, [False]))
            inv_cache[sig] = inv
        return inv

    def tree(op: str, leaves: List[str], out_name: Optional[str]) -> str:
        """Balanced AND2/OR2 tree; the root takes ``out_name`` if given."""
        sop2 = Sop.and_all(2) if op == "and" else Sop.or_all(2)
        level = list(leaves)
        if len(level) == 1:
            if out_name is None:
                return level[0]
            circuit.add_gate(out_name, (level[0],), Sop.and_all(1))
            return out_name
        while len(level) > 2:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                node = freshname(op)
                circuit.add_gate(node, (level[i], level[i + 1]), sop2)
                nxt.append(node)
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        name = out_name if out_name is not None else freshname(op)
        circuit.add_gate(name, (level[0], level[1]), sop2)
        return name

    for name in list(circuit.gates):
        gate = circuit.gates[name]
        if len(gate.inputs) <= 2 and len(gate.sop.cubes) <= 2:
            continue  # already primitive-sized (≤2 inputs, ≤2 cubes)
        cubes = gate.sop.cubes
        reserved[0] = name
        circuit.remove_gate(name)
        if not cubes:
            circuit.add_gate(name, (), Sop.const0(0))
            continue
        cube_sigs: List[str] = []
        trivial_const1 = False
        for cube in cubes:
            leaves: List[str] = []
            for i, ch in enumerate(cube):
                if ch == "1":
                    leaves.append(gate.inputs[i])
                elif ch == "0":
                    leaves.append(inverter(gate.inputs[i]))
            if not leaves:
                trivial_const1 = True
                break
            if len(leaves) == 1:
                cube_sigs.append(leaves[0])
            else:
                cube_sigs.append(tree("and", leaves, None))
        if trivial_const1:
            circuit.add_gate(name, (), Sop.const1(0))
            continue
        tree("or", cube_sigs, name)
    return circuit
