"""``reduce_depth`` — arrival-time-driven tree balancing.

On a tech-decomposed (≤2-input) network, collect maximal single-fanout
trees of the same associative operator (AND2 or OR2), then rebuild each as
a Huffman tree over leaf arrival times: combine the two earliest-arriving
leaves first.  This is the classic delay-oriented rebalancing that SIS's
``reduce_depth`` approximates.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.netlist.circuit import Circuit, Gate
from repro.netlist.cube import Sop
from repro.synth.network import fanout_counts, require_combinational

__all__ = ["reduce_depth", "circuit_depth"]

_AND2 = Sop.and_all(2)
_OR2 = Sop.or_all(2)


def _gate_kind(gate: Gate) -> Optional[str]:
    if gate.sop == _AND2:
        return "and"
    if gate.sop == _OR2:
        return "or"
    return None


def circuit_depth(circuit: Circuit) -> int:
    """Unit-delay combinational depth (latch outputs / PIs are level 0).

    Buffers and constants count as zero levels, matching the retiming
    graph's delay model.
    """
    level: Dict[str, int] = {}
    for pi in circuit.inputs:
        level[pi] = 0
    for latch in circuit.latches:
        level[latch] = 0
    for gate in circuit.topo_gates():
        is_free = not gate.inputs or (
            len(gate.inputs) == 1
            and len(gate.sop.cubes) == 1
            and gate.sop.cubes[0] == "1"
        )
        level[gate.output] = max(
            (level[s] for s in gate.inputs), default=0
        ) + (0 if is_free else 1)
    # Depth observed at outputs and latch data/enable pins only.
    observed = 0
    for out in circuit.outputs:
        observed = max(observed, level.get(out, 0))
    for latch in circuit.latches.values():
        observed = max(observed, level.get(latch.data, 0))
        if latch.enable is not None:
            observed = max(observed, level.get(latch.enable, 0))
    return observed


def reduce_depth(circuit: Circuit) -> Circuit:
    """Rebalance same-operator trees for minimum depth (in place)."""
    require_combinational(circuit, "reduce_depth")
    counts = fanout_counts(circuit)
    levels: Dict[str, int] = {pi: 0 for pi in circuit.inputs}
    topo = circuit.topo_gates()
    for gate in topo:
        levels[gate.output] = max(
            (levels.get(s, 0) for s in gate.inputs), default=0
        ) + (1 if gate.inputs else 0)

    consumed: Set[str] = set()
    fresh = [0]

    def dec_reads(inputs) -> None:
        for s in inputs:
            counts[s] = counts.get(s, 0) - 1

    def inc_reads(inputs) -> None:
        for s in inputs:
            counts[s] = counts.get(s, 0) + 1

    for gate in reversed(topo):  # roots first (they have later levels)
        name = gate.output
        if name in consumed or name not in circuit.gates:
            continue
        gate = circuit.gates[name]  # may have been rebuilt as another root
        kind = _gate_kind(gate)
        if kind is None:
            continue
        # Collect the maximal tree: follow fanins that are same-kind gates
        # with a single (live-counted) fanout.
        leaves: List[str] = []
        internal: List[str] = []
        stack = [name]
        first = True
        while stack:
            sig = stack.pop()
            g = circuit.gates.get(sig)
            expandable = (
                g is not None
                and _gate_kind(g) == kind
                and (first or (counts.get(sig, 0) == 1 and sig not in consumed))
            )
            if expandable:
                if not first:
                    internal.append(sig)
                first = False
                stack.extend(g.inputs)
            else:
                leaves.append(sig)
        if len(leaves) <= 2:
            continue
        # Rebuild as a Huffman tree on arrival times.
        heap: List[Tuple[int, int, str]] = []
        uid = 0
        for leaf in leaves:
            heap.append((levels.get(leaf, 0), uid, leaf))
            uid += 1
        heapq.heapify(heap)
        sop2 = _AND2 if kind == "and" else _OR2
        for sig in internal:
            dec_reads(circuit.gates[sig].inputs)
            circuit.remove_gate(sig)
            consumed.add(sig)
        dec_reads(circuit.gates[name].inputs)
        circuit.remove_gate(name)
        while len(heap) > 2:
            l1, _, s1 = heapq.heappop(heap)
            l2, _, s2 = heapq.heappop(heap)
            node = name
            while node == name:  # never reuse the freed root name
                fresh[0] += 1
                node = circuit.fresh_signal(f"__rd{fresh[0]}")
            circuit.add_gate(node, (s1, s2), sop2)
            inc_reads((s1, s2))
            lvl = max(l1, l2) + 1
            levels[node] = lvl
            heapq.heappush(heap, (lvl, uid, node))
            uid += 1
        s1 = heap[0][2]
        s2 = heap[1][2] if len(heap) > 1 else None
        if s2 is None:
            circuit.add_gate(name, (s1,), Sop.and_all(1))
            inc_reads((s1,))
        else:
            circuit.add_gate(name, (s1, s2), sop2)
            inc_reads((s1, s2))
        levels[name] = max(heap[0][0], heap[1][0] if len(heap) > 1 else 0) + 1
        consumed.add(name)
    return circuit
