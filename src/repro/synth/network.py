"""Boolean-network helpers shared by the synthesis passes.

Synthesis passes operate on *combinational* circuits whose gates are SOP
nodes (exactly SIS's network model).  This module provides fanout counting,
node substitution/collapse, and the algebraic (literal-set) view of covers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.netlist.circuit import Circuit, Gate
from repro.netlist.cube import Sop, cube_from_literals, cube_literals

__all__ = [
    "fanout_counts",
    "collapse_into",
    "compose_sop",
    "alg_cubes",
    "alg_to_sop",
    "require_combinational",
    "is_buffer",
    "is_inverter",
    "node_literals",
]


def require_combinational(circuit: Circuit, op: str) -> None:
    """Raise unless the circuit has no latches."""
    if circuit.latches:
        raise ValueError(
            f"{op} operates on combinational circuits; cut latches first "
            "(see repro.netlist.transform.combinational_core)"
        )


def fanout_counts(circuit: Circuit) -> Dict[str, int]:
    """How many gate pins / PO slots read each signal."""
    counts: Dict[str, int] = {s: 0 for s in circuit.signals()}
    for gate in circuit.gates.values():
        for src in gate.inputs:
            counts[src] = counts.get(src, 0) + 1
    for latch in circuit.latches.values():
        counts[latch.data] = counts.get(latch.data, 0) + 1
        if latch.enable is not None:
            counts[latch.enable] = counts.get(latch.enable, 0) + 1
    for out in circuit.outputs:
        counts[out] = counts.get(out, 0) + 1
    return counts


def is_buffer(gate: Gate) -> bool:
    """True for a single-input identity gate."""
    return (
        len(gate.inputs) == 1
        and len(gate.sop.cubes) == 1
        and gate.sop.cubes[0] == "1"
    )


def is_inverter(gate: Gate) -> bool:
    """True for a single-input complement gate."""
    return (
        len(gate.inputs) == 1
        and len(gate.sop.cubes) == 1
        and gate.sop.cubes[0] == "0"
    )


def node_literals(circuit: Circuit) -> int:
    """Total literal count of the network."""
    return sum(g.num_literals for g in circuit.gates.values())


def compose_sop(
    outer: Sop,
    outer_inputs: Sequence[str],
    inner_signal: str,
    inner: Sop,
    inner_inputs: Sequence[str],
) -> Tuple[Sop, Tuple[str, ...]]:
    """Substitute ``inner`` for ``inner_signal`` inside ``outer``.

    Returns the composed cover and its merged fanin list.  Used by
    ``eliminate`` (node collapsing).
    """
    # Merged fanin list: outer fanins (minus the inner signal) + inner's.
    merged: List[str] = [s for s in outer_inputs if s != inner_signal]
    for s in inner_inputs:
        if s not in merged:
            merged.append(s)
    index = {s: i for i, s in enumerate(merged)}
    n = len(merged)

    inner_pos = [i for i, s in enumerate(outer_inputs) if s == inner_signal]
    if not inner_pos:
        # Nothing to substitute; just re-map.
        remap = [index[s] for s in outer_inputs]
        return outer.permute(remap, n), tuple(merged)

    inner_mapped = inner.permute([index[s] for s in inner_inputs], n)
    inner_comp = inner_mapped.complement()

    cubes: List[str] = []
    for cube in outer.cubes:
        # Split the cube into the part over the inner literal(s) and the rest.
        phase: Optional[bool] = None
        rest_chars = ["-"] * n
        contradictory = False
        for i, ch in enumerate(cube):
            if ch == "-":
                continue
            s = outer_inputs[i]
            if s == inner_signal:
                want = ch == "1"
                if phase is not None and phase != want:
                    contradictory = True
                    break
                phase = want
            else:
                j = index[s]
                if rest_chars[j] != "-" and rest_chars[j] != ch:
                    contradictory = True
                    break
                rest_chars[j] = ch
        if contradictory:
            continue
        rest = Sop(n, ("".join(rest_chars),))
        if phase is None:
            cubes.extend(rest.cubes)
        elif phase:
            cubes.extend(rest.and_(inner_mapped).cubes)
        else:
            cubes.extend(rest.and_(inner_comp).cubes)
    return Sop(n, tuple(cubes)).scc_minimal(), tuple(merged)


def collapse_into(
    circuit: Circuit,
    node: str,
    max_result_literals: int = 100,
    max_result_cubes: int = 64,
) -> int:
    """Collapse gate ``node`` into every reader; returns fanouts rewritten.

    The node itself is left in place (sweep removes it if it became
    dangling).  Only gate readers are rewritten; latch pins and POs keep
    reading the original node.  A reader whose composed cover would exceed
    the size limits is left unchanged (this is SIS's ``eliminate -l``
    guard — it prevents the SOP blow-up of collapsing XOR-rich cones).
    """
    gate = circuit.gates[node]
    rewritten = 0
    for reader in list(circuit.gates.values()):
        if node not in reader.inputs:
            continue
        sop, fanins = compose_sop(
            reader.sop, reader.inputs, node, gate.sop, gate.inputs
        )
        if (
            sop.num_literals > max_result_literals
            or len(sop.cubes) > max_result_cubes
        ):
            continue
        circuit.replace_gate(Gate(reader.output, fanins, sop))
        rewritten += 1
    return rewritten


# ----------------------------------------------------------------------
# algebraic (literal-set) view
# ----------------------------------------------------------------------
def alg_cubes(sop: Sop) -> List[FrozenSet[int]]:
    """Cubes as literal sets (see :func:`repro.netlist.cube.cube_literals`)."""
    return [cube_literals(c) for c in sop.cubes]


def alg_to_sop(cubes: Sequence[FrozenSet[int]], ninputs: int) -> Sop:
    """Literal-set cubes back to an :class:`Sop`."""
    return Sop(ninputs, tuple(cube_from_literals(c, ninputs) for c in cubes))
