"""``script_delay`` — the paper's synthesis script (Fig. 17 analogue).

The paper's modified ``script.delay``::

    sweep; decomp -q; tech_decomp -o 2; resub -a -d; sweep;
    reduce_depth -b -r; eliminate -l 100 -1; simplify -l; sweep;
    decomp -q; fx -l; tech_decomp -o 2
    map (inv/nand2/nor2 library, unit delay, fanout limit 4)

:func:`script_delay` runs the same pipeline on a combinational circuit;
:func:`optimize_sequential_delay` wraps it for sequential circuits by
cutting the latches (the latch boundary is preserved — exactly the
combinational-synthesis step of the retime-and-resynthesise loop).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.netlist.circuit import Circuit
from repro.netlist.transform import combinational_core, rebuild_from_core
from repro.synth.cse import strash
from repro.synth.decomp import algebraic_decomp, tech_decomp
from repro.synth.depth import circuit_depth, reduce_depth
from repro.synth.eliminate import eliminate
from repro.synth.fx import fast_extract
from repro.synth.resub import resubstitute
from repro.synth.simplify import simplify_network
from repro.synth.sweep import sweep

__all__ = ["script_delay", "optimize_sequential_delay"]


def script_delay(
    circuit: Circuit,
    effort: str = "medium",
) -> Circuit:
    """Run the delay script on a *combinational* circuit (in place).

    ``effort='low'`` skips the quadratic passes (resub/fx) for very large
    networks; ``'medium'`` is the paper's pipeline; ``'high'`` adds a second
    simplification round.
    """
    if circuit.latches:
        raise ValueError("script_delay is combinational; use optimize_sequential_delay")
    sweep(circuit)
    strash(circuit)
    algebraic_decomp(circuit)
    tech_decomp(circuit)
    if effort != "low":
        resubstitute(circuit)
    sweep(circuit)
    reduce_depth(circuit)
    eliminate(circuit, threshold=-1, max_literals=100)
    simplify_network(circuit)
    sweep(circuit)
    algebraic_decomp(circuit)
    if effort != "low":
        fast_extract(circuit)
    if effort == "high":
        simplify_network(circuit)
        sweep(circuit)
    tech_decomp(circuit)
    reduce_depth(circuit)
    sweep(circuit)
    return circuit


def optimize_sequential_delay(
    circuit: Circuit, effort: str = "medium", name: Optional[str] = None
) -> Circuit:
    """Combinational delay optimisation of a sequential circuit.

    Latch positions are fixed: the combinational core is cut out (latch
    outputs become PIs, latch data/enable nets POs), optimised with
    :func:`script_delay`, and the latches re-attached — exactly how SIS
    treats sequential circuits under combinational scripts.
    """
    if not circuit.latches:
        result = circuit.copy(name or circuit.name + "_opt")
        script_delay(result, effort)
        return result
    core = combinational_core(circuit)
    script_delay(core.circuit, effort)
    return rebuild_from_core(core, name or circuit.name + "_opt")
