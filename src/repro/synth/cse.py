"""``strash`` — structural gate sharing (common-subexpression elimination).

Two gates computing the same cover over the same ordered fanins are merged
into one, iteratively (merging enables further merges upstream).  For
commutative single-cube / single-literal-per-cube covers (AND/OR/NAND/NOR
families) the fanin order is canonicalised first so ``AND(a, b)`` merges
with ``AND(b, a)``.

This is the network-level analogue of the AIG structural hashing the CEC
engine relies on, exposed as a synthesis pass: retiming duplicates logic
cones when latch chains fork, and ``strash`` recovers the sharing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.netlist.circuit import Circuit, Gate, Latch
from repro.netlist.cube import Sop

__all__ = ["strash"]


def _canonical_key(gate: Gate) -> Optional[Tuple]:
    """A hashable key identifying the gate's function over named fanins.

    Symmetric covers (every permutation of inputs yields the same function
    — detected cheaply for the common one-cube / one-literal-per-cube
    forms) are keyed on the *sorted* fanin list.
    """
    sop = gate.sop
    symmetric = False
    if len(sop.cubes) == 1:
        # Single cube with uniform polarity: AND / NOR / literals.
        phases = {ch for ch in sop.cubes[0] if ch != "-"}
        symmetric = len(phases) <= 1
    elif all(
        sum(1 for ch in cube if ch != "-") == 1 for cube in sop.cubes
    ):
        # One literal per cube with uniform polarity: OR / NAND.
        phases = {ch for cube in sop.cubes for ch in cube if ch != "-"}
        symmetric = len(phases) <= 1
    if symmetric:
        # Pair each fanin with its polarity column multiset.
        columns = []
        for i, name in enumerate(gate.inputs):
            col = "".join(cube[i] for cube in sop.cubes)
            columns.append((name, col))
        columns.sort()
        return ("sym", tuple(columns))
    return ("exact", gate.inputs, sop.cubes)


def strash(circuit: Circuit, max_rounds: int = 20) -> Circuit:
    """Merge structurally identical gates in place; returns the circuit."""
    for _ in range(max_rounds):
        table: Dict[Tuple, str] = {}
        replace: Dict[str, str] = {}
        protected: Set[str] = set(circuit.outputs)
        for latch in circuit.latches.values():
            protected.add(latch.data)
            if latch.enable is not None:
                protected.add(latch.enable)
        for gate in circuit.topo_gates():
            key = _canonical_key(gate)
            if key is None:
                continue
            keeper = table.get(key)
            if keeper is None:
                table[key] = gate.output
            elif gate.output not in protected:
                replace[gate.output] = keeper
            elif keeper not in protected:
                # Prefer keeping the protected name.
                replace[keeper] = gate.output
                table[key] = gate.output
        if not replace:
            break
        # Resolve chains keeper -> keeper.
        def resolve(sig: str) -> str:
            seen = set()
            while sig in replace and sig not in seen:
                seen.add(sig)
                sig = replace[sig]
            return sig

        for gate in list(circuit.gates.values()):
            if any(s in replace for s in gate.inputs):
                circuit.replace_gate(
                    gate.with_inputs(tuple(resolve(s) for s in gate.inputs))
                )
        for latch in list(circuit.latches.values()):
            data = resolve(latch.data)
            enable = (
                resolve(latch.enable) if latch.enable is not None else None
            )
            if data != latch.data or enable != latch.enable:
                circuit.replace_latch(Latch(latch.output, data, enable))
        for victim in replace:
            if victim in circuit.gates:
                circuit.remove_gate(victim)
    return circuit
