"""``resub`` — algebraic resubstitution.

For each pair of nodes (divisor ``d``, target ``f``), try weak-dividing
``f``'s cover by ``d``'s cover; when the quotient is non-trivial and the
substitution saves literals, rewrite ``f`` as ``q·d + r`` with ``d`` as a
new fanin.  Substitution into a node inside ``d``'s own transitive fanin is
skipped (it would create a combinational cycle).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.netlist.circuit import Circuit, Gate
from repro.netlist.cube import Sop, cube_from_literals, cube_literals
from repro.netlist.graph import combinational_fanin_cone
from repro.synth.division import weak_divide
from repro.synth.network import require_combinational

__all__ = ["resubstitute"]


def _gate_alg(gate: Gate) -> Tuple[List[FrozenSet[int]], List[str]]:
    """Cover in literal-set form over the gate's fanin names."""
    return [cube_literals(c) for c in gate.sop.cubes], list(gate.inputs)


def _remap_to(
    cubes: Sequence[FrozenSet[int]], old_names: List[str], index: Dict[str, int]
) -> List[FrozenSet[int]]:
    out = []
    for cube in cubes:
        mapped = set()
        for lit in cube:
            var, phase = divmod(lit, 2)
            mapped.add(2 * index[old_names[var]] + phase)
        out.append(frozenset(mapped))
    return out


def resubstitute(circuit: Circuit, max_divisor_literals: int = 30) -> Circuit:
    """One pass of algebraic resubstitution over all node pairs (in place)."""
    require_combinational(circuit, "resubstitute")
    names = list(circuit.gates)
    for target_name in names:
        target = circuit.gates.get(target_name)
        if target is None or len(target.sop.cubes) < 2:
            continue
        if len(set(target.inputs)) != len(target.inputs):
            continue  # aliased fanins; sweep normalises these first
        best: Optional[Tuple[int, str, Sop, Tuple[str, ...]]] = None
        for div_name in names:
            if div_name == target_name:
                continue
            divisor = circuit.gates.get(div_name)
            if divisor is None or len(divisor.sop.cubes) < 2:
                continue
            if divisor.num_literals > max_divisor_literals:
                continue
            if not set(divisor.inputs) <= set(target.inputs):
                # The divisor must be built from the target's own fanins;
                # this also guarantees acyclicity: the new edge div→target
                # cannot close a cycle because div's fanins are target's
                # fanins, which cannot depend on target.
                continue
            rewritten = _try_divide(target, divisor)
            if rewritten is None:
                continue
            saving, sop, fanins = rewritten
            if saving > 0 and (best is None or saving > best[0]):
                best = (saving, div_name, sop, fanins)
        if best is not None:
            _, div_name, sop, fanins = best
            circuit.replace_gate(Gate(target_name, fanins, sop))
    return circuit


def _try_divide(
    target: Gate, divisor: Gate
) -> Optional[Tuple[int, Sop, Tuple[str, ...]]]:
    """Rewrite target as q·d + r; returns (literal saving, cover, fanins)."""
    merged: List[str] = list(target.inputs)
    if divisor.output in merged:
        return None
    index = {s: i for i, s in enumerate(merged)}
    t_cubes, t_names = _gate_alg(target)
    d_cubes, d_names = _gate_alg(divisor)
    t_alg = _remap_to(t_cubes, t_names, index)
    d_alg = _remap_to(d_cubes, d_names, index)
    quotient, remainder = weak_divide(t_alg, d_alg)
    if not quotient:
        return None
    # New cover over merged + [divisor output].
    new_names = merged + [divisor.output]
    n = len(new_names)
    d_lit = 2 * (n - 1) + 1
    new_cubes = [frozenset(q | {d_lit}) for q in quotient] + list(remainder)
    cubes = tuple(cube_from_literals(c, n) for c in new_cubes)
    sop = Sop(n, cubes).scc_minimal()
    # Drop unused fanins.
    support = sop.support()
    keep = sorted(support)
    for pos in range(n - 1, -1, -1):
        if pos not in support:
            sop = sop.remove_input(pos)
    fanins = tuple(new_names[i] for i in keep)
    old_literals = target.num_literals
    new_literals = sop.num_literals
    saving = old_literals - new_literals
    return saving, sop, fanins
