"""SIS-like combinational logic optimisation substrate.

Implements the operator vocabulary of the paper's synthesis script
(Fig. 17): ``sweep``, ``decomp``, ``tech_decomp``, ``resub``,
``reduce_depth``, ``eliminate``, ``simplify``, ``fx``, and technology
mapping onto the paper's restricted library {INV, NAND2, NOR2} with unit
delay and a fanout limit of four.

All passes are function-preserving per primary output; the test suite
verifies this with the CEC engine on every pass.
"""

from repro.synth.cse import strash
from repro.synth.sweep import sweep
from repro.synth.simplify import simplify_network
from repro.synth.eliminate import eliminate
from repro.synth.resub import resubstitute
from repro.synth.fx import fast_extract
from repro.synth.decomp import algebraic_decomp, tech_decomp
from repro.synth.depth import reduce_depth
from repro.synth.techmap import tech_map, MappedStats
from repro.synth.script import script_delay, optimize_sequential_delay

__all__ = [
    "strash",
    "sweep",
    "simplify_network",
    "eliminate",
    "resubstitute",
    "fast_extract",
    "algebraic_decomp",
    "tech_decomp",
    "reduce_depth",
    "tech_map",
    "MappedStats",
    "script_delay",
    "optimize_sequential_delay",
]
