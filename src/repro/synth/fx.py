"""``fx`` — fast extraction of common divisors.

A simplified Rajski/Vasudevamurthy fast-extract: enumerate candidate
divisors — *single cubes* (common cubes of cube pairs) and *double-cube
divisors* (cube-free two-cube kernels arising from cube pairs) — count how
many literals each saves across the whole network, extract the best as a
new node, rewrite all users by algebraic division, and iterate until no
candidate saves literals.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.netlist.circuit import Circuit, Gate
from repro.netlist.cube import Sop, cube_from_literals, cube_literals
from repro.synth.division import common_cube, weak_divide
from repro.synth.network import require_combinational

__all__ = ["fast_extract"]

AlgCube = FrozenSet[int]
Divisor = Tuple[AlgCube, ...]  # 1-cube or normalised 2-cube divisor


def _node_alg(gate: Gate, global_index: Dict[str, int]) -> List[AlgCube]:
    """Gate cover in global literal space (literals = 2*signal_id + phase)."""
    out = []
    for cube in gate.sop.cubes:
        lits = set()
        for i, ch in enumerate(cube):
            if ch == "-":
                continue
            sid = global_index[gate.inputs[i]]
            lits.add(2 * sid + (1 if ch == "1" else 0))
        out.append(frozenset(lits))
    return out


def _candidates_of(cover: Sequence[AlgCube]) -> Set[Divisor]:
    """Single-cube and double-cube divisor candidates from cube pairs."""
    found: Set[Divisor] = set()
    n = len(cover)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = cover[i], cover[j]
            cc = a & b
            if len(cc) >= 2:
                found.add((frozenset(cc),))
            # Double-cube divisor: the cube-free part of {a, b}.
            ra, rb = a - cc, b - cc
            if ra and rb:
                pair = tuple(sorted((frozenset(ra), frozenset(rb)), key=sorted))
                found.add(pair)
    return found


def _divisor_saving(
    covers: Dict[str, List[AlgCube]], divisor: Divisor
) -> int:
    """Literals saved by extracting the divisor as a node.

    One use rewrites ``|q|·|d|`` product cubes (each ``lits(q_i)+lits(d_j)``
    literals) into ``|q|`` cubes of ``lits(q_i)+1`` literals, saving
    ``(|d|−1)·Σ lits(q) + |q|·lits(d) − |q|``.
    """
    div_lits = sum(len(c) for c in divisor)
    saved = 0
    uses = 0
    for cover in covers.values():
        q, _ = weak_divide(cover, list(divisor))
        if q:
            uses += 1
            q_lits = sum(len(c) for c in q)
            saved += (
                (len(divisor) - 1) * q_lits + len(q) * div_lits - len(q)
            )
    if uses < 2:
        return -1
    return saved - div_lits  # pay for the new node once


def fast_extract(
    circuit: Circuit, max_iterations: int = 50, max_node_cubes: int = 40
) -> Circuit:
    """Greedy divisor extraction (in place); returns the circuit."""
    require_combinational(circuit, "fast_extract")
    counter = 0
    for _ in range(max_iterations):
        signals = list(circuit.signals())
        global_index = {s: i for i, s in enumerate(signals)}
        covers: Dict[str, List[AlgCube]] = {}
        for name, gate in circuit.gates.items():
            if 2 <= len(gate.sop.cubes) <= max_node_cubes:
                covers[name] = _node_alg(gate, global_index)
        if not covers:
            break
        candidates: Set[Divisor] = set()
        for cover in covers.values():
            candidates |= _candidates_of(cover)
        best: Optional[Tuple[int, Divisor]] = None
        for divisor in candidates:
            saving = _divisor_saving(covers, divisor)
            if saving > 0 and (
                best is None
                or saving > best[0]
                or (saving == best[0] and _div_key(divisor) < _div_key(best[1]))
            ):
                best = (saving, divisor)
        if best is None:
            break
        _, divisor = best
        counter += 1
        _extract(circuit, divisor, signals, global_index, covers, counter)
    return circuit


def _div_key(d: Divisor):
    return tuple(tuple(sorted(c)) for c in d)


def _extract(
    circuit: Circuit,
    divisor: Divisor,
    signals: List[str],
    global_index: Dict[str, int],
    covers: Dict[str, List[AlgCube]],
    counter: int,
) -> None:
    # Materialise the divisor as a new gate.
    support_ids = sorted({lit >> 1 for cube in divisor for lit in cube})
    fanins = tuple(signals[sid] for sid in support_ids)
    local = {sid: i for i, sid in enumerate(support_ids)}
    cubes = []
    for cube in divisor:
        cubes.append(
            cube_from_literals(
                {2 * local[lit >> 1] + (lit & 1) for lit in cube}, len(fanins)
            )
        )
    new_name = circuit.fresh_signal(f"__fx{counter}")
    circuit.add_gate(new_name, fanins, Sop(len(fanins), tuple(cubes)))
    new_sid = len(signals)  # conceptual id of the new signal
    new_lit = 2 * new_sid + 1

    # Rewrite every user.
    for name, cover in covers.items():
        q, r = weak_divide(cover, list(divisor))
        if not q:
            continue
        new_cover = [frozenset(c | {new_lit}) for c in q] + list(r)
        # Back to an SOP over (old signal ids ∪ new node).
        used_ids = sorted({lit >> 1 for cube in new_cover for lit in cube})
        gate_fanins = tuple(
            new_name if sid == new_sid else signals[sid] for sid in used_ids
        )
        local2 = {sid: i for i, sid in enumerate(used_ids)}
        sop_cubes = tuple(
            cube_from_literals(
                {2 * local2[lit >> 1] + (lit & 1) for lit in cube},
                len(gate_fanins),
            )
            for cube in new_cover
        )
        circuit.replace_gate(Gate(name, gate_fanins, Sop(len(gate_fanins), sop_cubes)))
