"""Exact two-level minimisation (Quine-McCluskey + exact covering).

For small covers (≲ 10 inputs) this computes a *minimum* SOP: prime
implicants by iterated merging, then a minimum prime cover by essential
extraction and branch-and-bound set covering.  Used as the quality oracle
for the heuristic minimiser (:meth:`repro.netlist.cube.Sop.minimized`) and
available as a drop-in for precision-critical spots (tiny enable/data
cones).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.netlist.cube import Sop, cube_contains

__all__ = ["prime_implicants", "exact_minimize"]

_MAX_INPUTS = 12


def _minterms_of(sop: Sop) -> Set[int]:
    out = set()
    for m in range(1 << sop.ninputs):
        if sop.eval_bool([(m >> i) & 1 == 1 for i in range(sop.ninputs)]):
            out.add(m)
    return out


def _cube_of_minterm(m: int, n: int) -> str:
    return "".join("1" if (m >> i) & 1 else "0" for i in range(n))


def _merge(a: str, b: str) -> Optional[str]:
    """Combine two cubes differing in exactly one specified position."""
    diff = -1
    for i, (ca, cb) in enumerate(zip(a, b)):
        if ca != cb:
            if ca == "-" or cb == "-" or diff >= 0:
                return None
            diff = i
    if diff < 0:
        return None
    return a[:diff] + "-" + a[diff + 1 :]


def prime_implicants(sop: Sop) -> List[str]:
    """All prime implicants of the function (Quine-McCluskey merging)."""
    if sop.ninputs > _MAX_INPUTS:
        raise ValueError(f"exact minimisation limited to {_MAX_INPUTS} inputs")
    n = sop.ninputs
    current: Set[str] = {_cube_of_minterm(m, n) for m in _minterms_of(sop)}
    primes: Set[str] = set()
    while current:
        merged_from: Set[str] = set()
        next_level: Set[str] = set()
        current_list = sorted(current)
        # Group by don't-care mask and number of ones for fewer pair tests.
        by_key: Dict[Tuple[str, int], List[str]] = {}
        for cube in current_list:
            mask = "".join("-" if ch == "-" else "x" for ch in cube)
            ones = sum(1 for ch in cube if ch == "1")
            by_key.setdefault((mask, ones), []).append(cube)
        for (mask, ones), cubes in by_key.items():
            partners = by_key.get((mask, ones + 1), [])
            for a in cubes:
                for b in partners:
                    m = _merge(a, b)
                    if m is not None:
                        next_level.add(m)
                        merged_from.add(a)
                        merged_from.add(b)
        primes |= current - merged_from
        current = next_level
    return sorted(primes)


def exact_minimize(sop: Sop) -> Sop:
    """A minimum-cube (then minimum-literal) SOP for the function."""
    if not sop.cubes:
        return sop
    minterms = sorted(_minterms_of(sop))
    if not minterms:
        return Sop.const0(sop.ninputs)
    if len(minterms) == 1 << sop.ninputs:
        return Sop.const1(sop.ninputs)
    primes = prime_implicants(sop)

    def covers(cube: str, m: int) -> bool:
        return cube_contains(cube, _cube_of_minterm(m, sop.ninputs))

    cover_map: Dict[int, List[int]] = {
        m: [i for i, p in enumerate(primes) if covers(p, m)] for m in minterms
    }

    # Essential primes first.
    chosen: Set[int] = set()
    remaining: Set[int] = set(minterms)
    for m, options in cover_map.items():
        if len(options) == 1:
            chosen.add(options[0])
    for i in chosen:
        remaining -= {m for m in remaining if covers(primes[i], m)}

    # Branch-and-bound over the residual covering problem.
    best: Optional[Set[int]] = None

    def literals(selection: Set[int]) -> int:
        return sum(
            sum(1 for ch in primes[i] if ch != "-") for i in selection
        )

    def bound_ok(selection: Set[int]) -> bool:
        if best is None:
            return True
        if len(selection) < len(best):
            return True
        if len(selection) == len(best):
            return literals(selection) < literals(best)
        return False

    def search(selection: Set[int], uncovered: Set[int]) -> None:
        nonlocal best
        if not bound_ok(selection):
            return
        if not uncovered:
            if best is None or not bound_ok(best) or (
                len(selection) < len(best)
                or (
                    len(selection) == len(best)
                    and literals(selection) < literals(best)
                )
            ):
                best = set(selection)
            return
        # Branch on the hardest minterm (fewest covering primes).
        m = min(uncovered, key=lambda mm: len(cover_map[mm]))
        for i in cover_map[m]:
            if i in selection:
                continue
            covered = {mm for mm in uncovered if covers(primes[i], mm)}
            search(selection | {i}, uncovered - covered)

    search(set(chosen), set(remaining))
    assert best is not None
    cubes = tuple(sorted(primes[i] for i in best))
    return Sop(sop.ninputs, cubes)
