"""The stable public facade of the verification stack.

Everything a caller needs to check circuit pairs lives behind four names:

* :class:`VerifyRequest` — one circuit-pair verification obligation with
  every option that can change its outcome (engine knobs, budgets) as
  plain data, JSON round-trippable, with a content-addressed
  :meth:`~VerifyRequest.fingerprint`;
* :class:`VerifyReport` — the outcome in one canonical, JSON-stable
  shape shared by every layer (CLI exit codes, batch stores, service
  responses);
* :func:`verify_pair` — run one request synchronously;
* :func:`verify_batch` — run many requests on the sharded async service
  runtime (:mod:`repro.service`).

The facade wraps :func:`repro.core.verify.check_sequential_equivalence`;
that function (and the CEC-level :func:`repro.cec.check_equivalence`)
remains public, but new integrations should talk to this module: the
underlying kwargs may grow engine-specific options, while the facade's
surface is covered by the stability policy in ``docs/API.md`` — fields
are only ever *added*, old spellings keep working for at least one minor
version behind a :class:`DeprecationWarning`.

Exit-code contract (``repro verify`` / per-job codes of ``repro batch``)::

    0  EQUIVALENT      — proven equivalent
    1  NOT_EQUIVALENT  — refuted, a counterexample trace is available
    2  UNKNOWN         — undecided; ``reason`` says why (a ``REASON_*``
                         code from :mod:`repro.runtime.budget`, or
                         ``"edbf-inconclusive"`` for the paper's
                         conservative EDBF verdict)

INCONCLUSIVE maps to exit code 2, *not* 1: a conservative EDBF mismatch
is "could not decide", not "proven different" (Sec. 5.2 of the paper).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import InitVar, dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from repro.core.verify import (
    SeqCheckResult,
    SeqVerdict,
    check_sequential_equivalence,
)
from repro.netlist.blif import parse_blif_file, write_blif
from repro.netlist.circuit import Circuit
from repro.netlist.validate import validate_circuit
from repro.runtime.budget import KNOWN_REASONS, Budget

__all__ = [
    "RESULT_KEYS",
    "REASON_INCONCLUSIVE",
    "EXIT_EQUIVALENT",
    "EXIT_NOT_EQUIVALENT",
    "EXIT_UNKNOWN",
    "VerificationResult",
    "VerifyRequest",
    "VerifyReport",
    "exit_code_for_verdict",
    "verify_pair",
    "verify_batch",
]

#: The canonical key set of every result type's ``as_dict()`` —
#: :class:`repro.core.verify.SeqCheckResult`,
#: :class:`repro.cec.CheckResult` and :class:`VerifyReport` all emit
#: exactly these keys (reports add bookkeeping fields on top).
RESULT_KEYS = (
    "verdict",
    "method",
    "reason",
    "counterexample",
    "failing_output",
    "stats",
)

#: Reason code reported for the paper's conservative EDBF verdict when it
#: is mapped onto the UNKNOWN exit code (Sec. 5.2: a mismatch that the
#: random-simulation refuter could not confirm is not a proof of
#: difference).
REASON_INCONCLUSIVE = "edbf-inconclusive"

EXIT_EQUIVALENT = 0
EXIT_NOT_EQUIVALENT = 1
EXIT_UNKNOWN = 2

#: On-the-wire schema version of VerifyRequest/VerifyReport dicts.
API_SCHEMA_VERSION = 1


@runtime_checkable
class VerificationResult(Protocol):
    """The common protocol of every verification outcome type.

    :class:`repro.core.verify.SeqCheckResult` and
    :class:`repro.cec.CheckResult` both satisfy it structurally — code
    that only reads these members works unchanged on either.
    """

    reason: Optional[str]
    failing_output: Optional[str]

    @property
    def equivalent(self) -> bool:
        """True when the outcome proves equivalence."""
        ...

    def as_dict(self) -> Dict[str, object]:
        """The canonical JSON form — exactly the :data:`RESULT_KEYS` keys."""
        ...


def exit_code_for_verdict(verdict: Union[str, SeqVerdict]) -> int:
    """Map a verdict (enum or canonical string) onto the exit-code contract."""
    value = verdict.value if isinstance(verdict, SeqVerdict) else str(verdict)
    if value == SeqVerdict.EQUIVALENT.value:
        return EXIT_EQUIVALENT
    if value == SeqVerdict.NOT_EQUIVALENT.value:
        return EXIT_NOT_EQUIVALENT
    return EXIT_UNKNOWN


# Sentinel for the deprecated ``cec_cache=`` constructor spelling: None
# is a meaningful value, so absence needs its own marker.
_UNSET: Any = object()


def _blif_bytes(circuit: Union[str, os.PathLike, Circuit]) -> bytes:
    """The bytes that define a circuit's identity for fingerprinting."""
    if isinstance(circuit, Circuit):
        return write_blif(circuit).encode("utf-8")
    with open(os.fspath(circuit), "rb") as handle:
        return handle.read()


@dataclass
class VerifyRequest:
    """One circuit-pair verification obligation as plain data.

    ``golden`` / ``revised`` are BLIF paths or in-memory
    :class:`~repro.netlist.Circuit` objects.  The option fields mirror
    :func:`repro.core.verify.check_sequential_equivalence`; the resource
    fields build the per-request :class:`~repro.runtime.Budget`.  A
    request serialises to a stable JSON dict (:meth:`to_dict`) — the
    batch-manifest row format — and hashes to a content-addressed
    :meth:`fingerprint` used for dedup and store resume.
    """

    golden: Union[str, os.PathLike, Circuit]
    revised: Union[str, os.PathLike, Circuit]
    name: str = ""
    priority: int = 0
    # Reduction options (verdict-relevant; part of the fingerprint).
    prepare: bool = True
    use_unateness: bool = True
    event_rewrite: bool = False
    validate_cex: bool = True
    # Engine options (verdict-preserving; not fingerprinted).
    jobs: int = 1
    cache: Union[None, str, os.PathLike] = None
    refine: bool = True
    preprocess: bool = True
    share_learned: bool = True
    # Resource budget (None = unlimited).
    time_limit: Optional[float] = None
    sat_conflicts: Optional[int] = None
    sat_propagations: Optional[int] = None
    bdd_node_limit: Optional[int] = None
    # Free-form caller annotations, carried through to the report.
    metadata: Dict[str, Any] = field(default_factory=dict)
    # Engine-portfolio dispatch (verdict-preserving; not fingerprinted).
    # ``engines`` is a list of adapter names (or a comma-separated
    # string, normalised to a list); None lets the policy choose.
    engines: Optional[List[str]] = None
    dispatch_policy: str = "cascade"
    dispatch_store: Union[None, str, os.PathLike] = None
    # Deprecated spelling of ``cache=`` (kept one release for manifests
    # and callers written against the pre-facade kwarg).
    cec_cache: InitVar[Any] = _UNSET

    def __post_init__(self, cec_cache: Any = _UNSET) -> None:
        if cec_cache is not _UNSET:
            warnings.warn(
                "VerifyRequest(cec_cache=...) is deprecated; use cache=...",
                DeprecationWarning,
                stacklevel=3,
            )
            if self.cache is None:
                self.cache = cec_cache
        if isinstance(self.engines, str):
            self.engines = [
                part.strip() for part in self.engines.split(",") if part.strip()
            ]
        elif self.engines is not None:
            self.engines = list(self.engines)
        if not self.name:
            self.name = f"{self._label(self.golden)}~{self._label(self.revised)}"

    @staticmethod
    def _label(circuit: Union[str, os.PathLike, Circuit]) -> str:
        if isinstance(circuit, Circuit):
            return circuit.name
        stem = os.path.basename(os.fspath(circuit))
        return stem[:-5] if stem.endswith(".blif") else stem

    # ------------------------------------------------------------------
    # derived forms
    # ------------------------------------------------------------------
    def load(self) -> tuple:
        """Materialise (golden, revised) as validated circuits."""
        pair = []
        for side in (self.golden, self.revised):
            circuit = (
                side
                if isinstance(side, Circuit)
                else parse_blif_file(os.fspath(side))
            )
            validate_circuit(circuit)
            pair.append(circuit)
        return pair[0], pair[1]

    def budget(self) -> Optional[Budget]:
        """A fresh Budget from the resource fields (None when unlimited).

        Fresh on every call — deadlines are single-use, so a retried or
        requeued request must not inherit a spent clock.
        """
        budget = Budget(
            wall_seconds=self.time_limit,
            sat_conflicts=self.sat_conflicts,
            sat_propagations=self.sat_propagations,
            bdd_nodes=self.bdd_node_limit,
        )
        return None if budget.unlimited else budget

    def fingerprint(self) -> str:
        """Content-addressed identity of the obligation.

        Hashes the two circuits' BLIF bytes plus every verdict-relevant
        option, so two manifest rows naming byte-identical files dedup
        even under different names/paths, while requests differing in a
        way that can change the verdict never collide.  Engine options
        (``jobs``, ``cache``, ``refine``, ``preprocess``,
        ``share_learned``, ``engines``,
        ``dispatch_policy``, ``dispatch_store``) and budgets are
        deliberately
        excluded: they affect *whether* a verdict is reached, not which
        one.
        """
        h = hashlib.sha256()
        h.update(_blif_bytes(self.golden))
        h.update(b"\x00")
        h.update(_blif_bytes(self.revised))
        options = {
            "prepare": self.prepare,
            "use_unateness": self.use_unateness,
            "event_rewrite": self.event_rewrite,
        }
        h.update(json.dumps(options, sort_keys=True).encode("utf-8"))
        return h.hexdigest()

    # ------------------------------------------------------------------
    # JSON round trip (the batch-manifest row schema)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON form; circuits given as objects become inline BLIF."""
        out: Dict[str, Any] = {"name": self.name}
        for key, side in (("golden", self.golden), ("revised", self.revised)):
            if isinstance(side, Circuit):
                out[key + "_blif"] = write_blif(side)
            else:
                out[key] = os.fspath(side)
        defaults = VerifyRequest(golden="", revised="", name="-")
        for attr in (
            "priority",
            "prepare",
            "use_unateness",
            "event_rewrite",
            "validate_cex",
            "jobs",
            "refine",
            "preprocess",
            "share_learned",
            "time_limit",
            "sat_conflicts",
            "sat_propagations",
            "bdd_node_limit",
            "engines",
            "dispatch_policy",
        ):
            value = getattr(self, attr)
            if value != getattr(defaults, attr):
                out[attr] = value
        if self.cache is not None:
            out["cache"] = os.fspath(self.cache)
        if self.dispatch_store is not None:
            out["dispatch_store"] = os.fspath(self.dispatch_store)
        if self.metadata:
            out["metadata"] = dict(self.metadata)
        return out

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Any],
        base_dir: Union[None, str, os.PathLike] = None,
    ) -> "VerifyRequest":
        """Build a request from its :meth:`to_dict` / manifest-row form.

        ``base_dir`` resolves relative circuit paths (a manifest's rows
        are relative to the manifest file).  Unknown keys are rejected —
        a typoed option silently meaning "default" is how wrong verdicts
        get trusted.
        """
        from repro.netlist.blif import parse_blif

        known = {
            "name",
            "golden",
            "revised",
            "golden_blif",
            "revised_blif",
            "priority",
            "prepare",
            "use_unateness",
            "event_rewrite",
            "validate_cex",
            "jobs",
            "cache",
            "refine",
            "preprocess",
            "share_learned",
            "time_limit",
            "sat_conflicts",
            "sat_propagations",
            "bdd_node_limit",
            "engines",
            "dispatch_policy",
            "dispatch_store",
            "cec_cache",
            "metadata",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown VerifyRequest field(s): {sorted(unknown)}"
            )
        sides: Dict[str, Union[str, Circuit]] = {}
        for key in ("golden", "revised"):
            if key + "_blif" in data:
                sides[key] = parse_blif(str(data[key + "_blif"]))
            elif key in data:
                path = os.fspath(str(data[key]))
                if base_dir is not None and not os.path.isabs(path):
                    path = os.path.join(os.fspath(base_dir), path)
                sides[key] = path
            else:
                raise ValueError(f"VerifyRequest needs {key!r} or {key}_blif")
        kwargs: Dict[str, Any] = {}
        for attr in (
            "name",
            "priority",
            "prepare",
            "use_unateness",
            "event_rewrite",
            "validate_cex",
            "jobs",
            "cache",
            "refine",
            "preprocess",
            "share_learned",
            "time_limit",
            "sat_conflicts",
            "sat_propagations",
            "bdd_node_limit",
            "engines",
            "dispatch_policy",
            "dispatch_store",
            "cec_cache",
        ):
            if attr in data:
                kwargs[attr] = data[attr]
        metadata = data.get("metadata")
        if metadata is not None:
            kwargs["metadata"] = dict(metadata)
        return cls(golden=sides["golden"], revised=sides["revised"], **kwargs)


@dataclass
class VerifyReport:
    """The canonical outcome of one verified request.

    Carries the full canonical result dict (``verdict`` / ``method`` /
    ``reason`` / ``counterexample`` / ``failing_output`` / ``stats`` —
    see :data:`RESULT_KEYS`) plus request bookkeeping: the request name
    and fingerprint, wall time, and caller metadata.  JSON-stable via
    :meth:`as_dict` / :meth:`from_dict`.
    """

    verdict: str
    method: str = ""
    reason: Optional[str] = None
    counterexample: Optional[Any] = None
    failing_output: Optional[str] = None
    stats: Dict[str, float] = field(default_factory=dict)
    name: str = ""
    fingerprint: str = ""
    elapsed_seconds: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)
    # Output obligations decided per engine adapter name (cache replays
    # count under "structural"); empty when the core path did not run
    # the CEC portfolio (e.g. structural short-circuits).
    engine_used: Dict[str, int] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        """True when the verdict is EQUIVALENT."""
        return self.verdict == SeqVerdict.EQUIVALENT.value

    @property
    def decided(self) -> bool:
        """True for a definitive verdict (equivalent / not_equivalent)."""
        return self.verdict in (
            SeqVerdict.EQUIVALENT.value,
            SeqVerdict.NOT_EQUIVALENT.value,
        )

    @property
    def exit_code(self) -> int:
        """The process exit code this verdict maps to (0 / 1 / 2)."""
        return exit_code_for_verdict(self.verdict)

    @classmethod
    def from_result(
        cls,
        result: VerificationResult,
        request: Optional[VerifyRequest] = None,
        elapsed_seconds: float = 0.0,
        fingerprint: str = "",
    ) -> "VerifyReport":
        """Wrap a core/CEC result object into the stable report shape.

        Verdicts pass through faithfully (an INCONCLUSIVE report still
        says ``inconclusive``); the exit-code contract folds it into
        code 2 via :func:`exit_code_for_verdict`, and its reason slot is
        filled with :data:`REASON_INCONCLUSIVE` so undecided outcomes
        always say why.
        """
        data = result.as_dict()
        verdict = str(data["verdict"])
        reason = data["reason"]
        if verdict == SeqVerdict.INCONCLUSIVE.value:
            reason = reason or REASON_INCONCLUSIVE
        stats = dict(data["stats"])  # type: ignore[arg-type]
        engine_used: Dict[str, int] = {}
        for prefix in ("cec_engine_", "engine_"):
            for key, value in stats.items():
                if key.startswith(prefix):
                    engine_used[key[len(prefix) :]] = int(value)
            if engine_used:
                break
        return cls(
            verdict=verdict,
            method=str(data["method"]),
            reason=reason,
            counterexample=data["counterexample"],
            failing_output=data["failing_output"],
            stats=stats,
            name=request.name if request is not None else "",
            fingerprint=fingerprint,
            elapsed_seconds=elapsed_seconds,
            metadata=dict(request.metadata) if request is not None else {},
            engine_used=engine_used,
        )

    def as_dict(self) -> Dict[str, Any]:
        """Stable JSON form (canonical result keys + report bookkeeping)."""
        return {
            "schema": API_SCHEMA_VERSION,
            "verdict": self.verdict,
            "method": self.method,
            "reason": self.reason,
            "counterexample": self.counterexample,
            "failing_output": self.failing_output,
            "stats": dict(self.stats),
            "name": self.name,
            "fingerprint": self.fingerprint,
            "elapsed_seconds": self.elapsed_seconds,
            "exit_code": self.exit_code,
            "metadata": dict(self.metadata),
            "engine_used": dict(self.engine_used),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VerifyReport":
        """Inverse of :meth:`as_dict`; tolerant of missing bookkeeping."""
        return cls(
            verdict=str(data["verdict"]),
            method=str(data.get("method", "")),
            reason=data.get("reason"),
            counterexample=data.get("counterexample"),
            failing_output=data.get("failing_output"),
            stats=dict(data.get("stats") or {}),
            name=str(data.get("name", "")),
            fingerprint=str(data.get("fingerprint", "")),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            metadata=dict(data.get("metadata") or {}),
            engine_used={
                str(k): int(v)
                for k, v in (data.get("engine_used") or {}).items()
            },
        )

    def summary(self) -> str:
        """One human-readable line (batch progress, serve responses)."""
        tail = f" reason={self.reason}" if self.reason else ""
        return (
            f"{self.name or self.fingerprint[:12]}: {self.verdict}"
            f" (exit {self.exit_code}, {self.elapsed_seconds:.2f}s)" + tail
        )


def verify_pair(
    golden: Union[str, os.PathLike, Circuit, VerifyRequest],
    revised: Union[None, str, os.PathLike, Circuit] = None,
    *,
    budget: Union[None, int, float, Budget] = None,
    tracer=None,
    metrics=None,
    **options: Any,
) -> VerifyReport:
    """Verify one circuit pair through the stable facade.

    Either pass ``golden``/``revised`` (paths or circuits) plus
    :class:`VerifyRequest` option fields as keyword arguments, or pass a
    ready-made :class:`VerifyRequest` as the single positional argument.
    ``tracer`` / ``metrics`` are the usual observability sinks
    (:mod:`repro.obs`); they are run-scoped, not request data, which is
    why they are not ``VerifyRequest`` fields.  ``budget`` overrides the
    request's own resource fields with a live
    :class:`~repro.runtime.Budget` (or bare wall seconds) — for callers
    like flows that carve one run-level budget into per-call slices.
    """
    if isinstance(golden, VerifyRequest):
        if revised is not None or options:
            raise TypeError(
                "verify_pair(request) takes no further circuit/options"
            )
        request = golden
    else:
        if revised is None:
            raise TypeError("verify_pair() needs both golden and revised")
        request = VerifyRequest(golden=golden, revised=revised, **options)
    c1, c2 = request.load()
    t0 = time.perf_counter()
    result = check_sequential_equivalence(
        c1,
        c2,
        prepare=request.prepare,
        use_unateness=request.use_unateness,
        event_rewrite=request.event_rewrite,
        validate_cex=request.validate_cex,
        n_jobs=request.jobs,
        cache=request.cache,
        refine=request.refine,
        preprocess=request.preprocess,
        share_learned=request.share_learned,
        budget=Budget.coerce(budget) if budget is not None else request.budget(),
        tracer=tracer,
        metrics=metrics,
        engines=request.engines,
        dispatch_policy=request.dispatch_policy,
        dispatch_store=request.dispatch_store,
    )
    return VerifyReport.from_result(
        result,
        request,
        elapsed_seconds=time.perf_counter() - t0,
        fingerprint=request.fingerprint(),
    )


def verify_batch(
    requests: Iterable[Union[VerifyRequest, Mapping[str, Any]]],
    *,
    jobs: int = 1,
    budget: Union[None, int, float, Budget] = None,
    cache: Union[None, str, os.PathLike] = None,
    store: Union[None, str, os.PathLike] = None,
    resume: bool = False,
    retries: int = 2,
    use_processes: bool = True,
    tracer=None,
    metrics=None,
) -> List["VerifyReport"]:
    """Verify many circuit pairs on the sharded async service runtime.

    ``jobs`` worker lanes run concurrently (a process pool by default;
    ``use_processes=False`` keeps execution in-process for tests and
    tiny batches).  ``budget`` is the *batch* budget — each job receives
    an even :meth:`~repro.runtime.Budget.slice` of the remaining wall
    time.  ``cache`` shares one persistent proof-cache file across all
    jobs; ``store``/``resume`` persist results to a JSONL
    :class:`repro.service.store.ResultStore` and skip already-decided
    fingerprints.  Returns one report per request, in request order
    (deduplicated requests share the winning report).

    This is the synchronous convenience wrapper over
    :class:`repro.service.scheduler.BatchScheduler`; use that directly
    for streaming submission or custom lifecycles.
    """
    import asyncio

    from repro.service.scheduler import BatchRunner

    runner = BatchRunner(
        jobs=jobs,
        budget=Budget.coerce(budget),
        cache=cache,
        store=store,
        resume=resume,
        retries=retries,
        use_processes=use_processes,
        tracer=tracer,
        metrics=metrics,
    )
    request_list = [
        req
        if isinstance(req, VerifyRequest)
        else VerifyRequest.from_dict(req)
        for req in requests
    ]
    results = asyncio.run(runner.run(request_list))
    return [r.report for r in results]
