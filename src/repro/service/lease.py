"""Per-job leases: the service's hung/crashed-worker containment.

A *lease* is the scheduler's claim check on one dispatched job: "worker
X is solving fingerprint F and must show life before deadline D".  The
holder (a local lane awaiting its executor future, or a TCP worker
connection) *heartbeats* to extend the deadline; a lease that reaches
its deadline without a heartbeat is **expired** — the worker is presumed
crashed, hung, or partitioned, and the job goes back to the queue after
an exponential-backoff-with-jitter pause.

Expiry is charged to the *job*, not the worker: a job whose leases keep
expiring regardless of where it runs is not unlucky, it is **poison**
(an input that hangs or kills workers deterministically).  After
``max_attempts`` expiries the scheduler must stop retrying and
quarantine the job as a canonical UNKNOWN with
:data:`~repro.runtime.budget.REASON_POISON_JOB` — one bad obligation is
never allowed to starve the rest of the batch (the same containment the
parallel sweep applies to hung unit workers, generalised to the whole
service).

The table is deliberately passive — pure bookkeeping over an injectable
clock and seeded RNG, no tasks or callbacks of its own — so schedulers
drive it from whatever wait-loop they already have, and tests drive it
from a fake clock.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.runtime.retry import backoff_pause

__all__ = ["Lease", "LeaseTable"]

#: Default lease time-to-live (seconds) when a caller enables leasing
#: without choosing one; generous against slow SAT calls, small enough
#: that a dead TCP worker is detected within one coffee sip.
DEFAULT_TTL = 30.0

#: Default expiries before a job is quarantined as poison.
DEFAULT_MAX_ATTEMPTS = 3


@dataclass
class Lease:
    """One live claim on a dispatched job."""

    fingerprint: str
    lane: Optional[str] = None
    deadline: float = 0.0
    granted_at: float = 0.0
    heartbeats: int = 0
    #: monotonically increasing grant id — distinguishes a re-grant of
    #: the same fingerprint from the lease a stale holder still quotes.
    token: int = 0


class LeaseTable:
    """TTL leases with heartbeats, expiry accounting and backoff.

    One table serves one scheduler run.  All times come from ``clock``
    (``time.monotonic`` by default) and all jitter from ``rng``, so the
    whole expiry/backoff schedule is reproducible under test.
    """

    def __init__(
        self,
        ttl: float = DEFAULT_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.ttl = float(ttl)
        self.max_attempts = max(1, int(max_attempts))
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.rng = rng if rng is not None else random.Random()
        self.clock = clock
        self._leases: Dict[str, Lease] = {}
        #: fingerprint -> lease expiries so far (cleared on release).
        self._expiries: Dict[str, int] = {}
        self._tokens = itertools.count(1)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def grant(self, fingerprint: str, lane: Optional[str] = None) -> Lease:
        """Claim a job for a holder; replaces any stale lease on it."""
        now = self.clock()
        lease = Lease(
            fingerprint=fingerprint,
            lane=lane,
            deadline=now + self.ttl,
            granted_at=now,
            token=next(self._tokens),
        )
        self._leases[fingerprint] = lease
        return lease

    def heartbeat(self, fingerprint: str) -> bool:
        """Extend a live lease by one TTL; False if there is none.

        A heartbeat for an already-expired-and-requeued job returns
        False — the stale holder learns its claim is gone and must drop
        the result rather than racing the re-run.
        """
        lease = self._leases.get(fingerprint)
        if lease is None:
            return False
        lease.deadline = self.clock() + self.ttl
        lease.heartbeats += 1
        return True

    def release(self, fingerprint: str) -> Optional[Lease]:
        """The job finished: drop its lease and forget its expiries."""
        self._expiries.pop(fingerprint, None)
        return self._leases.pop(fingerprint, None)

    def expire(self, fingerprint: str) -> int:
        """Record one expiry; returns the job's total expiry count.

        The lease is dropped (the holder is presumed gone); the caller
        decides between requeue (count < :attr:`max_attempts`) and
        quarantine (count >= :attr:`max_attempts`, see
        :meth:`poisoned`).
        """
        self._leases.pop(fingerprint, None)
        count = self._expiries.get(fingerprint, 0) + 1
        self._expiries[fingerprint] = count
        return count

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[Lease]:
        """The live lease on a job, if any."""
        return self._leases.get(fingerprint)

    def remaining(self, fingerprint: str) -> Optional[float]:
        """Seconds until the lease expires (clamped at 0), or None."""
        lease = self._leases.get(fingerprint)
        if lease is None:
            return None
        return max(0.0, lease.deadline - self.clock())

    def expired(self, fingerprint: str) -> bool:
        """True when the job holds a lease that has passed its deadline."""
        lease = self._leases.get(fingerprint)
        return lease is not None and self.clock() >= lease.deadline

    def expiries(self, fingerprint: str) -> int:
        """How many leases this job has burned so far."""
        return self._expiries.get(fingerprint, 0)

    def poisoned(self, fingerprint: str) -> bool:
        """True once the job has exhausted its lease attempts."""
        return self.expiries(fingerprint) >= self.max_attempts

    def sweep(self) -> List[Lease]:
        """Pop every currently-expired lease (TCP dispatch watchdog).

        Returns the popped leases; expiry counts are charged exactly as
        :meth:`expire` would.
        """
        now = self.clock()
        dead = [
            lease
            for lease in self._leases.values()
            if now >= lease.deadline
        ]
        for lease in dead:
            self.expire(lease.fingerprint)
        return dead

    def backoff(self, attempt: int) -> float:
        """The jittered pause before requeue number ``attempt``."""
        return backoff_pause(
            attempt,
            self.backoff_base,
            exponential=True,
            backoff_cap=self.backoff_cap,
            rng=self.rng,
        )

    @property
    def troubled(self) -> int:
        """Jobs carrying at least one expiry but not yet released."""
        return len(self._expiries)

    def __len__(self) -> int:
        return len(self._leases)

    def __repr__(self) -> str:
        return (
            f"LeaseTable(ttl={self.ttl:g}s, live={len(self._leases)}, "
            f"troubled={len(self._expiries)})"
        )
