"""asyncio TCP transport for the batch service (``repro serve --tcp``).

One :class:`TcpServer` exposes a :class:`~repro.service.scheduler.BatchRunner`
over a newline-JSON socket protocol with two connection roles:

* **clients** submit work: each line is one
  :class:`~repro.api.VerifyRequest` row (exactly the stdio ``serve``
  format) and each answer line is ``{"type": "result", ...}`` or
  ``{"type": "error", ...}``.  Results stream back on the submitting
  connection as they land, in completion order.
* **workers** donate compute: a first line
  ``{"type": "hello", "role": "worker", "lanes": N, "host": h, "pid": p}``
  turns the connection into ``N`` remote lanes pulling from the same job
  queue as the server's local lanes.  The server sends
  ``{"type": "job", "id": fp, "ttl": s, "payload": {...}}``; the worker
  answers with ``{"type": "heartbeat", "id": fp}`` lines while solving
  and one ``{"type": "result", "id": fp, "out": {...}}`` when done
  (``out`` is the :func:`~repro.service.scheduler.execute_request`
  return dict).  Heartbeat and result lines may carry a ``metrics``
  field — an incremental registry delta ``{"seq": N, "data": {...}}``
  folded into the coordinator registry exactly once per ``seq``
  (see :class:`~repro.obs.telemetry.MetricsDeltaFold`).
* **status observers** watch: a first line
  ``{"type": "hello", "role": "status", "watch": bool, "interval": s}``
  streams telemetry snapshots (one JSON object per line) — one-shot by
  default, periodic with ``watch`` — without touching the job queue.
  ``repro status`` is the console client for this role.

Robustness properties, in the order they matter:

* **leases** — every remote dispatch is covered by a
  :class:`~repro.service.lease.LeaseTable` lease; heartbeats extend it.
  A worker that dies, hangs silently, or partitions loses its lease and
  the job is requeued with jittered backoff; a job that burns
  ``max_attempts`` leases is quarantined as UNKNOWN/``poison-job``.
  Killing a worker mid-batch therefore delays its jobs, never loses
  them.
* **read timeouts** — every connection read is bounded
  (``read_timeout``); a silent client is answered with an error and
  disconnected instead of pinning server resources forever.
* **backpressure** — the shared queue's ``maxsize`` makes client
  submissions await a free slot, so one fast client cannot balloon
  server memory.
* **drain-then-exit** — SIGTERM (and SIGINT) stop intake, let every
  accepted job finish and its result reach its client, then close.
* **fault injection** — every received line passes the
  ``transport.recv`` :mod:`~repro.runtime.chaos` site: a ``corrupt``
  fault degrades to a per-line error, a ``crash`` fault drops the
  connection — both containable, neither may lose an accepted job.

Oversized lines: the stream limit rejects lines beyond
``max_line_bytes``; on TCP the connection is closed after a final error
line (unlike stdio serve, which degrades per-line), because the stream
position inside an unbounded line is unrecoverable.
"""

from __future__ import annotations

import asyncio
import collections
import itertools
import json
import os
import signal
import socket
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Deque, Dict, Optional, Set, Tuple

from repro.api import VerifyRequest
from repro.obs.metrics import TIME_BUCKETS, MetricsRegistry
from repro.obs.telemetry import (
    MetricsDeltaFold,
    TelemetrySampler,
    render_prometheus,
)
from repro.runtime import chaos
from repro.service.jobs import Job, JobResult, JobState
from repro.service.lease import LeaseTable
from repro.service.queue import JobQueue, QueueClosedError
from repro.service.scheduler import (
    MAX_LINE_BYTES,
    BatchRunner,
    execute_request,
)

__all__ = ["TcpServer", "run_worker", "parse_hostport"]

#: Default bound on one blocking connection read, seconds.
DEFAULT_READ_TIMEOUT = 300.0

#: Lease TTL applied to remote workers when the runner has leasing off.
#: Remote dispatches are never allowed to run leaseless — a vanished
#: TCP peer is exactly the failure leases exist for.
REMOTE_DEFAULT_TTL = 30.0


def parse_hostport(spec: str, default_port: int = 9431) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` / ``:PORT`` / ``HOST`` into an address pair."""
    spec = spec.strip()
    if not spec:
        raise ValueError("empty host:port")
    if ":" in spec:
        host, _, port_text = spec.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError as exc:
            raise ValueError(f"bad port in {spec!r}") from exc
    else:
        host, port = spec, default_port
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in {spec!r}")
    return host, port


class _Client:
    """One submitting connection: its writer, lock, and inflight count."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.inflight = 0
        self.settled = asyncio.Event()
        self.settled.set()

    def track(self) -> None:
        self.inflight += 1
        self.settled.clear()

    def untrack(self) -> None:
        self.inflight -= 1
        if self.inflight <= 0:
            self.settled.set()

    async def send(self, payload: Dict[str, Any]) -> None:
        """Write one protocol line; a vanished client is not an error."""
        try:
            async with self.lock:
                self.writer.write(
                    (json.dumps(payload) + "\n").encode("utf-8")
                )
                await self.writer.drain()
        except (ConnectionError, OSError):
            pass


class _WorkerConn:
    """One worker connection: pending dispatches and liveness."""

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        name: str,
        lanes: int = 1,
        host: str = "",
        pid: int = 0,
    ) -> None:
        self.writer = writer
        self.name = name
        self.lanes = lanes
        self.host = host
        self.pid = pid
        self.lock = asyncio.Lock()
        #: fingerprint -> future resolved by the connection reader.
        self.pending: Dict[str, asyncio.Future] = {}
        self.dead = False

    @property
    def key(self) -> str:
        """Delta-stream source identity: peer address + announced pid.

        The peer address alone is not enough (a restarted worker reuses
        seq 1 from a new ephemeral port anyway, but a NATed pair of
        workers can share an apparent host) — the announced pid breaks
        the tie without trusting the worker for uniqueness across
        reconnects, which the per-connection peername already provides.
        """
        return f"{self.name}/{self.host}:{self.pid}"

    async def send(self, payload: Dict[str, Any]) -> None:
        async with self.lock:
            self.writer.write((json.dumps(payload) + "\n").encode("utf-8"))
            await self.writer.drain()

    def fail_pending(self, exc: BaseException) -> None:
        """Connection died: error out every in-flight dispatch."""
        self.dead = True
        for future in self.pending.values():
            if not future.done():
                future.set_exception(exc)
        self.pending.clear()


class TcpServer:
    """Newline-JSON TCP front end over one :class:`BatchRunner`.

    ``local_lanes`` overrides how many in-process lanes pull from the
    queue (default: the runner's ``jobs``); ``0`` makes the server a
    pure coordinator that only dispatches to connected workers.
    """

    def __init__(
        self,
        runner: BatchRunner,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
        queue_maxsize: int = 0,
        max_line_bytes: int = MAX_LINE_BYTES,
        local_lanes: Optional[int] = None,
        prom_port: Optional[int] = None,
    ) -> None:
        self.runner = runner
        self.host = host
        self.port = int(port)
        self.read_timeout = float(read_timeout)
        self.queue_maxsize = max(0, int(queue_maxsize))
        self.max_line_bytes = int(max_line_bytes)
        self.local_lanes = (
            runner.lanes if local_lanes is None else max(0, int(local_lanes))
        )
        #: None = no Prometheus endpoint; 0 = bind an ephemeral port
        #: (rewritten with the bound port after :meth:`start`).
        self.prom_port = None if prom_port is None else int(prom_port)
        self.telemetry: Optional[TelemetrySampler] = None
        self._prom_server: Optional[asyncio.AbstractServer] = None
        self._delta_fold: Optional[MetricsDeltaFold] = None
        self._workers: Set[_WorkerConn] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[JobQueue] = None
        self._store = None
        self._leases: Optional[LeaseTable] = None
        self._remote_leases: Optional[LeaseTable] = None
        self._executor = None
        self._results: Dict[str, JobResult] = {}
        self._waiters: Dict[str, Deque[Tuple[_Client, str]]] = {}
        self._lane_tasks: list = []
        self._conn_tasks: Set[asyncio.Task] = set()
        self._shutdown: Optional[asyncio.Event] = None
        self._drained = False
        self.emitted = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start local lanes (idempotent)."""
        if self._server is not None:
            return
        chaos.ensure_env_plan()
        self._shutdown = asyncio.Event()
        self._queue = JobQueue(maxsize=self.queue_maxsize)
        self._store = self.runner._open_store()
        self._leases = self.runner._make_leases()
        self._remote_leases = self._leases or LeaseTable(
            ttl=REMOTE_DEFAULT_TTL,
            max_attempts=self.runner.lease_attempts,
            backoff_base=self.runner.lease_backoff,
            backoff_cap=self.runner.lease_backoff_cap,
        )
        self._executor = (
            self.runner._make_executor() if self.local_lanes else None
        )
        self._lane_tasks = [
            asyncio.ensure_future(
                self.runner._lane(
                    lane,
                    self._queue,
                    self._executor,
                    self._store,
                    self._results,
                    self._route,
                    self._leases,
                )
            )
            for lane in range(self.local_lanes)
        ]
        if self.runner.metrics is not None:
            self._delta_fold = MetricsDeltaFold(self.runner.metrics)
        # The runner's sampler (``--telemetry``) records to file; with no
        # recording configured a bare sampler still serves on-demand
        # snapshots to ``repro status`` and the Prometheus endpoint.
        self.telemetry = self.runner.telemetry or TelemetrySampler(
            source="serve"
        )
        self.telemetry.probe = self.runner._telemetry_probe(
            self._queue, self._remote_leases, workers=self._worker_stats
        )
        self.telemetry.start()
        # limit bounds one readline; +2 leaves room for the newline so a
        # line of exactly max_line_bytes still parses.
        self._server = await asyncio.start_server(
            self._on_connection,
            self.host,
            self.port,
            limit=self.max_line_bytes + 2,
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if self.prom_port is not None:
            self._prom_server = await asyncio.start_server(
                self._serve_prometheus, self.host, self.prom_port
            )
            prom_sockets = self._prom_server.sockets or []
            if prom_sockets:
                self.prom_port = prom_sockets[0].getsockname()[1]

    def _worker_stats(self) -> Dict[str, int]:
        """The ``workers`` snapshot section: live connections and lanes."""
        live = [conn for conn in self._workers if not conn.dead]
        return {
            "connected": len(live),
            "lanes": sum(conn.lanes for conn in live),
        }

    def request_shutdown(self) -> None:
        """Begin drain-then-exit (SIGTERM handler; safe to call twice)."""
        if self._shutdown is None or self._shutdown.is_set():
            return
        self._shutdown.set()
        if self._queue is not None:
            self._queue.close()

    async def run(self, install_signals: bool = True) -> int:
        """Serve until SIGTERM/SIGINT (or :meth:`request_shutdown`).

        Returns the number of result lines emitted to clients.
        """
        await self.start()
        loop = asyncio.get_running_loop()
        installed = []
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
        try:
            await self._shutdown.wait()
            await self._drain()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
        return self.emitted

    async def aclose(self) -> None:
        """Drain and close (the test-friendly shutdown path)."""
        if self._server is None:
            return
        self.request_shutdown()
        await self._drain()

    async def _drain(self) -> None:
        if self._drained:
            return
        self._drained = True
        self._server.close()
        await self._server.wait_closed()
        if self._prom_server is not None:
            self._prom_server.close()
            await self._prom_server.wait_closed()
        self._queue.close()
        # Every job accepted before shutdown reaches a terminal state
        # (solved locally, solved remotely, or lease-quarantined) and is
        # routed before we tear connections down.
        await self._queue.drain()
        await asyncio.gather(*self._lane_tasks, return_exceptions=True)
        for task in list(self._conn_tasks):
            task.cancel()
        await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.runner._shutdown_executor(self._executor)
        if self.telemetry is not None:
            await self.telemetry.aclose()
        if self._store is not None:
            self._store.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            try:
                first = await self._recv_line(reader)
            except asyncio.TimeoutError:
                await _Client(writer).send(
                    {
                        "type": "error",
                        "error": (
                            f"no input for {self.read_timeout:g}s; "
                            "closing connection"
                        ),
                    }
                )
                return
            except ValueError:
                await _Client(writer).send(
                    {
                        "type": "error",
                        "error": (
                            f"line exceeds {self.max_line_bytes} bytes; "
                            "closing connection"
                        ),
                    }
                )
                return
            hello = None
            if first is not None:
                try:
                    parsed = json.loads(first)
                    if (
                        isinstance(parsed, dict)
                        and parsed.get("type") == "hello"
                        and parsed.get("role") in ("worker", "status")
                    ):
                        hello = parsed
                except ValueError:
                    pass
            if hello is not None and hello.get("role") == "worker":
                await self._serve_worker(reader, writer, hello)
            elif hello is not None:
                await self._serve_status(writer, hello)
            else:
                await self._serve_client(reader, writer, first)
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()

    async def _recv_line(self, reader: asyncio.StreamReader) -> Optional[str]:
        """One bounded, fault-instrumented line; None on EOF or drop.

        Raises ``asyncio.TimeoutError`` when the peer stays silent past
        ``read_timeout`` and ``ValueError`` for an oversized line
        (stream-limit overrun) — the connection cannot be resynchronised
        after either.
        """
        raw = await asyncio.wait_for(reader.readline(), self.read_timeout)
        if not raw:
            return None
        line = raw.decode("utf-8", "replace")
        try:
            line = await chaos.afire("transport.recv", line)
        except chaos.ChaosError:
            return None  # injected connection drop
        return line.strip()

    # -------------------------- client role ---------------------------
    async def _serve_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first: Optional[str],
    ) -> None:
        client = _Client(writer)
        line = first
        while True:
            if line is None:
                break
            if line:
                keep_going = await self._accept_client_line(client, line)
                if not keep_going:
                    break
            try:
                line = await self._recv_line(reader)
            except asyncio.TimeoutError:
                await client.send(
                    {
                        "type": "error",
                        "error": (
                            f"no input for {self.read_timeout:g}s; "
                            "closing connection"
                        ),
                    }
                )
                break
            except ValueError:
                await client.send(
                    {
                        "type": "error",
                        "error": (
                            f"line exceeds {self.max_line_bytes} bytes; "
                            "closing connection"
                        ),
                    }
                )
                break
        # EOF/disconnect: answers for already-accepted jobs still go out.
        await client.settled.wait()

    async def _accept_client_line(self, client: _Client, line: str) -> bool:
        """Queue one submitted row; False when intake must stop."""
        try:
            row = json.loads(line)
            request = VerifyRequest.from_dict(row)
            fingerprint = request.fingerprint()
        except (ValueError, TypeError, OSError) as exc:
            await client.send({"type": "error", "error": str(exc)})
            return True
        if self.runner.resume and self._store is not None:
            prior = self._store.decided(fingerprint)
            if prior is not None:
                self.runner._count("service.jobs.resumed")
                await self._emit(
                    client,
                    JobResult(
                        name=request.name,
                        fingerprint=fingerprint,
                        status=JobState.RESUMED.value,
                        report=prior.report,
                        attempts=0,
                    ),
                )
                return True
        job = Job(request=request, fingerprint=fingerprint)
        # Register the waiter before the (possibly awaiting) put: the
        # result may land before put() returns under backpressure.
        self._waiters.setdefault(fingerprint, collections.deque()).append(
            (client, request.name)
        )
        client.track()
        try:
            await self._queue.put(job)
        except QueueClosedError:
            self._unregister(client, fingerprint)
            await client.send(
                {"type": "error", "error": "server is draining; resubmit"}
            )
            return False
        return True

    def _unregister(self, client: _Client, fingerprint: str) -> None:
        waiters = self._waiters.get(fingerprint)
        if waiters:
            for entry in waiters:
                if entry[0] is client:
                    waiters.remove(entry)
                    break
            if not waiters:
                self._waiters.pop(fingerprint, None)
        client.untrack()

    async def _route(self, result: JobResult) -> None:
        """Deliver one finished result to its submitting connection.

        Lanes emit exactly one result per submission (the primary, then
        one mirror per parked duplicate, in park order), so FIFO-popping
        one waiter per emitted result pairs each answer with the
        connection that asked for it.
        """
        waiters = self._waiters.get(result.fingerprint)
        if not waiters:
            return
        client, name = waiters.popleft()
        if not waiters:
            self._waiters.pop(result.fingerprint, None)
        if name and result.name != name:
            result = BatchRunner._mirror_result(name, result)
        await self._emit(client, result)
        client.untrack()

    async def _emit(self, client: _Client, result: JobResult) -> None:
        await client.send({"type": "result", **result.to_dict()})
        self.emitted += 1

    # -------------------------- status role ---------------------------
    async def _serve_status(
        self, writer: asyncio.StreamWriter, hello: Dict[str, Any]
    ) -> None:
        """Stream telemetry snapshots to a ``repro status`` connection.

        One snapshot per line; ``watch: true`` in the hello keeps the
        stream open at ``interval`` seconds until the observer hangs up
        or the server drains.  Observers are read-only: they never touch
        the queue, so a stuck dashboard cannot interfere with work.
        """
        watch = bool(hello.get("watch"))
        try:
            interval = float(hello.get("interval", 1.0))
        except (TypeError, ValueError):
            interval = 1.0
        interval = min(60.0, max(0.1, interval))
        try:
            while True:
                snapshot = self.telemetry.sample()
                writer.write(
                    (json.dumps(snapshot) + "\n").encode("utf-8")
                )
                await writer.drain()
                if not watch or self._shutdown.is_set():
                    return
                try:
                    await asyncio.wait_for(
                        self._shutdown.wait(), interval
                    )
                    # Shutdown: emit one last snapshot, then hang up.
                    watch = False
                except asyncio.TimeoutError:
                    pass
        except (ConnectionError, OSError):
            pass  # observer vanished; nothing to clean up

    async def _serve_prometheus(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one HTTP scrape with the text exposition format.

        Deliberately minimal HTTP: read the request head, answer 200
        with ``Connection: close``, hang up.  Prometheus (and curl)
        speak exactly this much; anything fancier belongs behind a real
        exporter.
        """
        try:
            try:
                while True:
                    line = await asyncio.wait_for(reader.readline(), 5.0)
                    if not line or line in (b"\r\n", b"\n"):
                        break
            except asyncio.TimeoutError:
                pass  # header never finished; scrape what we have anyway
            body = render_prometheus(
                self.runner.metrics, self.telemetry.sample()
            ).encode("utf-8")
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                + f"Content-Length: {len(body)}\r\n".encode("ascii")
                + b"Connection: close\r\n\r\n"
                + body
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    # -------------------------- worker role ---------------------------
    async def _serve_worker(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: Dict[str, Any],
    ) -> None:
        lanes = max(1, int(hello.get("lanes", 1) or 1))
        peer = writer.get_extra_info("peername")
        try:
            pid = int(hello.get("pid", 0) or 0)
        except (TypeError, ValueError):
            pid = 0
        conn = _WorkerConn(
            writer,
            name=f"{peer[0]}:{peer[1]}" if peer else "?",
            lanes=lanes,
            host=str(hello.get("host", "") or ""),
            pid=pid,
        )
        self.runner._count("service.transport.workers")
        self._workers.add(conn)
        await conn.send(
            {"type": "welcome", "ttl": self._remote_leases.ttl}
        )
        lane_tasks = [
            asyncio.ensure_future(self._remote_lane(conn, index))
            for index in range(lanes)
        ]
        try:
            await self._worker_reader(reader, conn)
        finally:
            conn.fail_pending(ConnectionResetError("worker connection lost"))
            self._workers.discard(conn)
            await asyncio.gather(*lane_tasks, return_exceptions=True)

    async def _worker_reader(
        self, reader: asyncio.StreamReader, conn: _WorkerConn
    ) -> None:
        """Demultiplex one worker's heartbeat/result lines."""
        while True:
            try:
                line = await self._recv_line(reader)
            except (asyncio.TimeoutError, ValueError):
                return  # silent or oversized worker: presumed dead
            if line is None:
                return
            if not line:
                continue
            try:
                msg = json.loads(line)
            except ValueError:
                continue  # a corrupt line never kills the connection
            if not isinstance(msg, dict):
                continue
            kind = msg.get("type")
            fingerprint = str(msg.get("id", ""))
            if kind == "heartbeat":
                self._remote_leases.heartbeat(fingerprint)
                self._apply_delta(conn, msg.get("metrics"))
            elif kind == "result":
                # The delta is applied even for stale answers (expired
                # lease): the work genuinely happened on the worker, and
                # the (source, seq) dedup already protects a re-run's
                # fresh delta from colliding with it.
                self._apply_delta(conn, msg.get("metrics"))
                future = conn.pending.pop(fingerprint, None)
                if future is not None and not future.done():
                    future.set_result(msg.get("out") or {})
                # else: stale answer for a lease we already expired.

    def _apply_delta(self, conn: _WorkerConn, delta: Any) -> None:
        """Fold one worker metrics delta into the coordinator registry."""
        if self._delta_fold is None or not isinstance(delta, dict):
            return
        if self._delta_fold.apply(
            conn.key, delta.get("seq"), delta.get("data")
        ):
            self.runner._count("service.metrics.deltas_applied")

    async def _remote_lane(self, conn: _WorkerConn, index: int) -> None:
        """One server-side lane dispatching queue jobs to ``conn``."""
        lane_label = f"tcp:{conn.name}#{index}"
        runner = self.runner
        leases = self._remote_leases
        while not conn.dead:
            job = await self._queue.get()
            if job is None:
                return
            if conn.dead:
                # The connection died while this lane waited on the
                # queue; hand the job straight back.
                self._queue.reinject(job)
                return
            payload = runner._payload_for(job, self._queue)
            future = asyncio.get_running_loop().create_future()
            conn.pending[job.fingerprint] = future
            try:
                await conn.send(
                    {
                        "type": "job",
                        "id": job.fingerprint,
                        "ttl": leases.ttl,
                        "payload": payload,
                    }
                )
            except (ConnectionError, OSError):
                conn.pending.pop(job.fingerprint, None)
                self._queue.reinject(job)
                return
            try:
                status, out = await runner._await_leased(
                    lane_label, job, self._queue, future, leases
                )
            except (ConnectionError, OSError):
                # The connection died mid-solve: charge one lease expiry
                # immediately rather than waiting out the TTL.
                expiries = leases.expire(job.fingerprint)
                runner._count("service.lease.expired")
                if expiries >= leases.max_attempts:
                    runner._count("service.lease.poisoned")
                    await self._settle(
                        job, runner._poisoned_result(job, lane_label, leases)
                    )
                else:
                    runner._count("service.lease.requeued")
                    self._queue.reinject(job)
                return
            if status == "requeued":
                conn.pending.pop(job.fingerprint, None)
                continue
            if status == "poisoned":
                conn.pending.pop(job.fingerprint, None)
                await self._settle(
                    job, runner._poisoned_result(job, lane_label, leases)
                )
                continue
            try:
                report_result = self._remote_result(job, lane_label, out)
            except (KeyError, TypeError, ValueError):
                # A malformed result dict (buggy or hostile worker) must
                # not kill the lane task — that would strand the job and
                # wedge the drain.  Settle it as a worker failure.
                runner._count("service.transport.malformed_results")
                report_result = runner._worker_failure_result(
                    job, lane_label
                )
                out = {}
            runner._fold_observability(job, lane_label, report_result, out)
            await self._settle(job, report_result)

    def _remote_result(
        self, job: Job, lane_label: str, out: Dict[str, Any]
    ) -> JobResult:
        """Fold a worker's ``execute_request`` dict into a JobResult."""
        from repro.api import VerifyReport

        report = VerifyReport.from_dict(out["report"])
        failed = out.get("error") is not None
        return JobResult(
            name=job.name,
            fingerprint=job.fingerprint,
            status=(JobState.FAILED if failed else JobState.DONE).value,
            report=report,
            error=out.get("error"),
            attempts=int(out.get("attempts", 1)),
            lane=lane_label,
            elapsed_seconds=float(out.get("elapsed", 0.0)),
        )

    async def _settle(self, job: Job, result: JobResult) -> None:
        """Terminal bookkeeping shared by all remote-lane outcomes."""
        try:
            terminal = JobState(result.status)
        except ValueError:
            terminal = JobState.FAILED
        duplicates = self._queue.finish(job, terminal)
        self.runner._record(self._store, self._results, result)
        await self._route(result)
        for dup in duplicates:
            await self._route(
                BatchRunner._mirror_result(dup.name, result)
            )


# ----------------------------------------------------------------------
# the worker client
# ----------------------------------------------------------------------
async def run_worker(
    host: str,
    port: int,
    *,
    lanes: int = 1,
    use_processes: bool = False,
    heartbeat_floor: float = 0.02,
) -> int:
    """Connect to a :class:`TcpServer` and solve jobs until it closes.

    Returns the number of jobs solved.  Heartbeats are sent at roughly a
    third of the server-announced lease TTL, so a live-but-slow solve
    keeps its lease while a killed worker process loses it within one
    TTL.

    Metrics stream back incrementally: each solved job's registry (plus
    the worker's own ``service.worker.*`` bookkeeping) accumulates into
    a pending delta that piggybacks on the next heartbeat or result line
    as ``{"seq": N, "data": <registry dict>}``.  Sequence numbers let
    the coordinator apply each delta exactly once however lines
    interleave; the per-job ``out["metrics"]`` is nulled so the same
    numbers never also travel the result path.
    """
    lanes = max(1, int(lanes))
    reader, writer = await asyncio.open_connection(
        host, port, limit=MAX_LINE_BYTES + 2
    )
    loop = asyncio.get_running_loop()
    executor = ProcessPoolExecutor(max_workers=lanes) if use_processes else None
    lock = asyncio.Lock()
    solved = 0
    tasks: Set[asyncio.Task] = set()
    pending = MetricsRegistry()
    delta_seq = itertools.count(1)

    def drain_delta() -> Optional[Dict[str, Any]]:
        nonlocal pending
        if not pending:
            return None
        delta = {"seq": next(delta_seq), "data": pending.to_dict()}
        pending = MetricsRegistry()
        return delta

    async def send(
        payload: Dict[str, Any], attach_delta: bool = False
    ) -> None:
        async with lock:
            if attach_delta:
                # Drained under the lock: the delta rides exactly one
                # line, so a send that fails loses it (the coordinator
                # treats metrics as best-effort; results are the record).
                delta = drain_delta()
                if delta is not None:
                    payload = dict(payload, metrics=delta)
            writer.write((json.dumps(payload) + "\n").encode("utf-8"))
            await writer.drain()

    async def heartbeat(fingerprint: str, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            await send(
                {"type": "heartbeat", "id": fingerprint}, attach_delta=True
            )

    async def solve(msg: Dict[str, Any], interval: float) -> None:
        nonlocal solved
        fingerprint = str(msg.get("id", ""))
        beat = asyncio.ensure_future(heartbeat(fingerprint, interval))
        try:
            out = await loop.run_in_executor(
                executor, execute_request, msg.get("payload") or {}
            )
        except Exception as exc:  # noqa: BLE001 - report, don't die
            out = {
                "report": None,
                "error": f"{type(exc).__name__}: {exc}",
                "attempts": 1,
                "elapsed": 0.0,
                "events": [],
                "metrics": None,
            }
            pending.inc("service.worker.job_failures")
        finally:
            beat.cancel()
        # Job metrics travel the delta stream, not the result line — the
        # coordinator's fold merges out["metrics"] when present, so
        # shipping both would double-count every engine counter.
        if out.get("metrics"):
            pending.merge(out["metrics"])
        out["metrics"] = None
        pending.inc("service.worker.jobs_solved")
        pending.observe(
            "service.worker.job_seconds",
            float(out.get("elapsed", 0.0) or 0.0),
            bounds=TIME_BUCKETS,
        )
        if out.get("report") is None:
            # A worker-side failure with no report would crash the
            # server-side fold; ship a canonical worker-failure one.
            from repro.core.verify import SeqVerdict
            from repro.runtime.budget import REASON_WORKER_FAILURE
            from repro.api import VerifyReport

            out["report"] = VerifyReport(
                verdict=SeqVerdict.UNKNOWN.value,
                method="service",
                reason=REASON_WORKER_FAILURE,
                fingerprint=fingerprint,
            ).as_dict()
        await send(
            {"type": "result", "id": fingerprint, "out": out},
            attach_delta=True,
        )
        solved += 1

    try:
        await send(
            {
                "type": "hello",
                "role": "worker",
                "lanes": lanes,
                "host": socket.gethostname(),
                "pid": os.getpid(),
            }
        )
        raw = await reader.readline()
        ttl = REMOTE_DEFAULT_TTL
        if raw:
            try:
                welcome = json.loads(raw.decode("utf-8", "replace"))
                ttl = float(welcome.get("ttl", ttl))
            except (ValueError, TypeError):
                pass
        interval = max(float(heartbeat_floor), ttl / 3.0)
        while True:
            raw = await reader.readline()
            if not raw:
                break
            try:
                msg = json.loads(raw.decode("utf-8", "replace"))
            except ValueError:
                continue
            if isinstance(msg, dict) and msg.get("type") == "job":
                task = asyncio.ensure_future(solve(msg, interval))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        await asyncio.gather(*tasks, return_exceptions=True)
    finally:
        for task in list(tasks):
            task.cancel()
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        writer.close()
    return solved
