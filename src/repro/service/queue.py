"""The asyncio job queue: priorities, dedup, backpressure, drain/cancel.

One :class:`JobQueue` feeds the scheduler's worker lanes.  It is a
priority queue (higher :attr:`~repro.service.jobs.Job.priority` first,
FIFO within a band) with three service-grade behaviours stacked on top:

* **dedup** — submitting a request whose fingerprint is already pending
  or running does not enqueue a second solve; the duplicate is parked on
  the primary job and mirrors its result when it completes;
* **backpressure** — an optional ``maxsize`` makes :meth:`put` await
  until a slot frees (the ``repro serve`` stdin reader uses this so an
  unbounded client cannot balloon memory);
* **graceful shutdown** — :meth:`close` stops intake and lets lanes
  drain naturally (:meth:`get` returns None once empty), while
  :meth:`cancel_pending` empties the queue immediately and hands the
  un-run jobs back so the caller can record them as cancelled.

The queue is asyncio-native and single-loop; cross-process distribution
is the scheduler's job (it ships work to a process pool), not the
queue's.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Dict, List, Optional

from repro.service.jobs import Job, JobState

__all__ = ["JobQueue", "QueueClosedError"]


class QueueClosedError(RuntimeError):
    """Raised when submitting to a queue that has been closed."""


class JobQueue:
    """Priority job queue with fingerprint dedup and bounded size."""

    def __init__(self, maxsize: int = 0) -> None:
        self._maxsize = max(0, int(maxsize))
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._cond: Optional[asyncio.Condition] = None
        self._closed = False
        # fingerprint -> primary job, for every job not yet finished.
        self._active: Dict[str, Job] = {}
        # fingerprint -> duplicate jobs parked on the primary.
        self._duplicates: Dict[str, List[Job]] = {}
        self._unfinished = 0

    # The condition is created lazily so a queue can be built outside a
    # running event loop (e.g. in synchronous setup code).
    def _condition(self) -> asyncio.Condition:
        if self._cond is None:
            self._cond = asyncio.Condition()
        return self._cond

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def submit_nowait(self, job: Job) -> JobState:
        """Enqueue without waiting; returns PENDING or DEDUPED.

        Raises :class:`QueueClosedError` after :meth:`close` and
        ``asyncio.QueueFull`` when a bounded queue is at capacity.
        """
        if self._closed:
            raise QueueClosedError("queue is closed to new jobs")
        primary = self._active.get(job.fingerprint)
        if primary is not None:
            job.state = JobState.DEDUPED
            self._duplicates.setdefault(job.fingerprint, []).append(job)
            return JobState.DEDUPED
        if self._maxsize and len(self._heap) >= self._maxsize:
            raise asyncio.QueueFull
        job.seq = next(self._seq)
        job.state = JobState.PENDING
        self._active[job.fingerprint] = job
        heapq.heappush(self._heap, (*job.sort_key(), job))
        self._unfinished += 1
        if self._cond is not None:
            # Wake one waiting lane (scheduling-safe: notify needs the lock).
            asyncio.ensure_future(self._notify())
        return JobState.PENDING

    async def put(self, job: Job) -> JobState:
        """Enqueue, awaiting a free slot on a bounded queue."""
        while True:
            cond = self._condition()
            async with cond:
                try:
                    state = self.submit_nowait(job)
                except asyncio.QueueFull:
                    await cond.wait()
                    continue
                cond.notify_all()
                return state

    async def _notify(self) -> None:
        cond = self._condition()
        async with cond:
            cond.notify_all()

    def reinject(self, job: Job) -> None:
        """Put a dispatched-but-unfinished job back on the heap.

        The lease-expiry path: the job is still *active* (its dedup
        entry, duplicates and unfinished count are untouched — it was
        never finished), it just lost its worker.  Reinjection therefore
        bypasses intake entirely: no closed check (a batch queue closes
        after submission, but requeues must still land), no dedup, no
        maxsize (the slot it occupied was already accounted).
        """
        job.seq = next(self._seq)  # requeue goes to the back of its band
        job.state = JobState.PENDING
        heapq.heappush(self._heap, (*job.sort_key(), job))
        if self._cond is not None:
            asyncio.ensure_future(self._notify())

    def close(self) -> None:
        """Stop intake; draining lanes see None once the queue is empty."""
        self._closed = True
        if self._cond is not None:
            asyncio.ensure_future(self._notify())

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called."""
        return self._closed

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    async def get(self) -> Optional[Job]:
        """Next job by priority, or None when closed and fully drained."""
        cond = self._condition()
        async with cond:
            while True:
                if self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    job.state = JobState.RUNNING
                    cond.notify_all()  # a slot freed: wake bounded put()
                    return job
                if self._closed:
                    return None
                await cond.wait()

    def finish(self, job: Job, state: JobState) -> List[Job]:
        """Mark a job terminal; returns its parked duplicates (now also
        terminal) so the caller can mirror the result onto them."""
        job.state = state
        self._active.pop(job.fingerprint, None)
        dups = self._duplicates.pop(job.fingerprint, [])
        self._unfinished -= 1
        if self._cond is not None:
            asyncio.ensure_future(self._notify())
        return dups

    def cancel_pending(self) -> List[Job]:
        """Drop every not-yet-running job; returns them (state CANCELLED).

        Running jobs are untouched — cancellation of in-flight work is
        the scheduler's decision (it owns the executor futures).  The
        queue is left open unless already closed; callers typically pair
        this with :meth:`close`.
        """
        cancelled: List[Job] = []
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            job.state = JobState.CANCELLED
            self._active.pop(job.fingerprint, None)
            cancelled.extend(self._duplicates.pop(job.fingerprint, []))
            cancelled.append(job)
            self._unfinished -= 1
        for job in cancelled:
            job.state = JobState.CANCELLED
        if self._cond is not None:
            asyncio.ensure_future(self._notify())
        return cancelled

    async def drain(self) -> None:
        """Wait until every submitted job reached a terminal state."""
        cond = self._condition()
        async with cond:
            while self._unfinished > 0:
                await cond.wait()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._heap)

    @property
    def unfinished(self) -> int:
        """Jobs submitted but not yet finished/cancelled (dedup excluded)."""
        return self._unfinished

    def pending_names(self) -> List[str]:
        """Names of queued (not yet running) jobs, in schedule order."""
        return [job.name for _, _, job in sorted(self._heap)]

    def snapshot(self) -> Dict[str, int]:
        """Instantaneous queue state for the telemetry sampler.

        ``running`` counts active jobs that have left the heap but not
        yet finished — i.e. dispatched to a local or remote lane.
        """
        depth = len(self._heap)
        return {
            "depth": depth,
            "running": max(0, len(self._active) - depth),
            "unfinished": self._unfinished,
            "closed": 1 if self._closed else 0,
        }
