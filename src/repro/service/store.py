"""Append-only JSONL result store with resume.

The store is the batch service's durable memory.  Every finished job is
appended as one JSON line, flushed immediately, so a killed run loses at
most the line being written.  A later run pointed at the same store file
*resumes*: pairs whose fingerprint already has a **decided** verdict
(``equivalent`` / ``not_equivalent``) are skipped and replayed from disk,
while pairs that previously ended ``unknown`` (budget exhaustion, worker
failure) are re-run — an undecided outcome is a fact about the budget,
not the circuits, so it should not be cached as if it were an answer.

File format::

    {"type": "header", "version": 1, "config": {...}}
    {"type": "result", ...JobResult.to_dict()...}
    {"type": "result", ...}

The header pins the store schema and the verdict-relevant run
configuration.  Like :class:`repro.flows.checkpoint.Checkpoint`, a
mismatched header means earlier results were produced under different
assumptions: the load honours only results after the **last** matching
header, so appending a fresh header safely "fences off" stale history
without rewriting the file (append-only is the whole point).  Unparsable
lines (torn writes) are counted and skipped, never fatal.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.runtime import chaos
from repro.service.jobs import JobResult

__all__ = ["ResultStore", "STORE_VERSION"]

#: Result-store schema version (bumped on incompatible line layout).
STORE_VERSION = 1

_DECIDED = ("equivalent", "not_equivalent")


class ResultStore:
    """Append-only JSONL store of :class:`~repro.service.jobs.JobResult`.

    ``config`` holds verdict-relevant settings for the run (whatever the
    caller wants fenced — typically the manifest's option defaults).  On
    :meth:`open`, if the file's effective header disagrees, a new header
    is appended and all earlier results are ignored for resume purposes.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        config: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.config: Dict[str, Any] = dict(config or {})
        self._handle = None
        #: fingerprint -> stored result, for results under a matching header.
        self._results: Dict[str, JobResult] = {}
        #: lines that failed to parse during load (observability, not errors).
        self.corrupt_lines = 0
        #: results discarded because they predate the matching header.
        self.fenced_results = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self) -> "ResultStore":
        """Load prior results and open the file for appending."""
        self._load()
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh or self._header_mismatch:
            self._append_line(
                {"type": "header", "version": STORE_VERSION, "config": self.config}
            )
        return self

    def close(self) -> None:
        """Flush and close the append handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, result: JobResult) -> None:
        """Persist one finished job (flushed before returning)."""
        if self._handle is None:
            raise RuntimeError("ResultStore.append() before open()")
        chaos.fire("store.append", result.fingerprint)
        self._append_line({"type": "result", **result.to_dict()})
        self._results[result.fingerprint] = result

    def _append_line(self, payload: Mapping[str, Any]) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()

    # ------------------------------------------------------------------
    # resume queries
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[JobResult]:
        """The stored result for a fingerprint, if any."""
        return self._results.get(fingerprint)

    def decided(self, fingerprint: str) -> Optional[JobResult]:
        """The stored result iff its verdict is decided (resume-skippable)."""
        result = self._results.get(fingerprint)
        if result is None or result.report is None:
            return None
        if result.report.verdict in _DECIDED:
            return result
        return None

    def results(self) -> List[JobResult]:
        """All loaded/appended results (last write per fingerprint wins)."""
        return list(self._results.values())

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._results

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def _load(self) -> None:
        self._results.clear()
        self.corrupt_lines = 0
        self.fenced_results = 0
        self._header_mismatch = False
        if not os.path.exists(self.path):
            return
        header_ok = False
        seen_any_line = False
        for payload in self._iter_lines():
            seen_any_line = True
            kind = payload.get("type")
            if kind == "header":
                header_ok = (
                    payload.get("version") == STORE_VERSION
                    and dict(payload.get("config") or {}) == self.config
                )
                if not header_ok:
                    # Everything gathered so far predates a fence.
                    self.fenced_results += len(self._results)
                    self._results.clear()
                continue
            if kind != "result":
                self.corrupt_lines += 1
                continue
            if not header_ok:
                self.fenced_results += 1
                continue
            try:
                result = JobResult.from_dict(payload)
            except (TypeError, ValueError, KeyError):
                self.corrupt_lines += 1
                continue
            if result.fingerprint:
                self._results[result.fingerprint] = result
        # A non-empty file whose trailing effective header disagrees (or
        # that lacks a header entirely) needs a fresh fencing header.
        self._header_mismatch = seen_any_line and not header_ok

    def _iter_lines(self) -> Iterator[Dict[str, Any]]:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    self.corrupt_lines += 1
                    continue
                if isinstance(payload, dict):
                    yield payload
                else:
                    self.corrupt_lines += 1
