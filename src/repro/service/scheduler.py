"""The sharded batch scheduler: worker lanes over the job queue.

:class:`BatchRunner` is the service's execution core.  It feeds a
:class:`~repro.service.queue.JobQueue` into ``jobs`` asyncio *lanes*;
each lane ships one job at a time to a :class:`ProcessPoolExecutor`
(or a thread for ``use_processes=False``) and folds the outcome back
into the run's shared state:

* **budget slicing** — a batch-level :class:`~repro.runtime.Budget`
  is divided on dispatch: each job receives an even
  :meth:`~repro.runtime.Budget.slice` of the wall time still remaining,
  clipped by the job's own request limits.  Exhaustion inside a worker
  surfaces as an ``unknown`` verdict with a ``REASON_*`` code, exactly
  as in single-pair runs — never as a crashed job.
* **shared proof cache** — a runner-level cache path is handed to every
  job that does not bring its own; workers merge-save atomically
  (:class:`repro.cec.cache.ProofCache`), so job N+1 starts warm from
  job N's proofs.  Warm-hit totals aggregate into the
  ``service.cache.*`` counters.
* **retry/backoff** — each worker invocation runs under
  :func:`repro.runtime.run_with_retries` (exponential backoff with full
  jitter, seeded per fingerprint); a job that still fails is recorded as
  ``failed`` with an ``unknown``/``worker-failure`` report, never
  dropped.
* **leases** — with ``lease_ttl`` set, every dispatched job is covered
  by a TTL lease (:class:`~repro.service.lease.LeaseTable`).  A job
  whose worker hangs past the lease is *abandoned and requeued* with
  jittered backoff; one that burns ``lease_attempts`` leases is
  quarantined as UNKNOWN/:data:`~repro.runtime.budget.REASON_POISON_JOB`
  instead of starving the batch — the sweep's hung-worker containment,
  generalised to the whole service.
* **chaos** — the dispatch path is instrumented with
  :mod:`repro.runtime.chaos` sites (``scheduler.dispatch``,
  ``worker.entry``, ``store.append``, ``transport.recv``); under an
  installed :class:`~repro.runtime.chaos.FaultPlan` every one of these
  seams fails on demand, and none of them may lose a job.
* **observability** — workers buffer trace events against the parent's
  epoch and the parent re-parents them with
  :meth:`~repro.obs.Tracer.adopt` under a per-job ``pair`` span; worker
  metrics merge into the run registry.
* **resume / store** — with a :class:`~repro.service.store.ResultStore`,
  every result is appended as it lands, and ``resume=True`` replays
  already-decided fingerprints instead of re-running them.

:meth:`BatchRunner.run` is the one-shot batch entrypoint (behind
:func:`repro.api.verify_batch`); :meth:`BatchRunner.serve` is the
streaming JSONL loop behind ``repro serve``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import random
import time
import traceback
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, TextIO, Union

from repro.api import VerifyReport, VerifyRequest, verify_pair
from repro.core.verify import SeqVerdict
from repro.obs.metrics import TIME_BUCKETS, MetricsRegistry
from repro.obs.telemetry import TelemetrySampler
from repro.obs.trace import Tracer, coerce_tracer
from repro.runtime import chaos
from repro.runtime.budget import (
    REASON_POISON_JOB,
    REASON_WORKER_FAILURE,
    Budget,
)
from repro.runtime.retry import run_with_retries
from repro.service.jobs import Job, JobResult, JobState
from repro.service.lease import LeaseTable
from repro.service.queue import JobQueue
from repro.service.store import ResultStore

__all__ = ["BatchRunner", "execute_request"]

#: Base pause before a worker-internal re-attempt (jittered, exponential).
RETRY_BACKOFF_SECONDS = 0.05

#: Reason recorded on jobs cancelled before (or while) running.
REASON_CANCELLED = "cancelled"

#: Cap on one protocol line in ``serve`` streams; a longer line is
#: answered with a structured error instead of ballooning memory.
MAX_LINE_BYTES = 1 << 20


# ----------------------------------------------------------------------
# the worker function (top-level: must pickle across the process pool)
# ----------------------------------------------------------------------
def execute_request(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job payload; returns a plain-dict outcome.

    The payload is fully serialisable (request row, fingerprint, attempt
    count, optional trace epoch / metrics flag), so this function works
    identically on the process pool and on the in-process thread path.
    Verification itself goes through :func:`repro.api.verify_pair` — the
    service adds no second verification code path.
    """
    chaos.ensure_env_plan()
    request = VerifyRequest.from_dict(payload["request"])
    fingerprint = payload["fingerprint"]
    epoch = payload.get("trace_epoch")
    tracer = Tracer(sink=[], epoch=epoch) if epoch is not None else None
    metrics = MetricsRegistry() if payload.get("collect_metrics") else None
    attempts = max(1, int(payload.get("attempts", 1)))
    deadline = (
        time.monotonic() + request.time_limit
        if request.time_limit is not None
        else None
    )

    def attempt_once() -> VerifyReport:
        # The chaos site sits inside the retried callable: an injected
        # worker crash exercises the same containment a real one would
        # (in-worker retry first, worker-failure degradation after).
        chaos.fire("worker.entry", fingerprint)
        return verify_pair(request, tracer=tracer, metrics=metrics)

    t0 = time.perf_counter()
    report, error, retries = run_with_retries(
        attempt_once,
        attempts=attempts,
        backoff_seconds=RETRY_BACKOFF_SECONDS,
        deadline=deadline,
        exponential=True,
        rng=random.Random(int(fingerprint[:8], 16) if fingerprint else 0),
    )
    elapsed = time.perf_counter() - t0
    if report is None:
        # A crashed worker still yields a canonical report: the batch
        # summary and exit codes never need a second error channel.
        report = VerifyReport(
            verdict=SeqVerdict.UNKNOWN.value,
            method="service",
            reason=REASON_WORKER_FAILURE,
            name=request.name,
            fingerprint=fingerprint,
            elapsed_seconds=elapsed,
            metadata=dict(request.metadata),
        )
    else:
        report.fingerprint = fingerprint
        report.elapsed_seconds = elapsed
    return {
        "report": report.as_dict(),
        "error": (
            "".join(
                traceback.format_exception_only(type(error), error)
            ).strip()
            if error is not None
            else None
        ),
        "attempts": retries + 1,
        "elapsed": elapsed,
        "events": tracer.events if tracer is not None else [],
        "metrics": metrics.to_dict() if metrics is not None else None,
    }


def _swallow_result(future) -> None:
    """Done-callback for abandoned (lease-expired) dispatch futures.

    Retrieves the result/exception so a late answer from a presumed-dead
    worker neither races the re-run nor trips asyncio's "exception was
    never retrieved" warning.
    """
    try:
        future.exception()
    except (asyncio.CancelledError, Exception):  # noqa: BLE001
        pass


class BatchRunner:
    """Shards verification jobs over asyncio lanes and a worker pool.

    One instance runs one batch (or one serve stream); lanes, executor
    and store live for the duration of :meth:`run` / :meth:`serve`.
    """

    def __init__(
        self,
        jobs: int = 1,
        budget: Union[None, int, float, Budget] = None,
        cache: Union[None, str, os.PathLike] = None,
        store: Union[None, str, os.PathLike, ResultStore] = None,
        resume: bool = False,
        retries: int = 2,
        use_processes: bool = True,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        store_config: Optional[Dict[str, Any]] = None,
        lease_ttl: Optional[float] = None,
        lease_attempts: int = 3,
        lease_backoff: float = 0.05,
        lease_backoff_cap: float = 2.0,
        lease_seed: int = 0,
        telemetry: Optional[TelemetrySampler] = None,
    ) -> None:
        self.lanes = max(1, int(jobs))
        self.budget = Budget.coerce(budget)
        self.cache = os.fspath(cache) if cache is not None else None
        self._store_arg = store
        self._store_config = dict(store_config or {})
        self.resume = bool(resume)
        self.retries = max(0, int(retries))
        self.use_processes = bool(use_processes)
        self.tracer = coerce_tracer(tracer)
        self.metrics = metrics
        # Lease policy (None TTL = leases off, today's exact behaviour).
        self.lease_ttl = None if lease_ttl is None else float(lease_ttl)
        self.lease_attempts = max(1, int(lease_attempts))
        self.lease_backoff = float(lease_backoff)
        self.lease_backoff_cap = float(lease_backoff_cap)
        self.lease_seed = int(lease_seed)
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    # batch mode
    # ------------------------------------------------------------------
    async def run(self, requests: Sequence[VerifyRequest]) -> List[JobResult]:
        """Run every request; returns results aligned to request order.

        Duplicate requests (same fingerprint) are solved once; their
        extra slots come back as status ``deduped`` mirroring the winning
        report.  Resumed fingerprints come back as status ``resumed``.
        """
        queue = JobQueue()
        results: Dict[str, JobResult] = {}
        order: List[tuple] = []
        store = self._open_store()
        leases = self._make_leases()
        self._start_telemetry(queue, leases)
        flow_span = self.tracer.span(
            "service.batch", cat="flow", jobs=self.lanes, requests=len(requests)
        )
        try:
            for request in requests:
                fingerprint = request.fingerprint()
                order.append((request, fingerprint))
                if fingerprint in results:
                    continue  # duplicate of an already-resumed pair
                if self.resume and store is not None:
                    prior = store.decided(fingerprint)
                    if prior is not None:
                        results[fingerprint] = JobResult(
                            name=request.name,
                            fingerprint=fingerprint,
                            status=JobState.RESUMED.value,
                            report=prior.report,
                            attempts=0,
                        )
                        self._count("service.jobs.resumed")
                        self.tracer.instant(
                            "service.resume-skip",
                            cat="event",
                            job=request.name,
                            fingerprint=fingerprint[:12],
                        )
                        continue
                state = queue.submit_nowait(
                    Job(request=request, fingerprint=fingerprint)
                )
                if state is JobState.DEDUPED:
                    self._count("service.jobs.deduped")
            queue.close()
            await self._drive(queue, store, results, leases)
        finally:
            await self._stop_telemetry()
            if store is not None:
                store.close()
            self._emit_run_metrics(flow_span)
            flow_span.close()
        return self._ordered_results(order, results)

    # ------------------------------------------------------------------
    # serve mode (JSONL in, JSONL out)
    # ------------------------------------------------------------------
    async def serve(
        self,
        in_stream: TextIO,
        out_stream: TextIO,
        queue_maxsize: int = 0,
        max_line_bytes: int = MAX_LINE_BYTES,
    ) -> int:
        """Stream job rows from ``in_stream``, emit result lines as done.

        Each input line is one JSON :class:`~repro.api.VerifyRequest`
        row; each output line is ``{"type": "result", ...}`` (a
        :meth:`~repro.service.jobs.JobResult.to_dict`) or
        ``{"type": "error", ...}`` for a malformed row.  EOF closes the
        queue, lanes drain, and the method returns the number of results
        emitted.  A bounded ``queue_maxsize`` gives backpressure against
        a fast client.

        Hostile input degrades per-line, never per-stream: malformed
        JSON, an oversized line (``max_line_bytes``), or a line truncated
        by mid-stream EOF each produce exactly one ``error`` response and
        the loop keeps serving; every job actually accepted is still
        drained and answered.
        """
        queue = JobQueue(maxsize=queue_maxsize)
        store = self._open_store()
        leases = self._make_leases()
        self._start_telemetry(queue, leases)
        emitted = 0
        lock = asyncio.Lock()

        async def emit(result: JobResult) -> None:
            nonlocal emitted
            async with lock:
                out_stream.write(
                    json.dumps({"type": "result", **result.to_dict()}) + "\n"
                )
                out_stream.flush()
                emitted += 1

        def emit_error(message: str) -> None:
            out_stream.write(
                json.dumps({"type": "error", "error": message}) + "\n"
            )
            out_stream.flush()

        loop = asyncio.get_running_loop()
        flow_span = self.tracer.span("service.serve", cat="flow", jobs=self.lanes)
        executor = self._make_executor()
        try:
            lanes = [
                asyncio.ensure_future(
                    self._lane(lane, queue, executor, store, {}, emit, leases)
                )
                for lane in range(self.lanes)
            ]
            while True:
                line = await loop.run_in_executor(None, in_stream.readline)
                if not line:
                    break
                try:
                    line = await chaos.afire("transport.recv", line)
                except chaos.ChaosError:
                    break  # injected stream drop == EOF: drain what we took
                line = line.strip()
                if not line:
                    continue
                if len(line.encode("utf-8", "replace")) > max_line_bytes:
                    emit_error(
                        f"line exceeds {max_line_bytes} bytes; rejected"
                    )
                    continue
                try:
                    row = json.loads(line)
                    request = VerifyRequest.from_dict(row)
                    fingerprint = request.fingerprint()
                except (ValueError, TypeError, OSError) as exc:
                    emit_error(str(exc))
                    continue
                if self.resume and store is not None:
                    prior = store.decided(fingerprint)
                    if prior is not None:
                        await emit(
                            JobResult(
                                name=request.name,
                                fingerprint=fingerprint,
                                status=JobState.RESUMED.value,
                                report=prior.report,
                                attempts=0,
                            )
                        )
                        self._count("service.jobs.resumed")
                        continue
                await queue.put(Job(request=request, fingerprint=fingerprint))
            queue.close()
            await asyncio.gather(*lanes)
        finally:
            await self._stop_telemetry()
            self._shutdown_executor(executor)
            if store is not None:
                store.close()
            self._emit_run_metrics(flow_span)
            flow_span.close()
        return emitted

    # ------------------------------------------------------------------
    # lanes
    # ------------------------------------------------------------------
    async def _drive(
        self,
        queue: JobQueue,
        store: Optional[ResultStore],
        results: Dict[str, JobResult],
        leases: Optional[LeaseTable] = None,
    ) -> None:
        """Run lanes to completion over an already-filled, closed queue."""
        executor = self._make_executor()
        try:
            lanes = [
                asyncio.ensure_future(
                    self._lane(
                        lane, queue, executor, store, results, None, leases
                    )
                )
                for lane in range(self.lanes)
            ]
            try:
                await asyncio.gather(*lanes)
            except asyncio.CancelledError:
                # Graceful cancel: drop queued work, record it, let the
                # in-flight jobs' lanes unwind, then re-raise.
                for job in queue.cancel_pending():
                    results.setdefault(
                        job.fingerprint, self._cancelled_result(job)
                    )
                    self._count("service.jobs.cancelled")
                for lane_task in lanes:
                    lane_task.cancel()
                await asyncio.gather(*lanes, return_exceptions=True)
                raise
        finally:
            self._shutdown_executor(executor)

    async def _lane(
        self,
        lane: int,
        queue: JobQueue,
        executor: Optional[Executor],
        store: Optional[ResultStore],
        results: Dict[str, JobResult],
        emit,
        leases: Optional[LeaseTable] = None,
    ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await queue.get()
            if job is None:
                return
            result = await self._run_job(
                lane, job, queue, executor, loop, leases
            )
            if result is None:
                continue  # lease expired: the job is back on the queue
            try:
                terminal = JobState(result.status)
            except ValueError:
                terminal = JobState.FAILED
            duplicates = queue.finish(job, terminal)
            self._record(store, results, result)
            if emit is not None:
                await emit(result)
            for dup in duplicates:
                mirror = self._mirror_result(dup.name, result, lane=lane)
                if emit is not None:
                    await emit(mirror)

    async def _run_job(
        self,
        lane: int,
        job: Job,
        queue: JobQueue,
        executor: Optional[Executor],
        loop: asyncio.AbstractEventLoop,
        leases: Optional[LeaseTable] = None,
    ) -> Optional[JobResult]:
        """Dispatch one job; returns its result, or None when requeued.

        The None return is the lease-expiry path: the hung dispatch was
        abandoned, the job is already back on the queue, and the lane
        should simply pick up its next job.
        """
        payload = self._payload_for(job, queue)
        t0 = time.perf_counter()
        try:
            # A dispatch-site fault is charged to the job (delay slows
            # it, crash degrades it to worker-failure) — never the lane.
            await chaos.afire("scheduler.dispatch", job.fingerprint)
            future = loop.run_in_executor(executor, execute_request, payload)
            if leases is None:
                out = await future
            else:
                status, out = await self._await_leased(
                    lane, job, queue, future, leases
                )
                if status == "requeued":
                    return None
                if status == "poisoned":
                    return self._poisoned_result(job, lane, leases)
        except asyncio.CancelledError:
            self._count("service.jobs.cancelled")
            return self._cancelled_result(job, lane=lane)
        except BaseException as exc:  # noqa: BLE001 - pool death is a result
            # The pool itself failed (worker segfault, broken pipe).  The
            # job degrades to a failed/unknown result like any other
            # worker failure; the batch keeps going.
            out = {
                "report": VerifyReport(
                    verdict=SeqVerdict.UNKNOWN.value,
                    method="service",
                    reason=REASON_WORKER_FAILURE,
                    name=job.name,
                    fingerprint=job.fingerprint,
                    elapsed_seconds=time.perf_counter() - t0,
                ).as_dict(),
                "error": f"{type(exc).__name__}: {exc}",
                "attempts": 1,
                "elapsed": time.perf_counter() - t0,
                "events": [],
                "metrics": None,
            }
        report = VerifyReport.from_dict(out["report"])
        failed = out["error"] is not None
        result = JobResult(
            name=job.name,
            fingerprint=job.fingerprint,
            status=(JobState.FAILED if failed else JobState.DONE).value,
            report=report,
            error=out["error"],
            attempts=int(out.get("attempts", 1)),
            lane=lane,
            elapsed_seconds=float(out.get("elapsed", 0.0)),
        )
        self._fold_observability(job, lane, result, out)
        return result

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _payload_for(self, job: Job, queue: JobQueue) -> Dict[str, Any]:
        """The serialisable worker payload: request row + sliced budget."""
        row = job.request.to_dict()
        if self.cache is not None and "cache" not in row:
            row["cache"] = self.cache
        if self.budget is not None:
            share = self.budget.slice(max(1, queue.unfinished))
            for key, limit in (
                ("time_limit", share.wall_seconds),
                ("sat_conflicts", share.sat_conflicts),
                ("sat_propagations", share.sat_propagations),
                ("bdd_node_limit", share.bdd_nodes),
            ):
                own = row.get(key)
                if limit is None:
                    continue
                row[key] = limit if own is None else min(float(own), limit)
        return {
            "request": row,
            "fingerprint": job.fingerprint,
            "attempts": self.retries + 1,
            "trace_epoch": self.tracer.epoch if self.tracer.enabled else None,
            "collect_metrics": self.metrics is not None,
        }

    def _fold_observability(
        self, job: Job, lane: int, result: JobResult, out: Dict[str, Any]
    ) -> None:
        if self.tracer.enabled:
            # The span is opened and closed without an intervening await,
            # so concurrent lanes cannot interleave on the span stack.
            span = self.tracer.span(
                f"job.{job.name}",
                cat="pair",
                job=job.name,
                lane=lane,
                fingerprint=job.fingerprint[:12],
            )
            if out.get("events"):
                self.tracer.adopt(out["events"], parent=span, lane=lane)
            span.annotate(
                status=result.status,
                verdict=result.report.verdict if result.report else None,
                attempts=result.attempts,
            )
            # Backdate the span to cover the job's actual execution window.
            span.ts = max(0.0, self.tracer.now() - result.elapsed_seconds)
            span.close()
        if self.metrics is None:
            return
        if out.get("metrics"):
            self.metrics.merge(out["metrics"])
        self.metrics.inc(f"service.jobs.{result.status}")
        self.metrics.observe(
            "service.job.seconds", result.elapsed_seconds, bounds=TIME_BUCKETS
        )
        if result.report is not None:
            stats = result.report.stats
            self.metrics.inc(
                "service.cache.hits", float(stats.get("cec_cache_hits", 0))
            )
            self.metrics.inc(
                "service.cache.misses", float(stats.get("cec_cache_misses", 0))
            )

    def _record(
        self,
        store: Optional[ResultStore],
        results: Dict[str, JobResult],
        result: JobResult,
    ) -> None:
        results[result.fingerprint] = result
        if store is not None:
            try:
                store.append(result)
            except Exception as exc:  # noqa: BLE001 - durability degrades,
                # the batch does not: the result stays in memory and is
                # emitted; only its store line (hence resumability) is
                # lost.  Full disks and injected store faults land here.
                self._count("service.store.append_failures")
                warnings.warn(
                    f"result store append failed for "
                    f"{result.name or result.fingerprint[:12]}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    async def _await_leased(
        self,
        lane: int,
        job: Job,
        queue: JobQueue,
        future,
        leases: LeaseTable,
    ):
        """Await a dispatch under a lease; returns (status, out).

        ``("done", out)`` when the worker delivered within its lease;
        ``("requeued", None)`` when the lease expired and the job was
        put back on the queue (after a jittered backoff pause);
        ``("poisoned", None)`` when the job burned its last lease.
        Worker exceptions propagate to the caller's generic handling.
        """
        fingerprint = job.fingerprint
        leases.grant(fingerprint, lane=str(lane))
        while True:
            timeout = leases.remaining(fingerprint)
            try:
                out = await asyncio.wait_for(asyncio.shield(future), timeout)
            except asyncio.TimeoutError:
                if not leases.expired(fingerprint):
                    continue  # a heartbeat moved the deadline meanwhile
                expiries = leases.expire(fingerprint)
                # Abandon the in-flight future: if the hung worker ever
                # does answer, the stale result (and any exception) is
                # dropped on the floor rather than racing the re-run.
                future.add_done_callback(_swallow_result)
                self._count("service.lease.expired")
                self.tracer.instant(
                    "service.lease-expired",
                    cat="event",
                    job=job.name,
                    lane=lane,
                    attempt=expiries,
                )
                if expiries >= leases.max_attempts:
                    self._count("service.lease.poisoned")
                    return "poisoned", None
                self._count("service.lease.requeued")
                delay = leases.backoff(expiries)
                if delay > 0:
                    await asyncio.sleep(delay)
                queue.reinject(job)
                return "requeued", None
            except BaseException:
                leases.release(fingerprint)
                raise
            else:
                leases.release(fingerprint)
                return "done", out

    def _poisoned_result(
        self, job: Job, lane: int, leases: LeaseTable
    ) -> JobResult:
        """The canonical quarantine outcome of a poison job."""
        expiries = leases.expiries(job.fingerprint)
        self._count("service.jobs.quarantined")
        return JobResult(
            name=job.name,
            fingerprint=job.fingerprint,
            status=JobState.QUARANTINED.value,
            report=VerifyReport(
                verdict=SeqVerdict.UNKNOWN.value,
                method="service",
                reason=REASON_POISON_JOB,
                name=job.name,
                fingerprint=job.fingerprint,
                metadata=dict(job.request.metadata),
            ),
            error=(
                f"lease expired {expiries}x (ttl {leases.ttl:g}s); "
                "job quarantined as poison"
            ),
            attempts=expiries,
            lane=lane,
        )

    def _worker_failure_result(self, job: Job, lane) -> JobResult:
        """A failed/unknown outcome for a worker that answered garbage."""
        return JobResult(
            name=job.name,
            fingerprint=job.fingerprint,
            status=JobState.FAILED.value,
            report=VerifyReport(
                verdict=SeqVerdict.UNKNOWN.value,
                method="service",
                reason=REASON_WORKER_FAILURE,
                name=job.name,
                fingerprint=job.fingerprint,
                metadata=dict(job.request.metadata),
            ),
            error="worker returned a malformed result",
            attempts=1,
            lane=lane,
        )

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _telemetry_probe(self, queue: JobQueue, leases: Optional[LeaseTable], workers=None):
        """Build the snapshot probe over this run's queue/lease state.

        ``workers`` is an optional zero-arg callable contributing the
        ``workers`` section (the TCP server knows its connections, the
        runner does not).
        """

        def counter(name: str) -> float:
            return self.metrics.counter(name) if self.metrics is not None else 0.0

        def probe() -> Dict[str, Dict[str, float]]:
            body: Dict[str, Dict[str, float]] = {
                "queue": queue.snapshot(),
                "leases": {
                    "live": len(leases) if leases is not None else 0,
                    "troubled": leases.troubled if leases is not None else 0,
                    "expired": counter("service.lease.expired"),
                    "requeued": counter("service.lease.requeued"),
                    "poisoned": counter("service.lease.poisoned"),
                },
                "jobs": {
                    "done": counter("service.jobs.done"),
                    "failed": counter("service.jobs.failed"),
                    "resumed": counter("service.jobs.resumed"),
                    "deduped": counter("service.jobs.deduped"),
                    "quarantined": counter("service.jobs.quarantined"),
                    "cancelled": counter("service.jobs.cancelled"),
                },
                "cache": {
                    "hits": counter("service.cache.hits"),
                    "misses": counter("service.cache.misses"),
                },
                "chaos": {"faults_fired": counter("chaos.faults_fired")},
                "store": {
                    "corrupt_lines": (
                        self.metrics.gauge("service.store.corrupt_lines")
                        if self.metrics is not None
                        else 0.0
                    ),
                    "append_failures": counter("service.store.append_failures"),
                },
            }
            if workers is not None:
                body["workers"] = workers()
            return body

        return probe

    def _start_telemetry(
        self,
        queue: JobQueue,
        leases: Optional[LeaseTable],
        workers=None,
    ) -> None:
        """Point the sampler at this run's state and start its loop."""
        if self.telemetry is None:
            return
        self.telemetry.probe = self._telemetry_probe(queue, leases, workers)
        self.telemetry.start()

    async def _stop_telemetry(self) -> None:
        if self.telemetry is not None:
            await self.telemetry.aclose()

    def _make_leases(self) -> Optional[LeaseTable]:
        """A fresh lease table per run, or None when leasing is off."""
        if self.lease_ttl is None:
            return None
        return LeaseTable(
            ttl=self.lease_ttl,
            max_attempts=self.lease_attempts,
            backoff_base=self.lease_backoff,
            backoff_cap=self.lease_backoff_cap,
            rng=random.Random(self.lease_seed),
        )

    def _cancelled_result(self, job: Job, lane: Optional[int] = None) -> JobResult:
        return JobResult(
            name=job.name,
            fingerprint=job.fingerprint,
            status=JobState.CANCELLED.value,
            report=VerifyReport(
                verdict=SeqVerdict.UNKNOWN.value,
                method="service",
                reason=REASON_CANCELLED,
                name=job.name,
                fingerprint=job.fingerprint,
            ),
            attempts=0,
            lane=lane,
        )

    def _ordered_results(
        self, order: List[tuple], results: Dict[str, JobResult]
    ) -> List[JobResult]:
        """One result per request, in request order; dups mirror the winner."""
        out: List[JobResult] = []
        claimed: set = set()
        for request, fingerprint in order:
            base = results.get(fingerprint)
            if base is None:  # cancelled before recording
                base = self._cancelled_result(
                    Job(request=request, fingerprint=fingerprint)
                )
            if fingerprint not in claimed:
                claimed.add(fingerprint)
                out.append(base)
            else:
                out.append(self._mirror_result(request.name, base))
        return out

    @staticmethod
    def _mirror_result(
        name: str, base: JobResult, lane: Optional[int] = None
    ) -> JobResult:
        """A ``deduped`` copy of a winning result under the duplicate's name."""
        report = base.report
        if report is not None and report.name != name:
            report = dataclasses.replace(report, name=name)
        return JobResult(
            name=name,
            fingerprint=base.fingerprint,
            status=JobState.DEDUPED.value,
            report=report,
            attempts=0,
            lane=base.lane if lane is None else lane,
        )

    def _open_store(self) -> Optional[ResultStore]:
        if self._store_arg is None:
            return None
        if isinstance(self._store_arg, ResultStore):
            store = self._store_arg
            if store._handle is None:
                store.open()
        else:
            store = ResultStore(
                self._store_arg, config=self._store_config
            ).open()
        if store.corrupt_lines:
            # Skipped-but-counted is the load policy; surfacing it is
            # ours: torn writes are expected after a crash, but a store
            # that is *mostly* corrupt deserves operator eyes.
            if self.metrics is not None:
                self.metrics.set_gauge(
                    "service.store.corrupt_lines", store.corrupt_lines
                )
            warnings.warn(
                f"result store {store.path!r}: skipped "
                f"{store.corrupt_lines} corrupt line(s) on load "
                "(torn writes from a previous crash?)",
                RuntimeWarning,
                stacklevel=2,
            )
        return store

    def _make_executor(self) -> Optional[Executor]:
        # None = the loop's default thread pool (in-process execution);
        # tests and tiny batches skip process startup entirely.
        if not self.use_processes:
            return None
        return ProcessPoolExecutor(max_workers=self.lanes)

    def _shutdown_executor(self, executor: Optional[Executor]) -> None:
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def _count(self, name: str, by: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, by)

    def _emit_run_metrics(self, flow_span) -> None:
        if self.metrics is not None and self.tracer.enabled:
            self.tracer.metrics(
                self.metrics.as_flat_dict(), name="service.metrics"
            )
