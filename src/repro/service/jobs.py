"""Jobs, job results, and the batch-manifest format.

The service's unit of work is a :class:`Job`: one
:class:`~repro.api.VerifyRequest` plus queue bookkeeping (a sequence id,
the content-addressed fingerprint, lifecycle state).  Its outcome is a
:class:`JobResult`: the request's :class:`~repro.api.VerifyReport` plus
how the run went (attempts, worker lane, terminal status).  Both
round-trip through stable JSON dicts — the result form is exactly what
:class:`repro.service.store.ResultStore` appends per line.

A *manifest* is the batch input format (``repro batch manifest.json``)::

    {
      "version": 1,
      "defaults": {"use_unateness": true, "time_limit": 60},
      "jobs": [
        {"golden": "golden/s27.blif", "revised": "revised/s27.blif",
         "name": "s27", "priority": 5},
        ...
      ]
    }

A bare JSON list of rows is accepted too.  Rows take any
:meth:`repro.api.VerifyRequest.from_dict` field; ``defaults`` fills the
fields a row leaves out; relative circuit paths resolve against the
manifest file's directory.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.api import EXIT_UNKNOWN, VerifyReport, VerifyRequest

__all__ = [
    "Job",
    "JobResult",
    "JobState",
    "MANIFEST_VERSION",
    "load_manifest",
    "parse_manifest",
]

#: Manifest envelope schema version; unknown versions are rejected loudly
#: (a manifest silently half-understood would verify the wrong workload).
MANIFEST_VERSION = 1


class JobState(enum.Enum):
    """Lifecycle of a job inside the service."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    RESUMED = "resumed"  # replayed from the result store, not re-run
    DEDUPED = "deduped"  # collapsed onto an identical in-flight job
    QUARANTINED = "quarantined"  # poison job: its leases kept expiring


@dataclass
class Job:
    """One queued verification obligation.

    ``seq`` is the submission sequence number — the FIFO tie-breaker
    within a priority band.  ``fingerprint`` is computed once at
    submission (:meth:`repro.api.VerifyRequest.fingerprint`) and is the
    dedup/store key everywhere downstream.
    """

    request: VerifyRequest
    fingerprint: str
    seq: int = 0
    state: JobState = JobState.PENDING

    @property
    def name(self) -> str:
        """The request's display name."""
        return self.request.name

    @property
    def priority(self) -> int:
        """Higher value = scheduled earlier (0 is the default band)."""
        return self.request.priority

    def sort_key(self):
        """Heap key: by descending priority, then submission order."""
        return (-self.priority, self.seq)

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON form (request row + bookkeeping)."""
        return {
            "request": self.request.to_dict(),
            "fingerprint": self.fingerprint,
            "seq": self.seq,
            "state": self.state.value,
        }


@dataclass
class JobResult:
    """Terminal outcome of one job.

    ``status`` is the lifecycle outcome (a :class:`JobState` value
    string: ``done`` / ``failed`` / ``cancelled`` / ``resumed`` /
    ``deduped`` / ``quarantined``); ``report`` is the verification
    outcome itself.  A
    failed job still carries a report — verdict ``unknown`` with the
    responsible ``REASON_*`` code — so batch summaries never need a
    second error channel, and :attr:`exit_code` is always defined and
    consistent with ``repro verify``.
    """

    name: str
    fingerprint: str
    status: str
    report: Optional[VerifyReport] = None
    error: Optional[str] = None
    attempts: int = 1
    lane: Optional[int] = None
    elapsed_seconds: float = 0.0

    @property
    def exit_code(self) -> int:
        """Per-job exit code under the ``repro verify`` contract."""
        if self.report is None:
            return EXIT_UNKNOWN
        return self.report.exit_code

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON form — one result-store line's payload."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "report": self.report.as_dict() if self.report else None,
            "error": self.error,
            "attempts": self.attempts,
            "lane": self.lane,
            "elapsed_seconds": self.elapsed_seconds,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobResult":
        """Inverse of :meth:`to_dict` (store loads, serve clients)."""
        report = data.get("report")
        return cls(
            name=str(data.get("name", "")),
            fingerprint=str(data.get("fingerprint", "")),
            status=str(data.get("status", JobState.DONE.value)),
            report=VerifyReport.from_dict(report) if report else None,
            error=data.get("error"),
            attempts=int(data.get("attempts", 1)),
            lane=data.get("lane"),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )


def parse_manifest(
    data: Union[Sequence[Any], Mapping[str, Any]],
    base_dir: Union[None, str, os.PathLike] = None,
) -> List[VerifyRequest]:
    """Turn decoded manifest JSON into requests.

    Accepts the versioned envelope or a bare row list.  Malformed
    manifests raise ``ValueError`` with the offending row — batch inputs
    are operator-written, so errors must name their cause, not degrade.
    """
    defaults: Dict[str, Any] = {}
    if isinstance(data, Mapping):
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {version!r} "
                f"(expected {MANIFEST_VERSION})"
            )
        rows = data.get("jobs")
        defaults = dict(data.get("defaults") or {})
        if not isinstance(rows, Sequence) or isinstance(rows, (str, bytes)):
            raise ValueError("manifest 'jobs' must be a list of rows")
    else:
        rows = data
    requests: List[VerifyRequest] = []
    for index, row in enumerate(rows):
        if not isinstance(row, Mapping):
            raise ValueError(f"manifest row {index} is not an object")
        merged = {**defaults, **row}
        try:
            requests.append(VerifyRequest.from_dict(merged, base_dir=base_dir))
        except (ValueError, TypeError) as exc:
            raise ValueError(f"manifest row {index}: {exc}") from exc
    return requests


def load_manifest(path: Union[str, os.PathLike]) -> List[VerifyRequest]:
    """Read a manifest file; relative circuit paths resolve against it."""
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return parse_manifest(data, base_dir=os.path.dirname(os.path.abspath(path)))
