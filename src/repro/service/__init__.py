"""The batch verification service: async sharded job runtime.

Layers (bottom-up):

* :mod:`repro.service.jobs` — jobs, results, the batch-manifest format;
* :mod:`repro.service.queue` — the asyncio priority queue with
  fingerprint dedup, backpressure and graceful drain/cancel;
* :mod:`repro.service.store` — the append-only JSONL result store that
  makes batches resumable;
* :mod:`repro.service.scheduler` — :class:`BatchRunner`, which shards
  jobs over worker lanes (a process pool by default) with per-job
  budget slices, a shared proof cache, retry/backoff and full
  trace/metrics observability.

Most callers want :func:`repro.api.verify_batch` (one synchronous call)
or the ``repro batch`` / ``repro serve`` CLI commands; this package is
the runtime underneath them.
"""

from repro.service.jobs import (
    MANIFEST_VERSION,
    Job,
    JobResult,
    JobState,
    load_manifest,
    parse_manifest,
)
from repro.service.queue import JobQueue, QueueClosedError
from repro.service.scheduler import BatchRunner, execute_request
from repro.service.store import STORE_VERSION, ResultStore

__all__ = [
    "BatchRunner",
    "Job",
    "JobQueue",
    "JobResult",
    "JobState",
    "MANIFEST_VERSION",
    "QueueClosedError",
    "ResultStore",
    "STORE_VERSION",
    "execute_request",
    "load_manifest",
    "parse_manifest",
]
