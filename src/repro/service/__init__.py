"""The batch verification service: async sharded job runtime.

Layers (bottom-up):

* :mod:`repro.service.jobs` — jobs, results, the batch-manifest format;
* :mod:`repro.service.queue` — the asyncio priority queue with
  fingerprint dedup, backpressure and graceful drain/cancel;
* :mod:`repro.service.store` — the append-only JSONL result store that
  makes batches resumable;
* :mod:`repro.service.lease` — per-job TTL leases with heartbeats,
  expiry accounting and poison-job quarantine;
* :mod:`repro.service.scheduler` — :class:`BatchRunner`, which shards
  jobs over worker lanes (a process pool by default) with per-job
  budget slices, a shared proof cache, retry/backoff, leases and full
  trace/metrics observability;
* :mod:`repro.service.transport` — the newline-JSON TCP front end
  (``repro serve --tcp``) with client and remote-worker roles.

Most callers want :func:`repro.api.verify_batch` (one synchronous call)
or the ``repro batch`` / ``repro serve`` CLI commands; this package is
the runtime underneath them.
"""

from repro.service.jobs import (
    MANIFEST_VERSION,
    Job,
    JobResult,
    JobState,
    load_manifest,
    parse_manifest,
)
from repro.service.lease import Lease, LeaseTable
from repro.service.queue import JobQueue, QueueClosedError
from repro.service.scheduler import BatchRunner, execute_request
from repro.service.store import STORE_VERSION, ResultStore
from repro.service.transport import TcpServer, parse_hostport, run_worker

__all__ = [
    "BatchRunner",
    "Job",
    "JobQueue",
    "JobResult",
    "JobState",
    "Lease",
    "LeaseTable",
    "MANIFEST_VERSION",
    "QueueClosedError",
    "ResultStore",
    "STORE_VERSION",
    "TcpServer",
    "execute_request",
    "load_manifest",
    "parse_hostport",
    "parse_manifest",
    "run_worker",
]
