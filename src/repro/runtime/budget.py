"""Resource budgets for the proving engines.

A :class:`Budget` bundles every limit a verification obligation may be
given — a wall-clock deadline, SAT conflict/propagation caps, and a BDD
node limit — behind one object that the SAT solver, the BDD manager, and
the CEC engine all poll.  Budgets never abort silently: exhaustion turns
into an UNKNOWN verdict tagged with one of the ``REASON_*`` codes below,
so a flow report can say *why* each obligation was given up, not just
that it was.

Reason codes (stable strings, used in reports/checkpoints):

==========================  ==============================================
``timeout``                 the wall-clock deadline passed
``conflict-limit``          the SAT conflict cap was reached
``propagation-limit``       the SAT propagation cap was reached
``bdd-blowup``              BDD construction exceeded the node limit
``worker-failure``          a sweep worker crashed/hung past its retries
``poison-job``              a job's lease expired too many times and the
                            service quarantined it instead of retrying
``resource-limit``          generic/unclassified resource exhaustion
==========================  ==============================================

Budgets are *started* lazily: the deadline clock begins on the first call
that needs it (``start()``, ``deadline``, ``remaining()``, ``expired()``),
so a budget built at CLI-parse time does not charge the obligation for
setup work done before proving starts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.runtime.errors import BudgetExceededError

__all__ = [
    "Budget",
    "REASON_TIMEOUT",
    "REASON_CONFLICT_LIMIT",
    "REASON_PROPAGATION_LIMIT",
    "REASON_BDD_BLOWUP",
    "REASON_WORKER_FAILURE",
    "REASON_POISON_JOB",
    "REASON_RESOURCE_LIMIT",
    "KNOWN_REASONS",
]

REASON_TIMEOUT = "timeout"
REASON_CONFLICT_LIMIT = "conflict-limit"
REASON_PROPAGATION_LIMIT = "propagation-limit"
REASON_BDD_BLOWUP = "bdd-blowup"
REASON_WORKER_FAILURE = "worker-failure"
REASON_POISON_JOB = "poison-job"
REASON_RESOURCE_LIMIT = "resource-limit"

KNOWN_REASONS = frozenset(
    {
        REASON_TIMEOUT,
        REASON_CONFLICT_LIMIT,
        REASON_PROPAGATION_LIMIT,
        REASON_BDD_BLOWUP,
        REASON_WORKER_FAILURE,
        REASON_POISON_JOB,
        REASON_RESOURCE_LIMIT,
    }
)


@dataclass
class Budget:
    """Resource limits for one verification task.

    Every field is optional; ``None`` means unlimited, and an all-``None``
    budget behaves exactly like no budget at all.  ``slice(n)`` carves
    per-obligation sub-budgets out of the remaining wall time while
    keeping the parent deadline as a hard ceiling.
    """

    wall_seconds: Optional[float] = None
    sat_conflicts: Optional[int] = None
    sat_propagations: Optional[int] = None
    bdd_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        self._deadline: Optional[float] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def coerce(
        value: Union[None, int, float, "Budget"]
    ) -> Optional["Budget"]:
        """Accept a Budget, a bare wall-clock seconds number, or None."""
        if value is None or isinstance(value, Budget):
            return value
        return Budget(wall_seconds=float(value))

    @property
    def unlimited(self) -> bool:
        """True when no field constrains anything."""
        return (
            self.wall_seconds is None
            and self.sat_conflicts is None
            and self.sat_propagations is None
            and self.bdd_nodes is None
        )

    # ------------------------------------------------------------------
    # the wall clock
    # ------------------------------------------------------------------
    def start(self) -> "Budget":
        """Begin the wall clock (idempotent); returns self for chaining."""
        if self._deadline is None and self.wall_seconds is not None:
            self._deadline = time.monotonic() + self.wall_seconds
        return self

    @property
    def deadline(self) -> Optional[float]:
        """Absolute ``time.monotonic()`` deadline, or None when untimed."""
        self.start()
        return self._deadline

    def remaining(self) -> Optional[float]:
        """Wall seconds left (clamped at 0), or None when untimed."""
        deadline = self.deadline
        if deadline is None:
            return None
        return max(0.0, deadline - time.monotonic())

    def expired(self) -> bool:
        """True when the wall-clock deadline has passed."""
        deadline = self.deadline
        return deadline is not None and time.monotonic() >= deadline

    def check(self, context: Optional[str] = None) -> None:
        """Raise :class:`BudgetExceededError` if the deadline has passed."""
        if self.expired():
            raise BudgetExceededError(REASON_TIMEOUT, context)

    # ------------------------------------------------------------------
    # sub-budgets
    # ------------------------------------------------------------------
    def slice(self, n_obligations: int) -> "Budget":
        """A per-obligation sub-budget: an even share of the time left.

        The child inherits every cap and receives ``remaining / n`` wall
        seconds, with its deadline clipped to the parent's — a slow
        obligation can never spend a sibling's share *and* overrun the
        parent.  With no wall limit the child is simply a copy.
        """
        n = max(1, int(n_obligations))
        child = Budget(
            wall_seconds=self.wall_seconds,
            sat_conflicts=self.sat_conflicts,
            sat_propagations=self.sat_propagations,
            bdd_nodes=self.bdd_nodes,
        )
        remaining = self.remaining()
        if remaining is not None:
            share = remaining / n
            child.wall_seconds = share
            assert self._deadline is not None
            child._deadline = min(self._deadline, time.monotonic() + share)
        return child

    def __repr__(self) -> str:
        parts = []
        if self.wall_seconds is not None:
            parts.append(f"wall={self.wall_seconds:g}s")
        if self.sat_conflicts is not None:
            parts.append(f"conflicts={self.sat_conflicts}")
        if self.sat_propagations is not None:
            parts.append(f"propagations={self.sat_propagations}")
        if self.bdd_nodes is not None:
            parts.append(f"bdd_nodes={self.bdd_nodes}")
        return f"Budget({', '.join(parts) or 'unlimited'})"
