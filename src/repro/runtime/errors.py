"""Exceptions of the resource-governed runtime.

These are the *catchable* failure modes of the proving engines: every one
of them means "this obligation ran out of some resource", never "the
result would have been wrong".  Callers that hold a
:class:`~repro.runtime.budget.Budget` convert them into recorded UNKNOWN
verdicts with a reason code instead of letting them escape.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["ResourceError", "BddBlowupError", "BudgetExceededError"]


class ResourceError(Exception):
    """Base class: a proving engine hit a resource limit.

    ``reason`` carries the machine-readable reason code (one of the
    ``REASON_*`` constants in :mod:`repro.runtime.budget`).
    """

    def __init__(self, message: str, reason: str = "resource-limit") -> None:
        super().__init__(message)
        self.reason = reason


class BddBlowupError(ResourceError):
    """BDD construction exceeded the manager's node limit."""

    def __init__(self, nodes: int, limit: int) -> None:
        super().__init__(
            f"BDD blow-up: {nodes} nodes reached the limit of {limit}",
            reason="bdd-blowup",
        )
        self.nodes = nodes
        self.limit = limit


class BudgetExceededError(ResourceError):
    """A :class:`~repro.runtime.budget.Budget` resource ran out.

    Raised by ``Budget.check()``; ``context`` names the phase that was
    running when the budget expired (useful in flow logs).
    """

    def __init__(self, reason: str, context: Optional[str] = None) -> None:
        where = f" during {context}" if context else ""
        super().__init__(f"budget exhausted ({reason}){where}", reason=reason)
        self.context = context
