"""Resource governance for the verification runtime.

The paper's reduction makes sequential checking *tractable*, not *free*:
BDDs can still blow up, SAT queries can still diverge, and a Table 1 run
is only as robust as its weakest row.  This package is the budget-and-
degradation layer every proving engine polls:

* :class:`Budget` — wall-clock deadline, SAT conflict/propagation caps,
  BDD node limit, per-obligation ``slice()`` sub-budgets;
* reason codes (``REASON_*``) — the stable vocabulary UNKNOWN verdicts
  are tagged with;
* :class:`BddBlowupError` / :class:`BudgetExceededError` — the catchable
  resource failures the engines raise instead of hanging;
* :func:`run_with_retries` — bounded retry + backoff (linear or
  exponential-with-jitter) for requeuing crashed parallel work;
* :mod:`repro.runtime.chaos` — the deterministic fault-injection
  registry (:class:`FaultPlan`, :func:`chaos.fire`) that robustness
  tests drive production fault paths through.

The package deliberately imports nothing else from :mod:`repro`, so every
layer (sat, bdd, cec, flows) can depend on it without cycles.
"""

from repro.runtime.budget import (
    KNOWN_REASONS,
    REASON_BDD_BLOWUP,
    REASON_CONFLICT_LIMIT,
    REASON_POISON_JOB,
    REASON_PROPAGATION_LIMIT,
    REASON_RESOURCE_LIMIT,
    REASON_TIMEOUT,
    REASON_WORKER_FAILURE,
    Budget,
)
from repro.runtime.chaos import ChaosError, FaultPlan, FaultRule
from repro.runtime.errors import (
    BddBlowupError,
    BudgetExceededError,
    ResourceError,
)
from repro.runtime.retry import backoff_pause, run_with_retries

__all__ = [
    "Budget",
    "BddBlowupError",
    "BudgetExceededError",
    "ChaosError",
    "FaultPlan",
    "FaultRule",
    "ResourceError",
    "backoff_pause",
    "run_with_retries",
    "KNOWN_REASONS",
    "REASON_BDD_BLOWUP",
    "REASON_CONFLICT_LIMIT",
    "REASON_POISON_JOB",
    "REASON_PROPAGATION_LIMIT",
    "REASON_RESOURCE_LIMIT",
    "REASON_TIMEOUT",
    "REASON_WORKER_FAILURE",
]
