"""Bounded retry with backoff for fault-tolerant dispatch.

Used by the parallel sweep and the batch service to requeue crashed or
timed-out work: a few quick attempts with a pause between them, then
give up and let the caller degrade (record UNKNOWN verdicts) instead of
looping forever on a deterministic failure.

Two pause policies:

* **linear** (the default, unchanged from day one): attempt *k* waits
  ``backoff_seconds * k`` — predictable, fine for a handful of workers
  on one host;
* **exponential with full jitter** (``exponential=True``): attempt *k*
  waits ``uniform(0, min(cap, backoff_seconds * 2**(k-1)))`` — the
  fleet-scale policy that prevents requeue stampedes when many workers
  fail at once (every retrier picking the same pause is how a recovering
  service gets re-flattened).  The jitter draw comes from the caller's
  ``rng`` (a seeded ``random.Random``) so tests stay deterministic.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple, TypeVar

__all__ = ["backoff_pause", "run_with_retries"]

T = TypeVar("T")

#: Default ceiling for an exponential pause (seconds).
DEFAULT_BACKOFF_CAP = 2.0


def backoff_pause(
    attempt: int,
    backoff_seconds: float,
    exponential: bool = False,
    backoff_cap: float = DEFAULT_BACKOFF_CAP,
    rng: Optional[random.Random] = None,
) -> float:
    """The pause before re-attempt number ``attempt`` (1-based).

    Linear policy: ``backoff_seconds * attempt``.  Exponential policy:
    full jitter over ``min(backoff_cap, backoff_seconds * 2**(attempt-1))``
    drawn from ``rng`` (an unseeded shared RNG when None).
    """
    attempt = max(1, int(attempt))
    if not exponential:
        return backoff_seconds * attempt
    ceiling = min(backoff_cap, backoff_seconds * (2 ** (attempt - 1)))
    if ceiling <= 0:
        return 0.0
    draw = (rng or random).random()
    return ceiling * draw


def run_with_retries(
    fn: Callable[[], T],
    attempts: int = 2,
    backoff_seconds: float = 0.05,
    deadline: Optional[float] = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    exponential: bool = False,
    backoff_cap: float = DEFAULT_BACKOFF_CAP,
    rng: Optional[random.Random] = None,
) -> Tuple[Optional[T], Optional[BaseException], int]:
    """Call ``fn`` up to ``attempts`` times; returns (result, error, retries).

    On success the error slot is None; after the final failed attempt the
    result slot is None and the last exception is returned (never raised —
    the caller decides whether a failure is fatal).  ``deadline`` (a
    ``time.monotonic()`` timestamp) stops further attempts once passed.
    ``on_retry(attempt_index, exc)`` is invoked before each re-attempt.
    ``exponential`` switches the pause policy to exponential backoff with
    full jitter, capped at ``backoff_cap`` and drawn from ``rng`` (pass a
    seeded ``random.Random`` for reproducible schedules).
    KeyboardInterrupt is always re-raised.
    """
    attempts = max(1, int(attempts))
    last_error: Optional[BaseException] = None
    retries = 0
    for attempt in range(attempts):
        if attempt > 0:
            if deadline is not None and time.monotonic() >= deadline:
                break
            retries += 1
            if on_retry is not None:
                on_retry(attempt, last_error)  # type: ignore[arg-type]
            pause = backoff_pause(
                attempt,
                backoff_seconds,
                exponential=exponential,
                backoff_cap=backoff_cap,
                rng=rng,
            )
            if pause > 0:
                if deadline is not None:
                    pause = min(pause, max(0.0, deadline - time.monotonic()))
                time.sleep(pause)
        try:
            return fn(), None, retries
        except KeyboardInterrupt:
            raise
        except BaseException as exc:  # noqa: BLE001 - reported, not hidden
            last_error = exc
    return None, last_error, retries
