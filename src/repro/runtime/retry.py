"""Bounded retry with backoff for fault-tolerant dispatch.

Used by the parallel sweep to requeue crashed or timed-out work units
onto the serial path: a couple of quick attempts with a short, linearly
growing pause between them, then give up and let the caller degrade
(record UNKNOWN verdicts) instead of looping forever on a deterministic
failure.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, TypeVar

__all__ = ["run_with_retries"]

T = TypeVar("T")


def run_with_retries(
    fn: Callable[[], T],
    attempts: int = 2,
    backoff_seconds: float = 0.05,
    deadline: Optional[float] = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> Tuple[Optional[T], Optional[BaseException], int]:
    """Call ``fn`` up to ``attempts`` times; returns (result, error, retries).

    On success the error slot is None; after the final failed attempt the
    result slot is None and the last exception is returned (never raised —
    the caller decides whether a failure is fatal).  ``deadline`` (a
    ``time.monotonic()`` timestamp) stops further attempts once passed.
    ``on_retry(attempt_index, exc)`` is invoked before each re-attempt.
    KeyboardInterrupt is always re-raised.
    """
    attempts = max(1, int(attempts))
    last_error: Optional[BaseException] = None
    retries = 0
    for attempt in range(attempts):
        if attempt > 0:
            if deadline is not None and time.monotonic() >= deadline:
                break
            retries += 1
            if on_retry is not None:
                on_retry(attempt, last_error)  # type: ignore[arg-type]
            pause = backoff_seconds * attempt
            if pause > 0:
                if deadline is not None:
                    pause = min(pause, max(0.0, deadline - time.monotonic()))
                time.sleep(pause)
        try:
            return fn(), None, retries
        except KeyboardInterrupt:
            raise
        except BaseException as exc:  # noqa: BLE001 - reported, not hidden
            last_error = exc
    return None, last_error, retries
