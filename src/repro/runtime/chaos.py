"""Deterministic fault injection for the verification runtime.

Robustness claims are only as good as the faults they were tested
against, and ad-hoc monkeypatching (the old private ``_fault_hook`` seam
in :mod:`repro.cec.parallel`) does not scale past one call site.  This
module is the shared registry that replaces it: production code is
instrumented with *named sites* —

==========================  ==============================================
``worker.entry``            a service/sweep worker function begins a job
``scheduler.dispatch``      the scheduler ships a job payload to a worker
``store.append``            a result line is about to be written
``cache.load``              a proof-cache file is about to be read
``cache.save``              a proof-cache file is about to be written
``transport.recv``          one protocol line was received (stdio or TCP)
==========================  ==============================================

— and a :class:`FaultPlan` decides, deterministically, what happens at
each hit of each site: nothing (the default), ``crash`` (raise
:class:`ChaosError`), ``delay`` (sleep), or ``corrupt`` (garble the
payload the site passed in).  Determinism comes from per-site hit
counters and a per-site RNG seeded from ``(plan seed, site name)``, so a
rule's firing pattern depends only on how often *its* site was hit,
never on cross-site interleaving.

Sites call :func:`fire` (or :func:`afire` from coroutines, which uses
``asyncio.sleep`` for delays).  With no plan installed both are a single
``None`` check — chaos is zero-overhead when off.  Activation:

* explicitly, via :func:`install` (tests, the ``--chaos`` CLI flag);
* by environment, via ``REPRO_CHAOS=/path/to/plan.json`` — worker
  processes check it on entry (:func:`ensure_env_plan`), so a plan
  installed by the CLI reaches pool workers even under ``spawn``.

Every firing is appended to the plan's :attr:`~FaultPlan.log` (the
chaos-trace artifact CI uploads) and counted as ``chaos.faults_fired``
when a metrics registry is attached.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = [
    "ChaosError",
    "FaultRule",
    "FaultPlan",
    "KNOWN_SITES",
    "KNOWN_ACTIONS",
    "ENV_VAR",
    "install",
    "uninstall",
    "active",
    "ensure_env_plan",
    "fire",
    "afire",
]

#: Environment variable naming a fault-plan JSON file to auto-install.
ENV_VAR = "REPRO_CHAOS"

#: The instrumented sites (documentation + plan validation; a plan may
#: name only known sites so a typoed site fails loudly, not silently).
KNOWN_SITES = frozenset(
    {
        "worker.entry",
        "scheduler.dispatch",
        "store.append",
        "cache.load",
        "cache.save",
        "transport.recv",
    }
)

ACTION_CRASH = "crash"
ACTION_DELAY = "delay"
ACTION_CORRUPT = "corrupt"
KNOWN_ACTIONS = frozenset({ACTION_CRASH, ACTION_DELAY, ACTION_CORRUPT})


class ChaosError(RuntimeError):
    """The injected failure raised by a ``crash`` fault.

    A plain RuntimeError subclass on purpose: production code must
    survive it through its *generic* fault handling (retry, requeue,
    UNKNOWN degradation), not by special-casing chaos.
    """


def _site_seed(seed: int, site: str) -> int:
    # Stable across processes and runs (no PYTHONHASHSEED dependence).
    acc = 2166136261
    for byte in f"{seed}\x00{site}".encode("utf-8"):
        acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
    return acc


@dataclass
class FaultRule:
    """One fault: where it applies, when it fires, and what it does.

    Firing condition (evaluated against the site's 1-based hit number):
    ``hits`` (an explicit list of hit numbers), ``every`` (every Nth
    hit), or ``prob`` (a per-hit Bernoulli draw from the plan's per-site
    RNG).  With none given the rule fires on every hit.  ``times`` caps
    total firings; ``seconds`` is the ``delay`` duration.
    """

    site: str
    action: str
    hits: Optional[List[int]] = None
    every: Optional[int] = None
    prob: Optional[float] = None
    times: Optional[int] = None
    seconds: float = 0.01
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown chaos site {self.site!r} "
                f"(known: {sorted(KNOWN_SITES)})"
            )
        if self.action not in KNOWN_ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r} "
                f"(known: {sorted(KNOWN_ACTIONS)})"
            )

    def wants(self, hit: int, rng) -> bool:
        """Does this rule fire on the site's ``hit``-th visit?"""
        if self.times is not None and self.fired >= self.times:
            return False
        if self.hits is not None:
            return hit in self.hits
        if self.every is not None:
            return self.every > 0 and hit % self.every == 0
        if self.prob is not None:
            return rng.random() < self.prob
        return True

    def to_dict(self) -> Dict[str, Any]:
        """The rule as a plan-file row (defaults omitted)."""
        out: Dict[str, Any] = {"site": self.site, "action": self.action}
        for key in ("hits", "every", "prob", "times"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.action == ACTION_DELAY:
            out["seconds"] = self.seconds
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        """Parse a plan-file row; unknown fields are a ``ValueError``."""
        known = {"site", "action", "hits", "every", "prob", "times", "seconds"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-rule field(s): {sorted(unknown)}")
        return cls(
            site=str(data["site"]),
            action=str(data["action"]),
            hits=[int(h) for h in data["hits"]] if "hits" in data else None,
            every=int(data["every"]) if "every" in data else None,
            prob=float(data["prob"]) if "prob" in data else None,
            times=int(data["times"]) if "times" in data else None,
            seconds=float(data.get("seconds", 0.01)),
        )


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s plus the firing machinery.

    One plan instance is installed at a time (:func:`install`); sites
    consult it through :func:`fire`.  ``log`` accumulates one record per
    firing — ``{"site", "action", "hit", "rule"}`` — and is the run's
    chaos trace.
    """

    def __init__(
        self, rules: List[FaultRule], seed: int = 0
    ) -> None:
        import random

        self.rules = list(rules)
        self.seed = int(seed)
        self.log: List[Dict[str, Any]] = []
        self.metrics = None  # optional repro.obs.metrics.MetricsRegistry
        self._hits: Dict[str, int] = {}
        self._rngs = {
            site: random.Random(_site_seed(self.seed, site))
            for site in {rule.site for rule in self.rules}
        }
        self._by_site: Dict[str, List[FaultRule]] = {}
        for rule in self.rules:
            self._by_site.setdefault(rule.site, []).append(rule)

    # ------------------------------------------------------------------
    # construction / serialisation
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Parse ``{"seed": ..., "faults": [...]}``; strict on fields."""
        known = {"seed", "faults"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-plan field(s): {sorted(unknown)}")
        faults = data.get("faults")
        if not isinstance(faults, list):
            raise ValueError("fault plan needs a 'faults' list")
        return cls(
            rules=[FaultRule.from_dict(row) for row in faults],
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "FaultPlan":
        """Load a JSON plan file (the ``--chaos`` argument)."""
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def to_dict(self) -> Dict[str, Any]:
        """The plan back as its JSON file shape."""
        return {
            "seed": self.seed,
            "faults": [rule.to_dict() for rule in self.rules],
        }

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def _arm(self, site: str) -> Optional[FaultRule]:
        """Count one hit of ``site``; return the rule that fires, if any."""
        rules = self._by_site.get(site)
        if not rules:
            return None
        hit = self._hits.get(site, 0) + 1
        self._hits[site] = hit
        rng = self._rngs[site]
        for rule in rules:
            if rule.wants(hit, rng):
                rule.fired += 1
                self.log.append(
                    {
                        "site": site,
                        "action": rule.action,
                        "hit": hit,
                        "rule": rule.to_dict(),
                    }
                )
                if self.metrics is not None:
                    self.metrics.inc("chaos.faults_fired")
                return rule
        return None

    def fire(self, site: str, data: Any = None) -> Any:
        """Synchronous site visit: crash, sleep, or corrupt ``data``."""
        rule = self._arm(site)
        if rule is None:
            return data
        if rule.action == ACTION_CRASH:
            raise ChaosError(f"injected crash at {site}")
        if rule.action == ACTION_DELAY:
            time.sleep(rule.seconds)
            return data
        return _corrupt(data)

    async def afire(self, site: str, data: Any = None) -> Any:
        """Coroutine site visit (delays must not block the event loop)."""
        import asyncio

        rule = self._arm(site)
        if rule is None:
            return data
        if rule.action == ACTION_CRASH:
            raise ChaosError(f"injected crash at {site}")
        if rule.action == ACTION_DELAY:
            await asyncio.sleep(rule.seconds)
            return data
        return _corrupt(data)

    def fired(self, site: Optional[str] = None) -> int:
        """How many faults fired (at one site, or overall)."""
        if site is None:
            return len(self.log)
        return sum(1 for entry in self.log if entry["site"] == site)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
            f"fired={len(self.log)})"
        )


def _corrupt(data: Any) -> Any:
    """Deterministically garble a site payload.

    Corruptions must be *detectable-or-harmless*: for protocol/file text
    the result is guaranteed-invalid JSON, so parsers hit their error
    paths rather than silently accepting altered content.  Payload types
    without a meaningful corruption pass through unchanged.
    """
    if isinstance(data, str):
        return "\x00chaos!" + data[::-1]
    if isinstance(data, (bytes, bytearray)):
        return b"\x00chaos!" + bytes(data)[::-1]
    return data


# ----------------------------------------------------------------------
# the module-level registry
# ----------------------------------------------------------------------
_plan: Optional[FaultPlan] = None


def install(plan: FaultPlan, metrics=None) -> FaultPlan:
    """Make ``plan`` the active plan (replacing any previous one)."""
    global _plan
    plan.metrics = metrics if metrics is not None else plan.metrics
    _plan = plan
    return plan


def uninstall() -> Optional[FaultPlan]:
    """Deactivate chaos; returns the plan that was active, if any."""
    global _plan
    plan, _plan = _plan, None
    return plan


def active() -> Optional[FaultPlan]:
    """The currently installed plan, or None."""
    return _plan


def ensure_env_plan() -> Optional[FaultPlan]:
    """Install the ``REPRO_CHAOS`` plan if set and nothing is installed.

    Called at worker entry so pool workers honour the parent's plan even
    when the pool start method does not inherit module state (``spawn``).
    Unreadable plans fail loudly — silently running fault-free while the
    operator believes chaos is on would invalidate the whole run.
    """
    if _plan is not None:
        return _plan
    path = os.environ.get(ENV_VAR)
    if not path:
        return None
    return install(FaultPlan.load(path))


def fire(site: str, data: Any = None) -> Any:
    """Visit ``site``; returns ``data`` (possibly corrupted).

    No-op (one ``is None`` check) unless a plan is installed.
    """
    if _plan is None:
        return data
    return _plan.fire(site, data)


async def afire(site: str, data: Any = None) -> Any:
    """Async :func:`fire` — injected delays yield to the event loop."""
    if _plan is None:
        return data
    return await _plan.afire(site, data)
