"""Assumption-core bookkeeping for the SAT sweep.

A :class:`~repro.sat.solver.Solver` UNSAT result under assumptions comes
with :attr:`~repro.sat.solver.SATResult.core` — the subset of assumption
literals the refutation actually used.  Cores generalise: any later
query whose assumption set is a *superset* of a known core is UNSAT by
construction and needs no solver call.  :class:`CoreIndex` stores the
cores seen so far and answers that subsumption question, so the sweep
can retire whole families of candidate-pair queries (counted under
``cec.sat.core_retired``) instead of re-proving each one.

Singleton cores are the common and most valuable case — a core ``{l}``
means the formula itself implies ``-l``, so *every* query assuming ``l``
(e.g. either direction of any pair involving a stuck-at-constant node)
dies instantly.  They are kept in a flat set for O(assumptions) lookup;
wider cores fall back to a subset scan.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional

__all__ = ["CoreIndex", "core_retires"]


class CoreIndex:
    """A subsumption index over assumption cores.

    ``add`` records a core (any iterable of assumption literals);
    ``subsumed`` reports whether a known core is contained in a given
    assumption set.  The empty core — the formula is UNSAT outright —
    subsumes everything.
    """

    __slots__ = ("_empty", "_units", "_wide", "_seen")

    def __init__(self) -> None:
        self._empty = False
        self._units: set = set()
        self._wide: List[FrozenSet[int]] = []
        self._seen: set = set()

    def __len__(self) -> int:
        return int(self._empty) + len(self._units) + len(self._wide)

    def add(self, core: Iterable[int]) -> None:
        """Record a core.  Duplicates and supersets of singletons are
        dropped; an empty core marks the whole formula UNSAT."""
        key = frozenset(core)
        if not key:
            self._empty = True
            return
        if key in self._seen:
            return
        self._seen.add(key)
        if len(key) == 1:
            self._units.add(next(iter(key)))
        elif not any(lit in self._units for lit in key):
            self._wide.append(key)

    def add_many(self, cores: Iterable[Iterable[int]]) -> None:
        """Record a batch of cores (e.g. shipped home by a worker)."""
        for core in cores:
            self.add(core)

    def subsumed(self, assumptions: Iterable[int]) -> bool:
        """True when some known core is a subset of ``assumptions`` —
        i.e. the query is UNSAT without asking the solver."""
        if self._empty:
            return True
        aset = set(assumptions)
        if not self._units.isdisjoint(aset):
            return True
        return any(core <= aset for core in self._wide)

    def export(self) -> List[List[int]]:
        """All recorded cores as plain lists (for shipping between
        processes; literals stay in this index's variable space)."""
        out: List[List[int]] = []
        if self._empty:
            out.append([])
        out.extend([lit] for lit in sorted(self._units))
        out.extend(sorted(core) for core in self._wide)
        return out


def core_retires(
    solver, cores: Optional[CoreIndex], assumptions: Iterable[int]
) -> bool:
    """True when ``assumptions`` is already known UNSAT without a solve.

    Either a recorded core is a subset of the assumption set, or some
    assumption literal is false at the solver's root level (the formula
    implies its negation) — in which case the singleton is also recorded
    so later subsumption checks are a set lookup.  With ``cores`` None
    (core tracking off) nothing retires and the caller always solves.
    """
    if cores is None:
        return False
    assumptions = list(assumptions)
    if cores.subsumed(assumptions):
        return True
    for lit in assumptions:
        if solver.root_value(lit) == 0:
            cores.add([lit])
            return True
    return False
