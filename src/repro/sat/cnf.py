"""CNF formula container with DIMACS import/export.

Literals follow the DIMACS convention: variables are positive integers, a
negative literal is the negated variable.  Variable 0 is never used.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["CNF"]


class CNF:
    """A conjunction of clauses over integer variables."""

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = num_vars
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its index."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate several fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        """Append one clause (validates literal ranges)."""
        clause = tuple(literals)
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is reserved")
            if abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} exceeds declared variables")
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Append several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def extend_from(self, other: "CNF", offset: int) -> None:
        """Append another CNF with all its variables shifted by ``offset``."""
        needed = other.num_vars + offset
        if needed > self.num_vars:
            self.num_vars = needed
        for clause in other.clauses:
            self.clauses.append(
                tuple(lit + offset if lit > 0 else lit - offset for lit in clause)
            )

    def to_dimacs(self) -> str:
        """Serialise to DIMACS CNF text."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    @staticmethod
    def from_dimacs(text: str) -> "CNF":
        """Parse DIMACS CNF text."""
        cnf = CNF()
        declared_vars = 0
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"bad problem line: {line!r}")
                declared_vars = int(parts[2])
                cnf.num_vars = declared_vars
                continue
            lits = [int(tok) for tok in line.split()]
            if lits and lits[-1] == 0:
                lits = lits[:-1]
            if lits:
                for lit in lits:
                    cnf.num_vars = max(cnf.num_vars, abs(lit))
                cnf.add_clause(lits)
        return cnf

    def __len__(self) -> int:
        return len(self.clauses)

    def __str__(self) -> str:
        return f"CNF({self.num_vars} vars, {len(self.clauses)} clauses)"
