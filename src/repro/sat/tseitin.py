"""Tseitin encoding: combinational circuits to CNF.

Each signal gets a CNF variable.  Every cube of a gate's SOP cover gets an
auxiliary variable ``t`` with ``t ↔ cube``; the gate output is the OR of its
cube variables.  Single-cube and constant gates are encoded directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.netlist.circuit import Circuit
from repro.sat.cnf import CNF

__all__ = ["TseitinMap", "tseitin_encode"]


@dataclass
class TseitinMap:
    """CNF together with the signal-to-variable mapping."""

    cnf: CNF
    var_of: Dict[str, int]

    def lit(self, signal: str, phase: bool = True) -> int:
        """The CNF literal for a signal with the given phase."""
        v = self.var_of[signal]
        return v if phase else -v


def tseitin_encode(
    circuit: Circuit,
    cnf: Optional[CNF] = None,
    var_of: Optional[Dict[str, int]] = None,
) -> TseitinMap:
    """Encode a combinational circuit.

    Pass an existing ``cnf``/``var_of`` to share variables between several
    circuits (used when encoding miters incrementally).  Signals already in
    ``var_of`` reuse their variables.
    """
    if circuit.latches:
        raise ValueError("tseitin_encode requires a combinational circuit")
    if cnf is None:
        cnf = CNF()
    if var_of is None:
        var_of = {}

    def var(sig: str) -> int:
        v = var_of.get(sig)
        if v is None:
            v = cnf.new_var()
            var_of[sig] = v
        return v

    for pi in circuit.inputs:
        var(pi)

    for gate in circuit.topo_gates():
        out = var(gate.output)
        fanin_vars = [var(s) for s in gate.inputs]
        cubes = gate.sop.cubes
        if not cubes:
            cnf.add_clause([-out])
            continue
        if gate.sop.is_const1_syntactic():
            cnf.add_clause([out])
            continue
        cube_lits: List[int] = []
        for cube in cubes:
            lits = [
                fanin_vars[i] if ch == "1" else -fanin_vars[i]
                for i, ch in enumerate(cube)
                if ch != "-"
            ]
            if len(lits) == 1:
                cube_lits.append(lits[0])
                continue
            t = cnf.new_var()
            # t -> each literal
            for lit in lits:
                cnf.add_clause([-t, lit])
            # literals -> t
            cnf.add_clause([t] + [-lit for lit in lits])
            cube_lits.append(t)
        if len(cube_lits) == 1:
            # out <-> cube
            cnf.add_clause([-out, cube_lits[0]])
            cnf.add_clause([out, -cube_lits[0]])
        else:
            # out <-> OR(cube_lits)
            for cl in cube_lits:
                cnf.add_clause([out, -cl])
            cnf.add_clause([-out] + cube_lits)
    return TseitinMap(cnf, var_of)
