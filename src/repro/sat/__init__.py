"""A CDCL SAT solver and circuit-to-CNF encoding (from scratch).

* :mod:`repro.sat.cnf` — CNF container with DIMACS I/O;
* :mod:`repro.sat.solver` — conflict-driven clause learning solver with
  two-watched-literal propagation, VSIDS-style activity, 1UIP learning and
  Luby restarts;
* :mod:`repro.sat.tseitin` — Tseitin encoding of circuits.
"""

from repro.sat.cnf import CNF
from repro.sat.solver import Solver, SATResult
from repro.sat.tseitin import tseitin_encode, TseitinMap

__all__ = ["CNF", "Solver", "SATResult", "tseitin_encode", "TseitinMap"]
