"""A conflict-driven clause-learning (CDCL) SAT solver.

Implements the standard modern architecture:

* two-watched-literal unit propagation;
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping;
* EVSIDS variable activities (exponentially rescaled bumps on an indexed
  max-heap, with a MiniSat-style decay ramp) and phase saving that skips
  assumption levels so one query's polarity cannot pollute the next;
* Luby-sequence restarts;
* learned-clause garbage collection by activity, with LBD tracked per
  clause for quality-filtered sharing (:meth:`Solver.export_learned` /
  :meth:`Solver.import_learned`).

The solver supports incremental solving under assumptions, which the CEC
engine uses for equivalence sweeping (one CNF, many queries).  When a
call comes back UNSAT under assumptions, final-conflict analysis (the
``analyzeFinal`` of MiniSat) reports *which* assumptions the refutation
actually used in :attr:`SATResult.core` — the incremental-SAT analogue
of an unsatisfiable core, which the sweep uses to retire whole families
of candidate queries without re-solving them.

Every ``solve`` call can be resource-bounded: ``conflict_limit`` and
``propagation_limit`` cap the search effort, and ``deadline`` (an absolute
``time.monotonic()`` timestamp) is polled periodically inside the CDCL
loop.  Exhausting any of them reports UNKNOWN (``last_unknown`` set, with
the cause in ``last_unknown_reason``) rather than hanging — the contract
the budget-governed CEC cascade relies on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.runtime.budget import (
    REASON_CONFLICT_LIMIT,
    REASON_PROPAGATION_LIMIT,
    REASON_TIMEOUT,
)
from repro.sat.cnf import CNF

__all__ = ["Solver", "SATResult"]


@dataclass
class SATResult:
    """Outcome of a :meth:`Solver.solve` call.

    ``model`` maps DIMACS variables to their values and covers only the
    variables the solver actually assigned (on an incremental solver every
    variable is assigned at SAT, so in practice that is all of them — but
    an unassigned variable is *unconstrained*, and reporting it as False
    would be inventing a value).

    ``conflicts`` / ``decisions`` / ``propagations`` are the solver's
    *cumulative lifetime totals* at the end of the call, not this call's
    effort — on an incremental solver they grow monotonically across
    calls.  Per-call deltas live in :attr:`Solver.last_call_stats`.

    ``core`` is only meaningful on UNSAT results: the subset of this
    call's assumption literals (verbatim, as passed) that final-conflict
    analysis found the refutation to depend on.  An empty core means the
    formula is unsatisfiable regardless of assumptions; any superset of
    a reported core is guaranteed UNSAT without another solver call.  On
    SAT and UNKNOWN results ``core`` is None.
    """

    satisfiable: bool
    model: Optional[Dict[int, bool]] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    core: Optional[List[int]] = None

    def __bool__(self) -> bool:
        return self.satisfiable


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed).

    MiniSat's iterative formulation with ``x = i - 1`` zero-based.
    """
    if i < 1:
        raise ValueError("Luby index is 1-based")
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x = x % size
    return 1 << seq


class _Clause:
    __slots__ = ("lits", "learned", "activity", "lbd")

    def __init__(self, lits: List[int], learned: bool) -> None:
        self.lits = lits
        self.learned = learned
        self.activity = 0.0
        #: Literal block distance (distinct decision levels at learn
        #: time); the clause-quality measure ``export_learned`` filters
        #: on.  0 for original clauses.
        self.lbd = 0


class _VarOrder:
    """Indexed binary max-heap of variables ordered by activity.

    The MiniSat ``Heap`` (sst-sat's ``heap.h``): ``pos`` maps each
    variable to its heap slot (-1 when absent) so an activity bump can
    percolate the variable up in O(log n) instead of the old O(n) linear
    scan per decision.  Rescaling multiplies every activity by the same
    factor, which preserves heap order — only bumps need fixing up.
    """

    __slots__ = ("heap", "pos", "activity")

    def __init__(self, activity: List[float]) -> None:
        self.heap: List[int] = []
        self.pos: List[int] = []
        self.activity = activity

    def insert(self, var: int) -> None:
        while len(self.pos) <= var:
            self.pos.append(-1)
        if self.pos[var] >= 0:
            return
        self.pos[var] = len(self.heap)
        self.heap.append(var)
        self._up(self.pos[var])

    def pop(self) -> int:
        heap, pos = self.heap, self.pos
        top = heap[0]
        last = heap.pop()
        pos[top] = -1
        if heap:
            heap[0] = last
            pos[last] = 0
            self._down(0)
        return top

    def update(self, var: int) -> None:
        """Restore heap order after ``var``'s activity increased."""
        if var < len(self.pos) and self.pos[var] >= 0:
            self._up(self.pos[var])

    def _up(self, i: int) -> None:
        heap, pos, act = self.heap, self.pos, self.activity
        var = heap[i]
        key = act[var]
        while i > 0:
            parent = (i - 1) >> 1
            pvar = heap[parent]
            if act[pvar] >= key:
                break
            heap[i] = pvar
            pos[pvar] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _down(self, i: int) -> None:
        heap, pos, act = self.heap, self.pos, self.activity
        var = heap[i]
        key = act[var]
        size = len(heap)
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            child = left
            right = left + 1
            if right < size and act[heap[right]] > act[heap[left]]:
                child = right
            cvar = heap[child]
            if key >= act[cvar]:
                break
            heap[i] = cvar
            pos[cvar] = i
            i = child
        heap[i] = var
        pos[var] = i


class Solver:
    """CDCL solver over DIMACS-style integer literals."""

    #: Conflicts between each +0.01 step of the variable-decay ramp.
    _DECAY_RAMP_CONFLICTS = 5000
    #: Decay ramp endpoint.
    _DECAY_RAMP_TARGET = 0.95

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: List[_Clause] = []
        self._learned: List[_Clause] = []
        # watches[lit] = clauses watching literal lit (lit encoded as index)
        self._watches: Dict[int, List[_Clause]] = {}
        self._assign: List[int] = []  # var -> -1 unassigned / 0 false / 1 true
        self._level: List[int] = []
        self._reason: List[Optional[_Clause]] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = []
        self._order = _VarOrder(self._activity)
        self._var_inc = 1.0
        # EVSIDS decay ramp (MiniSat-style): start forgetful at 0.8 so
        # early bumps wash out fast, then step toward 0.95 every
        # _DECAY_RAMP_CONFLICTS conflicts as the search matures.
        self._var_decay = 0.8
        self._decay_countdown = self._DECAY_RAMP_CONFLICTS
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._phase: List[bool] = []
        # Marks variables currently assigned *as assumption
        # pseudo-decisions* — the trail positions final-conflict
        # analysis must report as core members (a formula-implied unit
        # enqueued at an assumption level also has reason None, so
        # reasonlessness alone cannot identify assumptions).
        self._assumption_mark: List[bool] = []
        self._ok = True
        self.stats_conflicts = 0
        self.stats_decisions = 0
        self.stats_propagations = 0
        # Per-call search state.  All of this used to live as class-level
        # attributes, which made ``last_call_stats`` (a mutable dict) and
        # the unknown/limit flags shared across *every* Solver instance;
        # per-instance initialisation keeps concurrent solvers independent.
        self._num_assumed = 0
        self._last_search_conflicts = 0
        self._deadline_at: Optional[float] = None
        self._prop_stop: Optional[int] = None
        self._poll_tick = 0
        #: True when the last ``solve`` call gave up on a resource limit.
        self.last_unknown = False
        #: The ``REASON_*`` code of the exhausted resource, else None.
        self.last_unknown_reason: Optional[str] = None
        #: Mirror of the last UNSAT result's assumption core (None on
        #: SAT/UNKNOWN), for callers that only kept the solver handle.
        self.last_core: Optional[List[int]] = None
        # Core computed by _search at the conflict site, before
        # backtracking erases the trail it was derived from.
        self._pending_core: Optional[List[int]] = None
        #: Per-call effort deltas of the last ``solve`` call.
        self.last_call_stats: Dict[str, int] = {}
        #: Optional ``repro.obs.metrics.MetricsRegistry``; when attached,
        #: every call feeds the ``sat.*`` counters and per-call histograms.
        self.metrics = None

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable tables up to ``num_vars``."""
        while self._num_vars < num_vars:
            self._num_vars += 1
            self._assign.append(-1)
            self._level.append(-1)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            self._assumption_mark.append(False)
            self._order.insert(self._num_vars - 1)

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT."""
        if not self._ok:
            return False
        lits: List[int] = []
        seen = set()
        for lit in literals:
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return True  # tautological clause
            if lit in seen:
                continue
            seen.add(lit)
            val = self._value(lit)
            if self._level[abs(lit) - 1] == 0:
                if val == 1:
                    return True  # satisfied at root
                if val == 0:
                    continue  # falsified at root: drop literal
            lits.append(lit)
        if not lits:
            self._ok = False
            return False
        if len(lits) == 1:
            if self._decision_level() != 0:
                raise RuntimeError("unit clauses must be added at root level")
            if not self._enqueue(lits[0], None):
                self._ok = False
                return False
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(lits, learned=False)
        self._clauses.append(clause)
        self._watch(clause)
        return True

    def add_cnf(self, cnf: CNF) -> bool:
        """Add all clauses of a CNF; False if trivially UNSAT."""
        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            if not self.add_clause(clause):
                return False
        return True

    def export_clauses(
        self, variables: Optional[Iterable[int]] = None
    ) -> List[List[int]]:
        """Snapshot the root-level problem state as a clause list.

        Returns the root-level implied literals (as unit clauses) followed
        by the original (non-learned) clauses — everything a fresh solver
        needs to reproduce this solver's problem.  With ``variables``, the
        snapshot is restricted to clauses mentioning only those variables:
        the CNF slice a sweep worker needs for one fanin cone.  Learned
        clauses are deliberately excluded (they are consequences and would
        only be valid for the full formula anyway).
        """
        var_set = set(variables) if variables is not None else None
        clauses: List[List[int]] = []
        root_len = self._trail_lim[0] if self._trail_lim else len(self._trail)
        for lit in self._trail[:root_len]:
            if var_set is None or abs(lit) in var_set:
                clauses.append([lit])
        for clause in self._clauses:
            if var_set is None or all(abs(l) in var_set for l in clause.lits):
                clauses.append(list(clause.lits))
        return clauses

    def export_learned(
        self,
        variables: Optional[Iterable[int]] = None,
        max_len: int = 8,
        max_lbd: int = 4,
    ) -> List[List[int]]:
        """Quality-filtered snapshot of the learned-clause database.

        Returns copies of learned clauses no longer than ``max_len``
        literals and no "wider" than ``max_lbd`` decision levels at
        learn time — the short, low-LBD clauses worth shipping to a
        sibling solver.  With ``variables``, only clauses falling
        entirely inside that variable set are returned: since every
        learned clause is a logical consequence of the clause database,
        a clause scoped to a work unit's variable slice stays valid on
        any peer whose slice subsumes those variables.  Clauses imported
        via :meth:`import_learned` carry a pessimistic LBD and are not
        re-exported, which keeps shared clauses from echoing between
        workers.
        """
        var_set = set(variables) if variables is not None else None
        out: List[List[int]] = []
        for clause in self._learned:
            lits = clause.lits
            if len(lits) > max_len or clause.lbd > max_lbd:
                continue
            if var_set is not None and not all(abs(l) in var_set for l in lits):
                continue
            out.append(list(lits))
        return out

    def import_learned(self, clauses: Iterable[Iterable[int]]) -> int:
        """Install peer-learned clauses; returns how many were added.

        Each clause must be a logical consequence of this solver's
        problem (the :meth:`export_learned` contract).  Clauses are
        root-simplified like :meth:`add_clause` — satisfied ones are
        skipped, root-false literals dropped — then added as learned
        (garbage-collectable) clauses; units are enqueued at the root.
        A clause emptied by simplification proves the formula UNSAT.
        """
        if not self._ok:
            return 0
        if self._decision_level() != 0:
            raise RuntimeError("learned clauses must be imported at root level")
        added = 0
        for literals in clauses:
            lits: List[int] = []
            seen = set()
            skip = False
            for lit in literals:
                self.ensure_vars(abs(lit))
                if -lit in seen:
                    skip = True  # tautological
                    break
                if lit in seen:
                    continue
                seen.add(lit)
                val = self._value(lit)
                if self._level[abs(lit) - 1] == 0:
                    if val == 1:
                        skip = True  # satisfied at root
                        break
                    if val == 0:
                        continue  # falsified at root: drop literal
                lits.append(lit)
            if skip:
                continue
            if not lits:
                self._ok = False
                return added
            if len(lits) == 1:
                if not self._enqueue(lits[0], None):
                    self._ok = False
                    return added
                if self._propagate() is not None:
                    self._ok = False
                    return added
                added += 1
                continue
            clause = _Clause(lits, learned=True)
            clause.activity = self._cla_inc
            clause.lbd = len(lits)  # pessimistic: blocks re-export echo
            self._learned.append(clause)
            self._watch(clause)
            added += 1
        return added

    def root_value(self, lit: int) -> int:
        """``lit``'s value *at the root level*: -1 unknown, 0 false, 1 true.

        A non-(-1) answer means the formula itself implies the literal's
        value, independent of any assumptions — the fast path that lets
        the sweep retire an assumption set containing a root-false
        literal without a solver call.
        """
        var = abs(lit) - 1
        if (
            var >= self._num_vars
            or self._assign[var] == -1
            or self._level[var] != 0
        ):
            return -1
        return self._value(lit)

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: Optional[int] = None,
        propagation_limit: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> SATResult:
        """Solve under assumptions.

        ``conflict_limit`` bounds this call's conflicts exactly — each
        restart's Luby budget is capped at the limit's remainder, so the
        search stops at (never beyond) the limit;
        ``propagation_limit`` bounds total propagations; ``deadline`` is an
        absolute ``time.monotonic()`` timestamp polled inside the search
        loop.  When any limit is exceeded the result is reported
        unsatisfiable=False with model=None and the caller should treat it
        as UNKNOWN (exposed via the :attr:`last_unknown` flag, with the
        exhausted resource named in :attr:`last_unknown_reason`).

        Per-call effort (the deltas of the cumulative ``stats_*``
        counters) lands in :attr:`last_call_stats` after every call; with
        a :class:`~repro.obs.metrics.MetricsRegistry` attached via
        :attr:`metrics`, each call also feeds the ``sat.*_per_call``
        histograms and the ``sat.calls`` / ``sat.unknowns`` counters.
        """
        c0 = self.stats_conflicts
        d0 = self.stats_decisions
        p0 = self.stats_propagations
        try:
            return self._solve_impl(
                assumptions, conflict_limit, propagation_limit, deadline
            )
        finally:
            self.last_call_stats = {
                "conflicts": self.stats_conflicts - c0,
                "decisions": self.stats_decisions - d0,
                "propagations": self.stats_propagations - p0,
            }
            if self.metrics is not None:
                self._record_call_metrics()

    def _record_call_metrics(self) -> None:
        registry = self.metrics
        registry.inc("sat.calls")
        if self.last_unknown:
            registry.inc("sat.unknowns")
        if self.last_core is not None:
            registry.inc("sat.cores")
            registry.observe("sat.core_size_per_call", len(self.last_core))
        for key, value in self.last_call_stats.items():
            registry.inc(f"sat.{key}", value)
            registry.observe(f"sat.{key}_per_call", value)

    def _solve_impl(
        self,
        assumptions: Sequence[int],
        conflict_limit: Optional[int],
        propagation_limit: Optional[int],
        deadline: Optional[float],
    ) -> SATResult:
        self.last_unknown = False
        self.last_unknown_reason = None
        self.last_core = None
        self._pending_core: Optional[List[int]] = None
        if not self._ok:
            # Formula UNSAT before any assumption: the empty core.
            return self._result(False, core=[])
        self._cancel_until(0)
        conflicts_this_call = 0
        restart_count = 0
        self._deadline_at = deadline
        self._prop_stop = (
            self.stats_propagations + propagation_limit
            if propagation_limit is not None
            else None
        )
        if deadline is not None and time.monotonic() >= deadline:
            return self._unknown_result(REASON_TIMEOUT)

        # Install assumptions as pseudo-decisions, one level each.
        assumption_queue = list(assumptions)
        for lit in assumption_queue:
            self.ensure_vars(abs(lit))

        while True:
            budget = 64 * _luby(restart_count + 1)
            if conflict_limit is not None:
                # Cap the restart's budget at what is left of the caller's
                # limit, so the search hands control back *at* the limit
                # instead of overrunning to the next Luby restart boundary
                # (the floor of 64 made small limits overshoot by >10x).
                remaining = conflict_limit - conflicts_this_call
                if remaining <= 0:
                    return self._unknown_result(REASON_CONFLICT_LIMIT)
                budget = min(budget, remaining)
            restart_count += 1
            status = self._search(budget, assumption_queue)
            conflicts_this_call += self._last_search_conflicts
            if status == "budget-time":
                return self._unknown_result(REASON_TIMEOUT)
            if status == "budget-propagations":
                return self._unknown_result(REASON_PROPAGATION_LIMIT)
            if status == "sat":
                model = {
                    v + 1: self._assign[v] == 1
                    for v in range(self._num_vars)
                    if self._assign[v] != -1
                }
                self._cancel_until(0)
                return SATResult(
                    True,
                    model,
                    self.stats_conflicts,
                    self.stats_decisions,
                    self.stats_propagations,
                )
            if status == "unsat":
                # Refuted at the root: UNSAT under *any* assumptions.
                self._cancel_until(0)
                return self._result(False, core=[])
            if status == "assumption-conflict":
                core = self._pending_core
                self._cancel_until(0)
                return self._result(False, core=core if core is not None else [])
            # restart
            self._cancel_until(0)
            if conflict_limit is not None and conflicts_this_call >= conflict_limit:
                return self._unknown_result(REASON_CONFLICT_LIMIT)

    def _unknown_result(self, reason: str) -> SATResult:
        """Give up on this call: flag UNKNOWN with its reason code."""
        self.last_unknown = True
        self.last_unknown_reason = reason
        self._cancel_until(0)
        return self._result(False)

    def _result(
        self, sat: bool, core: Optional[List[int]] = None
    ) -> SATResult:
        self.last_core = core
        return SATResult(
            sat,
            None,
            self.stats_conflicts,
            self.stats_decisions,
            self.stats_propagations,
            core=core,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        """-1 unassigned, 0 false, 1 true."""
        val = self._assign[abs(lit) - 1]
        if val == -1:
            return -1
        return val if lit > 0 else 1 - val

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _watch(self, clause: _Clause) -> None:
        self._watches.setdefault(-clause.lits[0], []).append(clause)
        self._watches.setdefault(-clause.lits[1], []).append(clause)

    def _enqueue(self, lit: int, reason: Optional[_Clause]) -> bool:
        val = self._value(lit)
        if val == 0:
            return False
        if val == 1:
            return True
        var = abs(lit) - 1
        self._assign[var] = 1 if lit > 0 else 0
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        if self._decision_level() > self._num_assumed:
            # Save phases only below the assumption prefix: an
            # assumption pseudo-decision (and everything it propagates)
            # is the *query's* polarity, not the search's preference,
            # and saving it would bias the next query's opposite
            # direction toward the just-refuted phase.
            self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats_propagations += 1
            watchers = self._watches.get(lit)
            if not watchers:
                continue
            new_watchers: List[_Clause] = []
            conflict: Optional[_Clause] = None
            idx = 0
            while idx < len(watchers):
                clause = watchers[idx]
                idx += 1
                lits = clause.lits
                # Make sure the falsified literal is at position 1.
                if lits[0] == -lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) == 1:
                    new_watchers.append(clause)
                    continue
                # Look for a new watch.
                found = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches.setdefault(-lits[1], []).append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watchers.append(clause)
                if not self._enqueue(first, clause):
                    conflict = clause
                    # Keep remaining watchers.
                    new_watchers.extend(watchers[idx:])
                    break
            self._watches[lit] = new_watchers
            if conflict is not None:
                return conflict
        return None

    def _search(self, conflict_budget: int, assumptions: List[int]) -> str:
        self._last_search_conflicts = 0
        while True:
            if (
                self._prop_stop is not None
                and self.stats_propagations >= self._prop_stop
            ):
                return "budget-propagations"
            if self._deadline_at is not None:
                # Poll the wall clock every few iterations: cheap enough to
                # keep the unbudgeted path unchanged, frequent enough that a
                # deadline overrun stays far below the caller's 2x margin.
                self._poll_tick += 1
                if (self._poll_tick & 63) == 0 and (
                    time.monotonic() >= self._deadline_at
                ):
                    return "budget-time"
            conflict = self._propagate()
            if conflict is not None:
                self.stats_conflicts += 1
                self._last_search_conflicts += 1
                if self._decision_level() == 0:
                    return "unsat"
                if self._decision_level() <= self._num_assumed:
                    self._pending_core = self._analyze_final(conflict, None)
                    return "assumption-conflict"
                learned, backjump = self._analyze(conflict)
                self._cancel_until(max(backjump, self._num_assumed))
                self._record_learned(learned)
                self._decay_activities()
                if self._last_search_conflicts >= conflict_budget:
                    return "restart"
                continue
            # No conflict: extend assumptions, then decide.
            if self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                val = self._value(lit)
                if val == 0:
                    self._pending_core = self._analyze_final(None, lit)
                    return "assumption-conflict"
                if val == 1:
                    # Already implied: open an empty decision level.
                    self._trail_lim.append(len(self._trail))
                    self._num_assumed = max(
                        self._num_assumed, self._decision_level()
                    )
                    continue
                self._trail_lim.append(len(self._trail))
                self._num_assumed = max(self._num_assumed, self._decision_level())
                self._enqueue(lit, None)
                self._assumption_mark[abs(lit) - 1] = True
                continue
            lit = self._pick_branch()
            if lit == 0:
                return "sat"
            self.stats_decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)

    def _pick_branch(self) -> int:
        # Lazy heap discipline: assigned variables stay in the heap
        # until popped here (and are re-inserted by _cancel_until when
        # unassigned), so each decision costs O(log n) amortised.
        order = self._order
        while order.heap:
            var = order.pop()
            if self._assign[var] == -1:
                return (var + 1) if self._phase[var] else -(var + 1)
        return 0

    def _analyze_final(
        self, conflict: Optional[_Clause], failed: Optional[int]
    ) -> List[int]:
        """Final-conflict analysis (MiniSat's ``analyzeFinal``).

        Called at an assumption conflict, *before* backtracking, with
        either the conflicting clause or the assumption literal that was
        already falsified at install time.  Walks the trail from the top
        resolving each marked literal through its reason; literals whose
        reason is an assumption pseudo-decision are the assumptions the
        refutation rests on — returned verbatim as the core.  Reasonless
        trail literals that are *not* assumptions (formula-implied units
        enqueued at an assumption level by clause learning) need no
        assumption support and are skipped.
        """
        core: List[int] = []
        seen = [False] * self._num_vars
        if failed is not None:
            core.append(failed)
            seen[abs(failed) - 1] = True
        if conflict is not None:
            for lit in conflict.lits:
                var = abs(lit) - 1
                if self._level[var] > 0:
                    seen[var] = True
        root_len = self._trail_lim[0] if self._trail_lim else len(self._trail)
        for i in range(len(self._trail) - 1, root_len - 1, -1):
            lit = self._trail[i]
            var = abs(lit) - 1
            if not seen[var]:
                continue
            seen[var] = False
            reason = self._reason[var]
            if reason is None:
                if self._assumption_mark[var]:
                    core.append(lit)
            else:
                for q in reason.lits:
                    qvar = abs(q) - 1
                    if self._level[qvar] > 0:
                        seen[qvar] = True
        return core

    def _analyze(self, conflict: _Clause) -> Tuple[List[int], int]:
        """First-UIP learning; returns (learned clause, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * self._num_vars
        counter = 0
        resolved_lit = 0  # the implied literal of the current reason clause
        clause: Optional[_Clause] = conflict
        index = len(self._trail)
        current_level = self._decision_level()
        while True:
            assert clause is not None
            if clause.learned:
                self._bump_clause(clause)
            for q in clause.lits:
                if q == resolved_lit:
                    continue
                var = abs(q) - 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Find the next literal to resolve on (last assigned, seen).
            while True:
                index -= 1
                resolved_lit = self._trail[index]
                if seen[abs(resolved_lit) - 1]:
                    break
            var = abs(resolved_lit) - 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                learned[0] = -resolved_lit
                break
            clause = self._reason[var]
        # Minimisation: drop literals implied by the rest (simple self-subsumption).
        learned = self._minimize(learned, seen)
        # Compute backjump level.
        if len(learned) == 1:
            back = 0
        else:
            levels = sorted(
                (self._level[abs(l) - 1] for l in learned[1:]), reverse=True
            )
            back = levels[0]
        return learned, back

    def _minimize(self, learned: List[int], seen: List[bool]) -> List[int]:
        marked = set(abs(l) - 1 for l in learned)
        result = [learned[0]]
        for lit in learned[1:]:
            var = abs(lit) - 1
            reason = self._reason[var]
            if reason is None:
                result.append(lit)
                continue
            redundant = all(
                abs(q) - 1 in marked or self._level[abs(q) - 1] == 0
                for q in reason.lits
                if q != -lit
            )
            if not redundant:
                result.append(lit)
        return result

    def _record_learned(self, lits: List[int]) -> None:
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            return
        # Put a literal of the backjump level in position 1 for watching.
        max_idx = 1
        for i in range(2, len(lits)):
            if self._level[abs(lits[i]) - 1] > self._level[abs(lits[max_idx]) - 1]:
                max_idx = i
        lits[1], lits[max_idx] = lits[max_idx], lits[1]
        clause = _Clause(lits, learned=True)
        clause.activity = self._cla_inc
        clause.lbd = len({self._level[abs(l) - 1] for l in lits})
        self._learned.append(clause)
        self._watch(clause)
        self._enqueue(lits[0], clause)
        if len(self._learned) > 4000 + 16 * len(self._clauses) ** 0.5:
            self._reduce_learned()

    def _reduce_learned(self) -> None:
        """Drop the less active half of learned clauses not currently reasons."""
        reasons = {id(r) for r in self._reason if r is not None}
        self._learned.sort(key=lambda c: c.activity)
        keep_from = len(self._learned) // 2
        dropped = {
            id(c)
            for c in self._learned[:keep_from]
            if id(c) not in reasons and len(c.lits) > 2
        }
        if not dropped:
            return
        self._learned = [c for c in self._learned if id(c) not in dropped]
        for lit, watchers in self._watches.items():
            self._watches[lit] = [c for c in watchers if id(c) not in dropped]

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit) - 1
            self._assign[var] = -1
            self._reason[var] = None
            self._level[var] = -1
            self._assumption_mark[var] = False
            self._order.insert(var)
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))
        self._num_assumed = min(self._num_assumed, level)

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            # EVSIDS rescale: multiply everything down by the same
            # factor.  Relative order is preserved, so the heap needs no
            # repair — only the single bumped variable percolates.
            for i in range(self._num_vars):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100
        self._order.update(var)

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learned:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay
        self._decay_countdown -= 1
        if self._decay_countdown <= 0:
            self._decay_countdown = self._DECAY_RAMP_CONFLICTS
            if self._var_decay < self._DECAY_RAMP_TARGET:
                self._var_decay = min(
                    self._DECAY_RAMP_TARGET, self._var_decay + 0.01
                )
