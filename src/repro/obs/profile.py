"""Run profiling: turn a JSONL trace into a per-stage hotspot report.

The report answers the questions the paper's Tables 1–2 are really about
— *where does verification time go?* — from a trace alone:

* per-phase time breakdown (build / simulate / cache / partition / sweep
  / outputs), summed over every circuit-pair check in the trace;
* cascade-stage breakdown: how often (and for how long) obligations were
  decided by simulation, bounded BDD, or bounded SAT;
* the top-N slowest proof obligations, by output name;
* solver-effort histograms (conflicts / propagations / decisions per
  call) from the metrics snapshots embedded in the trace;
* fault-tolerance incidents (worker requeues, budget exhaustion).

Used by ``repro profile run.jsonl`` and by the golden-trace tests.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.trace import read_events

__all__ = ["profile_events", "render_profile", "phase_breakdown"]


def _spans(events: Iterable[Mapping[str, Any]], cat: str) -> List[Mapping[str, Any]]:
    return [
        e for e in events if e.get("type") == "span" and e.get("cat") == cat
    ]


def phase_breakdown(
    events: Sequence[Mapping[str, Any]]
) -> Dict[str, Tuple[int, float]]:
    """Per-phase ``{name: (count, total_seconds)}`` over the whole trace."""
    breakdown: Dict[str, Tuple[int, float]] = {}
    for span in _spans(events, "phase"):
        name = str(span.get("name", ""))
        count, total = breakdown.get(name, (0, 0.0))
        breakdown[name] = (count + 1, total + float(span.get("dur", 0.0)))
    return breakdown


def profile_events(
    events: Sequence[Mapping[str, Any]], top: int = 10
) -> Dict[str, Any]:
    """Structured profile of a trace (the data behind :func:`render_profile`)."""
    pair_spans = _spans(events, "pair")
    obligation_spans = _spans(events, "obligation")
    stage_spans = _spans(events, "stage")
    worker_spans = _spans(events, "worker")

    stages: Dict[str, Tuple[int, float]] = {}
    for span in stage_spans:
        name = str(span.get("name", ""))
        count, total = stages.get(name, (0, 0.0))
        stages[name] = (count + 1, total + float(span.get("dur", 0.0)))

    slowest = sorted(
        obligation_spans, key=lambda s: float(s.get("dur", 0.0)), reverse=True
    )[: max(0, top)]

    # The last metrics snapshot wins: snapshots are cumulative.
    metrics_args: Dict[str, Any] = {}
    for event in events:
        if event.get("type") == "metrics":
            metrics_args.update(event.get("args") or {})

    incidents = [
        e
        for e in events
        if e.get("type") == "instant"
        and str(e.get("name", "")).startswith(("sweep.unit.", "budget."))
    ]

    return {
        "n_pairs": len(pair_spans),
        "pair_seconds": sum(float(s.get("dur", 0.0)) for s in pair_spans),
        "phases": phase_breakdown(events),
        "stages": stages,
        "slowest_obligations": [
            {
                "output": (s.get("args") or {}).get("output", "?"),
                "seconds": float(s.get("dur", 0.0)),
                "decided_by": (s.get("args") or {}).get("decided_by"),
                "verdict": (s.get("args") or {}).get("verdict"),
            }
            for s in slowest
        ],
        "n_worker_units": len(worker_spans),
        "worker_seconds": sum(float(s.get("dur", 0.0)) for s in worker_spans),
        "metrics": metrics_args,
        "incidents": [
            {
                "name": e.get("name"),
                "ts": e.get("ts"),
                "args": e.get("args") or {},
            }
            for e in incidents
        ],
    }


def _histogram_lines(metrics: Mapping[str, Any], stem: str) -> List[str]:
    """Render the summary keys of one flattened histogram, if present."""
    count = metrics.get(f"{stem}.count")
    if not count:
        return []
    mean = metrics.get(f"{stem}.mean", 0.0)
    peak = metrics.get(f"{stem}.max", 0.0)
    total = metrics.get(f"{stem}.sum", 0.0)
    return [
        f"  {stem.split('.')[-1]:<22} calls {int(count):>7}  "
        f"mean {mean:>10.1f}  max {peak:>10.0f}  total {total:>12.0f}"
    ]


def render_profile(
    source: Union[str, os.PathLike, Sequence[Mapping[str, Any]]],
    top: int = 10,
) -> str:
    """Human-readable hotspot report for a JSONL trace (path or events)."""
    events = read_events(source)
    prof = profile_events(events, top=top)
    lines: List[str] = []
    lines.append(
        f"trace: {len(events)} events, {prof['n_pairs']} circuit-pair "
        f"check(s), {prof['pair_seconds']:.3f}s total check time"
    )

    phases = prof["phases"]
    if phases:
        lines.append("")
        lines.append("per-phase time breakdown:")
        total = sum(seconds for _, seconds in phases.values())
        for name, (count, seconds) in sorted(
            phases.items(), key=lambda kv: kv[1][1], reverse=True
        ):
            pct = 100.0 * seconds / total if total else 0.0
            lines.append(
                f"  {name:<24} {seconds:>9.3f}s  {pct:>5.1f}%  (x{count})"
            )
        lines.append(f"  {'total':<24} {total:>9.3f}s")

    stages = prof["stages"]
    if stages:
        lines.append("")
        lines.append("cascade stages (budget-governed obligations):")
        for name, (count, seconds) in sorted(
            stages.items(), key=lambda kv: kv[1][1], reverse=True
        ):
            lines.append(f"  {name:<24} {seconds:>9.3f}s  (x{count})")

    slowest = prof["slowest_obligations"]
    if slowest:
        lines.append("")
        lines.append(f"top {len(slowest)} slowest obligations:")
        for entry in slowest:
            decided = entry["decided_by"] or "-"
            verdict = entry["verdict"] or "-"
            lines.append(
                f"  {entry['seconds']:>9.3f}s  {str(entry['output']):<28} "
                f"decided by {decided:<10} verdict {verdict}"
            )

    metrics = prof["metrics"]
    effort = []
    for stem in (
        "sat.conflicts_per_call",
        "sat.propagations_per_call",
        "sat.decisions_per_call",
    ):
        effort.extend(_histogram_lines(metrics, stem))
    if effort:
        lines.append("")
        lines.append("solver effort per call:")
        lines.extend(effort)

    if prof["n_worker_units"]:
        lines.append("")
        lines.append(
            f"parallel sweep: {prof['n_worker_units']} work unit(s), "
            f"{prof['worker_seconds']:.3f}s worker-busy time"
        )

    if prof["incidents"]:
        lines.append("")
        lines.append("incidents:")
        for incident in prof["incidents"]:
            args = " ".join(
                f"{k}={v}" for k, v in sorted(incident["args"].items())
            )
            lines.append(
                f"  t={float(incident['ts'] or 0.0):.3f}s "
                f"{incident['name']} {args}".rstrip()
            )
    return "\n".join(lines)
