"""A metrics registry: counters, gauges, fixed-bucket histograms, series.

One :class:`MetricsRegistry` is the canonical sink for everything the
verification stack counts — SAT conflicts/propagations/decisions per
call, BDD node growth and blow-ups, cache hits/misses, cascade outcomes,
per-phase wall time — replacing the ad-hoc stats-dict plumbing while
still flattening back to the numeric ``CheckResult.stats`` form the rest
of the repo (and its tests) rely on.

Metric kinds:

* **counter** — monotonically increasing float (``inc``);
* **gauge** — last-write-wins value (``set_gauge`` / ``max_gauge``);
* **histogram** — fixed bucket boundaries, cumulative-style counts plus
  count/sum/min/max (``observe``); bucket layouts never change at
  runtime, so worker histograms merge bucket-by-bucket;
* **series** — a small append-only list of floats (``append``) for the
  handful of places that need raw samples (per-worker busy seconds).

Registries serialise to plain JSON (:meth:`MetricsRegistry.to_dict` /
:meth:`from_dict`) so sweep workers can collect their own metrics and
ship them back with the unit result for :meth:`merge`.

Naming convention (see ``docs/OBSERVABILITY.md`` for the catalog):
dot-separated lowercase paths, ``<subsystem>.<area>.<what>``, e.g.
``cec.cache.hits``, ``sat.conflicts_per_call``, ``bdd.peak_nodes``.
"""

from __future__ import annotations

import bisect
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = ["Histogram", "MetricsRegistry", "DEFAULT_BUCKETS", "TIME_BUCKETS"]

#: Effort-style histogram boundaries (conflicts, propagations, decisions,
#: node counts): powers of four from 1 to ~10^6, then overflow.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0, 1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576
)

#: Wall-time histogram boundaries in seconds.
TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0, 300.0
)


class Histogram:
    """Fixed-bucket histogram; ``counts[i]`` counts values ≤ ``bounds[i]``
    (non-cumulative per-bucket counts, with one overflow bucket at the end).
    """

    __slots__ = ("bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: Union["Histogram", Mapping[str, Any]]) -> None:
        """Fold another histogram (same bucket layout) into this one."""
        if isinstance(other, Histogram):
            data = other.to_dict()
        else:
            data = dict(other)
        if tuple(data.get("bounds", ())) != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(data.get("counts", ())):
            self.counts[i] += int(c)
        self.count += int(data.get("count", 0))
        self.total += float(data.get("sum", 0.0))
        for key, fold in (("min", min), ("max", max)):
            value = data.get(key)
            if value is None:
                continue
            mine = self.vmin if key == "min" else self.vmax
            folded = float(value) if mine is None else fold(mine, float(value))
            if key == "min":
                self.vmin = folded
            else:
                self.vmax = folded

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (the shape :meth:`merge` accepts)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Histogram":
        """Rebuild a histogram from its :meth:`to_dict` form."""
        hist = cls(tuple(data.get("bounds", DEFAULT_BUCKETS)))
        hist.merge(data)
        return hist


class MetricsRegistry:
    """Named counters/gauges/histograms/series with JSON round-tripping."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def inc(self, name: str, by: float = 1) -> None:
        """Increment a counter."""
        self._counters[name] = self._counters.get(name, 0) + by

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge (last write wins)."""
        self._gauges[name] = float(value)

    def max_gauge(self, name: str, value: float) -> None:
        """Raise a gauge to ``value`` if it is higher (peak tracking)."""
        value = float(value)
        if value > self._gauges.get(name, float("-inf")):
            self._gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Record a histogram sample (buckets fixed on first observation)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(bounds)
        hist.observe(value)

    def append(self, name: str, value: float) -> None:
        """Append to a raw sample series."""
        self._series.setdefault(name, []).append(float(value))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current counter value (0 when never incremented)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Current gauge value."""
        return self._gauges.get(name, default)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram, or None."""
        return self._histograms.get(name)

    def series(self, name: str) -> List[float]:
        """A copy of the named series (empty when absent)."""
        return list(self._series.get(name, ()))

    def names(self) -> List[str]:
        """All metric names, sorted."""
        return sorted(
            set(self._counters)
            | set(self._gauges)
            | set(self._histograms)
            | set(self._series)
        )

    def __bool__(self) -> bool:
        return bool(
            self._counters or self._gauges or self._histograms or self._series
        )

    # ------------------------------------------------------------------
    # aggregation / serialisation
    # ------------------------------------------------------------------
    def merge(
        self, other: Union["MetricsRegistry", Mapping[str, Any]]
    ) -> None:
        """Fold another registry (or its :meth:`to_dict` form) into this one.

        Counters add, gauges take the max (the merge use cases — worker
        peaks, per-row peaks — all want peaks), histograms merge
        bucket-wise, series concatenate.
        """
        data = other.to_dict() if isinstance(other, MetricsRegistry) else other
        for name, value in (data.get("counters") or {}).items():
            self.inc(name, value)
        for name, value in (data.get("gauges") or {}).items():
            self.max_gauge(name, value)
        for name, hist in (data.get("histograms") or {}).items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = Histogram.from_dict(hist)
            else:
                mine.merge(hist)
        for name, values in (data.get("series") or {}).items():
            for value in values:
                self.append(name, value)

    def to_dict(self) -> Dict[str, Any]:
        """Structured JSON-able form (the shape :meth:`merge` accepts)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: hist.to_dict()
                for name, hist in self._histograms.items()
            },
            "series": {name: list(v) for name, v in self._series.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from its :meth:`to_dict` form."""
        registry = cls()
        registry.merge(data)
        return registry

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        """Rebuild a registry from its :meth:`to_json` serialisation."""
        return cls.from_dict(json.loads(text))

    def as_flat_dict(self, prefix: str = "") -> Dict[str, float]:
        """Flatten to numeric key/value pairs (histograms → summary keys).

        A histogram ``h`` contributes ``h.count``, ``h.sum``, ``h.mean``
        and ``h.max``; a series contributes ``.count`` and ``.sum``.  This
        is the form metrics snapshots take inside trace files.
        """
        flat: Dict[str, float] = {}
        for name, value in self._counters.items():
            flat[prefix + name] = value
        for name, value in self._gauges.items():
            flat[prefix + name] = value
        for name, hist in self._histograms.items():
            flat[prefix + name + ".count"] = hist.count
            flat[prefix + name + ".sum"] = hist.total
            flat[prefix + name + ".mean"] = hist.mean
            if hist.vmax is not None:
                flat[prefix + name + ".max"] = hist.vmax
        for name, values in self._series.items():
            flat[prefix + name + ".count"] = len(values)
            flat[prefix + name + ".sum"] = sum(values)
        return flat
