"""Observability: structured tracing, metrics, profiling, console output.

The cross-cutting layer the rest of the stack reports through:

* :mod:`repro.obs.trace` — span-based JSONL tracer (flow → circuit-pair →
  obligation → cascade-stage hierarchy) with a Chrome ``trace_event``
  exporter; the no-op :data:`~repro.obs.trace.NULL_TRACER` is the default
  everywhere, so the uninstrumented path is unchanged;
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  / series behind one :class:`~repro.obs.metrics.MetricsRegistry`, the
  canonical sink that still flattens back to ``CheckResult.stats``;
* :mod:`repro.obs.schema` — the trace-event JSON schema and a
  dependency-free validator (used by tests and the CI trace job);
* :mod:`repro.obs.profile` — per-stage hotspot reports from a trace
  (``repro profile run.jsonl``);
* :mod:`repro.obs.console` — the ``--quiet`` / ``--verbose`` aware line
  writer the flows and the CLI print through.

See ``docs/OBSERVABILITY.md`` for the span hierarchy and metric catalog.
"""

from repro.obs.console import Console
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry, TIME_BUCKETS
from repro.obs.profile import phase_breakdown, profile_events, render_profile
from repro.obs.schema import TRACE_EVENT_SCHEMA, validate_event, validate_events
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    coerce_tracer,
    export_chrome_trace,
    read_events,
)

__all__ = [
    "Console",
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TIME_BUCKETS",
    "TRACE_EVENT_SCHEMA",
    "Tracer",
    "coerce_tracer",
    "export_chrome_trace",
    "phase_breakdown",
    "profile_events",
    "read_events",
    "render_profile",
    "validate_event",
    "validate_events",
]
