"""Observability: structured tracing, metrics, profiling, console output.

The cross-cutting layer the rest of the stack reports through:

* :mod:`repro.obs.trace` — span-based JSONL tracer (flow → circuit-pair →
  obligation → cascade-stage hierarchy) with a Chrome ``trace_event``
  exporter; the no-op :data:`~repro.obs.trace.NULL_TRACER` is the default
  everywhere, so the uninstrumented path is unchanged;
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  / series behind one :class:`~repro.obs.metrics.MetricsRegistry`, the
  canonical sink that still flattens back to ``CheckResult.stats``;
* :mod:`repro.obs.schema` — the trace-event JSON schema and a
  dependency-free validator (used by tests and the CI trace job);
* :mod:`repro.obs.profile` — per-stage hotspot reports from a trace
  (``repro profile run.jsonl``);
* :mod:`repro.obs.telemetry` — fleet telemetry: periodic schema-validated
  service snapshots (``--telemetry``), exactly-once worker metric-delta
  folding, Prometheus text exposition and the ``repro status`` renderer;
* :mod:`repro.obs.oblog` — the per-obligation feature log (cone size,
  class width, cascade stage, engine, verdict, seconds) extracted from
  traces — training data for learned engine dispatch;
* :mod:`repro.obs.console` — the ``--quiet`` / ``--verbose`` aware line
  writer the flows and the CLI print through.

See ``docs/OBSERVABILITY.md`` for the span hierarchy and metric catalog.
"""

from repro.obs.console import Console
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry, TIME_BUCKETS
from repro.obs.oblog import (
    ObligationRecord,
    extract_obligation_records,
    read_obligation_log,
    write_obligation_log,
)
from repro.obs.profile import phase_breakdown, profile_events, render_profile
from repro.obs.schema import TRACE_EVENT_SCHEMA, validate_event, validate_events
from repro.obs.telemetry import (
    TELEMETRY_SNAPSHOT_SCHEMA,
    MetricsDeltaFold,
    TelemetrySampler,
    read_snapshots,
    render_prometheus,
    render_snapshot,
    validate_snapshot,
    validate_snapshots,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    coerce_tracer,
    export_chrome_trace,
    read_events,
)

__all__ = [
    "Console",
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsDeltaFold",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObligationRecord",
    "Span",
    "TELEMETRY_SNAPSHOT_SCHEMA",
    "TIME_BUCKETS",
    "TRACE_EVENT_SCHEMA",
    "TelemetrySampler",
    "Tracer",
    "coerce_tracer",
    "export_chrome_trace",
    "extract_obligation_records",
    "phase_breakdown",
    "profile_events",
    "read_events",
    "read_obligation_log",
    "read_snapshots",
    "render_profile",
    "render_prometheus",
    "render_snapshot",
    "validate_event",
    "validate_events",
    "validate_snapshot",
    "validate_snapshots",
    "write_obligation_log",
]
