"""Span-based structured tracing for the verification stack.

A :class:`Tracer` emits JSONL events with monotonic timestamps and a
hierarchical span context — flow → circuit-pair → obligation →
cascade-stage — so a run can be replayed as a timeline instead of a
flattened stats dict.  Every event is one JSON object per line; the
schema is defined (and validated) in :mod:`repro.obs.schema`.

Event kinds:

``meta``
    One per trace, emitted at construction: schema version plus free-form
    attributes (command line, circuit names, ...).
``span``
    A closed interval of work.  ``ts`` is the start (seconds since the
    tracer's epoch), ``dur`` its length, ``id``/``parent`` the hierarchy.
    Spans are emitted on *close*, so a crash loses at most the open spans.
``instant``
    A point event (worker requeued, budget expired, reorder picked, ...).
``metrics``
    A flattened metrics snapshot (see :mod:`repro.obs.metrics`), usually
    one at the end of an enclosing span.

The default tracer everywhere is :data:`NULL_TRACER`, whose spans are a
shared no-op object — the uninstrumented path does no formatting, no
clock reads beyond what the engine already did, and allocates nothing.

Worker processes build their own buffering tracer (``Tracer(sink=[])``)
against the parent's epoch (``CLOCK_MONOTONIC`` is system-wide on the
platforms the sweep forks on) and ship their event lists back with the
unit result; the parent re-parents them with :meth:`Tracer.adopt`.

:func:`export_chrome_trace` converts a JSONL trace into the Chrome
``trace_event`` format, so runs open directly in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_.
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence, Union

__all__ = [
    "Span",
    "NullSpan",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "coerce_tracer",
    "export_chrome_trace",
    "read_events",
]

#: Bumped on any incompatible change to the event shapes; readers ignore
#: traces written under a different version rather than misread them.
TRACE_SCHEMA_VERSION = 1


class Span:
    """A live span handle; close it (or use ``with``) to emit the event."""

    __slots__ = ("_tracer", "name", "cat", "id", "parent", "ts", "args", "_open")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        span_id: int,
        parent: Optional[int],
        ts: float,
        args: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.id = span_id
        self.parent = parent
        self.ts = ts
        self.args = args
        self._open = True

    def annotate(self, **args: Any) -> "Span":
        """Attach (or overwrite) attributes on the span before it closes."""
        self.args.update(args)
        return self

    def close(self) -> None:
        """Emit the span event (idempotent)."""
        if not self._open:
            return
        self._open = False
        self._tracer._close_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self.close()


class NullSpan:
    """The do-nothing span; a single shared instance backs NULL_TRACER."""

    __slots__ = ()

    id = None

    def annotate(self, **args: Any) -> "NullSpan":
        """Discard the annotation."""
        return self

    def close(self) -> None:
        """Do nothing; null spans have no lifetime."""

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = NullSpan()


class NullTracer:
    """API-compatible no-op tracer: the default for every instrumented API."""

    __slots__ = ()

    enabled = False
    epoch = 0.0

    def span(self, name: str, cat: str = "phase", **args: Any) -> NullSpan:
        """Return the shared do-nothing span."""
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "event", **args: Any) -> None:
        """Discard the instant event."""

    def metrics(self, values: Dict[str, Any], name: str = "metrics") -> None:
        """Discard the metrics snapshot."""

    def adopt(
        self,
        events: Sequence[Dict[str, Any]],
        parent: Union[None, int, Span, NullSpan] = None,
        **extra_args: Any,
    ) -> None:
        """Discard the worker events."""

    def close(self) -> None:
        """Do nothing; there is no buffer to flush."""


NULL_TRACER = NullTracer()


class Tracer:
    """JSONL span tracer with a hierarchical span stack.

    ``sink`` may be a list (events buffered as dicts — the worker mode), a
    writable text stream, or None with ``path`` naming a file to create.
    ``epoch`` anchors timestamps; workers pass the parent's epoch so their
    events land on the same timeline.
    """

    enabled = True

    def __init__(
        self,
        sink: Union[None, List[Dict[str, Any]], IO[str]] = None,
        path: Union[None, str, os.PathLike] = None,
        epoch: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if sink is not None and path is not None:
            raise ValueError("pass either sink or path, not both")
        self._owns_stream = False
        self._stream: Optional[IO[str]] = None
        self._buffer: Optional[List[Dict[str, Any]]] = None
        if path is not None:
            self._stream = open(os.fspath(path), "w", encoding="utf-8")
            self._owns_stream = True
        elif isinstance(sink, list):
            self._buffer = sink
        elif sink is not None:
            self._stream = sink
        else:
            self._buffer = []
        self.epoch = epoch if epoch is not None else time.monotonic()
        # Provenance: every event carries its origin process, so a trace
        # assembled from remote workers (TCP service) stays attributable
        # and multi-host Chrome exports land on distinct process tracks.
        self.host = socket.gethostname()
        self.pid = os.getpid()
        self._next_id = 1
        self._stack: List[int] = []
        self.emit(
            {
                "type": "meta",
                "name": "trace-start",
                "ts": self.now(),
                "schema": TRACE_SCHEMA_VERSION,
                "args": dict(meta or {}),
            }
        )

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the tracer's epoch (monotonic)."""
        return time.monotonic() - self.epoch

    def emit(self, record: Dict[str, Any]) -> None:
        """Append one event record to the sink.

        ``host``/``pid`` are stamped with setdefault: locally-created
        events get this tracer's identity, while adopted worker events
        keep the identity their origin tracer stamped.
        """
        record.setdefault("host", self.host)
        record.setdefault("pid", self.pid)
        if self._buffer is not None:
            self._buffer.append(record)
        elif self._stream is not None:
            self._stream.write(json.dumps(record, default=str) + "\n")

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The buffered events (empty when writing to a stream)."""
        return list(self._buffer or ())

    def close(self) -> None:
        """Close any open spans (innermost first) and the backing file."""
        while self._stack:
            # Abandoned spans still record their duration; mark them so.
            span_id = self._stack[-1]
            self.emit(
                {
                    "type": "instant",
                    "name": "trace.span-abandoned",
                    "cat": "event",
                    "ts": self.now(),
                    "parent": span_id,
                    "args": {},
                }
            )
            self._stack.pop()
        if self._stream is not None:
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()

    # ------------------------------------------------------------------
    # spans and events
    # ------------------------------------------------------------------
    def _current_parent(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def span(self, name: str, cat: str = "phase", **args: Any) -> Span:
        """Open a child span of the innermost open span."""
        span = Span(
            self,
            name,
            cat,
            self._next_id,
            self._current_parent(),
            self.now(),
            dict(args),
        )
        self._next_id += 1
        self._stack.append(span.id)
        return span

    def _close_span(self, span: Span) -> None:
        # Closing out of order (an inner span leaked) closes down to it.
        if span.id in self._stack:
            while self._stack and self._stack[-1] != span.id:
                self._stack.pop()
            self._stack.pop()
        self.emit(
            {
                "type": "span",
                "name": span.name,
                "cat": span.cat,
                "ts": span.ts,
                "dur": max(0.0, self.now() - span.ts),
                "id": span.id,
                "parent": span.parent,
                "args": span.args,
            }
        )

    def instant(self, name: str, cat: str = "event", **args: Any) -> None:
        """Emit a point event under the current span."""
        self.emit(
            {
                "type": "instant",
                "name": name,
                "cat": cat,
                "ts": self.now(),
                "parent": self._current_parent(),
                "args": dict(args),
            }
        )

    def metrics(self, values: Dict[str, Any], name: str = "metrics") -> None:
        """Emit a flattened metrics snapshot under the current span."""
        self.emit(
            {
                "type": "metrics",
                "name": name,
                "ts": self.now(),
                "parent": self._current_parent(),
                "args": dict(values),
            }
        )

    def adopt(
        self,
        events: Sequence[Dict[str, Any]],
        parent: Union[None, int, Span, NullSpan] = None,
        **extra_args: Any,
    ) -> None:
        """Merge a worker tracer's buffered events into this trace.

        Span ids are rebased into this tracer's id space and roots are
        re-parented under ``parent`` (a span or id); ``extra_args`` (e.g.
        the worker/unit index) are merged into every adopted event's args.
        """
        parent_id = parent.id if isinstance(parent, (Span, NullSpan)) else parent
        # Two passes: spans are emitted on close (children before their
        # parents), so parent references point at ids that appear *later*
        # in the buffer.  Assign all new ids first, then remap links.
        id_map: Dict[int, int] = {}
        for event in events:
            if event.get("type") == "meta":
                continue  # one meta per trace; worker metas are dropped
            old_id = event.get("id")
            if isinstance(old_id, int) and old_id not in id_map:
                id_map[old_id] = self._next_id
                self._next_id += 1
        for event in events:
            if event.get("type") == "meta":
                continue
            record = dict(event)
            old_id = record.get("id")
            if isinstance(old_id, int):
                record["id"] = id_map[old_id]
            old_parent = record.get("parent")
            if isinstance(old_parent, int) and old_parent in id_map:
                record["parent"] = id_map[old_parent]
            else:
                record["parent"] = parent_id
            if extra_args:
                args = dict(record.get("args") or {})
                args.update(extra_args)
                record["args"] = args
            self.emit(record)


def coerce_tracer(
    tracer: Union[None, Tracer, NullTracer]
) -> Union[Tracer, NullTracer]:
    """None → the shared null tracer; tracers pass through."""
    return NULL_TRACER if tracer is None else tracer


# ----------------------------------------------------------------------
# readers / exporters
# ----------------------------------------------------------------------
def read_events(
    source: Union[str, os.PathLike, Iterable[Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """Load events from a JSONL path (or pass a decoded list through).

    Unparseable lines are skipped — a truncated trace (crashed run) should
    still profile — but blank lines are ignored silently.
    """
    if not isinstance(source, (str, os.PathLike)):
        return list(source)
    events: List[Dict[str, Any]] = []
    with open(os.fspath(source), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                events.append(record)
    return events


def export_chrome_trace(
    source: Union[str, os.PathLike, Iterable[Dict[str, Any]]],
    out_path: Union[str, os.PathLike],
) -> int:
    """Convert a JSONL trace to Chrome ``trace_event`` JSON.

    Spans become complete (``ph="X"``) events in microseconds; instants
    become thread-scoped ``ph="i"`` marks.  Events carrying a ``worker``
    arg land on their own thread track so the parallel sweep renders as
    lanes; each distinct ``(host, pid)`` origin gets its own process
    track so multi-host service traces don't collide.  Returns the
    number of exported events.
    """
    events = read_events(source)
    trace_events: List[Dict[str, Any]] = []
    # (host, pid) -> Chrome pid, in first-seen order: the coordinator
    # (which wrote the meta event first) is process 0, exactly the pid
    # traces without provenance stamps get.
    origins: Dict[tuple, int] = {}
    for event in events:
        kind = event.get("type")
        args = event.get("args") or {}
        worker = args.get("worker")
        # Main-process events on tid 0; each sweep worker on its own lane.
        tid = worker + 1 if isinstance(worker, int) else 0
        origin = (event.get("host"), event.get("pid"))
        pid = (
            0
            if origin == (None, None)
            else origins.setdefault(origin, len(origins))
        )
        ts_us = float(event.get("ts", 0.0)) * 1e6
        if kind == "span":
            trace_events.append(
                {
                    "ph": "X",
                    "name": str(event.get("name", "")),
                    "cat": str(event.get("cat", "")),
                    "ts": ts_us,
                    "dur": float(event.get("dur", 0.0)) * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        elif kind == "instant":
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": str(event.get("name", "")),
                    "cat": str(event.get("cat", "")),
                    "ts": ts_us,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        elif kind == "metrics":
            numeric = {
                k: v for k, v in args.items() if isinstance(v, (int, float))
            }
            if numeric:
                trace_events.append(
                    {
                        "ph": "C",
                        "name": str(event.get("name", "metrics")),
                        "ts": ts_us,
                        "pid": pid,
                        "tid": tid,
                        "args": numeric,
                    }
                )
    with open(os.fspath(out_path), "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": trace_events}, handle)
    return len(trace_events)
