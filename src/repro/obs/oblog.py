"""The per-obligation feature log: training data for engine dispatch.

Every proof obligation a CEC run decides — an output pair walking the
cascade, or a sweep candidate proved/refuted inside a work unit — leaves
structured evidence in the trace: ``cec.obligation`` spans and
``cec.obligation.features`` instants.  This module distils those events
into flat :class:`ObligationRecord` rows (cone size, signature-class
width, cascade stage reached, deciding engine, verdict, seconds, origin
host/pid) and reads/writes them as JSONL.

The rows are the raw material for a learned engine-dispatch policy
(ROADMAP item 4, after the Datapath-CEC line of work): given an
obligation's cheap static features, predict which engine decides it
fastest.  Until such a policy exists, ``repro verify --oblog`` and
``repro batch --oblog`` make the dataset collectable from any run.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = [
    "ObligationRecord",
    "extract_obligation_records",
    "write_obligation_log",
    "read_obligation_log",
]

#: How far down the cascade each deciding engine sits.  ``stage`` is the
#: ordinal of the stage that decided the obligation — the label a
#: dispatch policy would train to predict.
CASCADE_STAGES = {
    "structural": 0,
    "cache": 0,
    "sim": 1,
    "bdd": 2,
    "sat": 3,
}


@dataclass
class ObligationRecord:
    """One decided proof obligation, flattened for analysis."""

    #: "cascade" (an output-pair obligation) or "sweep" (a candidate).
    kind: str
    #: Output name (cascade) or "rep~node"-free sweep identity via group.
    output: Optional[str]
    #: AND-node count of the obligation's (combined) logic cone.
    cone: Optional[int]
    #: Signature-class width: sim lanes (cascade) or class size (sweep).
    width: Optional[int]
    #: Cascade stage ordinal that decided it (see CASCADE_STAGES).
    stage: Optional[int]
    #: The deciding engine: cache / sim / bdd / sat.
    engine: Optional[str]
    #: eq / neq / unknown / deferred.
    verdict: Optional[str]
    #: Wall seconds attributed to this obligation.
    seconds: Optional[float]
    #: Origin process (host/pid provenance stamps from the trace).
    host: Optional[str] = None
    pid: Optional[int] = None
    #: Sweep extras: refinement round, work unit, signature group.
    round: Optional[int] = None
    unit: Optional[int] = None
    group: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSONL row form; None fields are dropped for compactness."""
        return {k: v for k, v in asdict(self).items() if v is not None}


def _num(value: Any) -> Optional[float]:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    return None


def _int(value: Any) -> Optional[int]:
    number = _num(value)
    return int(number) if number is not None else None


def extract_obligation_records(
    events: Iterable[Dict[str, Any]],
) -> List[ObligationRecord]:
    """Distil obligation records from a decoded trace event stream.

    ``cec.obligation`` spans become ``kind="cascade"`` rows (seconds =
    the span's own duration); ``cec.obligation.features`` instants
    become ``kind="sweep"`` rows.  Events missing features (e.g. spans
    from traces predating the feature stamps) still yield rows — absent
    fields are simply omitted, so old traces remain minable.
    """
    records: List[ObligationRecord] = []
    for event in events:
        name = event.get("name")
        args = event.get("args") or {}
        if not isinstance(args, dict):
            args = {}
        if event.get("type") == "span" and name == "cec.obligation":
            engine = args.get("decided_by")
            records.append(
                ObligationRecord(
                    kind="cascade",
                    output=args.get("output"),
                    cone=_int(args.get("cone")),
                    width=_int(args.get("width")),
                    stage=CASCADE_STAGES.get(engine),
                    engine=engine,
                    verdict=args.get("verdict"),
                    seconds=_num(event.get("dur")),
                    host=event.get("host"),
                    pid=_int(event.get("pid")),
                )
            )
        elif (
            event.get("type") == "instant"
            and name == "cec.obligation.features"
        ):
            engine = args.get("engine")
            records.append(
                ObligationRecord(
                    kind=str(args.get("kind", "sweep")),
                    output=args.get("output"),
                    cone=_int(args.get("cone")),
                    width=_int(args.get("width")),
                    stage=CASCADE_STAGES.get(engine),
                    engine=engine,
                    verdict=args.get("verdict"),
                    seconds=_num(args.get("seconds")),
                    host=event.get("host"),
                    pid=_int(event.get("pid")),
                    round=_int(args.get("round")),
                    unit=_int(args.get("unit")),
                    group=_int(args.get("group")),
                )
            )
    return records


def write_obligation_log(
    records: Iterable[ObligationRecord],
    path: Union[str, os.PathLike],
) -> int:
    """Write records as JSONL; returns the number written."""
    count = 0
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict()) + "\n")
            count += 1
    return count


def read_obligation_log(
    path: Union[str, os.PathLike],
) -> List[ObligationRecord]:
    """Load a JSONL obligation log, skipping unparseable lines."""
    fields = set(ObligationRecord.__dataclass_fields__)
    records: List[ObligationRecord] = []
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if not isinstance(row, dict):
                continue
            records.append(
                ObligationRecord(
                    **{
                        "kind": str(row.get("kind", "cascade")),
                        "output": row.get("output"),
                        "cone": _int(row.get("cone")),
                        "width": _int(row.get("width")),
                        "stage": _int(row.get("stage")),
                        "engine": row.get("engine"),
                        "verdict": row.get("verdict"),
                        "seconds": _num(row.get("seconds")),
                        **{
                            k: row.get(k)
                            for k in ("host", "pid", "round", "unit", "group")
                            if k in fields
                        },
                    }
                )
            )
    return records
