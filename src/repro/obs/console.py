"""A thin console writer for the flow harnesses and the CLI.

Replaces bare ``print()`` reporting so that (a) ``--quiet`` / ``--verbose``
mean the same thing in every command and (b) flow output is testable by
handing the console a ``StringIO`` instead of capturing real stdout.

Verbosity levels:

* :meth:`Console.result` — the command's actual deliverable (a verdict, a
  rendered table); printed even under ``--quiet``;
* :meth:`Console.info` — per-step progress lines; suppressed by ``--quiet``;
* :meth:`Console.detail` — extra diagnostics; printed only with ``--verbose``;
* :meth:`Console.error` — failures; always printed, to the error stream.
"""

from __future__ import annotations

import os
import sys
from typing import IO, Optional

__all__ = ["Console"]


class Console:
    """Verbosity-aware line writer over a pair of text streams."""

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        err_stream: Optional[IO[str]] = None,
        quiet: bool = False,
        verbose: bool = False,
        silent: bool = False,
    ) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.err_stream = err_stream if err_stream is not None else sys.stderr
        self.quiet = quiet
        self.verbose = verbose
        self.silent = silent

    @classmethod
    def null(cls) -> "Console":
        """A console that writes nothing (the ``stream=None`` harness mode)."""
        return cls(silent=True)

    @classmethod
    def for_stream(cls, stream: Optional[IO[str]]) -> "Console":
        """Back-compat shim for the harnesses' ``stream`` argument:
        a writing console for a real stream, a silent one for None."""
        return cls(stream=stream) if stream is not None else cls.null()

    def _write(self, stream: IO[str], text: str) -> None:
        if self.silent:
            return
        try:
            print(text, file=stream, flush=True)
        except BrokenPipeError:
            # The reader went away (e.g. ``repro profile | head``); drop
            # the rest of the output instead of dying with a traceback.
            self.silent = True
            try:
                # Point the dead stream at devnull so the interpreter's
                # exit-time flush doesn't hit the broken pipe again.
                os.dup2(os.open(os.devnull, os.O_WRONLY), stream.fileno())
            except (OSError, ValueError, AttributeError):
                pass

    def result(self, text: str = "") -> None:
        """The command's deliverable; survives ``--quiet``."""
        self._write(self.stream, text)

    def info(self, text: str = "") -> None:
        """Progress reporting; suppressed by ``--quiet``."""
        if not self.quiet:
            self._write(self.stream, text)

    def detail(self, text: str = "") -> None:
        """Diagnostics; printed only with ``--verbose`` (quiet wins)."""
        if self.verbose and not self.quiet:
            self._write(self.stream, text)

    def error(self, text: str = "") -> None:
        """Failures; always printed, on the error stream."""
        self._write(self.err_stream, text)
